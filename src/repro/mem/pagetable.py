"""AArch64-LPAE-like page tables shared by the CPU and GPU MMUs.

The paper's Bifrost GPU "features a built-in MMU supporting AArch64 and LPAE
address modes"; the vendor driver hands the GPU page-table pointers into the
same physical memory the CPU uses. We model a 3-level table with 4 KiB pages
and 512-entry levels (9 bits per level, 39-bit VA space — the Linux default
for 4K pages on arm64 with 3 levels).

Entry format (64-bit little-endian words in physical memory):

====== =====================================================
bits    meaning
====== =====================================================
0       valid
1       readable
2       writable
3       executable
12+     physical page number (address of next level or page)
====== =====================================================

Both the :class:`PageTableBuilder` (driver side — writes entries) and the
:class:`PageTableWalker` (MMU side — reads entries) operate on *physical
memory*, so tables built by the driver are literally walked by the GPU,
as on real hardware.
"""

from repro.errors import MMUFault
from repro.mem.physical import PAGE_SHIFT, PAGE_SIZE

PTE_VALID = 1 << 0
PTE_READ = 1 << 1
PTE_WRITE = 1 << 2
PTE_EXEC = 1 << 3

_LEVEL_BITS = 9
_LEVEL_ENTRIES = 1 << _LEVEL_BITS
_LEVELS = 3
VA_BITS = PAGE_SHIFT + _LEVELS * _LEVEL_BITS  # 39
_ADDR_MASK = ~0xFFF & ((1 << 52) - 1)


def _index(vaddr, level):
    """Table index of *vaddr* at *level* (0 = root)."""
    shift = PAGE_SHIFT + (_LEVELS - 1 - level) * _LEVEL_BITS
    return (vaddr >> shift) & (_LEVEL_ENTRIES - 1)


class PageTableBuilder:
    """Driver-side page-table construction.

    Allocates table pages from a physical-frame allocator callback and
    writes entries directly into simulated physical memory.

    Args:
        memory: the :class:`~repro.mem.physical.PhysicalMemory`.
        alloc_frame: zero-argument callable returning the physical address
            of a fresh, zeroed 4 KiB frame for intermediate tables.
    """

    def __init__(self, memory, alloc_frame):
        self._memory = memory
        self._alloc_frame = alloc_frame
        self.root = alloc_frame()
        self._table_frames = [self.root]

    def map_page(self, vaddr, paddr, flags=PTE_READ | PTE_WRITE):
        """Map the 4 KiB virtual page containing *vaddr* to *paddr*."""
        if vaddr >> VA_BITS:
            raise MMUFault(vaddr, "w", f"VA 0x{vaddr:x} exceeds {VA_BITS}-bit space")
        if paddr & (PAGE_SIZE - 1):
            raise ValueError(f"unaligned physical page 0x{paddr:x}")
        table = self.root
        for level in range(_LEVELS - 1):
            entry_addr = table + 8 * _index(vaddr, level)
            entry = self._memory.read_u64(entry_addr)
            if not entry & PTE_VALID:
                frame = self._alloc_frame()
                self._table_frames.append(frame)
                entry = (frame & _ADDR_MASK) | PTE_VALID
                self._memory.write_u64(entry_addr, entry)
            table = entry & _ADDR_MASK
        leaf_addr = table + 8 * _index(vaddr, _LEVELS - 1)
        self._memory.write_u64(leaf_addr, (paddr & _ADDR_MASK) | flags | PTE_VALID)

    def map_range(self, vaddr, paddr, length, flags=PTE_READ | PTE_WRITE):
        """Map a contiguous virtual range onto a contiguous physical range."""
        offset = 0
        while offset < length:
            self.map_page(vaddr + offset, paddr + offset, flags)
            offset += PAGE_SIZE

    def unmap_page(self, vaddr):
        """Invalidate the leaf entry for *vaddr* (no-op if unmapped)."""
        table = self.root
        for level in range(_LEVELS - 1):
            entry = self._memory.read_u64(table + 8 * _index(vaddr, level))
            if not entry & PTE_VALID:
                return
            table = entry & _ADDR_MASK
        self._memory.write_u64(table + 8 * _index(vaddr, _LEVELS - 1), 0)

    def unmap_range(self, vaddr, length):
        """Invalidate every leaf entry covering ``[vaddr, vaddr+length)``."""
        offset = 0
        while offset < length:
            self.unmap_page(vaddr + offset)
            offset += PAGE_SIZE

    @property
    def table_pages(self):
        """Number of physical frames consumed by the tables themselves."""
        return len(self._table_frames)


class PageTableWalker:
    """MMU-side table walk with a software TLB.

    The TLB caches (virtual page -> (physical page, flags)); it must be
    flushed (:meth:`flush_tlb`) when the driver changes mappings, exactly as
    a real driver issues TLB invalidations.
    """

    def __init__(self, memory, root):
        self._memory = memory
        self.root = root
        self._tlb = {}
        self.walks = 0
        self.tlb_hits = 0

    def flush_tlb(self):
        self._tlb.clear()

    def lookup_page(self, vaddr):
        """Resolve the page containing *vaddr* without permission checks.

        Returns ``(physical page base, PTE flags)`` or ``None`` when the
        page is unmapped (no exception — callers that need fault semantics
        use :meth:`translate`). Successful lookups populate the TLB.
        """
        vpage = vaddr >> PAGE_SHIFT
        cached = self._tlb.get(vpage)
        if cached is not None:
            self.tlb_hits += 1
            return cached
        if vaddr >> VA_BITS:
            return None
        self.walks += 1
        table = self.root
        for level in range(_LEVELS - 1):
            entry = self._memory.read_u64(table + 8 * _index(vaddr, level))
            if not entry & PTE_VALID:
                return None
            table = entry & _ADDR_MASK
        entry = self._memory.read_u64(table + 8 * _index(vaddr, _LEVELS - 1))
        if not entry & PTE_VALID:
            return None
        cached = (entry & _ADDR_MASK, entry & 0xFFF)
        self._tlb[vpage] = cached
        return cached

    def translate(self, vaddr, access="r"):
        """Translate *vaddr*; returns the physical address.

        Raises:
            MMUFault: if the page is unmapped or *access* ('r'/'w'/'x')
                is not permitted.
        """
        cached = self.lookup_page(vaddr)
        if cached is None:
            raise MMUFault(vaddr, access)
        ppage, flags = cached
        self._check(vaddr, access, flags)
        return ppage | (vaddr & (PAGE_SIZE - 1))

    @staticmethod
    def _check(vaddr, access, flags):
        required = {"r": PTE_READ, "w": PTE_WRITE, "x": PTE_EXEC}[access]
        if not flags & required:
            raise MMUFault(vaddr, access, f"permission denied at 0x{vaddr:x} ({access})")
