"""Memory substrate: physical memory, the system bus, and page tables.

This package models the shared CPU/GPU memory system of the simulated
platform (Section III of the paper): a single sparse physical memory that
both the simulated CPU and the simulated GPU access, an MMIO bus that routes
device-register accesses, and an AArch64-LPAE-like page-table format used by
both the CPU MMU and the GPU MMU.
"""

from repro.mem.physical import PAGE_SHIFT, PAGE_SIZE, PhysicalMemory
from repro.mem.bus import Bus, MMIODevice, MMIORegion
from repro.mem.pagetable import (
    PTE_VALID,
    PTE_READ,
    PTE_WRITE,
    PTE_EXEC,
    PageTableBuilder,
    PageTableWalker,
)

__all__ = [
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PhysicalMemory",
    "Bus",
    "MMIODevice",
    "MMIORegion",
    "PTE_VALID",
    "PTE_READ",
    "PTE_WRITE",
    "PTE_EXEC",
    "PageTableBuilder",
    "PageTableWalker",
]
