"""Sparse physical memory.

The simulated platform has a single physical address space shared by the CPU
and the GPU (the paper's "shared main memory tightly couples the GPU and CPU
memory systems"). Memory is allocated lazily in 4 KiB pages so multi-GiB
guest address spaces cost only what is touched.

All accessors take *physical* addresses; virtual addressing is layered on
top by the CPU and GPU MMUs (:mod:`repro.mem.pagetable`).
"""

import struct

import numpy as np

from repro.errors import MemoryError_

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
_PAGE_MASK = PAGE_SIZE - 1

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


class PhysicalMemory:
    """Lazily-allocated paged physical memory.

    Pages are ``bytearray`` objects created on first touch. Bulk transfers
    (:meth:`write_block`, :meth:`read_block`) operate page-by-page and are
    the backing for simulated-CPU ``memcpy`` routines and GPU vector
    accesses.

    Args:
        size: total physical memory size in bytes. Accesses beyond this
            raise :class:`~repro.errors.MemoryError_`.
    """

    def __init__(self, size=1 << 32):
        if size <= 0 or size & _PAGE_MASK:
            raise ValueError(f"memory size must be a positive multiple of {PAGE_SIZE}")
        self.size = size
        self._pages = {}

    # -- page management ----------------------------------------------------

    def _page(self, addr):
        """Return (page bytearray, offset) for *addr*, allocating the page."""
        if not 0 <= addr < self.size:
            raise MemoryError_(f"physical access out of range: 0x{addr:x}")
        index = addr >> PAGE_SHIFT
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        return page, addr & _PAGE_MASK

    @property
    def allocated_pages(self):
        """Number of physical pages actually backed by host memory."""
        return len(self._pages)

    # -- scalar accessors ---------------------------------------------------

    def read_u8(self, addr):
        page, off = self._page(addr)
        return page[off]

    def write_u8(self, addr, value):
        page, off = self._page(addr)
        page[off] = value & 0xFF

    def read_u32(self, addr):
        page, off = self._page(addr)
        if off <= PAGE_SIZE - 4:
            return _U32.unpack_from(page, off)[0]
        return int.from_bytes(self.read_block(addr, 4), "little")

    def write_u32(self, addr, value):
        page, off = self._page(addr)
        if off <= PAGE_SIZE - 4:
            _U32.pack_into(page, off, value & 0xFFFFFFFF)
        else:
            self.write_block(addr, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def read_u64(self, addr):
        page, off = self._page(addr)
        if off <= PAGE_SIZE - 8:
            return _U64.unpack_from(page, off)[0]
        return int.from_bytes(self.read_block(addr, 8), "little")

    def write_u64(self, addr, value):
        page, off = self._page(addr)
        if off <= PAGE_SIZE - 8:
            _U64.pack_into(page, off, value & 0xFFFFFFFFFFFFFFFF)
        else:
            self.write_block(addr, (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))

    # -- bulk accessors -----------------------------------------------------

    def read_block(self, addr, length):
        """Read *length* bytes starting at *addr* as ``bytes``."""
        out = bytearray(length)
        pos = 0
        while pos < length:
            page, off = self._page(addr + pos)
            chunk = min(length - pos, PAGE_SIZE - off)
            out[pos:pos + chunk] = page[off:off + chunk]
            pos += chunk
        return bytes(out)

    def write_block(self, addr, data):
        """Write the buffer *data* starting at physical address *addr*."""
        data = memoryview(data).cast("B")
        length = len(data)
        pos = 0
        while pos < length:
            page, off = self._page(addr + pos)
            chunk = min(length - pos, PAGE_SIZE - off)
            page[off:off + chunk] = data[pos:pos + chunk]
            pos += chunk

    def read_array(self, addr, count, dtype=np.uint32):
        """Read *count* elements of *dtype* starting at *addr*."""
        raw = self.read_block(addr, count * np.dtype(dtype).itemsize)
        return np.frombuffer(raw, dtype=dtype).copy()

    def write_array(self, addr, array):
        """Write a NumPy array's bytes starting at *addr*."""
        self.write_block(addr, np.ascontiguousarray(array).tobytes())

    def fill(self, addr, length, value=0):
        """Set *length* bytes starting at *addr* to *value*."""
        pos = 0
        while pos < length:
            page, off = self._page(addr + pos)
            chunk = min(length - pos, PAGE_SIZE - off)
            page[off:off + chunk] = bytes([value & 0xFF]) * chunk
            pos += chunk
