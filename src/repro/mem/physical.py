"""Sparse physical memory.

The simulated platform has a single physical address space shared by the CPU
and the GPU (the paper's "shared main memory tightly couples the GPU and CPU
memory systems"). Memory is allocated lazily in 4 KiB pages so multi-GiB
guest address spaces cost only what is touched.

All accessors take *physical* addresses; virtual addressing is layered on
top by the CPU and GPU MMUs (:mod:`repro.mem.pagetable`).

Named **carve-outs** (:meth:`PhysicalMemory.register_carveout`) delimit
non-overlapping physical windows — one per tenant in the multi-tenant
driver — and support accounting (:meth:`carveout_allocated_pages`) and a
content digest (:meth:`carveout_digest`) over the window, which is how
the isolation tests prove one tenant's faults never perturbed another
tenant's memory image.
"""

import hashlib
import struct

import numpy as np

from repro.errors import MemoryError_

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
_PAGE_MASK = PAGE_SIZE - 1

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


class PhysicalMemory:
    """Lazily-allocated paged physical memory.

    Pages are ``bytearray`` objects created on first touch. Bulk transfers
    (:meth:`write_block`, :meth:`read_block`) operate page-by-page and are
    the backing for simulated-CPU ``memcpy`` routines and GPU vector
    accesses.

    Args:
        size: total physical memory size in bytes. Accesses beyond this
            raise :class:`~repro.errors.MemoryError_`.
    """

    def __init__(self, size=1 << 32):
        if size <= 0 or size & _PAGE_MASK:
            raise ValueError(f"memory size must be a positive multiple of {PAGE_SIZE}")
        self.size = size
        self._pages = {}
        self._views = {}  # page index -> np.uint32 view sharing the bytearray
        self._carveouts = {}  # name -> (base, size), non-overlapping

    # -- page management ----------------------------------------------------

    def _page(self, addr):
        """Return (page bytearray, offset) for *addr*, allocating the page."""
        if not 0 <= addr < self.size:
            raise MemoryError_(f"physical access out of range: 0x{addr:x}")
        index = addr >> PAGE_SHIFT
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        return page, addr & _PAGE_MASK

    def page_u32_view(self, index):
        """Writable ``np.uint32`` view of page *index*, allocating it.

        Views share storage with the page ``bytearray``, so byte-level and
        vector accessors stay coherent. Pages are never reallocated, so the
        views are cached for the lifetime of the memory.
        """
        view = self._views.get(index)
        if view is None:
            page, _ = self._page(index << PAGE_SHIFT)
            view = np.frombuffer(page, dtype=np.uint32)
            self._views[index] = view
        return view

    @property
    def allocated_pages(self):
        """Number of physical pages actually backed by host memory."""
        return len(self._pages)

    # -- carve-out accounting ------------------------------------------------

    def register_carveout(self, name, base, size):
        """Register a named, page-aligned physical window.

        Carve-outs must not overlap each other; re-registering the same
        name with the same extent is a no-op (the driver re-registers on
        re-initialization). The window is purely an accounting overlay —
        accessors are unaffected.
        """
        if base & _PAGE_MASK or size & _PAGE_MASK or size <= 0:
            raise ValueError(
                f"carveout {name!r} must be page-aligned and non-empty")
        if base < 0 or base + size > self.size:
            raise ValueError(f"carveout {name!r} outside physical memory")
        existing = self._carveouts.get(name)
        if existing is not None:
            if existing != (base, size):
                raise ValueError(
                    f"carveout {name!r} re-registered with a different "
                    f"extent")
            return
        for other, (obase, osize) in self._carveouts.items():
            if base < obase + osize and obase < base + size:
                raise ValueError(
                    f"carveout {name!r} overlaps {other!r}")
        self._carveouts[name] = (base, size)

    def carveout(self, name):
        """Return the ``(base, size)`` of a registered carve-out."""
        return self._carveouts[name]

    @property
    def carveout_names(self):
        return sorted(self._carveouts)

    def _carveout_page_range(self, name):
        base, size = self._carveouts[name]
        return base >> PAGE_SHIFT, (base + size) >> PAGE_SHIFT

    def carveout_allocated_pages(self, name):
        """Backed pages inside carve-out *name*."""
        first, last = self._carveout_page_range(name)
        return sum(1 for index in self._pages if first <= index < last)

    def carveout_digest(self, name):
        """sha256 over the carve-out's logical content.

        Hashes ``(page index, page bytes)`` for every backed page with
        any nonzero byte, in page order. All-zero backed pages hash the
        same as untouched ones — sparse allocation is an implementation
        detail, the *logical* image is what isolation compares.
        """
        first, last = self._carveout_page_range(name)
        digest = hashlib.sha256()
        for index in sorted(self._pages):
            if not first <= index < last:
                continue
            page = self._pages[index]
            if not any(page):
                continue
            digest.update(index.to_bytes(8, "little"))
            digest.update(page)
        return digest.hexdigest()

    # -- scalar accessors ---------------------------------------------------

    def read_u8(self, addr):
        page, off = self._page(addr)
        return page[off]

    def write_u8(self, addr, value):
        page, off = self._page(addr)
        page[off] = value & 0xFF

    def read_u32(self, addr):
        page, off = self._page(addr)
        if off <= PAGE_SIZE - 4:
            return _U32.unpack_from(page, off)[0]
        return int.from_bytes(self.read_block(addr, 4), "little")

    def write_u32(self, addr, value):
        page, off = self._page(addr)
        if off <= PAGE_SIZE - 4:
            _U32.pack_into(page, off, value & 0xFFFFFFFF)
        else:
            self.write_block(addr, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def read_u64(self, addr):
        page, off = self._page(addr)
        if off <= PAGE_SIZE - 8:
            return _U64.unpack_from(page, off)[0]
        return int.from_bytes(self.read_block(addr, 8), "little")

    def write_u64(self, addr, value):
        page, off = self._page(addr)
        if off <= PAGE_SIZE - 8:
            _U64.pack_into(page, off, value & 0xFFFFFFFFFFFFFFFF)
        else:
            self.write_block(addr, (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))

    # -- bulk accessors -----------------------------------------------------

    def read_block(self, addr, length):
        """Read *length* bytes starting at *addr* as ``bytes``."""
        out = bytearray(length)
        pos = 0
        while pos < length:
            page, off = self._page(addr + pos)
            chunk = min(length - pos, PAGE_SIZE - off)
            out[pos:pos + chunk] = page[off:off + chunk]
            pos += chunk
        return bytes(out)

    def write_block(self, addr, data):
        """Write the buffer *data* starting at physical address *addr*."""
        data = memoryview(data).cast("B")
        length = len(data)
        pos = 0
        while pos < length:
            page, off = self._page(addr + pos)
            chunk = min(length - pos, PAGE_SIZE - off)
            page[off:off + chunk] = data[pos:pos + chunk]
            pos += chunk

    def read_array(self, addr, count, dtype=np.uint32):
        """Read *count* elements of *dtype* starting at *addr*."""
        raw = self.read_block(addr, count * np.dtype(dtype).itemsize)
        return np.frombuffer(raw, dtype=dtype).copy()

    def write_array(self, addr, array):
        """Write a NumPy array's bytes starting at *addr*."""
        self.write_block(addr, np.ascontiguousarray(array).tobytes())

    # -- vector accessors (the GPU quad fast path) --------------------------

    def gather_u32(self, addrs):
        """Read one u32 per physical address in *addrs* (quad gather).

        When every address is 4-byte aligned and all land in the same page
        — the common case for a coalesced GPU quad — the whole gather is a
        single NumPy fancy-index on the page's u32 view. Stragglers
        (cross-page or unaligned) fall back to scalar :meth:`read_u32` per
        element, which keeps page-straddling words bit-exact.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        count = len(addrs)
        if count == 0:
            return np.empty(0, dtype=np.uint32)
        first = int(addrs[0])
        page_index = first >> PAGE_SHIFT
        if ((addrs >> PAGE_SHIFT) == page_index).all() and not (addrs & 3).any():
            if not 0 <= first < self.size:
                raise MemoryError_(f"physical access out of range: 0x{first:x}")
            view = self.page_u32_view(page_index)
            return view[(addrs & _PAGE_MASK) >> 2]
        out = np.empty(count, dtype=np.uint32)
        for position in range(count):
            out[position] = self.read_u32(int(addrs[position]))
        return out

    def scatter_u32(self, addrs, values, mask=None):
        """Write one u32 per physical address in *addrs* (quad scatter).

        *mask*, when given, suppresses inactive elements. Duplicate
        addresses resolve in element order (the last element wins), which
        matches the scalar lane-ordered store loop. Same-page aligned
        scatters are one NumPy fancy-index store; stragglers fall back to
        scalar :meth:`write_u32`.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        values = np.asarray(values, dtype=np.uint32)
        if mask is not None:
            addrs = addrs[mask]
            values = values[mask]
        count = len(addrs)
        if count == 0:
            return
        first = int(addrs[0])
        page_index = first >> PAGE_SHIFT
        if ((addrs >> PAGE_SHIFT) == page_index).all() and not (addrs & 3).any():
            if not 0 <= first < self.size:
                raise MemoryError_(f"physical access out of range: 0x{first:x}")
            view = self.page_u32_view(page_index)
            view[(addrs & _PAGE_MASK) >> 2] = values
            return
        for position in range(count):
            self.write_u32(int(addrs[position]), int(values[position]))

    def fill(self, addr, length, value=0):
        """Set *length* bytes starting at *addr* to *value*."""
        pos = 0
        while pos < length:
            page, off = self._page(addr + pos)
            chunk = min(length - pos, PAGE_SIZE - off)
            page[off:off + chunk] = bytes([value & 0xFF]) * chunk
            pos += chunk
