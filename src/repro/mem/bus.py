"""System bus with MMIO routing.

Device registers (the GPU's Job Manager and MMU registers, the UART, timers,
the interrupt controller) live in dedicated physical address windows. The bus
routes 32-bit register accesses in those windows to the owning device and
everything else to :class:`~repro.mem.physical.PhysicalMemory`.

This mirrors the paper's platform model: "The GPU interfaces with the CPU via
memory mapped registers, hardware interrupts, and memory."
"""

from repro.errors import BusError


class MMIODevice:
    """Interface for memory-mapped devices.

    Subclasses implement :meth:`read_reg` / :meth:`write_reg`, which receive
    the *offset* of the accessed register within the device window.
    """

    def read_reg(self, offset):
        raise NotImplementedError

    def write_reg(self, offset, value):
        raise NotImplementedError


class MMIORegion:
    """A device window on the bus: ``[base, base + size)``."""

    def __init__(self, name, base, size, device):
        if base & 3 or size & 3:
            raise ValueError("MMIO regions must be 4-byte aligned")
        self.name = name
        self.base = base
        self.size = size
        self.device = device

    def contains(self, addr):
        return self.base <= addr < self.base + self.size

    def __repr__(self):
        return f"MMIORegion({self.name!r}, 0x{self.base:x}, 0x{self.size:x})"


class Bus:
    """Routes physical accesses to memory or MMIO devices.

    Scalar 32-bit accesses check the MMIO map first; bulk/array accessors
    bypass it (devices are not valid DMA targets on this platform).
    """

    def __init__(self, memory):
        self.memory = memory
        self._regions = []

    def map_device(self, name, base, size, device):
        """Register *device* at physical window ``[base, base+size)``."""
        region = MMIORegion(name, base, size, device)
        for existing in self._regions:
            if base < existing.base + existing.size and existing.base < base + size:
                raise BusError(f"MMIO window {name} overlaps {existing.name}")
        self._regions.append(region)
        return region

    def _find_region(self, addr):
        for region in self._regions:
            if region.contains(addr):
                return region
        return None

    # -- scalar access (MMIO-aware) -----------------------------------------

    def read_u32(self, addr):
        region = self._find_region(addr)
        if region is not None:
            if addr & 3:
                raise BusError(f"misaligned MMIO read at 0x{addr:x}")
            return region.device.read_reg(addr - region.base) & 0xFFFFFFFF
        return self.memory.read_u32(addr)

    def write_u32(self, addr, value):
        region = self._find_region(addr)
        if region is not None:
            if addr & 3:
                raise BusError(f"misaligned MMIO write at 0x{addr:x}")
            region.device.write_reg(addr - region.base, value & 0xFFFFFFFF)
            return
        self.memory.write_u32(addr, value)

    def read_u64(self, addr):
        region = self._find_region(addr)
        if region is not None:
            low = self.read_u32(addr)
            high = self.read_u32(addr + 4)
            return low | (high << 32)
        return self.memory.read_u64(addr)

    def write_u64(self, addr, value):
        region = self._find_region(addr)
        if region is not None:
            self.write_u32(addr, value & 0xFFFFFFFF)
            self.write_u32(addr + 4, (value >> 32) & 0xFFFFFFFF)
            return
        self.memory.write_u64(addr, value)

    def read_u8(self, addr):
        region = self._find_region(addr)
        if region is not None:
            word = self.read_u32(addr & ~3)
            return (word >> ((addr & 3) * 8)) & 0xFF
        return self.memory.read_u8(addr)

    def write_u8(self, addr, value):
        region = self._find_region(addr)
        if region is not None:
            raise BusError(f"byte MMIO writes unsupported at 0x{addr:x}")
        self.memory.write_u8(addr, value)

    # -- bulk access (memory only) -------------------------------------------

    def read_block(self, addr, length):
        return self.memory.read_block(addr, length)

    def write_block(self, addr, data):
        self.memory.write_block(addr, data)
