"""Constrained random whole-program generation (conformance fuzzing).

Emits valid Bifrost-like :class:`~repro.gpu.isa.Program` objects — multi-
clause CFGs with branches at clause boundaries, embedded constant pools,
clause temporaries, and LD/ST/LDU/ATOM over pre-seeded buffers — together
with a launch shape and deterministic input data. Programs are correct by
construction in three ways that matter for N-way differential execution:

- **Termination**: control flow only ever targets *forward* clause indices,
  so every lane reaches an END tail in at most ``len(clauses)`` steps.
- **Address safety**: memory operands are computed by masking an arbitrary
  32-bit value into a power-of-two-sized window of the pre-mapped buffer
  (``addr = base + (x & (window - 4 * width))``), so no access can fault.
- **Race freedom**: loads read a shared read-only input region; stores and
  atomics target per-thread slices/words. The scalar baseline executes
  threads one at a time while the quad engines interleave lanes, so any
  shared-address write would make final memory schedule-dependent and the
  engines incomparable.

Coverage is tracked over (op × slot × operand-kind) triples plus clause-
shape buckets, and the generator biases its choices toward uncovered
triples (coverage-guided generation).

Every generated program is gated through the shared static verifier
(:mod:`repro.gpu.verify`) instead of bespoke well-formedness assertions:
an error-severity finding in a freshly generated program is a generator
bug and raises immediately. :func:`generate_defect_case` is the inverse
mode — it deliberately plants exactly one defect from
:data:`DEFECT_CATEGORIES` so the verifier's detection (and the dynamic
must-fault contract) can be tested end to end.
"""

import random
from dataclasses import dataclass, field

import numpy as np

from repro.gpu.isa import (
    ATOM_MODE_SHIFT,
    MAX_CONSTS,
    MEM_SPACE_LOCAL,
    NOP_INSTR,
    OPERAND_NONE,
    REG_GLOBAL_ID,
    REG_GROUP_FLAT,
    REG_LANE,
    REG_LOCAL_ID,
    TEMP_BASE,
    Clause,
    CmpMode,
    Instruction,
    Op,
    Program,
    Tail,
    can_use_add_slot,
    is_const,
    is_grf,
    is_memory_op,
    is_temp,
)
from repro.gpu.verify import VerifyContext, verify_program

# -- memory layout contract shared with the differential runner ---------------

IN_BYTES = 8192       # shared read-only input region (2 pages)
OUT_SLICE_BYTES = 64  # private output slice per thread
LOCAL_SLICE_BYTES = 32  # private workgroup-local slice per thread

# register allocation convention for generated programs: the prologue owns
# r45..r52, generated code writes only r0..r44 (and the temps)
GEN_DST_MAX = 44
REG_LOCAL_BASE = 47   # byte address of this thread's local slice
REG_IN_BASE = 48      # VA of the input region
REG_OUT_BASE = 49     # VA of this thread's output slice
REG_ATOM_BASE = 50    # VA of this thread's private atomic word
REG_ADDR_A = 51       # address scratch (loads)
REG_ADDR_B = 52       # address scratch (stores)

# uniform indices: 0-9 are the NDRange block, args follow (runner contract)
UNIFORM_ARG_BASE = 10
UNIFORM_COUNT = UNIFORM_ARG_BASE + 5  # in, out-slice, atom bases + 2 extras

# transcendental special-function ops are excluded from *whole-program*
# generation: NumPy's SIMD exp/log/sin/cos kernels may differ from the
# scalar libm path in the last ulp depending on the host, and the N-way
# runner demands bit-exactness. Single-instruction fuzzing still covers
# them under an explicit ulp tolerance (repro.validate.fuzz).
GEN_EXCLUDED = {Op.NOP, Op.FEXP, Op.FLOG, Op.FSIN, Op.FCOS}

GENERATABLE_OPS = tuple(op for op in Op if op not in GEN_EXCLUDED)
_ARITH_OPS = tuple(op for op in GENERATABLE_OPS if not is_memory_op(op))

_UNARY_OPS = {
    Op.MOV, Op.FABS, Op.FNEG, Op.FFLOOR, Op.FRCP, Op.FSQRT, Op.FRSQ,
    Op.FEXP, Op.FLOG, Op.FSIN, Op.FCOS, Op.F2I, Op.F2U, Op.I2F, Op.U2F,
    Op.IABS,
}
_TERNARY_OPS = {Op.FMA, Op.SELECT}


def op_arity(op):
    """Number of source operands an arithmetic op reads."""
    if op in _UNARY_OPS:
        return 1
    if op in _TERNARY_OPS:
        return 3
    return 2


# interesting 32-bit patterns for constants and input data: float special
# values (including NaN payloads — the engines are bit-exact on them),
# integer extremes, and small indices
SPECIAL_BITS = (
    0x00000000, 0x80000000, 0x3F800000, 0xBF800000,  # 0, -0, 1, -1
    0x7F800000, 0xFF800000, 0x7FC00000, 0x7FC00001, 0x7F800001,  # inf, NaNs
    0x00000001, 0x007FFFFF, 0x00800000,  # denormals, FLT_MIN
    0x7F7FFFFF, 0xFF7FFFFF,  # +-FLT_MAX
    0xFFFFFFFF, 0x7FFFFFFF, 0x80000000, 0x80000001,  # int extremes
    0x00000002, 0x00000003, 0x0000001F, 0x00000020,  # small ints, shifts
)

_KINDS = ("grf", "temp", "const")


def operand_kind(operand):
    if is_grf(operand):
        return "grf"
    if is_temp(operand):
        return "temp"
    if is_const(operand):
        return "const"
    return None


def coverage_space():
    """All fuzzable (op, slot, operand-kind) triples.

    Arithmetic ops pair every legal slot with every source-operand kind;
    memory ops have fixed operand shapes by construction (addresses are
    always GRF, LDU reads an immediate), except the ATOM update operand
    which ranges over all kinds.
    """
    space = set()
    for op in _ARITH_OPS:
        slots = ("fma", "add") if can_use_add_slot(op) else ("fma",)
        for slot in slots:
            for kind in _KINDS:
                space.add((op, slot, kind))
    space.add((Op.LD, "fma", "grf"))
    space.add((Op.ST, "fma", "grf"))
    space.add((Op.LDU, "fma", "imm"))
    for kind in _KINDS:
        space.add((Op.ATOM, "fma", kind))
    return frozenset(space)


class CoverageTracker:
    """Static coverage over (op × slot × operand-kind) and clause shapes."""

    def __init__(self):
        self.space = coverage_space()
        self.hit = set()
        self.clause_shapes = {}  # (size, tail name) -> count
        self.programs = 0

    @property
    def covered(self):
        return len(self.hit)

    @property
    def total(self):
        return len(self.space)

    @property
    def fraction(self):
        return self.covered / self.total if self.total else 1.0

    def uncovered(self):
        return self.space - self.hit

    def record_program(self, program):
        self.programs += 1
        for clause in program.clauses:
            shape = (clause.size, clause.tail.name)
            self.clause_shapes[shape] = self.clause_shapes.get(shape, 0) + 1
            for fma, add in clause.tuples:
                self._record_slot(fma, "fma")
                self._record_slot(add, "add")

    def _record_slot(self, instr, slot):
        op = instr.op
        if op is Op.NOP:
            return
        if op is Op.LDU:
            self.hit.add((op, slot, "imm"))
            return
        if op is Op.LD or op is Op.ST:
            self.hit.add((op, slot, "grf"))
            return
        if op is Op.ATOM:
            kind = operand_kind(instr.srcb)
            if kind:
                self.hit.add((op, slot, kind))
            return
        for source in instr.sources():
            kind = operand_kind(source)
            if kind:
                self.hit.add((op, slot, kind))

    def report_lines(self):
        lines = [
            f"coverage: {self.covered}/{self.total} "
            f"({100.0 * self.fraction:.1f}%) op x slot x operand-kind "
            f"combinations",
            f"clause shapes: {len(self.clause_shapes)} distinct "
            f"(size x tail) buckets over {self.programs} programs",
        ]
        missing = sorted(
            (op.name, slot, kind) for op, slot, kind in self.uncovered())
        if missing:
            preview = ", ".join("/".join(t) for t in missing[:8])
            suffix = ", ..." if len(missing) > 8 else ""
            lines.append(f"uncovered: {preview}{suffix}")
        return lines


@dataclass
class GeneratedCase:
    """One generated conformance test case."""

    program: Program
    global_size: tuple
    local_size: tuple
    in_words: np.ndarray  # uint32, IN_BYTES // 4 entries
    extra_uniforms: tuple = (0, 0)
    seed: int = 0
    index: int = 0
    label: str = ""


class _ClauseBuilder:
    """Accumulates instruction slots + constants for one clause."""

    def __init__(self, rng):
        self.rng = rng
        self.slots = []
        self.constants = []

    def const(self, value):
        """Operand index for *value* in this clause's pool (deduplicated)."""
        value &= 0xFFFFFFFF
        try:
            return 128 + self.constants.index(value)
        except ValueError:
            if len(self.constants) >= MAX_CONSTS:
                # pool full: fall back to reusing an existing slot
                return 128 + self.rng.randrange(len(self.constants))
            self.constants.append(value)
            return 128 + len(self.constants) - 1

    def pack(self, tail=Tail.FALLTHROUGH, cond_reg=0, target=0):
        """Pack the slot list into (FMA, ADD) tuples preserving order."""
        tuples = []
        index = 0
        slots = self.slots
        while index < len(slots):
            fma = slots[index]
            index += 1
            add = NOP_INSTR
            if index < len(slots) and can_use_add_slot(slots[index].op):
                add = slots[index]
                index += 1
            tuples.append((fma, add))
        if not tuples:
            tuples.append((NOP_INSTR, NOP_INSTR))
        # clauses hold at most 8 tuples; dropping trailing slots is safe
        # (a kept memory op always follows its address-setup slots)
        return Clause(tuples=tuples[:8], constants=list(self.constants),
                      tail=tail, cond_reg=cond_reg, target=target)


class ProgramGenerator:
    """Coverage-guided constrained random program generator.

    One instance generates a deterministic stream of cases from its seed;
    when a :class:`CoverageTracker` is supplied, generation records static
    coverage and biases op/operand choices toward uncovered triples (the
    tracker state only ever depends on generated programs, so replaying the
    same seed regenerates the identical stream).
    """

    def __init__(self, seed, coverage=None):
        self.seed = seed
        self.rng = random.Random(seed)
        self.coverage = coverage if coverage is not None else CoverageTracker()
        self._index = 0

    # -- public API -----------------------------------------------------------

    def generate(self):
        rng = self.rng
        index = self._index
        self._index += 1
        local = rng.choice((4, 8, 16))
        groups = rng.choice((1, 1, 2))
        threads = local * groups
        clauses = list(self._prologue(rng))
        body = rng.randint(1, 5)
        first_body = len(clauses)
        total = first_body + body
        for offset in range(body):
            clause_index = first_body + offset
            clauses.append(
                self._body_clause(rng, clause_index, total))
        program = Program(clauses=clauses,
                          meta={"generator_seed": self.seed,
                                "generator_index": index})
        # Correct-by-construction is checked, not assumed: every generated
        # program must come back clean from the shared static verifier
        # (which subsumes the old ad-hoc validate()/forward-CFG asserts).
        report = verify_program(
            program, generation_context(threads=threads, local=local))
        if not report.ok:
            raise AssertionError(
                f"generator produced a program the verifier rejects "
                f"(seed={self.seed}, index={index}): "
                + "; ".join(str(f) for f in report.errors[:4]))
        self.coverage.record_program(program)
        in_words = np.array(
            [self._data_word(rng) for _ in range(IN_BYTES // 4)],
            dtype=np.uint32)
        extras = (rng.getrandbits(32), rng.getrandbits(32))
        case = GeneratedCase(
            program=program,
            global_size=(threads, 1, 1),
            local_size=(local, 1, 1),
            in_words=in_words,
            extra_uniforms=extras,
            seed=self.seed,
            index=index,
            label=f"gen[seed={self.seed},i={index}]",
        )
        return case

    def generate_nth(self, index):
        """Regenerate the *index*-th case of this seed's stream (corpus
        replay-by-seed). Requires a fresh generator instance."""
        case = None
        for _ in range(index + 1):
            case = self.generate()
        return case

    # -- data ----------------------------------------------------------------

    def _data_word(self, rng):
        if rng.random() < 0.3:
            return rng.choice(SPECIAL_BITS)
        return rng.getrandbits(32)

    # -- prologue -------------------------------------------------------------

    def _prologue(self, rng):
        """Two fixed clauses establishing the address-safety invariants.

        Clause 0 loads the buffer base addresses from the uniforms and
        privatizes them per thread (output slice, atomic word, local
        slice), then seeds r8..r11 from the input region. Clause 1 seeds
        r0..r7 with random constants and thread ids so generated code has
        varied live values to consume.
        """
        gid = REG_GLOBAL_ID
        lid = REG_LOCAL_ID
        t0 = TEMP_BASE
        c0 = _ClauseBuilder(rng)
        c0.slots = [
            Instruction(Op.LDU, dst=REG_IN_BASE, imm=UNIFORM_ARG_BASE),
            Instruction(Op.LDU, dst=REG_OUT_BASE, imm=UNIFORM_ARG_BASE + 1),
            Instruction(Op.LDU, dst=REG_ATOM_BASE, imm=UNIFORM_ARG_BASE + 2),
            Instruction(Op.ISHL, dst=t0, srca=gid, srcb=c0.const(6)),
            Instruction(Op.IADD, dst=REG_OUT_BASE, srca=REG_OUT_BASE,
                        srcb=t0),
            Instruction(Op.ISHL, dst=t0, srca=gid, srcb=c0.const(2)),
            Instruction(Op.IADD, dst=REG_ATOM_BASE, srca=REG_ATOM_BASE,
                        srcb=t0),
            Instruction(Op.ISHL, dst=REG_LOCAL_BASE, srca=lid,
                        srcb=c0.const(5)),
            Instruction(Op.ISHL, dst=t0, srca=gid, srcb=c0.const(4)),
            Instruction(Op.IADD, dst=REG_ADDR_A, srca=REG_IN_BASE, srcb=t0),
            Instruction(Op.LD, dst=8, srca=REG_ADDR_A, flags=2),  # r8..r11
        ]
        yield c0.pack()

        c1 = _ClauseBuilder(rng)
        for reg in range(6):
            value = rng.choice(SPECIAL_BITS) if rng.random() < 0.5 \
                else rng.getrandbits(32)
            c1.slots.append(
                Instruction(Op.MOV, dst=reg, srca=c1.const(value)))
        c1.slots.append(Instruction(Op.MOV, dst=6, srca=gid))
        c1.slots.append(Instruction(Op.MOV, dst=7, srca=REG_LANE))
        yield c1.pack()

    # -- body clauses ---------------------------------------------------------

    def _body_clause(self, rng, clause_index, total_clauses):
        builder = _ClauseBuilder(rng)
        budget = rng.randint(2, 10)
        while budget > 0 and len(builder.slots) < 11:
            roll = rng.random()
            if roll < 0.10:
                self._emit_load(rng, builder)
            elif roll < 0.18:
                self._emit_store(rng, builder)
            elif roll < 0.23:
                self._emit_atomic(rng, builder)
            elif roll < 0.28:
                builder.slots.append(Instruction(
                    Op.LDU, dst=self._dst_reg(rng),
                    imm=rng.randrange(UNIFORM_COUNT)))
            else:
                self._emit_arith(rng, builder)
            budget -= 1
        return self._finish_clause(rng, builder, clause_index, total_clauses)

    def _finish_clause(self, rng, builder, clause_index, total_clauses):
        last = clause_index == total_clauses - 1
        if last:
            return builder.pack(tail=Tail.END)
        target = rng.randint(clause_index + 1, total_clauses - 1)
        roll = rng.random()
        if roll < 0.35:
            return builder.pack(tail=Tail.FALLTHROUGH)
        if roll < 0.45:
            return builder.pack(tail=Tail.JUMP, target=target)
        if roll < 0.75:
            tail = Tail.BRANCH if roll < 0.60 else Tail.BRANCH_Z
            cond = rng.choice((
                rng.randrange(0, 13),  # computed values
                REG_GLOBAL_ID, REG_LOCAL_ID, REG_LANE, REG_GROUP_FLAT,
            ))
            return builder.pack(tail=tail, cond_reg=cond, target=target)
        if roll < 0.90:
            return builder.pack(tail=Tail.BARRIER)
        return builder.pack(tail=Tail.END)

    # -- instruction emission ---------------------------------------------------

    def _dst_reg(self, rng, span=1):
        if span == 1 and rng.random() < 0.15:
            return TEMP_BASE + rng.randrange(2)
        return rng.randrange(0, GEN_DST_MAX - span + 2)

    def _source(self, rng, builder, kind=None):
        if kind is None:
            kind = rng.choices(_KINDS, weights=(6, 2, 2))[0]
        if kind == "temp":
            # Temporaries are clause-local: only read a temp the current
            # clause has already written, seeding a definition otherwise.
            written = sorted({s.dst for s in builder.slots
                              if is_temp(s.dst)})
            if not written:
                temp = TEMP_BASE + rng.randrange(2)
                builder.slots.append(Instruction(
                    Op.MOV, dst=temp, srca=rng.randrange(0, 64)))
                return temp
            return rng.choice(written)
        if kind == "const":
            value = rng.choice(SPECIAL_BITS) if rng.random() < 0.5 \
                else rng.getrandbits(32)
            return builder.const(value)
        return rng.randrange(0, 64)

    def _pick_arith(self, rng):
        """Pick an arithmetic op and a preferred first-source kind, biased
        toward uncovered coverage triples."""
        # sorted: uncovered() is a set, and set iteration order varies with
        # the process hash seed — rng.choice over it would make the stream
        # non-reproducible across processes (breaking corpus seed replay)
        uncovered = sorted(t for t in self.coverage.uncovered()
                           if t[0] in _ARITH_OPS)
        if uncovered and rng.random() < 0.7:
            op, _slot, kind = rng.choice(uncovered)
            return op, kind
        return rng.choice(_ARITH_OPS), None

    def _emit_arith(self, rng, builder):
        op, first_kind = self._pick_arith(rng)
        arity = op_arity(op)
        sources = [self._source(rng, builder, kind=first_kind)]
        for _ in range(arity - 1):
            sources.append(self._source(rng, builder))
        while len(sources) < 3:
            sources.append(OPERAND_NONE)
        flags = int(rng.choice(list(CmpMode))) if op is Op.CMP else 0
        builder.slots.append(Instruction(
            op, dst=self._dst_reg(rng), srca=sources[0], srcb=sources[1],
            srcc=sources[2], flags=flags))

    def _emit_load(self, rng, builder):
        log2w = rng.choice((0, 0, 1, 2))
        width = 1 << log2w
        local = rng.random() < 0.3
        window = LOCAL_SLICE_BYTES if local else IN_BYTES
        mask = window - 4 * width
        base = REG_LOCAL_BASE if local else REG_IN_BASE
        offset_src = self._source(rng, builder)
        builder.slots.append(Instruction(
            Op.IAND, dst=REG_ADDR_A, srca=offset_src,
            srcb=builder.const(mask)))
        builder.slots.append(Instruction(
            Op.IADD, dst=REG_ADDR_A, srca=REG_ADDR_A, srcb=base))
        flags = log2w | (MEM_SPACE_LOCAL if local else 0)
        # LD destinations are GRF by design (wide loads write register rows)
        dst = rng.randrange(0, GEN_DST_MAX - width + 2)
        builder.slots.append(Instruction(
            Op.LD, dst=dst, srca=REG_ADDR_A, flags=flags))

    def _emit_store(self, rng, builder):
        log2w = rng.choice((0, 0, 1, 2))
        width = 1 << log2w
        local = rng.random() < 0.3
        window = LOCAL_SLICE_BYTES if local else OUT_SLICE_BYTES
        mask = window - 4 * width
        base = REG_LOCAL_BASE if local else REG_OUT_BASE
        offset_src = self._source(rng, builder)
        builder.slots.append(Instruction(
            Op.IAND, dst=REG_ADDR_B, srca=offset_src,
            srcb=builder.const(mask)))
        builder.slots.append(Instruction(
            Op.IADD, dst=REG_ADDR_B, srca=REG_ADDR_B, srcb=base))
        flags = log2w | (MEM_SPACE_LOCAL if local else 0)
        data_base = rng.randrange(0, GEN_DST_MAX - width + 2)
        builder.slots.append(Instruction(
            Op.ST, srca=REG_ADDR_B, srcb=data_base, flags=flags))

    def _emit_atomic(self, rng, builder):
        local = rng.random() < 0.3
        base = REG_LOCAL_BASE if local else REG_ATOM_BASE
        mode = rng.randrange(8)
        uncovered_atom = sorted(t for t in self.coverage.uncovered()
                                if t[0] is Op.ATOM)  # sorted: see _pick_arith
        kind = rng.choice(uncovered_atom)[2] if uncovered_atom else None
        value_src = self._source(rng, builder, kind=kind)
        flags = (mode << ATOM_MODE_SHIFT) | (MEM_SPACE_LOCAL if local else 0)
        builder.slots.append(Instruction(
            Op.ATOM, dst=self._dst_reg(rng), srca=base, srcb=value_src,
            flags=flags))


def generation_context(threads=None, local=None):
    """Verifier context for the generator's own contract.

    Buffer VAs and the memory map are runner-owned (the generator only
    knows the uniform slot layout and launch shape), so this context can
    produce structural/dataflow/race claims but no address claims; the
    differential suite re-verifies with the runner's full launch context.
    """
    return VerifyContext(
        name="progen",
        uniform_count=UNIFORM_COUNT,
        threads=threads,
        threads_per_group=local,
    )


# -- seeded-defect generation --------------------------------------------------

# category -> what the verifier must report for generate_defect_case:
#   codes:      acceptable finding codes (any one suffices)
#   severity:   minimum severity of the expected finding
#   must_fault: the finding must carry the must-fault claim
#   dynamic:    "clean" (runs bit-exact on every engine), "fault" (the
#               must-fault claim: engines raise), "racy"/"hang"/"crash"
#               (defined to misbehave; excluded from dynamic replay)
DEFECT_CATEGORIES = {
    "temp-escape": {
        "codes": ("temp-cross-clause",), "severity": "error",
        "must_fault": False, "dynamic": "clean"},
    "uninit-read": {
        "codes": ("uninit-read",), "severity": "warning",
        "must_fault": False, "dynamic": "clean"},
    "oob-load": {
        "codes": ("oob-access",), "severity": "error",
        "must_fault": True, "dynamic": "fault"},
    "oob-store-mapped": {
        "codes": ("oob-access",), "severity": "error",
        "must_fault": False, "dynamic": "clean"},
    "race-store": {
        "codes": ("race-ww",), "severity": "error",
        "must_fault": False, "dynamic": "racy"},
    "infinite-loop": {
        "codes": ("no-termination",), "severity": "error",
        "must_fault": False, "dynamic": "hang"},
    "const-oob": {
        "codes": ("const-oob",), "severity": "error",
        "must_fault": False, "dynamic": "crash"},
    "ldu-oob": {
        "codes": ("ldu-imm-oob",), "severity": "error",
        "must_fault": False, "dynamic": "crash"},
    "barrier-divergence": {
        "codes": ("barrier-divergence",), "severity": "warning",
        "must_fault": False, "dynamic": "clean"},
    "unreachable": {
        "codes": ("unreachable-clause",), "severity": "warning",
        "must_fault": False, "dynamic": "clean"},
    "local-oob": {
        "codes": ("local-oob",), "severity": "error",
        "must_fault": False, "dynamic": "crash"},
    "dead-write": {
        "codes": ("dead-write",), "severity": "note",
        "must_fault": False, "dynamic": "clean"},
}

# The standard prologue occupies clauses 0-1, so planted bodies start at
# clause index 2 (branch/jump targets below are absolute clause indices).
_DEFECT_BODY_BASE = 2


def _defect_temp_escape(rng):
    a = _ClauseBuilder(rng)
    a.slots = [Instruction(Op.MOV, dst=TEMP_BASE, srca=8)]
    b = _ClauseBuilder(rng)
    b.slots = [Instruction(Op.IADD, dst=0, srca=TEMP_BASE, srcb=9)]
    return [a.pack(), b.pack(tail=Tail.END)]


def _defect_uninit_read(rng):
    a = _ClauseBuilder(rng)
    a.slots = [Instruction(Op.IADD, dst=0, srca=33, srcb=34)]
    return [a.pack(tail=Tail.END)]


def _defect_oob_load(rng):
    # 0x40 is below every mapped region: the whole interval misses the
    # memory map, so the claim is must-fault (engines must raise).
    a = _ClauseBuilder(rng)
    a.slots = [
        Instruction(Op.MOV, dst=20, srca=a.const(0x40)),
        Instruction(Op.LD, dst=0, srca=20, flags=0),
    ]
    return [a.pack(tail=Tail.END)]


def _defect_oob_store_mapped(rng):
    # Escapes the output slice into the (mapped) atomics region: no fault
    # dynamically, every engine corrupts the same words — exactly the
    # silent-corruption class only the static bounds check can see.
    a = _ClauseBuilder(rng)
    a.slots = [
        Instruction(Op.IADD, dst=20, srca=REG_OUT_BASE,
                    srcb=a.const(0x1400)),
        Instruction(Op.ST, srca=20, srcb=8, flags=0),
    ]
    return [a.pack(tail=Tail.END)]


def _defect_race_store(rng):
    # Non-atomic store through the *raw* atomics base (group-uniform
    # address): every thread of the group hits the same word.
    a = _ClauseBuilder(rng)
    a.slots = [
        Instruction(Op.LDU, dst=20, imm=UNIFORM_ARG_BASE + 2),
        Instruction(Op.ST, srca=20, srcb=8, flags=0),
    ]
    return [a.pack(tail=Tail.END)]


def _defect_infinite_loop(rng):
    a = _ClauseBuilder(rng)
    a.slots = [Instruction(Op.IADD, dst=0, srca=0, srcb=8)]
    return [a.pack(tail=Tail.JUMP, target=_DEFECT_BODY_BASE)]


def _defect_const_oob(rng):
    a = _ClauseBuilder(rng)
    a.slots = [Instruction(Op.IADD, dst=0, srca=128 + 5, srcb=8)]
    return [a.pack(tail=Tail.END)]  # empty pool: c5 is out of range


def _defect_ldu_oob(rng):
    a = _ClauseBuilder(rng)
    a.slots = [Instruction(Op.LDU, dst=0, imm=UNIFORM_COUNT + 9)]
    return [a.pack(tail=Tail.END)]


def _defect_barrier_divergence(rng):
    a = _ClauseBuilder(rng)
    a.slots = [Instruction(Op.MOV, dst=0, srca=8)]
    barrier = _ClauseBuilder(rng)
    c = _ClauseBuilder(rng)
    c.slots = [Instruction(Op.MOV, dst=1, srca=9)]
    return [
        a.pack(tail=Tail.BRANCH, cond_reg=REG_LANE,
               target=_DEFECT_BODY_BASE + 2),
        barrier.pack(tail=Tail.BARRIER),
        c.pack(tail=Tail.END),
    ]


def _defect_unreachable(rng):
    a = _ClauseBuilder(rng)
    a.slots = [Instruction(Op.MOV, dst=0, srca=8)]
    orphan = _ClauseBuilder(rng)
    orphan.slots = [Instruction(Op.MOV, dst=1, srca=9)]
    return [a.pack(tail=Tail.END), orphan.pack(tail=Tail.END)]


def _defect_local_oob(rng):
    a = _ClauseBuilder(rng)
    a.slots = [
        Instruction(Op.IAND, dst=20, srca=8, srcb=a.const(0x7FFC)),
        Instruction(Op.IADD, dst=20, srca=20, srcb=REG_LOCAL_BASE),
        Instruction(Op.LD, dst=0, srca=20, flags=MEM_SPACE_LOCAL),
    ]
    return [a.pack(tail=Tail.END)]


def _defect_dead_write(rng):
    a = _ClauseBuilder(rng)
    a.slots = [
        Instruction(Op.MOV, dst=5, srca=8),
        Instruction(Op.MOV, dst=5, srca=9),
    ]
    b = _ClauseBuilder(rng)
    b.slots = [Instruction(Op.IADD, dst=6, srca=5, srcb=9)]
    return [a.pack(), b.pack(tail=Tail.END)]


_DEFECT_BUILDERS = {
    "temp-escape": _defect_temp_escape,
    "uninit-read": _defect_uninit_read,
    "oob-load": _defect_oob_load,
    "oob-store-mapped": _defect_oob_store_mapped,
    "race-store": _defect_race_store,
    "infinite-loop": _defect_infinite_loop,
    "const-oob": _defect_const_oob,
    "ldu-oob": _defect_ldu_oob,
    "barrier-divergence": _defect_barrier_divergence,
    "unreachable": _defect_unreachable,
    "local-oob": _defect_local_oob,
    "dead-write": _defect_dead_write,
}


def generate_defect_case(seed, category):
    """A launch-ready case with exactly one planted defect.

    The planted body rides on the standard prologue, so the runner's
    memory contract applies unchanged; ``DEFECT_CATEGORIES[category]``
    records what the verifier must report and how the program behaves
    dynamically.
    """
    if category not in _DEFECT_BUILDERS:
        raise ValueError(f"unknown defect category {category!r}")
    gen = ProgramGenerator(seed)
    rng = gen.rng
    local, groups = 8, 2
    clauses = list(gen._prologue(rng))
    assert len(clauses) == _DEFECT_BODY_BASE
    clauses.extend(_DEFECT_BUILDERS[category](rng))
    program = Program(clauses=clauses,
                      meta={"generator_seed": seed, "defect": category})
    in_words = np.array(
        [gen._data_word(rng) for _ in range(IN_BYTES // 4)],
        dtype=np.uint32)
    return GeneratedCase(
        program=program,
        global_size=(local * groups, 1, 1),
        local_size=(local, 1, 1),
        in_words=in_words,
        extra_uniforms=(rng.getrandbits(32), rng.getrandbits(32)),
        seed=seed,
        label=f"defect[{category},seed={seed}]",
    )


# -- cost-analysis stress generation -------------------------------------------

# category -> what the cost pass must conclude about the case:
#   trips:    expected max back-edge count of the planted loop under the
#             *launch* context (None = no loop planted)
#   symbolic: the bound resolves only at launch (compile/generation-time
#             analysis must report the loop as unbounded)
#   patterns: access-pattern classes the planted accesses must include
_STRESS_UNIFORM_LIMIT = 24  # extra-uniform loop limit (slot 13)

STRESS_CATEGORIES = {
    "loop-const": {"trips": 12, "symbolic": False, "patterns": ()},
    "loop-uniform": {"trips": _STRESS_UNIFORM_LIMIT, "symbolic": True,
                     "patterns": ()},
    "loop-shr": {"trips": 11, "symbolic": False, "patterns": ()},
    "strided": {"trips": None, "symbolic": False,
                "patterns": ("strided", "contiguous")},
    "gather": {"trips": None, "symbolic": False, "patterns": ("gather",)},
}

# planted bodies ride on the standard 2-clause prologue
_STRESS_BODY_BASE = 2


def _stress_loop_clauses(rng, init, limit_const=None, limit_slot=None,
                         update_op=Op.IADD, update_amount=1,
                         cmp_mode=CmpMode.ILT):
    """A canonical counted loop: setup / head / body+latch / exit.

    ``r0`` is the induction register, ``r1`` accumulates loads from the
    input window (loop-invariant-free so no engine may hoist anything),
    and the exit clause stores the accumulator to the private out slice.
    """
    setup = _ClauseBuilder(rng)
    setup.slots = [
        Instruction(Op.MOV, dst=0, srca=setup.const(init)),
        Instruction(Op.MOV, dst=1, srca=setup.const(0)),
    ]
    if limit_slot is not None:
        setup.slots.append(Instruction(Op.LDU, dst=4, imm=limit_slot))

    head = _ClauseBuilder(rng)
    limit = head.const(limit_const) if limit_slot is None else 4
    head.slots = [
        Instruction(Op.CMP, dst=2, srca=0, srcb=limit, flags=int(cmp_mode)),
    ]

    body = _ClauseBuilder(rng)
    body.slots = [
        Instruction(Op.ISHL, dst=REG_ADDR_A, srca=0, srcb=body.const(2)),
        Instruction(Op.IAND, dst=REG_ADDR_A, srca=REG_ADDR_A,
                    srcb=body.const(IN_BYTES - 4)),
        Instruction(Op.IADD, dst=REG_ADDR_A, srca=REG_ADDR_A,
                    srcb=REG_IN_BASE),
        Instruction(Op.LD, dst=3, srca=REG_ADDR_A, flags=0),
        Instruction(Op.IXOR, dst=1, srca=1, srcb=3),
        Instruction(update_op, dst=0, srca=0,
                    srcb=body.const(update_amount)),
    ]

    exit_clause = _ClauseBuilder(rng)
    exit_clause.slots = [
        Instruction(Op.ST, srca=REG_OUT_BASE, srcb=1, flags=0),
    ]
    return [
        setup.pack(),
        head.pack(tail=Tail.BRANCH_Z, cond_reg=2,
                  target=_STRESS_BODY_BASE + 3),
        body.pack(tail=Tail.JUMP, target=_STRESS_BODY_BASE + 1),
        exit_clause.pack(tail=Tail.END),
    ]


def _stress_loop_const(rng):
    return _stress_loop_clauses(rng, init=0, limit_const=12)


def _stress_loop_uniform(rng):
    return _stress_loop_clauses(rng, init=0,
                                limit_slot=UNIFORM_ARG_BASE + 3)


def _stress_loop_shr(rng):
    # geometric: r0 halves twice per trip from 2^20 until it drains —
    # 21 significant bits / 2 bits per shift -> 11 back edges
    return _stress_loop_clauses(rng, init=1 << 20, limit_const=0,
                                update_op=Op.ISHR, update_amount=2,
                                cmp_mode=CmpMode.IGT)


def _stress_strided(rng):
    # one strided (gid*8) and one contiguous (gid*4) input load; both
    # masked into the window so no thread can escape the region
    a = _ClauseBuilder(rng)
    a.slots = [
        Instruction(Op.ISHL, dst=REG_ADDR_A, srca=REG_GLOBAL_ID,
                    srcb=a.const(3)),
        Instruction(Op.IADD, dst=REG_ADDR_A, srca=REG_ADDR_A,
                    srcb=REG_IN_BASE),
        Instruction(Op.LD, dst=3, srca=REG_ADDR_A, flags=0),
        Instruction(Op.ISHL, dst=REG_ADDR_B, srca=REG_GLOBAL_ID,
                    srcb=a.const(2)),
        Instruction(Op.IADD, dst=REG_ADDR_B, srca=REG_ADDR_B,
                    srcb=REG_IN_BASE),
        Instruction(Op.LD, dst=4, srca=REG_ADDR_B, flags=0),
        Instruction(Op.IXOR, dst=1, srca=3, srcb=4),
    ]
    b = _ClauseBuilder(rng)
    b.slots = [
        Instruction(Op.ST, srca=REG_OUT_BASE, srcb=1, flags=0),
    ]
    return [a.pack(), b.pack(tail=Tail.END)]


def _stress_gather(rng):
    # the address comes from loaded data (r8, seeded by the prologue):
    # statically unanalyzable, masked into the window dynamically
    a = _ClauseBuilder(rng)
    a.slots = [
        Instruction(Op.IAND, dst=REG_ADDR_A, srca=8,
                    srcb=a.const(IN_BYTES - 4)),
        Instruction(Op.IADD, dst=REG_ADDR_A, srca=REG_ADDR_A,
                    srcb=REG_IN_BASE),
        Instruction(Op.LD, dst=3, srca=REG_ADDR_A, flags=0),
    ]
    b = _ClauseBuilder(rng)
    b.slots = [
        Instruction(Op.ST, srca=REG_OUT_BASE, srcb=3, flags=0),
    ]
    return [a.pack(), b.pack(tail=Tail.END)]


_STRESS_BUILDERS = {
    "loop-const": _stress_loop_const,
    "loop-uniform": _stress_loop_uniform,
    "loop-shr": _stress_loop_shr,
    "strided": _stress_strided,
    "gather": _stress_gather,
}


def generate_stress_case(seed, category):
    """A launch-ready case stressing the static cost analysis.

    Unlike :func:`generate_defect_case` these programs are verifier-clean
    and race-free (loops accumulate into per-thread registers and store
    to the private out slice), so the full N-way differential runner can
    execute them; ``STRESS_CATEGORIES[category]`` records the loop/access
    facts the analysis must reproduce.
    """
    if category not in _STRESS_BUILDERS:
        raise ValueError(f"unknown stress category {category!r}")
    gen = ProgramGenerator(seed)
    rng = gen.rng
    local, groups = 8, 2
    clauses = list(gen._prologue(rng))
    assert len(clauses) == _STRESS_BODY_BASE
    clauses.extend(_STRESS_BUILDERS[category](rng))
    program = Program(clauses=clauses,
                      meta={"generator_seed": seed, "stress": category})
    in_words = np.array(
        [gen._data_word(rng) for _ in range(IN_BYTES // 4)],
        dtype=np.uint32)
    return GeneratedCase(
        program=program,
        global_size=(local * groups, 1, 1),
        local_size=(local, 1, 1),
        in_words=in_words,
        extra_uniforms=(_STRESS_UNIFORM_LIMIT, rng.getrandbits(32)),
        seed=seed,
        label=f"stress[{category},seed={seed}]",
    )
