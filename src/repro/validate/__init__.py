"""Validation tooling (the paper's Section V-A methodology).

The paper validates its GPU model two ways:

1. **Instruction tracing**: "We executed selected kernels on both
   simulators using an instruction tracing mode, where individual
   instructions and their effects are observable." Here,
   :class:`InstructionTracer` records every instruction's destination value
   per thread on both the full-system quad-warp engine and the scalar
   baseline engine, and :func:`compare_traces` diffs them — any semantic
   divergence between the two independent implementations is pinpointed to
   the first differing instruction of a specific thread.

2. **Fuzzing**: "we employed fuzzing techniques for rigorous instruction
   testing, covering an extensive range of inputs."
   :func:`execute_instruction_both` runs a single arbitrary instruction
   with arbitrary register inputs through both engines for
   hypothesis-driven differential testing (see tests/test_validation.py).

Beyond the paper, the **conformance subsystem** scales this methodology to
whole programs: :class:`ProgramGenerator` emits valid random multi-clause
kernels with coverage tracking, :class:`DifferentialRunner` cross-executes
them on up to four engines (interpreter, quad fast path, JIT, scalar
baseline), :func:`minimize_case` shrinks failures, and
:func:`run_conformance` ties it together with a replayable reproducer
corpus (``tests/corpus/``).
"""

from repro.validate.trace import (
    InstructionTracer,
    TraceMismatch,
    compare_traces,
    trace_kernel_both,
)
from repro.validate.fuzz import execute_instruction_both
from repro.validate.progen import CoverageTracker, ProgramGenerator
from repro.validate.runner import (
    ENGINES,
    DiffCase,
    DifferentialRunner,
    generated_case_to_diff,
    make_kernel_case,
)
from repro.validate.minimize import make_predicate, minimize_case
from repro.validate.conformance import (
    ConformanceReport,
    replay_directory,
    run_conformance,
)

__all__ = [
    "InstructionTracer",
    "TraceMismatch",
    "compare_traces",
    "trace_kernel_both",
    "execute_instruction_both",
    "CoverageTracker",
    "ProgramGenerator",
    "ENGINES",
    "DiffCase",
    "DifferentialRunner",
    "generated_case_to_diff",
    "make_kernel_case",
    "make_predicate",
    "minimize_case",
    "ConformanceReport",
    "replay_directory",
    "run_conformance",
]
