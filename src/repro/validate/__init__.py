"""Validation tooling (the paper's Section V-A methodology).

The paper validates its GPU model two ways:

1. **Instruction tracing**: "We executed selected kernels on both
   simulators using an instruction tracing mode, where individual
   instructions and their effects are observable." Here,
   :class:`InstructionTracer` records every instruction's destination value
   per thread on both the full-system quad-warp engine and the scalar
   baseline engine, and :func:`compare_traces` diffs them — any semantic
   divergence between the two independent implementations is pinpointed to
   the first differing instruction of a specific thread.

2. **Fuzzing**: "we employed fuzzing techniques for rigorous instruction
   testing, covering an extensive range of inputs."
   :func:`execute_instruction_both` runs a single arbitrary instruction
   with arbitrary register inputs through both engines for
   hypothesis-driven differential testing (see tests/test_validation.py).
"""

from repro.validate.trace import (
    InstructionTracer,
    TraceMismatch,
    compare_traces,
    trace_kernel_both,
)
from repro.validate.fuzz import execute_instruction_both

__all__ = [
    "InstructionTracer",
    "TraceMismatch",
    "compare_traces",
    "trace_kernel_both",
    "execute_instruction_both",
]
