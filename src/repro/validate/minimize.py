"""Automatic failure minimization for conformance cases.

Given a mismatching :class:`~repro.validate.runner.DiffCase` and a
predicate ("does this candidate still fail the same way?"), greedily
shrinks the program to a local fixpoint:

1. drop whole clauses (retargeting branches across the gap),
2. drop whole tuples,
3. replace individual slots with NOP,
4. simplify clause tails (branch/jump/barrier -> fallthrough),
5. simplify source operands (constants/temps/registers -> r0).

Every transformation is validated structurally before the predicate runs,
and the predicate is expected to require *the same mismatch category* as
the original failure — a candidate that merely crashes differently (e.g.
an out-of-bounds address after NOPing an address computation) is rejected,
so minimization cannot wander onto an unrelated failure.
"""

from dataclasses import dataclass, replace as _dc_replace

from repro.gpu.isa import (
    NOP_INSTR,
    OPERAND_NONE,
    Clause,
    Op,
    Program,
    Tail,
)


def _clone_program(program):
    return Program(
        clauses=[
            Clause(tuples=list(clause.tuples),
                   constants=list(clause.constants),
                   tail=clause.tail, cond_reg=clause.cond_reg,
                   target=clause.target)
            for clause in program.clauses
        ],
        meta=dict(program.meta),
    )


def _drop_clause(program, index):
    """Remove clause *index*, retargeting later references."""
    if len(program.clauses) <= 1:
        return None
    clone = _clone_program(program)
    del clone.clauses[index]
    last = len(clone.clauses) - 1
    for position, clause in enumerate(clone.clauses):
        if clause.tail in (Tail.JUMP, Tail.BRANCH, Tail.BRANCH_Z):
            if clause.target > index:
                clause.target -= 1
            clause.target = min(clause.target, last)
            if clause.target <= position:
                # generated programs are forward-branching only (that is
                # the termination guarantee); a branch whose target no
                # longer lies ahead would loop, so defuse it
                clause.tail = Tail.FALLTHROUGH if position < last \
                    else Tail.END
                clause.cond_reg = 0
                clause.target = 0
    final = clone.clauses[-1]
    if final.tail in (Tail.FALLTHROUGH, Tail.BARRIER):
        final.tail = Tail.END
    return clone


def _drop_tuple(program, clause_index, tuple_index):
    clause = program.clauses[clause_index]
    if len(clause.tuples) <= 1:
        return None
    clone = _clone_program(program)
    del clone.clauses[clause_index].tuples[tuple_index]
    return clone


def _nop_slot(program, clause_index, tuple_index, slot):
    clause = program.clauses[clause_index]
    fma, add = clause.tuples[tuple_index]
    if (fma if slot == 0 else add).op is Op.NOP:
        return None
    clone = _clone_program(program)
    pair = (NOP_INSTR, add) if slot == 0 else (fma, NOP_INSTR)
    clone.clauses[clause_index].tuples[tuple_index] = pair
    return clone


def _simplify_tail(program, clause_index):
    clause = program.clauses[clause_index]
    if clause_index == len(program.clauses) - 1:
        return None
    if clause.tail in (Tail.FALLTHROUGH, Tail.END):
        return None
    clone = _clone_program(program)
    target = clone.clauses[clause_index]
    target.tail = Tail.FALLTHROUGH
    target.cond_reg = 0
    target.target = 0
    return clone


def _simplify_operand(program, clause_index, tuple_index, slot, which):
    clause = program.clauses[clause_index]
    instr = clause.tuples[tuple_index][slot]
    operand = getattr(instr, which)
    if operand in (OPERAND_NONE, 0):
        return None
    if instr.op in (Op.LD, Op.ST, Op.ATOM) and which == "srca":
        return None  # never touch a memory op's address operand
    clone = _clone_program(program)
    pair = list(clone.clauses[clause_index].tuples[tuple_index])
    pair[slot] = _dc_replace(instr, **{which: 0})
    clone.clauses[clause_index].tuples[tuple_index] = tuple(pair)
    return clone


def _candidates(program):
    """Yield candidate programs in decreasing order of reduction power."""
    n = len(program.clauses)
    for index in reversed(range(n)):
        yield _drop_clause(program, index)
    for clause_index in range(len(program.clauses)):
        for tuple_index in reversed(
                range(len(program.clauses[clause_index].tuples))):
            yield _drop_tuple(program, clause_index, tuple_index)
    for clause_index in range(len(program.clauses)):
        for tuple_index in range(len(program.clauses[clause_index].tuples)):
            yield _nop_slot(program, clause_index, tuple_index, 0)
            yield _nop_slot(program, clause_index, tuple_index, 1)
    for clause_index in range(len(program.clauses)):
        yield _simplify_tail(program, clause_index)
    for clause_index in range(len(program.clauses)):
        for tuple_index in range(len(program.clauses[clause_index].tuples)):
            for slot in (0, 1):
                for which in ("srca", "srcb", "srcc"):
                    yield _simplify_operand(program, clause_index,
                                            tuple_index, slot, which)


@dataclass
class MinimizeResult:
    case: object          # the minimized DiffCase
    evaluations: int      # predicate invocations spent
    rounds: int           # fixpoint passes


def minimize_case(case, predicate, max_evaluations=500):
    """Greedily shrink *case* while ``predicate(candidate)`` holds.

    The predicate must return True when the candidate still exhibits the
    original failure (same mismatch category). Runs transformation passes
    to a fixpoint or until the evaluation budget is exhausted; the original
    case is returned unchanged if nothing can be removed.
    """
    current = case
    evaluations = 0
    rounds = 0
    changed = True
    while changed and evaluations < max_evaluations:
        changed = False
        rounds += 1
        for candidate_program in _candidates(current.program):
            if candidate_program is None:
                continue
            try:
                candidate_program.validate()
            except ValueError:
                continue
            candidate = current.with_program(candidate_program)
            evaluations += 1
            if predicate(candidate):
                current = candidate
                changed = True
                break  # restart passes on the smaller program
            if evaluations >= max_evaluations:
                break
    return MinimizeResult(case=current, evaluations=evaluations,
                          rounds=rounds)


def mismatch_signature(mismatches):
    """Category signature used to keep minimization on the original bug."""
    return frozenset(m.kind for m in mismatches)


def make_predicate(runner, original_mismatches):
    """Standard predicate: the candidate must reproduce at least one
    mismatch of a category seen in the original failure."""
    wanted = mismatch_signature(original_mismatches)

    def predicate(candidate):
        _results, mismatches = runner.run_case(candidate)
        return bool(wanted & mismatch_signature(mismatches))

    return predicate
