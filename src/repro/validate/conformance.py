"""Conformance campaign orchestration.

``run_conformance`` drives a coverage-guided fuzzing campaign: a
deterministic :class:`~repro.validate.progen.ProgramGenerator` stream is
executed case-by-case through the N-way
:class:`~repro.validate.runner.DifferentialRunner`; any mismatching case is
automatically minimized and written to a replayable reproducer corpus.

``replay_directory`` re-runs a committed corpus (tests/corpus/) and is what
the tier-1 suite calls.
"""

import os
from dataclasses import dataclass, field

from repro.gpu.verify import verify_program
from repro.validate.corpus import case_to_dict, replay_corpus, save_entry
from repro.validate.minimize import make_predicate, minimize_case
from repro.validate.progen import CoverageTracker, ProgramGenerator
from repro.validate.runner import (
    ENGINES,
    DifferentialRunner,
    Mismatch,
    generated_case_to_diff,
    verify_context_for_case,
)


@dataclass
class CaseFailure:
    """One mismatching case, before and after minimization."""

    name: str
    seed: int
    index: int
    mismatches: list
    minimized_case: object = None
    minimized_mismatches: list = None
    evaluations: int = 0
    reproducer_path: str = None

    def summary(self):
        head = str(self.mismatches[0]) if self.mismatches else "?"
        return f"{self.name}: {head}"


@dataclass
class ConformanceReport:
    seed: int
    budget: int
    engines: tuple
    cases_run: int = 0
    failures: list = field(default_factory=list)
    coverage: CoverageTracker = None

    @property
    def ok(self):
        return not self.failures

    def lines(self):
        out = [
            f"conformance: {self.cases_run} programs, seed {self.seed}, "
            f"engines {'+'.join(self.engines)}",
            f"mismatching cases: {len(self.failures)}",
        ]
        out.extend(self.coverage.report_lines())
        for failure in self.failures:
            out.append(f"  FAIL {failure.summary()}")
            if failure.minimized_case is not None:
                out.append(
                    f"       minimized to "
                    f"{len(failure.minimized_case.program.clauses)} clauses "
                    f"in {failure.evaluations} evaluations")
            if failure.reproducer_path:
                out.append(f"       reproducer: {failure.reproducer_path}")
        return out


def run_conformance(seed, budget, engines=ENGINES, minimize=True,
                    corpus_out=None, progress=None,
                    max_minimize_evaluations=300, verify=True):
    """Run a *budget*-program campaign; returns a :class:`ConformanceReport`.

    Args:
        seed: generator stream seed (campaigns are fully deterministic).
        budget: number of programs to generate and cross-execute.
        engines: engine subset for the differential runner.
        minimize: shrink each mismatching case to a local fixpoint.
        corpus_out: directory to write full-form reproducer entries into
            (created on first failure; nothing is written on a clean run).
        progress: optional callable ``progress(done, budget, failures)``.
        verify: also run the static verifier with the full launch context
            over every case; error-severity findings on generated (clean
            by construction) programs are campaign failures, with the
            same seed-replayable reproducers as dynamic mismatches.
    """
    runner = DifferentialRunner(engines)
    generator = ProgramGenerator(seed)
    report = ConformanceReport(seed=seed, budget=budget,
                               engines=runner.engines,
                               coverage=generator.coverage)
    for _ in range(budget):
        generated = generator.generate()
        case = generated_case_to_diff(generated)
        if verify:
            vreport = verify_program(generated.program,
                                     verify_context_for_case(generated))
            if vreport.errors:
                failure = CaseFailure(
                    name=f"{case.name} [verifier]",
                    seed=generated.seed, index=generated.index,
                    mismatches=[Mismatch("verifier", ("static",), str(f))
                                for f in vreport.errors])
                if corpus_out:
                    failure.reproducer_path = _write_reproducer(
                        corpus_out, failure)
                report.failures.append(failure)
        _results, mismatches = runner.run_case(case)
        report.cases_run += 1
        if mismatches:
            failure = CaseFailure(
                name=case.name, seed=generated.seed, index=generated.index,
                mismatches=mismatches)
            if minimize:
                # minimize against only the engines implicated in the
                # mismatch (plus the reference) — candidate evaluation is
                # the minimizer's hot path
                involved = {e for m in mismatches for e in m.engines}
                involved.add(runner.engines[0])
                subset = tuple(e for e in runner.engines if e in involved)
                mini_runner = runner if len(subset) < 2 \
                    else DifferentialRunner(subset)
                predicate = make_predicate(mini_runner, mismatches)
                shrunk = minimize_case(
                    case, predicate,
                    max_evaluations=max_minimize_evaluations)
                failure.minimized_case = shrunk.case
                failure.evaluations = shrunk.evaluations
                _res, failure.minimized_mismatches = \
                    runner.run_case(shrunk.case)
            if corpus_out:
                failure.reproducer_path = _write_reproducer(
                    corpus_out, failure)
            report.failures.append(failure)
        if progress is not None:
            progress(report.cases_run, budget, len(report.failures))
    return report


def _write_reproducer(directory, failure):
    os.makedirs(directory, exist_ok=True)
    case = failure.minimized_case \
        if failure.minimized_case is not None else None
    mismatches = failure.minimized_mismatches \
        if case is not None else failure.mismatches
    if case is None:
        # minimization disabled: persist the original case
        from repro.validate.corpus import seed_entry

        entry = seed_entry(failure.seed, failure.index,
                           name=failure.name, expect="mismatch",
                           notes="; ".join(str(m) for m in failure.mismatches))
        path = os.path.join(
            directory, f"repro-seed{failure.seed}-i{failure.index}.json")
        save_entry(path, entry)
        return path
    entry = case_to_dict(
        case, expect="mismatch",
        notes="; ".join(str(m) for m in (mismatches or failure.mismatches)))
    path = os.path.join(
        directory, f"repro-seed{failure.seed}-i{failure.index}.json")
    save_entry(path, entry)
    return path


def farm_case_specs(seeds, budget, engines=None, minimize=False,
                    verify=True):
    """Case-provider interface for the simulation farm: one differential
    fuzzing chunk per generator seed.

    Each spec is a plain picklable dict executed in a farm worker by
    :func:`run_farm_case`; seeds are independent generator streams, so
    any subset of cases can run on any worker in any order.
    """
    engine_list = list(engines or ENGINES)
    for engine in engine_list:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}")
    for seed in seeds:
        yield {
            "seed": int(seed),
            "budget": int(budget),
            "engines": engine_list,
            "minimize": bool(minimize),
            "verify": bool(verify),
        }


def run_farm_case(spec, artifact_dir=None):
    """Execute one :func:`farm_case_specs` spec (inside a farm worker).

    Returns ``(ok, detail, counters, artifacts)`` — all plain values, so
    the outcome crosses the worker process boundary and lands in the
    deterministic aggregate report unchanged.
    """
    report = run_conformance(
        seed=spec["seed"], budget=spec["budget"],
        engines=tuple(spec.get("engines") or ENGINES),
        minimize=spec.get("minimize", False),
        corpus_out=artifact_dir, verify=spec.get("verify", True))
    counters = {
        "programs": report.cases_run,
        "failures": len(report.failures),
        "coverage_hit": report.coverage.covered,
        "coverage_total": report.coverage.total,
    }
    detail = "; ".join(f.summary() for f in report.failures[:3])
    artifacts = sorted(os.path.basename(f.reproducer_path)
                       for f in report.failures if f.reproducer_path)
    return report.ok, detail, counters, artifacts


def replay_directory(directory, engines=ENGINES, expect="match"):
    """Replay a corpus directory; returns (outcomes, failed) where *failed*
    lists the entries whose result contradicts their ``expect`` field."""
    runner = DifferentialRunner(engines)
    outcomes = replay_corpus(directory, runner, expect=expect)
    failed = []
    for path, name, mismatches in outcomes:
        bad = bool(mismatches) if expect == "match" else not mismatches
        if bad:
            failed.append((path, name, mismatches))
    return outcomes, failed
