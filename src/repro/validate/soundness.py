"""Differential soundness gate for the static cost analysis.

The cost pass claims *sound upper bounds* on two dynamic golden
counters — clause issues and data pages touched. This module holds
those claims against actual executions, across every program source the
project ships:

- **workloads** — each :data:`repro.kernels.WORKLOADS` entry runs on the
  full platform with the CL runtime's soundness recorder enabled
  (``Context.enable_analysis_log``), which evaluates the bounds for the
  exact launch (encoded uniform image, bound buffers, mapped regions)
  and records them next to the observed ``JobStats``/MMU counters;
- **SLAM** — the KFusion pipeline's kernels, the same way;
- **generated programs** — progen streams, stress cases and corpus
  reproducers run through the :class:`DifferentialRunner` reference
  interpreter with a fully pinned :class:`VerifyContext`.

Every record compares ``observed <= bound`` for both counters; a
violation is a hard test failure. Finite, non-trivial bounds also get a
*tightness ratio* (``bound / observed``, 1.0 = exact) so the report
tracks not just soundness but how much headroom the analysis leaves.
``build_report`` aggregates everything into the ``analysis_report.json``
document CI uploads.
"""

import json

from repro.gpu.verify import VerifyContext, verify_program

# Pass selection shared with repro.gpu.verify.analyze (kept literal so
# this module never imports the compiler stack it does not need).
_PASSES = ("structural", "cost")

REPORT_SCHEMA = "repro-soundness-report/1"


# -- generated-case checks -----------------------------------------------------


def diffcase_context(case):
    """Fully pinned verifier context for an arbitrary :class:`DiffCase`.

    Every uniform slot (NDRange words plus raw argument words) carries
    its concrete value and the mapped ranges mirror the runner's page
    tables, so the analysis runs with exactly the knowledge the engines
    execute under. Buffer classification is unnecessary: with all slots
    exact the address intervals are concrete.
    """
    from repro.mem import PAGE_SIZE
    from repro.validate.runner import _pages, build_uniforms

    g, l = case.global_size, case.local_size
    uniforms = build_uniforms(case)
    ctx = VerifyContext(
        name=case.name,
        uniform_count=len(uniforms),
        uniform_values={slot: int(w) for slot, w in enumerate(uniforms)},
        local_bytes=case.local_bytes,
        mapped_ranges=sorted(
            (va, va + _pages(max(words.nbytes, 1)) * PAGE_SIZE)
            for _name, va, words in case.regions),
        threads=g[0] * g[1] * g[2],
        threads_per_group=l[0] * l[1] * l[2],
    )
    return ctx


def analyze_case(case):
    """Cost-analyze a DiffCase; returns (summary, bounds) or (None, None)
    when structural errors block the analysis."""
    ctx = diffcase_context(case)
    report = verify_program(case.program, ctx, passes=_PASSES)
    summary = report.facts.get("cost")
    if summary is None:
        return None, None
    return summary, summary.evaluate(ctx)


def check_case(case, runner=None, label=None):
    """Run one DiffCase on the reference interpreter and compare the
    observed counters against the static bounds; returns a record dict
    (see :func:`make_record`)."""
    from repro.validate.runner import DifferentialRunner

    summary, bounds = analyze_case(case)
    if bounds is None:
        return make_record(label or case.name, None, None, None, None,
                           error="analysis blocked by structural errors")
    if runner is None:
        runner = DifferentialRunner(("interp",), trace=False)
    results, _mismatches = runner.run_case(case)
    result = results["interp"]
    if result.error is not None:
        return make_record(label or case.name, bounds.total_issues,
                           bounds.pages, None, None, error=result.error)
    observed_issues = int(result.stats["gpu.job.clauses_executed"])
    observed_pages = len(result.mmu["pages_accessed"])
    return make_record(label or case.name, bounds.total_issues,
                       bounds.pages, observed_issues, observed_pages)


def make_record(label, bound_issues, bound_pages, observed_issues,
                observed_pages, error=""):
    """One soundness comparison in the report's record shape."""
    record = {
        "label": label,
        "bound_issues": bound_issues,
        "bound_pages": bound_pages,
        "observed_issues": observed_issues,
        "observed_pages": observed_pages,
        "error": error,
    }
    record["ok"] = not error and _dominates(record)
    return record


def _dominates(record):
    for bound, observed in ((record["bound_issues"],
                             record["observed_issues"]),
                            (record["bound_pages"],
                             record["observed_pages"])):
        if observed is None:
            return False
        if bound is not None and observed > bound:
            return False
    return True


# -- full-platform checks ------------------------------------------------------


def workload_records(names=None, version=None):
    """Run workloads with the runtime recorder; returns (records, all
    verified). A failed output verification poisons the records (a wrong
    simulation would make the dominance check meaningless)."""
    from repro.cl import Context
    from repro.kernels import WORKLOADS, get_workload

    records = []
    verified = True
    for name in names or sorted(WORKLOADS):
        context = Context()
        log = context.enable_analysis_log()
        result = get_workload(name).run(context=context, version=version)
        verified = verified and result.verified
        for launch in log:
            records.append(make_record(
                f"workload:{name}:{launch['kernel']}",
                launch["bound_issues"], launch["bound_pages"],
                launch["observed_issues"], launch["observed_pages"],
                error="" if launch["ok"] else "analysis blocked"))
    return records, verified


def slam_records(config="express", version=None):
    """Run the KFusion SLAM pipeline with the recorder; returns records."""
    from repro.cl import Context
    from repro.slam.pipeline import KFusionPipeline

    context = Context()
    log = context.enable_analysis_log()
    KFusionPipeline(config=config).run_gpu(context=context, version=version)
    return [make_record(f"slam:{launch['kernel']}",
                        launch["bound_issues"], launch["bound_pages"],
                        launch["observed_issues"], launch["observed_pages"],
                        error="" if launch["ok"] else "analysis blocked")
            for launch in log]


def progen_records(seed, count, runner=None):
    """Check *count* generated programs from one progen stream."""
    from repro.validate.progen import ProgramGenerator
    from repro.validate.runner import generated_case_to_diff

    generator = ProgramGenerator(seed)
    records = []
    for _ in range(count):
        case = generated_case_to_diff(generator.generate())
        records.append(check_case(case, runner=runner,
                                  label=f"progen:{case.name}"))
    return records


def stress_records(seed, runner=None, categories=None):
    """Check one stress case per progen stress category."""
    from repro.validate.progen import STRESS_CATEGORIES, generate_stress_case
    from repro.validate.runner import generated_case_to_diff

    records = []
    for category in categories or STRESS_CATEGORIES:
        case = generated_case_to_diff(generate_stress_case(seed, category))
        records.append(check_case(case, runner=runner,
                                  label=f"stress:{category}"))
    return records


def corpus_records(directory, runner=None):
    """Check every corpus entry (reproducers included: soundness must
    hold even on programs that once exposed an engine bug)."""
    from repro.validate.corpus import dict_to_case, load_entries

    records = []
    for path, entry in load_entries(directory):
        case = dict_to_case(entry)
        records.append(check_case(case, runner=runner,
                                  label=f"corpus:{case.name}"))
    return records


# -- aggregation ---------------------------------------------------------------


def _median(values):
    if not values:
        return None
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def tightness(records, kind):
    """Per-record ``bound / observed`` ratios for one counter (finite
    bounds with nonzero observations only)."""
    ratios = []
    for record in records:
        bound = record[f"bound_{kind}"]
        observed = record[f"observed_{kind}"]
        if bound and observed:
            ratios.append(bound / observed)
    return ratios


def build_report(records):
    """The ``analysis_report.json`` document: every record plus violation
    counts and median tightness ratios."""
    violations = [r for r in records if not r["ok"]]
    issue_ratios = tightness(records, "issues")
    page_ratios = tightness(records, "pages")
    return {
        "schema": REPORT_SCHEMA,
        "records": records,
        "totals": {
            "records": len(records),
            "violations": len(violations),
            "unbounded_issues": sum(
                1 for r in records if r["bound_issues"] is None),
            "median_tightness_issues": _median(issue_ratios),
            "median_tightness_pages": _median(page_ratios),
        },
    }


def write_report(path, report):
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, default=str)
        handle.write("\n")


__all__ = [
    "REPORT_SCHEMA",
    "analyze_case",
    "build_report",
    "check_case",
    "corpus_records",
    "diffcase_context",
    "make_record",
    "progen_records",
    "slam_records",
    "stress_records",
    "tightness",
    "workload_records",
    "write_report",
]
