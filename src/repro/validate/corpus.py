"""Replayable conformance corpus (tests/corpus/).

Each corpus entry is one JSON file describing a differential test case in
one of two forms:

- **seed form** — ``{"generator": {"seed": S, "index": I}}``: the case is
  regenerated deterministically as the I-th program of seed S's stream
  (coverage-guided generation only depends on previously *generated*
  programs, never on execution, so replay is exact). Compact; used for the
  committed seed corpus.
- **full form** — the encoded program binary plus every memory region as
  hex: self-contained, used for minimized reproducers written by the
  fuzzer (and for regression pins whose exact bytes matter).
- **stress form** — ``{"stress": {"seed": S, "category": C}}``: a
  cost-analysis stress case regenerated via
  :func:`repro.validate.progen.generate_stress_case` (bounded loops with
  known trip counts, strided/gather access patterns).

``expect`` is ``"match"`` for regression pins that must pass (replayed by
the tier-1 suite) or ``"mismatch"`` for open reproducers of a known bug
(skipped by tier-1, kept until the bug is fixed and the entry is flipped).
"""

import json
import os

import numpy as np

from repro.gpu.encoding import decode_program, encode_program
from repro.validate.progen import ProgramGenerator
from repro.validate.runner import DiffCase, generated_case_to_diff

CORPUS_FORMAT = 1


def case_to_dict(case, expect="match", notes=""):
    """Serialize a :class:`DiffCase` to the full corpus form."""
    return {
        "format": CORPUS_FORMAT,
        "name": case.name,
        "expect": expect,
        "notes": notes,
        "global_size": list(case.global_size),
        "local_size": list(case.local_size),
        "args": [int(a) & 0xFFFFFFFF for a in case.args],
        "local_bytes": case.local_bytes,
        "program_hex": encode_program(case.program).hex(),
        "regions": [
            {
                "name": name,
                "va": va,
                "data_hex": np.ascontiguousarray(
                    words, dtype=np.uint32).tobytes().hex(),
            }
            for name, va, words in case.regions
        ],
    }


def seed_entry(seed, index, name="", expect="match", notes=""):
    """A compact seed-form corpus entry."""
    return {
        "format": CORPUS_FORMAT,
        "name": name or f"gen-seed{seed}-i{index}",
        "expect": expect,
        "notes": notes,
        "generator": {"seed": seed, "index": index},
    }


def stress_entry(seed, category, name="", expect="match", notes=""):
    """A compact cost-analysis stress-case corpus entry (regenerated via
    :func:`repro.validate.progen.generate_stress_case`)."""
    return {
        "format": CORPUS_FORMAT,
        "name": name or f"stress-{category}-seed{seed}",
        "expect": expect,
        "notes": notes,
        "stress": {"seed": seed, "category": category},
    }


def dict_to_case(entry):
    """Materialize a corpus entry back into a :class:`DiffCase`."""
    if entry.get("format") != CORPUS_FORMAT:
        raise ValueError(f"unsupported corpus format {entry.get('format')!r}")
    generator = entry.get("generator")
    if generator is not None:
        produced = ProgramGenerator(generator["seed"]).generate_nth(
            generator["index"])
        case = generated_case_to_diff(produced)
        return DiffCase(
            program=case.program, global_size=case.global_size,
            local_size=case.local_size, regions=case.regions,
            args=case.args, local_bytes=case.local_bytes,
            name=entry.get("name", case.name))
    stress = entry.get("stress")
    if stress is not None:
        from repro.validate.progen import generate_stress_case

        produced = generate_stress_case(stress["seed"], stress["category"])
        case = generated_case_to_diff(produced)
        return DiffCase(
            program=case.program, global_size=case.global_size,
            local_size=case.local_size, regions=case.regions,
            args=case.args, local_bytes=case.local_bytes,
            name=entry.get("name", case.name))
    program = decode_program(bytes.fromhex(entry["program_hex"]))
    regions = [
        (region["name"], region["va"],
         np.frombuffer(bytes.fromhex(region["data_hex"]),
                       dtype=np.uint32).copy())
        for region in entry["regions"]
    ]
    return DiffCase(
        program=program,
        global_size=tuple(entry["global_size"]),
        local_size=tuple(entry["local_size"]),
        regions=regions,
        args=list(entry["args"]),
        local_bytes=entry.get("local_bytes", 4096),
        name=entry.get("name", "corpus-case"),
    )


def save_entry(path, entry):
    from repro.checkpoint.format import atomic_write_text

    atomic_write_text(path, json.dumps(entry, indent=1) + "\n")


def load_entries(directory):
    """Load every ``*.json`` entry in *directory*, sorted by filename.

    Returns a list of (path, entry dict).
    """
    entries = []
    if not os.path.isdir(directory):
        return entries
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".json"):
            continue
        path = os.path.join(directory, filename)
        with open(path) as handle:
            entries.append((path, json.load(handle)))
    return entries


def farm_case_specs(directory, engines=None):
    """Case-provider interface for the simulation farm: one replay case
    per corpus entry, addressed by filename so the sweep is stable across
    re-expansion.

    Entries are *not* loaded here (expansion runs in the manager; the
    worker re-reads the file), only enumerated and tagged with their
    ``expect`` field.
    """
    for path, entry in load_entries(directory):
        yield {
            "path": path,
            "name": entry.get("name", os.path.basename(path)),
            "expect": entry.get("expect", "match"),
            "engines": list(engines) if engines else None,
        }


def run_farm_case(spec):
    """Replay one corpus entry (inside a farm worker); returns
    ``(ok, detail, counters)``."""
    from repro.validate.runner import (
        ENGINES,
        DifferentialRunner,
        run_case_outcome,
    )

    with open(spec["path"]) as handle:
        entry = json.load(handle)
    case = dict_to_case(entry)
    runner = DifferentialRunner(tuple(spec.get("engines") or ENGINES))
    ok, detail, counters = run_case_outcome(runner, case)
    if spec.get("expect", "match") == "mismatch":
        # an open reproducer of a known bug *must* still mismatch
        ok, detail = (not ok), ("expected a mismatch, case now matches"
                                if ok else "")
    return ok, detail, counters


def replay_corpus(directory, runner, expect="match"):
    """Replay every entry in *directory* with the given *expect* value.

    Returns a list of (path, case name, mismatches); an entry *passes*
    when ``expect == "match"`` and its mismatch list is empty, or when
    ``expect == "mismatch"`` and it is not.
    """
    outcomes = []
    for path, entry in load_entries(directory):
        if entry.get("expect", "match") != expect:
            continue
        case = dict_to_case(entry)
        _results, mismatches = runner.run_case(case)
        outcomes.append((path, case.name, mismatches))
    return outcomes
