"""Declarative sweep configs for the simulation farm.

A farm config is a JSON document (or an equivalent dict) describing a
mixed campaign as a list of *sweeps*, each handled by a registered case
provider (``conformance``, ``corpus``, ``fault``, ``lint``, ``bench``,
``selftest``)::

    {
      "name": "smoke",
      "shard_size": 4,
      "timeout_s": 300,
      "max_attempts": 2,
      "sweeps": [
        {"kind": "conformance", "seeds": 2, "budget": 10,
         "engines": ["interp", "fast", "jit"]},
        {"kind": "fault", "workloads": ["divergent"],
         "scenarios": ["mmu-transient", "irq-lost"], "seeds": 2},
        {"kind": "lint", "targets": "builtin"},
        {"kind": "bench", "workloads": [{"name": "nn",
         "params": {"records": 256}}], "engines": ["interpreter", "mega"]}
      ]
    }

Loading **normalizes** the document (defaults filled, shorthand expanded
— e.g. ``"seeds": 2`` becomes ``[0, 1]``, ``"targets": "builtin"``
becomes the resolved target list) into a canonical dict whose SHA-256 is
the **config hash**. Everything downstream is a pure function of that
canonical form: case expansion, per-case seed streams, the shard plan,
and therefore the aggregate report — independent of worker count,
scheduling, retries and wall clock.
"""

import hashlib
import json
from dataclasses import dataclass

from repro.errors import SimError

CONFIG_VERSION = 1

#: run-shape defaults (deliberately part of the canonical form: the
#: timeout participates in hang verdicts, the shard size in the plan)
DEFAULTS = {
    "shard_size": 4,
    "timeout_s": 300,
    "max_attempts": 2,
}


class FarmConfigError(SimError):
    """A malformed or unsatisfiable sweep config."""


@dataclass(frozen=True)
class FarmConfig:
    """A loaded, validated, canonicalized sweep config."""

    name: str
    sweeps: tuple          # normalized sweep dicts, in document order
    shard_size: int
    timeout_s: float
    max_attempts: int
    canonical: dict        # the full canonical document
    config_hash: str       # sha256 hex of the canonical JSON

    def case_seed(self, case_id):
        """The deterministic seed stream root for one case: a pure
        function of (config hash, case id), so a case computes identical
        results whichever worker runs it, at whatever worker count, on
        whichever attempt."""
        digest = hashlib.sha256(
            f"{self.config_hash}:{case_id}".encode()).digest()
        return int.from_bytes(digest[:8], "big")


def canonical_json(document):
    """The canonical byte form a config (or report) hashes/serializes
    to: sorted keys, no whitespace ambiguity."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def load_config(source):
    """Load a farm config from a dict or a JSON file path."""
    if isinstance(source, (str, bytes)):
        try:
            with open(source) as handle:
                document = json.load(handle)
        except OSError as exc:
            raise FarmConfigError(f"cannot read config: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise FarmConfigError(f"{source}: invalid JSON: {exc}") from exc
    else:
        document = source
    if not isinstance(document, dict):
        raise FarmConfigError("config must be a JSON object")

    known = {"name", "version", "sweeps"} | set(DEFAULTS)
    unknown = set(document) - known
    if unknown:
        raise FarmConfigError(f"unknown config keys: {sorted(unknown)}")
    version = document.get("version", CONFIG_VERSION)
    if version != CONFIG_VERSION:
        raise FarmConfigError(f"unsupported config version {version!r}")

    name = document.get("name", "farm")
    if not isinstance(name, str) or not name:
        raise FarmConfigError("config 'name' must be a non-empty string")

    shard_size = document.get("shard_size", DEFAULTS["shard_size"])
    if not isinstance(shard_size, int) or shard_size < 1:
        raise FarmConfigError("'shard_size' must be a positive integer")
    timeout_s = document.get("timeout_s", DEFAULTS["timeout_s"])
    if not isinstance(timeout_s, (int, float)) or timeout_s <= 0:
        raise FarmConfigError("'timeout_s' must be a positive number")
    max_attempts = document.get("max_attempts", DEFAULTS["max_attempts"])
    if not isinstance(max_attempts, int) or max_attempts < 1:
        raise FarmConfigError("'max_attempts' must be a positive integer")

    sweeps = document.get("sweeps")
    if not isinstance(sweeps, list) or not sweeps:
        raise FarmConfigError("config needs a non-empty 'sweeps' list")

    from repro.validate.farm.providers import normalize_sweep

    normalized = []
    for index, sweep in enumerate(sweeps):
        if not isinstance(sweep, dict) or "kind" not in sweep:
            raise FarmConfigError(
                f"sweeps[{index}]: every sweep needs a 'kind'")
        try:
            normalized.append(normalize_sweep(sweep))
        except FarmConfigError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise FarmConfigError(
                f"sweeps[{index}] ({sweep.get('kind')}): {exc}") from exc

    canonical = {
        "version": CONFIG_VERSION,
        "name": name,
        "shard_size": shard_size,
        "timeout_s": timeout_s,
        "max_attempts": max_attempts,
        "sweeps": normalized,
    }
    config_hash = hashlib.sha256(
        canonical_json(canonical).encode()).hexdigest()
    return FarmConfig(
        name=name, sweeps=tuple(normalized), shard_size=shard_size,
        timeout_s=float(timeout_s), max_attempts=max_attempts,
        canonical=canonical, config_hash=config_hash)
