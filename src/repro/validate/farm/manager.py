"""The campaign manager: multiprocess execution of a farm config.

Execution model (FireSim-style deploy layer, scaled to one host):

1. the config expands to the deterministic case list and shard plan
   (pure functions of the canonical config — see ``config``/``shard``);
2. N worker processes pull whole shards from a shared task queue and
   stream per-case results back (``worker.worker_main``);
3. the manager is the only stateful party: it records the first outcome
   per case, watches every worker's in-flight case against the config's
   ``timeout_s``, kills hung workers, adjudicates crashed/hung cases
   once their ``max_attempts`` are consumed, re-shards the unfinished
   remainder of a dead worker's shard (``shard.retry_shard``) and
   respawns replacement workers to hold capacity;
4. the surviving outcomes aggregate into the deterministic report
   (``report.build_report``) — byte-identical however many workers ran
   the plan and whether any of them had to be killed along the way.

Worker death inside the tiny window between dequeuing a task and
announcing it cannot be attributed to a shard; the manager guards the
whole run with a global progress deadline so even that pathological
case ends in a clean error instead of a silent hang.
"""

import os
import queue as queue_mod
import time
from dataclasses import dataclass, field

import multiprocessing as mp

from repro.errors import SimError
from repro.validate.farm.config import load_config
from repro.validate.farm.providers import expand_cases
from repro.validate.farm.report import (
    build_report,
    report_to_bytes,
    summary_lines,
)
from repro.validate.farm.shard import plan_shards, retry_shard
from repro.validate.farm.worker import ShardTask, worker_main


class FarmError(SimError):
    """The farm itself failed (config, spawn, or global stall)."""


@dataclass
class FarmRun:
    """Everything a ``run_farm`` call produced."""

    report: dict
    report_bytes: bytes
    report_path: str = None
    run_info: dict = field(default_factory=dict)
    run_log: list = field(default_factory=list)

    @property
    def ok(self):
        return self.report["ok"]

    def summary(self):
        return "\n".join(summary_lines(self.report, self.run_info))


class _WorkerSlot:
    """Manager-side view of one worker process."""

    def __init__(self, index):
        self.index = index
        self.process = None
        self.task_key = None      # (shard_id, attempt) it announced
        self.case_id = None       # in-flight case
        self.case_started = None  # monotonic start of the in-flight case


def default_start_method():
    """``fork`` where the OS offers it (workers inherit the warm
    interpreter), else ``spawn``; either way every case still builds a
    fresh platform, so the isolation contract does not depend on this."""
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def run_farm(config, workers=2, outdir=None, chaos=None, progress=None,
             start_method=None, poll_interval=0.05, stall_limit=None,
             preloaded=None):
    """Execute a farm config; returns a :class:`FarmRun`.

    Args:
        config: a :class:`~repro.validate.farm.config.FarmConfig`, a
            config dict, or a JSON file path.
        workers: worker process count (the report does not depend on it).
        outdir: artifact/report directory (created); ``report.json``,
            per-case artifacts and the crash-resume journal
            (``resume/``) land here.
        chaos: farm self-test fault hook, e.g. ``{"kill_case": id}``
            (see ``worker.worker_main``).
        progress: optional callable receiving human log lines live.
        start_method: multiprocessing start method override.
        stall_limit: seconds without any worker message before the run
            is declared stalled (default: ``timeout_s + 60``).
        preloaded: case id -> outcome dict of already-settled cases
            (from a verified journal — see :func:`resume_farm`); those
            cases are not re-run, and the report is byte-identical to
            the run that would have produced them in one sitting.
    """
    from repro.validate.farm import journal

    if not hasattr(config, "config_hash"):
        config = load_config(config)
    if workers < 1:
        raise FarmError("need at least one worker")
    cases = expand_cases(config)
    case_by_id = {case["id"]: case for case in cases}
    shards = plan_shards([case["id"] for case in cases], config.shard_size)
    if preloaded:
        unknown = sorted(set(preloaded) - set(case_by_id))
        if unknown:
            raise FarmError(
                f"preloaded outcomes for unknown cases: {unknown[:4]}")
    if outdir is not None:
        os.makedirs(outdir, exist_ok=True)
        journal.init_journal(outdir, config)
    stall_limit = stall_limit or config.timeout_s + 60.0

    ctx = mp.get_context(start_method or default_start_method())
    task_queue = ctx.Queue()
    result_queue = ctx.Queue()

    run_log = []
    run_info = {"workers": workers, "retries": 0, "kills": 0,
                "respawns": 0}

    def log(line):
        run_log.append(line)
        if progress is not None:
            progress(line)

    outcomes = {}                 # case id -> outcome dict (first wins)
    case_attempts = {}            # case id -> failed attempts consumed
    open_tasks = {}               # (shard_id, attempt) -> ShardTask

    if preloaded:
        outcomes.update(preloaded)
        log(f"resume: {len(preloaded)} of {len(cases)} outcomes "
            f"preloaded from the journal")

    def enqueue(shard, attempt_tag=""):
        task = ShardTask(shard_id=shard.shard_id, attempt=shard.attempt,
                         cases=tuple(case_by_id[case_id]
                                     for case_id in shard.case_ids))
        open_tasks[(task.shard_id, task.attempt)] = task
        task_queue.put(task)
        if attempt_tag:
            log(f"requeue {task.shard_id} ({len(task.cases)} cases, "
                f"{attempt_tag})")

    for shard in shards:
        remaining = [case_id for case_id in shard.case_ids
                     if case_id not in outcomes]
        if not remaining:
            continue
        if len(remaining) == len(shard.case_ids):
            enqueue(shard)
        else:
            enqueue(retry_shard(shard, remaining))

    slots = [_WorkerSlot(index) for index in range(workers)]

    def spawn(slot):
        slot.process = ctx.Process(
            target=worker_main,
            args=(slot.index, task_queue, result_queue, outdir, chaos),
            daemon=True)
        slot.process.start()
        slot.task_key = None
        slot.case_id = None
        slot.case_started = None

    def record(outcome):
        if outcome["id"] not in outcomes:
            outcomes[outcome["id"]] = outcome
            if outdir is not None:
                # journal before logging: once an outcome is visible it
                # is also durable, so a later kill cannot un-settle it
                journal.record_outcome(outdir, outcome)
            mark = outcome["verdict"]
            log(f"{mark:>7} {outcome['id']}"
                + (f" -- {outcome['detail']}" if mark != "pass"
                   and outcome["detail"] else ""))

    def adjudicate(case_id, verdict, detail):
        case = case_by_id[case_id]
        record({"id": case_id, "kind": case["kind"], "verdict": verdict,
                "detail": detail, "counters": {}, "artifacts": []})

    def handle_worker_failure(slot, cause):
        """A worker died (crash or timeout kill): keep its streamed
        results, re-shard the rest, respawn a replacement."""
        task = open_tasks.pop(slot.task_key, None)
        if task is not None:
            remaining = [case["id"] for case in task.cases
                         if case["id"] not in outcomes]
            victim = slot.case_id
            if victim is not None and victim in remaining:
                attempts = case_attempts.get(victim, 0) + 1
                case_attempts[victim] = attempts
                if attempts >= config.max_attempts:
                    remaining.remove(victim)
                    if cause == "timeout":
                        adjudicate(
                            victim, "timeout",
                            f"no result within the farm timeout "
                            f"({config.timeout_s:g}s per case, "
                            f"{config.max_attempts} attempts)")
                    else:
                        adjudicate(
                            victim, "crash",
                            f"worker process died executing this case "
                            f"({config.max_attempts} attempts)")
            if remaining:
                run_info["retries"] += 1
                retry = retry_shard(
                    _shard_for_task(task), remaining)
                enqueue(retry, attempt_tag=f"attempt {retry.attempt}")
        run_info["respawns"] += 1
        spawn(slot)

    def _shard_for_task(task):
        from repro.validate.farm.shard import Shard

        return Shard(shard_id=task.shard_id,
                     case_ids=tuple(case["id"] for case in task.cases),
                     attempt=task.attempt)

    start = time.monotonic()
    last_message = start
    try:
        if len(outcomes) < len(cases):
            for slot in slots:
                spawn(slot)
        while len(outcomes) < len(cases):
            try:
                message = result_queue.get(timeout=poll_interval)
            except queue_mod.Empty:
                message = None
            now = time.monotonic()
            if message is not None:
                last_message = now
                tag = message[0]
                if tag == "start":
                    _tag, widx, shard_id, attempt, case_id = message
                    slot = slots[widx]
                    slot.task_key = (shard_id, attempt)
                    slot.case_id = case_id
                    slot.case_started = now
                elif tag == "done":
                    _tag, widx, _shard_id, _attempt, case_id, outcome \
                        = message
                    slot = slots[widx]
                    record(outcome)
                    if slot.case_id == case_id:
                        slot.case_id = None
                        slot.case_started = None
                elif tag == "shard_done":
                    _tag, widx, shard_id, attempt = message
                    open_tasks.pop((shard_id, attempt), None)
                    slot = slots[widx]
                    slot.task_key = None
                    slot.case_id = None
                    slot.case_started = None

            # police timeouts and dead workers every tick (a hung worker
            # must be found even while its siblings stream results)
            for slot in slots:
                if slot.case_started is not None \
                        and now - slot.case_started > config.timeout_s \
                        and slot.process.is_alive():
                    run_info["kills"] += 1
                    log(f"kill worker {slot.index}: case "
                        f"{slot.case_id} over {config.timeout_s:g}s")
                    slot.process.kill()
                    slot.process.join(timeout=10.0)
                    handle_worker_failure(slot, "timeout")
                elif slot.process is not None \
                        and not slot.process.is_alive():
                    exitcode = slot.process.exitcode
                    if slot.task_key is not None:
                        log(f"worker {slot.index} died "
                            f"(exit {exitcode}) mid-shard")
                        handle_worker_failure(slot, "crash")
                    elif len(outcomes) < len(cases):
                        # died between tasks: hold capacity
                        run_info["respawns"] += 1
                        spawn(slot)
            if now - last_message > stall_limit:
                raise FarmError(
                    f"farm stalled: no worker progress for "
                    f"{stall_limit:g}s with "
                    f"{len(cases) - len(outcomes)} cases outstanding")
    finally:
        for slot in slots:
            task_queue.put(None)
        deadline = time.monotonic() + 10.0
        for slot in slots:
            if slot.process is None:
                continue
            slot.process.join(timeout=max(0.1,
                                          deadline - time.monotonic()))
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join(timeout=5.0)
        for q in (task_queue, result_queue):
            q.close()
            q.cancel_join_thread()

    run_info["elapsed"] = time.monotonic() - start
    report = build_report(config, outcomes, shards)
    raw = report_to_bytes(report)
    report_path = None
    if outdir is not None:
        from repro.checkpoint.format import atomic_write_bytes

        report_path = os.path.join(outdir, "report.json")
        atomic_write_bytes(report_path, raw)
        atomic_write_bytes(os.path.join(outdir, "run.log"),
                           ("\n".join(run_log) + "\n").encode("utf-8"))
    return FarmRun(report=report, report_bytes=raw,
                   report_path=report_path, run_info=dict(run_info),
                   run_log=run_log)


def resume_farm(outdir, workers=2, chaos=None, progress=None,
                start_method=None, poll_interval=0.05,
                stall_limit=None):
    """Finish an interrupted campaign from its on-disk journal.

    Loads and digest-verifies ``<outdir>/resume/`` (config + settled
    outcomes), runs only the cases with no journaled outcome, and
    rewrites ``report.json`` — byte-identical to the report a
    straight-through run of the same config produces. Raises
    :class:`~repro.errors.CheckpointError` if the journal is missing or
    corrupted (never a wrong-answer resume), :class:`FarmError` for
    farm-level failures during the remainder run.
    """
    from repro.validate.farm.journal import load_journal

    config, preloaded = load_journal(outdir)
    return run_farm(config, workers=workers, outdir=outdir,
                    chaos=chaos, progress=progress,
                    start_method=start_method,
                    poll_interval=poll_interval,
                    stall_limit=stall_limit, preloaded=preloaded)
