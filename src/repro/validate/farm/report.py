"""Aggregate farm reports.

The **aggregate report** is the farm's one machine-readable output: the
canonical config (and its hash), the shard plan, every case outcome
(sorted by case id) and the totals. It is deliberately free of anything
schedule- or host-dependent — no wall-clock times, worker ids, attempt
counts or hostnames — so the serialized report is **byte-identical**
across worker counts, across runs, and across kill-and-retry runs of the
same config. Run telemetry (elapsed time, retries, kills, worker count)
lives in the separate human summary instead.
"""

import json

#: verdicts in severity order (pass last so `totals` reads naturally)
VERDICTS = ("fail", "error", "timeout", "crash", "pass")

REPORT_VERSION = 1


def build_report(config, outcomes, shards):
    """Assemble the deterministic aggregate report dict.

    *outcomes* maps case id -> outcome dict (as produced by the workers
    or adjudicated by the manager); *shards* is the original plan.
    """
    from repro.validate.farm.shard import plan_as_dict

    cases = [outcomes[case_id] for case_id in sorted(outcomes)]
    totals = {verdict: 0 for verdict in VERDICTS}
    by_kind = {}
    for case in cases:
        totals[case["verdict"]] = totals.get(case["verdict"], 0) + 1
        kind = by_kind.setdefault(
            case["kind"], {verdict: 0 for verdict in VERDICTS})
        kind[case["verdict"]] = kind.get(case["verdict"], 0) + 1
    ok = all(case["verdict"] == "pass" for case in cases)
    return {
        "farm_report_version": REPORT_VERSION,
        "name": config.name,
        "config_hash": config.config_hash,
        "config": config.canonical,
        "shard_plan": plan_as_dict(shards),
        "cases": cases,
        "totals": {"cases": len(cases), **totals, "by_kind": by_kind},
        "ok": ok,
    }


def report_to_bytes(report):
    """The canonical serialized form the determinism contract is stated
    over: sorted keys, fixed indentation, trailing newline."""
    return (json.dumps(report, sort_keys=True, indent=1) + "\n").encode()


def summary_lines(report, run_info=None):
    """Human summary: totals per kind plus failing cases, then (when
    given) the schedule-dependent run telemetry the report itself must
    not contain."""
    totals = report["totals"]
    lines = [
        f"farm '{report['name']}' "
        f"(config {report['config_hash'][:12]}): "
        f"{totals['cases']} cases in {len(report['shard_plan'])} shards "
        f"-> {totals['pass']} pass, {totals['fail']} fail, "
        f"{totals['error']} error, {totals['timeout']} timeout, "
        f"{totals['crash']} crash",
    ]
    for kind in sorted(totals["by_kind"]):
        counts = totals["by_kind"][kind]
        bad = sum(counts[v] for v in VERDICTS if v != "pass")
        lines.append(f"  {kind:<12} {counts['pass']:4d} pass"
                     + (f", {bad} failing" if bad else ""))
    for case in report["cases"]:
        if case["verdict"] != "pass":
            detail = f" -- {case['detail']}" if case["detail"] else ""
            lines.append(
                f"  {case['verdict'].upper():<7} {case['id']}{detail}")
            for artifact in case["artifacts"]:
                lines.append(f"          artifact: {artifact}")
    if run_info:
        lines.append(
            f"run: workers={run_info.get('workers')} "
            f"elapsed={run_info.get('elapsed', 0.0):.1f}s "
            f"retries={run_info.get('retries', 0)} "
            f"kills={run_info.get('kills', 0)} "
            f"respawns={run_info.get('respawns', 0)}")
    return lines
