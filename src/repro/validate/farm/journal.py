"""Crash-resilient per-case outcome journal (``<outdir>/resume/``).

Every outcome the farm manager records is also journaled to its own
file, written atomically and carrying a SHA-256 over the outcome's
canonical JSON. Because the aggregate report is a pure function of the
canonical config and the outcome set, a campaign killed at any point —
worker, manager, or whole process tree — can be finished by
``repro.tools farm resume <outdir>``: the journal's verified outcomes
are preloaded, only the missing cases run, and the final ``report.json``
is byte-identical to the straight-through run's.

The journal verifies fail-closed, like platform checkpoints: a missing,
truncated, bit-flipped or hand-edited entry raises
:class:`~repro.errors.CheckpointError` instead of feeding a wrong
outcome into the report. (An entry that is merely *absent* is not
corruption — that case simply runs again.)
"""

import hashlib
import json
import os
import re

from repro.checkpoint.format import atomic_write_json
from repro.errors import CheckpointError
from repro.validate.farm.config import canonical_json, load_config

JOURNAL_VERSION = 1
RESUME_DIR = "resume"
CONFIG_FILE = "config.json"
CASES_DIR = "cases"

#: keys every journaled outcome must carry (the worker result schema)
_OUTCOME_KEYS = {"id", "kind", "verdict", "detail", "counters",
                 "artifacts"}


def journal_dir(outdir):
    return os.path.join(outdir, RESUME_DIR)


def case_file_name(case_id):
    """A filesystem-safe, collision-free file name for one case id."""
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", case_id)[:80]
    digest = hashlib.sha256(case_id.encode()).hexdigest()[:12]
    return f"{safe}-{digest}.json"


def outcome_digest(outcome):
    """SHA-256 over the outcome's canonical JSON form."""
    return hashlib.sha256(canonical_json(outcome).encode()).hexdigest()


def init_journal(outdir, config):
    """Create (or refresh) the journal skeleton for a campaign."""
    resume = journal_dir(outdir)
    os.makedirs(os.path.join(resume, CASES_DIR), exist_ok=True)
    atomic_write_json(os.path.join(resume, CONFIG_FILE), {
        "farm_resume_version": JOURNAL_VERSION,
        "config_hash": config.config_hash,
        "config": config.canonical,
    })


def record_outcome(outdir, outcome):
    """Journal one recorded outcome (atomic: all-or-nothing on disk)."""
    path = os.path.join(journal_dir(outdir), CASES_DIR,
                        case_file_name(outcome["id"]))
    atomic_write_json(path, {
        "farm_resume_version": JOURNAL_VERSION,
        "sha256": outcome_digest(outcome),
        "outcome": outcome,
    })


def _load_json(path, what):
    try:
        with open(path) as handle:
            return json.load(handle)
    except OSError as exc:
        raise CheckpointError(f"cannot read {what}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"{what} is not valid JSON: {exc}") from exc


def load_journal(outdir):
    """Verify and load a campaign journal.

    Returns ``(config, outcomes)`` where *config* is the campaign's
    :class:`~repro.validate.farm.config.FarmConfig` rebuilt from the
    journaled canonical form and *outcomes* maps case id -> verified
    outcome dict. Raises :class:`CheckpointError` on any corruption:
    bad JSON, version skew, digest mismatch, config-hash mismatch, or a
    journaled case the config does not expand to.
    """
    from repro.validate.farm.providers import expand_cases

    resume = journal_dir(outdir)
    config_path = os.path.join(resume, CONFIG_FILE)
    if not os.path.isdir(resume) or not os.path.exists(config_path):
        raise CheckpointError(
            f"no farm journal under {outdir!r} (expected "
            f"{os.path.join(RESUME_DIR, CONFIG_FILE)}); was the "
            f"campaign started with --out?")
    entry = _load_json(config_path, "farm journal config")
    if entry.get("farm_resume_version") != JOURNAL_VERSION:
        raise CheckpointError(
            f"unsupported farm journal version "
            f"{entry.get('farm_resume_version')!r} "
            f"(this build reads {JOURNAL_VERSION})")
    config = load_config(entry.get("config"))
    if config.config_hash != entry.get("config_hash"):
        raise CheckpointError(
            "farm journal config does not match its recorded hash "
            "(journal corrupted or hand-edited)")
    valid_ids = {case["id"] for case in expand_cases(config)}

    outcomes = {}
    cases_dir = os.path.join(resume, CASES_DIR)
    # only *.json entries are journal records; a kill can leave behind
    # an atomic-write temp file (entry.json.XXXXXXXX) which must not be
    # mistaken for corruption
    names = sorted(name for name in os.listdir(cases_dir)
                   if name.endswith(".json")) \
        if os.path.isdir(cases_dir) else []
    for name in names:
        path = os.path.join(cases_dir, name)
        entry = _load_json(path, f"farm journal entry {name}")
        if entry.get("farm_resume_version") != JOURNAL_VERSION:
            raise CheckpointError(
                f"farm journal entry {name}: unsupported version "
                f"{entry.get('farm_resume_version')!r}")
        outcome = entry.get("outcome")
        if not isinstance(outcome, dict) \
                or not _OUTCOME_KEYS <= set(outcome):
            raise CheckpointError(
                f"farm journal entry {name}: malformed outcome")
        if entry.get("sha256") != outcome_digest(outcome):
            raise CheckpointError(
                f"farm journal entry {name}: digest mismatch "
                f"(entry corrupted)")
        case_id = outcome["id"]
        if case_id not in valid_ids:
            raise CheckpointError(
                f"farm journal entry {name}: case {case_id!r} is not "
                f"produced by the journaled config")
        if name != case_file_name(case_id):
            raise CheckpointError(
                f"farm journal entry {name}: file name does not match "
                f"case {case_id!r}")
        outcomes[case_id] = outcome
    return config, outcomes
