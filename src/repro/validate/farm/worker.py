"""Farm worker process: execute shards case by case, streaming results.

Each worker is a separate OS process. It pulls :class:`ShardTask`
messages from the shared task queue and, for every case, pushes a
``("start", ...)`` marker before execution and a ``("done", ...)``
outcome after — so when the manager has to kill a hung or crashed
worker, every already-completed case of the shard is preserved and
exactly the unfinished remainder is re-sharded.

Isolation contract: a **fresh platform per case**. All provider
``execute`` hooks build their own platform/context/registry from
scratch, so no ``StatsRegistry`` state, MMU, driver or injector survives
from one case to the next, and a case's outcome is identical whether it
runs first on worker 7 of 8 or alone in a sequential run. A case that
raises is an ``error`` verdict for that case only; the worker moves on.

The optional *chaos* dict is the farm's own fault-injection hook (used
by the determinism and kill-recovery tests): ``{"kill_case": id}`` makes
the worker die with SIGKILL semantics (``os._exit``) immediately before
executing that case — only on the case's first attempt, so the retried
shard completes and the report must come out byte-identical to an
unkilled run.
"""

import os
from dataclasses import dataclass

#: outcome verdicts a worker can produce; the manager adds "timeout"
#: and "crash" for cases it had to adjudicate from the outside
VERDICT_PASS = "pass"
VERDICT_FAIL = "fail"
VERDICT_ERROR = "error"


@dataclass(frozen=True)
class ShardTask:
    """One dispatch message: run these cases (in order)."""

    shard_id: str
    attempt: int
    cases: tuple      # case dicts: {"id", "kind", "spec", "seed"}


def artifact_dir_for(outdir, case_id):
    """The deterministic per-case artifact directory (not created here;
    providers create it only when they have something to write)."""
    from repro.validate.farm.providers import sanitize_case_id

    if outdir is None:
        return None
    return os.path.join(outdir, "artifacts", sanitize_case_id(case_id))


def execute_case(case, outdir):
    """Run one case on a fresh platform; returns the outcome dict that
    goes into the aggregate report (plain JSON-safe values only)."""
    from repro.validate.farm.providers import PROVIDERS

    provider = PROVIDERS[case["kind"]]
    try:
        ok, detail, counters, artifacts = provider.execute(
            case["spec"], artifact_dir_for(outdir, case["id"]))
        verdict = VERDICT_PASS if ok else VERDICT_FAIL
    except Exception as exc:  # noqa: BLE001 - isolate to this case
        verdict = VERDICT_ERROR
        detail = f"{type(exc).__name__}: {exc}"
        counters, artifacts = {}, []
    return {
        "id": case["id"],
        "kind": case["kind"],
        "verdict": verdict,
        "detail": detail,
        "counters": counters,
        "artifacts": sorted(artifacts),
    }


def worker_main(worker_index, task_queue, result_queue, outdir,
                chaos=None):
    """Worker process entry point (top-level so it survives spawn)."""
    chaos = chaos or {}
    while True:
        task = task_queue.get()
        if task is None:
            result_queue.put(("bye", worker_index))
            return
        for case in task.cases:
            result_queue.put(("start", worker_index, task.shard_id,
                              task.attempt, case["id"]))
            if case["id"] == chaos.get("kill_case") and task.attempt == 0:
                os._exit(137)
            outcome = execute_case(case, outdir)
            result_queue.put(("done", worker_index, task.shard_id,
                              task.attempt, case["id"], outcome))
        result_queue.put(("shard_done", worker_index, task.shard_id,
                          task.attempt))
