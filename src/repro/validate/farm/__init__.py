"""Config-driven simulation farm (the campaign manager).

``repro.validate.farm`` turns the repo's campaign surfaces — conformance
fuzzing, corpus replay, fault-injection sweeps, lint grids and benchmark
points — into one declaratively-configured, multiprocess, crash- and
hang-tolerant farm with a deterministic aggregate report:

- :mod:`.config` — sweep configs, canonicalization, the config hash;
- :mod:`.providers` — per-kind case expansion/execution (adapting the
  case-provider interfaces exported by ``repro.validate.conformance``,
  ``repro.validate.corpus``, ``repro.inject.campaign`` and
  ``repro.gpu.verify.lint``);
- :mod:`.shard` — the worker-count-independent shard plan and the
  deterministic re-shard used for retries;
- :mod:`.worker` — the per-process execution loop (fresh platform per
  case);
- :mod:`.manager` — ``run_farm``: the pool, timeout kills, bounded
  retries, respawns; ``resume_farm``: finish a killed campaign from
  its journal;
- :mod:`.journal` — the digest-verified per-case outcome journal that
  makes campaigns crash-resumable;
- :mod:`.report` — the byte-identical aggregate report plus the human
  summary.

Determinism contract: for a fixed config file, ``report.json`` is
byte-identical for any worker count, any scheduling, any number of
worker kills followed by retries, and any interrupt-then-``resume_farm``
split — asserted by ``tests/test_farm.py`` and
``tests/test_checkpoint.py``.
"""

from repro.validate.farm.config import (
    FarmConfig,
    FarmConfigError,
    load_config,
)
from repro.validate.farm.manager import (
    FarmError,
    FarmRun,
    resume_farm,
    run_farm,
)
from repro.validate.farm.providers import PROVIDERS, expand_cases
from repro.validate.farm.report import (
    build_report,
    report_to_bytes,
    summary_lines,
)
from repro.validate.farm.shard import plan_shards, retry_shard

__all__ = [
    "FarmConfig",
    "FarmConfigError",
    "FarmError",
    "FarmRun",
    "PROVIDERS",
    "build_report",
    "expand_cases",
    "load_config",
    "plan_shards",
    "report_to_bytes",
    "resume_farm",
    "retry_shard",
    "run_farm",
    "summary_lines",
]
