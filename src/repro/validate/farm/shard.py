"""Deterministic shard planning.

The expanded case list is partitioned into shards of at most
``shard_size`` consecutive cases, **independently of worker count**:
workers pull whole shards from a queue, so adding workers changes only
who runs a shard, never what the shards are. The plan is therefore a
pure function of the canonical config (cases expand in config order) and
is embedded verbatim in the aggregate report — the first thing the
byte-identity determinism tests pin down.

Retries re-shard deterministically too: when a worker dies or is killed
on timeout, the victim shard's *unfinished* cases become a new shard
whose id extends the original's (``shard-003.r1``). Retry shards are
bounded by the config's ``max_attempts`` and never appear in the
report's shard plan (which schedule-independent consumers diff), only in
the human run log.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Shard:
    """One unit of worker dispatch: an ordered slice of case ids."""

    shard_id: str
    case_ids: tuple
    attempt: int = 0


def plan_shards(case_ids, shard_size):
    """Partition *case_ids* (already in canonical order) into the
    deterministic shard plan."""
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    shards = []
    for start in range(0, len(case_ids), shard_size):
        chunk = tuple(case_ids[start:start + shard_size])
        shards.append(Shard(shard_id=f"shard-{len(shards):03d}",
                            case_ids=chunk))
    return shards


def retry_shard(shard, remaining_case_ids):
    """The deterministic re-shard of a failed shard's unfinished cases."""
    base = shard.shard_id.split(".r")[0]
    attempt = shard.attempt + 1
    return Shard(shard_id=f"{base}.r{attempt}",
                 case_ids=tuple(remaining_case_ids), attempt=attempt)


def plan_as_dict(shards):
    """The shard plan in report form."""
    return [{"id": shard.shard_id, "cases": list(shard.case_ids)}
            for shard in shards]
