"""Case providers: each sweep kind's expansion and per-case execution.

A provider contributes two pure pieces:

- ``normalize(sweep)`` — validate one sweep dict and expand shorthand
  into the canonical form that enters the config hash (runs at load
  time, in the manager);
- ``expand(sweep, config)`` — enumerate ``(case_id, spec)`` pairs in a
  deterministic order (manager side; ids must be globally unique);
- ``execute(spec, artifact_dir)`` — run one case to completion inside a
  **worker process** on a fresh platform, returning
  ``(ok, detail, counters, artifacts)`` of plain picklable values.

The actual campaign logic lives with the subsystems being swept:
``repro.validate.conformance``, ``repro.validate.corpus``,
``repro.inject.campaign``, ``repro.gpu.verify.lint`` and
``repro.gpu.verify.analyze`` each export a farm case-provider interface
this module adapts; ``bench`` runs
registered workloads; ``selftest`` exercises the farm itself (a case
that passes, a case that raises, a case that genuinely hangs) and is
what the isolation and kill-recovery tests sweep.
"""

import os
import re

from repro.validate.farm.config import FarmConfigError


def _sorted_unique(values, what):
    out = sorted(set(values))
    if not out:
        raise FarmConfigError(f"{what} must not be empty")
    return out


def _seed_list(value, what="seeds"):
    """``3`` -> [0, 1, 2]; an explicit list passes through sorted."""
    if isinstance(value, bool):
        raise FarmConfigError(f"{what} must be an int or list of ints")
    if isinstance(value, int):
        if value < 1:
            raise FarmConfigError(f"{what} must be >= 1")
        return list(range(value))
    if isinstance(value, list) and all(
            isinstance(v, int) and not isinstance(v, bool) for v in value):
        return _sorted_unique(value, what)
    raise FarmConfigError(f"{what} must be an int or list of ints")


def sanitize_case_id(case_id):
    """A case id folded to a filesystem-safe artifact directory name."""
    return re.sub(r"[^A-Za-z0-9.+=,:-]", "_", case_id)


class ConformanceProvider:
    """Coverage-guided differential fuzzing chunks, one per seed."""

    kind = "conformance"

    def normalize(self, sweep):
        from repro.validate.runner import ENGINES

        engines = sweep.get("engines") or list(ENGINES)
        for engine in engines:
            if engine not in ENGINES:
                raise FarmConfigError(f"unknown engine {engine!r}")
        budget = sweep.get("budget", 25)
        if not isinstance(budget, int) or budget < 1:
            raise FarmConfigError("'budget' must be a positive integer")
        return {
            "kind": self.kind,
            "seeds": _seed_list(sweep.get("seeds", 1)),
            "budget": budget,
            "engines": list(engines),
            "minimize": bool(sweep.get("minimize", False)),
            "verify": bool(sweep.get("verify", True)),
        }

    def expand(self, sweep, config):
        from repro.validate.conformance import farm_case_specs

        engines = "+".join(sweep["engines"])
        for spec in farm_case_specs(
                sweep["seeds"], sweep["budget"], engines=sweep["engines"],
                minimize=sweep["minimize"], verify=sweep["verify"]):
            yield f"conformance/{engines}/seed{spec['seed']}", spec

    def execute(self, spec, artifact_dir):
        from repro.validate.conformance import run_farm_case

        return run_farm_case(spec, artifact_dir=artifact_dir)


class CorpusProvider:
    """Replay of a reproducer corpus directory, one case per entry."""

    kind = "corpus"

    def normalize(self, sweep):
        directory = sweep.get("dir")
        if not isinstance(directory, str) or not directory:
            raise FarmConfigError("corpus sweep needs a 'dir'")
        engines = sweep.get("engines")
        if engines is not None:
            from repro.validate.runner import ENGINES

            for engine in engines:
                if engine not in ENGINES:
                    raise FarmConfigError(f"unknown engine {engine!r}")
        return {"kind": self.kind, "dir": directory,
                "engines": list(engines) if engines else None}

    def expand(self, sweep, config):
        from repro.validate.corpus import farm_case_specs

        found = False
        for spec in farm_case_specs(sweep["dir"], engines=sweep["engines"]):
            found = True
            yield f"corpus/{os.path.basename(spec['path'])}", spec
        if not found:
            raise FarmConfigError(
                f"corpus sweep: no entries under {sweep['dir']!r}")

    def execute(self, spec, artifact_dir):
        from repro.validate.corpus import run_farm_case

        ok, detail, counters = run_farm_case(spec)
        return ok, detail, counters, []


class FaultProvider:
    """Seeded fault-injection cases over the recovery invariants."""

    kind = "fault"

    def normalize(self, sweep):
        from repro.inject.campaign import DEFAULT_WORKLOADS, SCENARIOS

        scenarios = sweep.get("scenarios") or sorted(SCENARIOS)
        for scenario in scenarios:
            if scenario not in SCENARIOS:
                raise FarmConfigError(f"unknown scenario {scenario!r}")
        engines = sweep.get("engines") or ["interpreter"]
        for engine in engines:
            if engine not in ("interpreter", "jit", "mega"):
                raise FarmConfigError(f"unknown fault engine {engine!r}")
        return {
            "kind": self.kind,
            "workloads": list(sweep.get("workloads")
                              or DEFAULT_WORKLOADS),
            "scenarios": sorted(scenarios),
            "seeds": _seed_list(sweep.get("seeds", 1)),
            "engines": list(engines),
            "threads": _seed_list(sweep.get("threads", [1]), "threads"),
            "check_determinism": bool(sweep.get("check_determinism",
                                                False)),
        }

    def expand(self, sweep, config):
        from repro.inject.campaign import farm_case_specs

        for spec in farm_case_specs(
                workloads=sweep["workloads"], scenarios=sweep["scenarios"],
                seeds=sweep["seeds"], engines=sweep["engines"],
                threads=sweep["threads"],
                check_determinism=sweep["check_determinism"]):
            yield (f"fault/{spec['workload']}/{spec['scenario']}"
                   f"/s{spec['seed']}/{spec['engine']}"
                   f"/t{spec['num_host_threads']}"), spec

    def execute(self, spec, artifact_dir):
        from repro.inject.campaign import run_farm_case

        return run_farm_case(spec, artifact_dir=artifact_dir)


class LintProvider:
    """Static-verifier sweeps, one case per lint target."""

    kind = "lint"

    def normalize(self, sweep):
        targets = sweep.get("targets", "builtin")
        if targets == "builtin":
            from repro.gpu.verify.lint import builtin_targets

            targets = builtin_targets()
        if not isinstance(targets, list) or not targets:
            raise FarmConfigError(
                "lint sweep needs 'targets' (list or \"builtin\")")
        return {"kind": self.kind, "targets": sorted(targets),
                "version": sweep.get("version")}

    def expand(self, sweep, config):
        for target in sweep["targets"]:
            yield f"lint/{target}", {"target": target,
                                     "version": sweep["version"]}

    def execute(self, spec, artifact_dir):
        from repro.gpu.verify.lint import format_unit, lint_target

        units = lint_target(spec["target"], version=spec["version"])
        counters = {"kernels": 0, "errors": 0, "warnings": 0, "notes": 0}
        failing = []
        for unit in units:
            if unit.error:
                counters["errors"] += 1
                failing.append(unit)
                continue
            counters["kernels"] += 1
            for key in ("errors", "warnings", "notes"):
                counters[key] += unit.counts[key]
            if not unit.ok:
                failing.append(unit)
        artifacts = []
        if failing and artifact_dir is not None:
            from repro.checkpoint.format import atomic_write_text

            os.makedirs(artifact_dir, exist_ok=True)
            path = os.path.join(artifact_dir, "findings.txt")
            atomic_write_text(path, "".join(
                format_unit(unit) + "\n" for unit in failing))
            artifacts.append("findings.txt")
        detail = "; ".join(
            f"{u.label}:{u.kernel or '<compile>'} {u.summary()}"
            for u in failing[:3])
        return not failing, detail, counters, artifacts


class AnalyzeProvider:
    """Static cost-analysis sweeps, one case per analyze target.

    A case fails when any kernel fails to analyze (compile error or
    structural errors blocking the cost pass); unbounded loops are
    reported in the counters but are not failures (data-dependent loops
    are legitimate — the soundness gate, not the farm, decides whether
    their page bounds still dominate)."""

    kind = "analyze"

    def normalize(self, sweep):
        targets = sweep.get("targets", "builtin")
        if targets == "builtin":
            from repro.gpu.verify.analyze import builtin_targets

            targets = builtin_targets()
        if not isinstance(targets, list) or not targets:
            raise FarmConfigError(
                "analyze sweep needs 'targets' (list or \"builtin\")")
        return {"kind": self.kind, "targets": sorted(targets),
                "version": sweep.get("version")}

    def expand(self, sweep, config):
        for target in sweep["targets"]:
            yield f"analyze/{target}", {"target": target,
                                        "version": sweep["version"]}

    def execute(self, spec, artifact_dir):
        from repro.gpu.verify.analyze import analyze_target, format_unit

        units = analyze_target(spec["target"], version=spec["version"])
        counters = {"kernels": 0, "failed": 0, "unbounded": 0,
                    "loops": 0}
        failing = []
        for unit in units:
            if not unit.ok:
                counters["failed"] += 1
                failing.append(unit)
                continue
            counters["kernels"] += 1
            counters["loops"] += len(unit.summary.loops)
            if not unit.bounded:
                counters["unbounded"] += 1
        artifacts = []
        if failing and artifact_dir is not None:
            from repro.checkpoint.format import atomic_write_text

            os.makedirs(artifact_dir, exist_ok=True)
            path = os.path.join(artifact_dir, "analysis.txt")
            atomic_write_text(path, "".join(
                format_unit(unit) + "\n" for unit in failing))
            artifacts.append("analysis.txt")
        detail = "; ".join(
            f"{u.label}:{u.kernel or '<compile>'} {u.headline()}"
            for u in failing[:3])
        return not failing, detail, counters, artifacts


class BenchProvider:
    """Workload runs with verification plus a golden-stats snapshot."""

    kind = "bench"

    def normalize(self, sweep):
        from repro.kernels import WORKLOADS

        workloads = sweep.get("workloads")
        if not isinstance(workloads, list) or not workloads:
            raise FarmConfigError("bench sweep needs a 'workloads' list")
        normalized = []
        for item in workloads:
            if isinstance(item, str):
                item = {"name": item}
            name = item.get("name")
            if name not in WORKLOADS:
                raise FarmConfigError(f"unknown workload {name!r}")
            params = item.get("params", {})
            if not all(isinstance(v, int) for v in params.values()):
                raise FarmConfigError(
                    f"bench params for {name!r} must be integers")
            normalized.append({"name": name,
                               "params": dict(sorted(params.items()))})
        engines = sweep.get("engines") or ["interpreter"]
        for engine in engines:
            if engine not in ("interpreter", "jit", "mega"):
                raise FarmConfigError(f"unknown bench engine {engine!r}")
        return {"kind": self.kind, "workloads": normalized,
                "engines": list(engines)}

    def expand(self, sweep, config):
        for item in sweep["workloads"]:
            suffix = ",".join(f"{k}={v}"
                              for k, v in item["params"].items())
            point = item["name"] + (f"[{suffix}]" if suffix else "")
            for engine in sweep["engines"]:
                yield f"bench/{point}/{engine}", {
                    "name": item["name"], "params": item["params"],
                    "engine": engine}

    def execute(self, spec, artifact_dir):
        import json

        from repro.cl import Context
        from repro.core.platform import MobilePlatform, PlatformConfig
        from repro.gpu.device import GPUConfig
        from repro.kernels import get_workload

        config = PlatformConfig(gpu=GPUConfig(engine=spec["engine"]))
        context = Context(MobilePlatform(config))
        workload = get_workload(spec["name"], **spec["params"])
        result = workload.run(context=context)
        # the deterministic face of the run is the golden registry
        # snapshot (identical across engines and schedules); wall-clock
        # timings are real measurements and go to the artifact instead
        counters = context.platform.stats_registry.snapshot(
            golden_only=True)
        counters["jobs"] = int(result.jobs)
        artifacts = []
        if artifact_dir is not None:
            from repro.checkpoint.format import atomic_write_text

            os.makedirs(artifact_dir, exist_ok=True)
            atomic_write_text(
                os.path.join(artifact_dir, "bench.json"),
                json.dumps({
                    "workload": spec["name"], "engine": spec["engine"],
                    "params": spec["params"],
                    "verified": bool(result.verified),
                    "total_seconds": result.total_seconds,
                    "gpu_seconds": result.gpu_seconds,
                    "cpu_seconds": result.cpu_seconds,
                }, indent=1))
            artifacts.append("bench.json")
        detail = "" if result.verified else "verification failed"
        return bool(result.verified), detail, counters, artifacts


class TenantsProvider:
    """Mixed multi-tenant fairness campaigns: N client contexts over one
    GPU, every tenant's outputs verified, the fairness report captured
    as an artifact and a golden-stats fingerprint in the counters (so a
    sweep over engine modes or worker counts proves per-tenant golden
    stats invariant straight from the report)."""

    kind = "tenants"

    def normalize(self, sweep):
        from repro.tenancy.harness import ENGINE_MODES

        tenants = sweep.get("tenants", [4])
        if isinstance(tenants, int):
            tenants = [tenants]
        if not (isinstance(tenants, list) and tenants and all(
                isinstance(v, int) and not isinstance(v, bool) and v >= 1
                for v in tenants)):
            raise FarmConfigError("'tenants' must be a positive int or "
                                  "list of positive ints")
        engine_modes = sweep.get("engine_modes") or ["fast"]
        for mode in engine_modes:
            if mode not in ENGINE_MODES:
                raise FarmConfigError(f"unknown engine mode {mode!r}")
        jobs = sweep.get("jobs", 2)
        if not isinstance(jobs, int) or jobs < 1:
            raise FarmConfigError("'jobs' must be a positive integer")
        return {
            "kind": self.kind,
            "tenants": _sorted_unique(tenants, "tenants"),
            "engine_modes": list(engine_modes),
            "seeds": _seed_list(sweep.get("seeds", 1)),
            "threads": _seed_list(sweep.get("threads", [1]), "threads"),
            "jobs": jobs,
        }

    def expand(self, sweep, config):
        from repro.tenancy.harness import farm_case_specs

        for spec in farm_case_specs(
                tenants=sweep["tenants"],
                engine_modes=sweep["engine_modes"], seeds=sweep["seeds"],
                threads=sweep["threads"], jobs=sweep["jobs"]):
            yield (f"tenants/n{spec['tenants']}/{spec['engine_mode']}"
                   f"/s{spec['seed']}/t{spec['num_host_threads']}"), spec

    def execute(self, spec, artifact_dir):
        from repro.tenancy.harness import run_farm_case

        return run_farm_case(spec, artifact_dir=artifact_dir)


class SelftestProvider:
    """The farm's own fault-injection surface.

    Behaviors: ``ok`` runs a tiny real differential case; ``raise``
    raises inside the worker; ``hang`` executes the verifier corpus's
    ``infinite-loop`` defect program on an un-watchdogged interpreter —
    a genuine in-engine hang only the farm-level timeout can end (the
    platform's own ``core.hang`` injection is always recovered by the
    watchdog ladder, so it cannot exercise the farm's kill path).
    """

    kind = "selftest"

    BEHAVIORS = ("ok", "raise", "hang")

    def normalize(self, sweep):
        behaviors = sweep.get("behaviors", ["ok"])
        for behavior in behaviors:
            if behavior not in self.BEHAVIORS:
                raise FarmConfigError(
                    f"unknown selftest behavior {behavior!r}")
        count = sweep.get("count", 1)
        if not isinstance(count, int) or count < 1:
            raise FarmConfigError("'count' must be a positive integer")
        return {"kind": self.kind, "behaviors": list(behaviors),
                "count": count}

    def expand(self, sweep, config):
        for behavior in sweep["behaviors"]:
            for index in range(sweep["count"]):
                case_id = f"selftest/{behavior}/{index}"
                yield case_id, {"behavior": behavior,
                                "seed": config.case_seed(case_id) % 1000}

    def execute(self, spec, artifact_dir):
        from repro.validate.progen import (
            ProgramGenerator,
            generate_defect_case,
        )
        from repro.validate.runner import (
            DifferentialRunner,
            generated_case_to_diff,
            run_case_outcome,
        )

        behavior = spec["behavior"]
        if behavior == "raise":
            raise RuntimeError("selftest: injected worker exception")
        if behavior == "hang":
            case = generate_defect_case(spec["seed"], "infinite-loop")
            runner = DifferentialRunner(("interp",), trace=False)
            runner.run_case(generated_case_to_diff(case))  # never returns
            return False, "hang case unexpectedly completed", {}, []
        generated = ProgramGenerator(spec["seed"]).generate()
        runner = DifferentialRunner(("interp", "fast"), trace=False)
        ok, detail, counters = run_case_outcome(
            runner, generated_case_to_diff(generated))
        return ok, detail, counters, []


PROVIDERS = {provider.kind: provider for provider in (
    ConformanceProvider(),
    CorpusProvider(),
    FaultProvider(),
    LintProvider(),
    AnalyzeProvider(),
    BenchProvider(),
    TenantsProvider(),
    SelftestProvider(),
)}


def normalize_sweep(sweep):
    """Validate one sweep dict into its canonical (hash-entering) form."""
    kind = sweep.get("kind")
    provider = PROVIDERS.get(kind)
    if provider is None:
        raise FarmConfigError(
            f"unknown sweep kind {kind!r}; known: {sorted(PROVIDERS)}")
    known = set(provider.normalize({"kind": kind,
                                    **_minimal_sweep(kind)}))
    unknown = set(sweep) - known
    if unknown:
        raise FarmConfigError(
            f"{kind} sweep: unknown keys {sorted(unknown)}")
    return provider.normalize(sweep)


def _minimal_sweep(kind):
    """A minimal valid sweep per kind, used to discover the canonical
    key set for unknown-key validation."""
    return {
        "conformance": {},
        "corpus": {"dir": "."},
        "fault": {},
        "lint": {"targets": ["slam"]},
        "analyze": {"targets": ["slam"]},
        "bench": {"workloads": ["nn"]},
        "tenants": {},
        "selftest": {},
    }[kind]


def expand_cases(config):
    """Expand a config into the full deterministic case list.

    Returns ``[case dict]`` where each case is
    ``{"id", "kind", "spec", "seed"}``; ids are validated unique.
    """
    cases = []
    seen = set()
    for sweep in config.sweeps:
        provider = PROVIDERS[sweep["kind"]]
        for case_id, spec in provider.expand(sweep, config):
            if case_id in seen:
                raise FarmConfigError(f"duplicate case id {case_id!r}")
            seen.add(case_id)
            cases.append({
                "id": case_id,
                "kind": sweep["kind"],
                "spec": spec,
                "seed": config.case_seed(case_id),
            })
    return cases
