"""Differential single-instruction execution (fuzzing harness).

Runs one arbitrary arithmetic instruction with arbitrary register inputs
through both independent implementations — the quad-warp NumPy executor and
the scalar Python/struct baseline ALU — and returns both results for
comparison. Memory and uniform ops execute over a pre-seeded scratch buffer
with masked (address-safe) offsets, comparing a digest of registers plus
the final memory image. Hypothesis drives this over the whole ISA in
``tests/test_validation.py``, mirroring the paper's instruction fuzzing
against Arm's reference simulator; whole-program fuzzing lives in
``repro.validate.progen`` / ``repro.validate.conformance``.
"""

import numpy as np

from repro.baselines.m2s import M2SSimulator
from repro.gpu.encoding import encode_program
from repro.gpu.isa import (
    ATOM_MODE_SHIFT,
    Clause,
    Instruction,
    Op,
    Program,
    Tail,
)
from repro.gpu.warp import ClauseInterpreter, QuadWarp

# only NOP is excluded from single-instruction fuzzing; memory/uniform ops
# run through an address-safe scratch-buffer harness (below)
NON_FUZZABLE = {Op.NOP}

MEMORY_OPS = {Op.LD, Op.ST, Op.LDU, Op.ATOM}

FUZZABLE_OPS = tuple(op for op in Op if op not in NON_FUZZABLE)

# transcendental ops where the two implementations may legitimately differ
# in the last ulp (numpy vectorized vs numpy scalar paths)
ULP_TOLERANT = {Op.FEXP, Op.FLOG, Op.FSIN, Op.FCOS, Op.FRSQ, Op.FRCP,
                Op.FSQRT}

# ops whose result is a float32: NaN *payloads* are implementation-defined
# (hardware and numpy both canonicalize differently), so NaN == NaN there
FLOAT_RESULT_OPS = {
    Op.FADD, Op.FSUB, Op.FMUL, Op.FMA, Op.FMIN, Op.FMAX, Op.FABS, Op.FNEG,
    Op.FFLOOR, Op.FRCP, Op.FSQRT, Op.FRSQ, Op.FEXP, Op.FLOG, Op.FSIN,
    Op.FCOS, Op.I2F, Op.U2F,
}


# -- memory-op harness ---------------------------------------------------------

SCRATCH_BYTES = 256   # power of two, so offsets can be masked in
_SCRATCH_VA = 0x1000

_UNIFORM_WORDS = 16   # 10 NDRange words + 6 argument words


def _scratch_words(a_bits, b_bits):
    """Deterministic scratch-buffer contents derived from the fuzz inputs
    (identical in both engines)."""
    mix = (a_bits * 0x9E3779B9 + b_bits * 0x85EBCA6B + 1) & 0xFFFFFFFF
    words = np.empty(SCRATCH_BYTES // 4, dtype=np.uint32)
    for i in range(len(words)):
        mix = (mix * 1664525 + 1013904223) & 0xFFFFFFFF
        words[i] = mix
    return words


def _memory_program(op, a_bits, b_bits, c_bits):
    """A one-clause program exercising *op* once, address-safely.

    The fuzzed bits travel as clause constants so the identical binary runs
    on every engine: ``a_bits`` picks the (masked) scratch offset or the
    uniform index, ``b_bits`` supplies store/atomic data, ``c_bits`` picks
    the access width or the atomic mode.
    """
    slots = [Instruction(Op.LDU, dst=4, imm=10)]  # r4 = scratch base VA
    consts = []

    def const(value):
        value &= 0xFFFFFFFF
        if value not in consts:
            consts.append(value)
        return 128 + consts.index(value)

    if op is Op.LDU:
        slots.append(Instruction(Op.LDU, dst=8,
                                 imm=a_bits % _UNIFORM_WORDS))
        width = 1
    elif op is Op.ATOM:
        mode = c_bits % 8
        offset = a_bits & (SCRATCH_BYTES - 4)
        slots.append(Instruction(Op.MOV, dst=1, srca=const(offset)))
        slots.append(Instruction(Op.IADD, dst=1, srca=1, srcb=4))
        slots.append(Instruction(Op.MOV, dst=2, srca=const(b_bits)))
        slots.append(Instruction(Op.ATOM, dst=8, srca=1, srcb=2,
                                 flags=mode << ATOM_MODE_SHIFT))
        width = 1
    else:
        log2w = c_bits % 3
        width = 1 << log2w
        offset = a_bits & (SCRATCH_BYTES - 4 * width)
        slots.append(Instruction(Op.MOV, dst=1, srca=const(offset)))
        slots.append(Instruction(Op.IADD, dst=1, srca=1, srcb=4))
        if op is Op.LD:
            slots.append(Instruction(Op.LD, dst=8, srca=1, flags=log2w))
        else:
            for element in range(width):
                slots.append(Instruction(
                    Op.MOV, dst=8 + element,
                    srca=const(b_bits ^ (element * 0x01010101))))
            slots.append(Instruction(Op.ST, srca=1, srcb=8, flags=log2w))
    tuples = [(slot, Instruction(Op.NOP)) for slot in slots]
    program = Program(clauses=[Clause(tuples=tuples, constants=consts,
                                      tail=Tail.END)])
    program.validate()
    return program, width


class _ScratchMemory:
    """Minimal per-word memory port over the scratch window (the interpreter
    falls back to load_u32/store_u32 when no quad port is exposed)."""

    def __init__(self, words):
        self.words = np.array(words, dtype=np.uint32)

    def load_u32(self, addr):
        return int(self.words[(addr - _SCRATCH_VA) >> 2])

    def store_u32(self, addr, value):
        self.words[(addr - _SCRATCH_VA) >> 2] = value


def _digest(words):
    value = 2166136261
    for word in words:
        value = ((value ^ (int(word) & 0xFFFFFFFF)) * 16777619) & 0xFFFFFFFF
    return value


class _Shim:
    local_static_size = 0
    scratch_per_thread = 0

    def __init__(self, binary):
        self.binary = binary


def execute_memory_both(op, a_bits, b_bits, c_bits):
    """Run one memory/uniform instruction on both engines over an identical
    seeded scratch buffer; returns a digest of the destination registers and
    the final memory image per engine."""
    program, width = _memory_program(op, a_bits, b_bits, c_bits)
    scratch = _scratch_words(a_bits, b_bits)
    args = [_SCRATCH_VA]
    mix = b_bits
    for _ in range(_UNIFORM_WORDS - 11):
        mix = (mix * 0x41C64E6D + 12345) & 0xFFFFFFFF
        args.append(mix)

    # quad engine: one live lane, scalar memory port
    uniforms = np.array([1, 1, 1, 1, 1, 1, 1, 1, 1, 1] + args,
                        dtype=np.uint32)
    mem = _ScratchMemory(scratch)
    interp = ClauseInterpreter(program, uniforms, mem)
    warp = QuadWarp(active_lanes=1)
    interp.run_warp(warp)
    quad_regs = [int(warp.regs[0, 8 + e]) for e in range(width)]
    quad_bits = _digest(quad_regs + list(mem.words))

    # scalar baseline: same binary, same flat layout
    sim = M2SSimulator(memory_size=_SCRATCH_VA + 4 * SCRATCH_BYTES,
                       capture_registers=True)
    sim.place(_SCRATCH_VA, scratch)
    sim.run_kernel(_Shim(encode_program(program)), (1, 1, 1), (1, 1, 1),
                   args)
    regs, _temps = sim.retired_registers[(0, 0, 0)]
    scalar_regs = [regs[8 + e] for e in range(width)]
    scalar_mem = sim.read(_SCRATCH_VA, SCRATCH_BYTES // 4, np.uint32)
    scalar_bits = _digest(scalar_regs + list(scalar_mem))
    return quad_bits, scalar_bits


def execute_instruction_both(op, a_bits, b_bits, c_bits, flags=0):
    """Execute ``op`` with raw 32-bit inputs on both engines.

    Returns (quad_result_bits, scalar_result_bits) for lane/thread 0.
    Memory/uniform ops are routed through the scratch-buffer harness and
    compare a digest of registers + memory instead of a single register.
    """
    if op in MEMORY_OPS:
        return execute_memory_both(op, a_bits, b_bits, c_bits)
    instr = Instruction(op, dst=0, srca=1, srcb=2, srcc=3, flags=flags)
    clause = Clause(tuples=[(instr, Instruction(Op.NOP))], tail=Tail.END)
    program = Program(clauses=[clause])

    interp = ClauseInterpreter(program, np.zeros(1, dtype=np.uint32),
                               mem=None)
    warp = QuadWarp()
    warp.regs[:, 1] = np.uint32(a_bits)
    warp.regs[:, 2] = np.uint32(b_bits)
    warp.regs[:, 3] = np.uint32(c_bits)
    interp.run_warp(warp)
    quad_bits = int(warp.regs[0, 0])

    scalar_bits = int(M2SSimulator._alu(op, instr, a_bits & 0xFFFFFFFF,
                                        b_bits & 0xFFFFFFFF,
                                        c_bits & 0xFFFFFFFF)) & 0xFFFFFFFF
    return quad_bits, scalar_bits


def results_equivalent(op, quad_bits, scalar_bits, ulps=2):
    """Bit-equal, or within *ulps* for the transcendental special-function
    ops (and NaN == NaN)."""
    if quad_bits == scalar_bits:
        return True
    a = np.uint32(quad_bits).view(np.float32)
    b = np.uint32(scalar_bits).view(np.float32)
    if op in FLOAT_RESULT_OPS and np.isnan(a) and np.isnan(b):
        return True
    if op not in ULP_TOLERANT:
        return False
    if np.isinf(a) or np.isinf(b):
        return bool(a == b)
    # ulp distance via ordered-integer representation
    ia = np.int64(np.uint32(quad_bits).view(np.int32))
    ib = np.int64(np.uint32(scalar_bits).view(np.int32))
    if ia < 0:
        ia = np.int64(-0x80000000) - ia
    if ib < 0:
        ib = np.int64(-0x80000000) - ib
    return abs(int(ia) - int(ib)) <= ulps
