"""Differential single-instruction execution (fuzzing harness).

Runs one arbitrary arithmetic instruction with arbitrary register inputs
through both independent implementations — the quad-warp NumPy executor and
the scalar Python/struct baseline ALU — and returns both results for
comparison. Hypothesis drives this over the whole ISA in
``tests/test_validation.py``, mirroring the paper's instruction fuzzing
against Arm's reference simulator.
"""

import numpy as np

from repro.baselines.m2s import M2SSimulator
from repro.gpu.isa import Clause, Instruction, Op, Program, Tail
from repro.gpu.warp import ClauseInterpreter, QuadWarp

# ops excluded from single-instruction fuzzing (memory/uniform ports need
# address setup and are validated by the kernel-level trace comparison)
NON_FUZZABLE = {Op.NOP, Op.LD, Op.ST, Op.LDU, Op.ATOM}

FUZZABLE_OPS = tuple(op for op in Op if op not in NON_FUZZABLE)

# transcendental ops where the two implementations may legitimately differ
# in the last ulp (numpy vectorized vs numpy scalar paths)
ULP_TOLERANT = {Op.FEXP, Op.FLOG, Op.FSIN, Op.FCOS, Op.FRSQ, Op.FRCP,
                Op.FSQRT}

# ops whose result is a float32: NaN *payloads* are implementation-defined
# (hardware and numpy both canonicalize differently), so NaN == NaN there
FLOAT_RESULT_OPS = {
    Op.FADD, Op.FSUB, Op.FMUL, Op.FMA, Op.FMIN, Op.FMAX, Op.FABS, Op.FNEG,
    Op.FFLOOR, Op.FRCP, Op.FSQRT, Op.FRSQ, Op.FEXP, Op.FLOG, Op.FSIN,
    Op.FCOS, Op.I2F, Op.U2F,
}


def execute_instruction_both(op, a_bits, b_bits, c_bits, flags=0):
    """Execute ``op`` with raw 32-bit inputs on both engines.

    Returns (quad_result_bits, scalar_result_bits) for lane/thread 0.
    """
    instr = Instruction(op, dst=0, srca=1, srcb=2, srcc=3, flags=flags)
    clause = Clause(tuples=[(instr, Instruction(Op.NOP))], tail=Tail.END)
    program = Program(clauses=[clause])

    interp = ClauseInterpreter(program, np.zeros(1, dtype=np.uint32),
                               mem=None)
    warp = QuadWarp()
    warp.regs[:, 1] = np.uint32(a_bits)
    warp.regs[:, 2] = np.uint32(b_bits)
    warp.regs[:, 3] = np.uint32(c_bits)
    interp.run_warp(warp)
    quad_bits = int(warp.regs[0, 0])

    scalar_bits = int(M2SSimulator._alu(op, instr, a_bits & 0xFFFFFFFF,
                                        b_bits & 0xFFFFFFFF,
                                        c_bits & 0xFFFFFFFF)) & 0xFFFFFFFF
    return quad_bits, scalar_bits


def results_equivalent(op, quad_bits, scalar_bits, ulps=2):
    """Bit-equal, or within *ulps* for the transcendental special-function
    ops (and NaN == NaN)."""
    if quad_bits == scalar_bits:
        return True
    a = np.uint32(quad_bits).view(np.float32)
    b = np.uint32(scalar_bits).view(np.float32)
    if op in FLOAT_RESULT_OPS and np.isnan(a) and np.isnan(b):
        return True
    if op not in ULP_TOLERANT:
        return False
    if np.isinf(a) or np.isinf(b):
        return bool(a == b)
    # ulp distance via ordered-integer representation
    ia = np.int64(np.uint32(quad_bits).view(np.int32))
    ib = np.int64(np.uint32(scalar_bits).view(np.int32))
    if ia < 0:
        ia = np.int64(-0x80000000) - ia
    if ib < 0:
        ib = np.int64(-0x80000000) - ib
    return abs(int(ia) - int(ib)) <= ulps
