"""Instruction-trace recording and differential comparison."""

from dataclasses import dataclass

import numpy as np

from repro.gpu.isa import REG_GLOBAL_ID


@dataclass(frozen=True)
class TraceEvent:
    """One observed instruction effect for one thread."""

    op: str
    dst: int
    element: int
    value: int

    def __repr__(self):
        return f"{self.op} d{self.dst}[{self.element}]=0x{self.value:08x}"


class InstructionTracer:
    """Records per-thread instruction effects.

    Works with both engines: the quad-warp executor calls
    :meth:`record_quad` (one call covers up to four lanes), the scalar
    baseline calls :meth:`record_scalar`. Threads are keyed by their global
    id triple, so traces from differently-scheduled engines align.
    """

    def __init__(self):
        self.by_thread = {}

    def _append(self, key, event):
        self.by_thread.setdefault(key, []).append(event)

    def record_quad(self, warp, mask, instr, values, element=0):
        regs = warp.regs
        for lane in np.flatnonzero(mask):
            key = (int(regs[lane, REG_GLOBAL_ID]),
                   int(regs[lane, REG_GLOBAL_ID + 1]),
                   int(regs[lane, REG_GLOBAL_ID + 2]))
            self._append(key, TraceEvent(instr.op.name, instr.dst, element,
                                         int(values[lane]) & 0xFFFFFFFF))

    def record_scalar(self, thread, instr, value, element=0):
        regs = thread.regs
        key = (regs[REG_GLOBAL_ID], regs[REG_GLOBAL_ID + 1],
               regs[REG_GLOBAL_ID + 2])
        self._append(key, TraceEvent(instr.op.name, instr.dst, element,
                                     int(value) & 0xFFFFFFFF))

    @property
    def total_events(self):
        return sum(len(events) for events in self.by_thread.values())


@dataclass
class TraceMismatch:
    """First point of divergence between two traces."""

    thread: tuple
    index: int
    ours: object  # TraceEvent or None (missing)
    reference: object

    def __str__(self):
        return (f"thread {self.thread} diverges at instruction {self.index}: "
                f"ours={self.ours!r} reference={self.reference!r}")


def compare_traces(ours, reference):
    """Diff two :class:`InstructionTracer` contents.

    Returns a list of :class:`TraceMismatch` (empty when the engines are
    instruction-for-instruction identical — the paper's "100% architectural
    accuracy" check).
    """
    mismatches = []
    threads = set(ours.by_thread) | set(reference.by_thread)
    for thread in sorted(threads):
        mine = ours.by_thread.get(thread, [])
        theirs = reference.by_thread.get(thread, [])
        for index in range(max(len(mine), len(theirs))):
            a = mine[index] if index < len(mine) else None
            b = theirs[index] if index < len(theirs) else None
            if a != b:
                mismatches.append(TraceMismatch(thread, index, a, b))
                break  # report first divergence per thread
    return mismatches


def trace_kernel_both(source, kernel_name, global_size, local_size,
                      buffers, scalars=(), local_args=(), version=None):
    """Run one kernel on both engines in tracing mode; returns
    (mismatches, quad_tracer, scalar_tracer, outputs).

    Args:
        source: kernel-language source text.
        kernel_name: kernel to launch.
        global_size/local_size: NDRange.
        buffers: list of NumPy arrays; uploaded as buffer arguments (in
            parameter order, before scalars).
        scalars: scalar argument values (after the buffers).
        local_args: LocalMemory sizes in bytes (after scalars).
        version: compiler version preset.

    Output buffers are read back from both engines and compared bit-exact;
    a mismatch there raises AssertionError (traces explain *where*).
    """
    from repro.cl import CommandQueue, Context, LocalMemory
    from repro.core.platform import MobilePlatform, PlatformConfig
    from repro.gpu.device import GPUConfig
    from repro.baselines.m2s import M2SSimulator
    from repro.clc import compile_source

    quad_tracer = InstructionTracer()
    scalar_tracer = InstructionTracer()

    # full-system quad engine
    config = PlatformConfig(gpu=GPUConfig(tracer=quad_tracer))
    context = Context(MobilePlatform(config))
    queue = CommandQueue(context)
    kernel = context.build_program(source, version=version).kernel(kernel_name)
    device_buffers = [context.buffer_from_array(array) for array in buffers]
    args = list(device_buffers) + list(scalars) + [
        LocalMemory(nbytes) for nbytes in local_args
    ]
    kernel.set_args(*args)
    queue.enqueue_nd_range(kernel, global_size, local_size)
    quad_outputs = [
        queue.enqueue_read_buffer(buf, array.dtype, count=array.size)
        for buf, array in zip(device_buffers, buffers)
    ]

    # scalar baseline engine: same binary, and buffers placed at the SAME
    # addresses the full-system run used, so address arithmetic traces
    # identically
    compiled = compile_source(source, options=version).kernel(kernel_name)
    highest = max(buf.gpu_va + buf.nbytes for buf in device_buffers)
    sim = M2SSimulator(memory_size=1 << max(highest.bit_length() + 1, 20),
                       tracer=scalar_tracer)
    addresses = [
        sim.place(buf.gpu_va, array)
        for buf, array in zip(device_buffers, buffers)
    ]
    scalar_args = list(addresses)
    for value in scalars:
        if isinstance(value, float) or (hasattr(value, "dtype")
                                        and value.dtype.kind == "f"):
            scalar_args.append(int(np.float32(value).view(np.uint32)))
        else:
            scalar_args.append(int(value) & 0xFFFFFFFF)
    cursor = compiled.local_static_size
    threads_per_group = int(np.prod(np.array(local_size)))
    cursor += compiled.scratch_per_thread * threads_per_group
    for nbytes in local_args:
        scalar_args.append(cursor)
        cursor += (nbytes + 3) & ~3
    sim.run_kernel(compiled, global_size, local_size, scalar_args)
    scalar_outputs = [
        sim.read(addr, array.size, array.dtype)
        for addr, array in zip(addresses, buffers)
    ]

    for ours, theirs in zip(quad_outputs, scalar_outputs):
        np.testing.assert_array_equal(
            ours.view(np.uint32), theirs.view(np.uint32),
            err_msg="engines disagree on output buffer contents",
        )
    mismatches = compare_traces(quad_tracer, scalar_tracer)
    return mismatches, quad_tracer, scalar_tracer, quad_outputs
