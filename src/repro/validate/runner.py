"""N-way differential execution of GPU programs (conformance harness).

Runs one :class:`DiffCase` through up to five independent execution engines
and compares every observable outcome:

- ``interp`` — the quad-warp clause interpreter with the MMU quad fast path
  *disabled* (scalar per-word memory port), fully instrumented. This is the
  reference engine.
- ``fast``   — the same interpreter with the quad gather/scatter fast path
  enabled (PR 1's vectorized pipeline), fully instrumented.
- ``jit``    — the closure-translation JIT engine, instrumented (it must
  report the same unified counters as the interpreter).
- ``mega``   — the workgroup-wide megakernel engine: one structure-of-arrays
  register file per thread-group, lane-mask divergence, wide MMU
  gather/scatter; instrumented (programs it cannot specialize — atomics —
  fall back to the JIT tier inside the compute unit).
- ``m2s``    — the scalar Multi2Sim-style baseline: thread-at-a-time, flat
  memory, per-visit re-decode from the encoded binary.

Compared per engine pair: final registers and clause temporaries of every
thread, the full memory image of every buffer region, normalized
instruction-category counters, and for the instrumented engines the golden
``StatsRegistry`` dump (the same registration helpers the full platform
uses, so fuzzing guards exactly the counters the platform reports),
divergence CFG and MMU translation behaviour. When both the reference and
the baseline carry a tracer, retired per-thread instruction streams are
diffed too.

The quad engines run behind real page tables that map adjacent virtual
pages to *non-adjacent* physical frames, so the fast path's cross-page
tiers cannot pass by accident; the m2s baseline places the same data at the
same virtual addresses in its flat memory.
"""

from dataclasses import dataclass, replace

import numpy as np

from repro.gpu.isa import NUM_GRF, REG_GLOBAL_ID, Program
from repro.gpu.encoding import encode_program
from repro.gpu.mmu import GPUMMU
from repro.gpu.shadercore import ComputeUnit, WorkgroupShape
from repro.mem import PAGE_SIZE, PTE_READ, PTE_WRITE, PageTableBuilder, \
    PhysicalMemory
from repro.validate.trace import InstructionTracer, compare_traces

ENGINES = ("interp", "fast", "jit", "mega", "m2s")

# quad-engine name -> GPUConfig/ComputeUnit engine selector
_UNIT_ENGINE = {"jit": "jit", "mega": "mega"}

# virtual layout for generated cases (shared with repro.validate.progen)
VA_IN = 0x0010_0000
VA_OUT = VA_IN + 0x2000
VA_ATOM = VA_OUT + 0x2000
# per-thread output slices start 128 bytes before a page boundary so that
# neighbouring lanes' slices straddle pages (exercises cross-page scatter)
OUT_SLICE_BASE = VA_OUT + PAGE_SIZE - 128

_PHYS_SIZE = 1 << 22
_TABLE_FRAME_BASE = 0x0008_0000
_DATA_FRAME_BASE = 0x0010_0000


def _pages(nbytes):
    return -(-nbytes // PAGE_SIZE)


@dataclass
class DiffCase:
    """One differential test case: a program plus launch and memory setup.

    Attributes:
        program: decoded :class:`~repro.gpu.isa.Program`.
        global_size/local_size: NDRange (3-tuples).
        regions: list of ``(name, va, words)`` buffer regions; *words* is a
            1-D uint32 array, *va* must be page-aligned.
        args: kernel argument u32 values (buffer VAs, scalar bits, local
            byte offsets) appended to the 10 NDRange uniforms.
        local_bytes: workgroup-local slab size.
    """

    program: Program
    global_size: tuple
    local_size: tuple
    regions: list
    args: list
    local_bytes: int = 4096
    name: str = "case"

    def with_program(self, program):
        return replace(self, program=program)


def generated_case_to_diff(case):
    """Adapt a :class:`~repro.validate.progen.GeneratedCase`."""
    threads = case.global_size[0] * case.global_size[1] * case.global_size[2]
    out_words = np.zeros(0x2000 // 4, dtype=np.uint32)
    atom_words = np.zeros(PAGE_SIZE // 4, dtype=np.uint32)
    assert OUT_SLICE_BASE + threads * 64 <= VA_OUT + 0x2000
    return DiffCase(
        program=case.program,
        global_size=tuple(case.global_size),
        local_size=tuple(case.local_size),
        regions=[
            ("in", VA_IN, np.asarray(case.in_words, dtype=np.uint32)),
            ("out", VA_OUT, out_words),
            ("atom", VA_ATOM, atom_words),
        ],
        args=[VA_IN, OUT_SLICE_BASE, VA_ATOM,
              case.extra_uniforms[0], case.extra_uniforms[1]],
        name=case.label or f"gen[{case.seed}:{case.index}]",
    )


def verify_context_for_case(case):
    """Full launch-time verifier context for a generated case.

    Mirrors :func:`generated_case_to_diff` exactly — same VAs, region
    sizes and NDRange — so must-fault/race claims made against this
    context are checkable by actually running the case.
    """
    from repro.validate.progen import IN_BYTES, UNIFORM_COUNT
    from repro.gpu.verify import BufferInfo, VerifyContext

    g, l = case.global_size, case.local_size
    out_size = VA_OUT + 0x2000 - OUT_SLICE_BASE
    ctx = VerifyContext(
        name=case.label or "gen",
        uniform_count=UNIFORM_COUNT,
        buffers={
            10: BufferInfo(slot=10, size=IN_BYTES, va=VA_IN, name="in"),
            11: BufferInfo(slot=11, size=out_size, va=OUT_SLICE_BASE,
                           name="out"),
            12: BufferInfo(slot=12, size=PAGE_SIZE, va=VA_ATOM,
                           name="atom"),
        },
        scalar_slots={13, 14},
        uniform_values={
            0: g[0], 1: g[1], 2: g[2],
            3: l[0], 4: l[1], 5: l[2],
            6: g[0] // l[0], 7: g[1] // l[1], 8: g[2] // l[2],
            13: case.extra_uniforms[0], 14: case.extra_uniforms[1],
        },
        local_bytes=4096,
        mapped_ranges=[
            (VA_IN, VA_IN + IN_BYTES),
            (VA_OUT, VA_OUT + 0x2000),
            (VA_ATOM, VA_ATOM + PAGE_SIZE),
        ],
        threads=g[0] * g[1] * g[2],
        threads_per_group=l[0] * l[1] * l[2],
    )
    return ctx


def make_kernel_case(source, kernel_name, global_size, local_size, buffers,
                     scalars=(), local_args=(), version=None, name=None):
    """Build a :class:`DiffCase` from kernel-language source (compiled once,
    then executed from the same binary by every engine)."""
    from repro.clc import compile_source

    compiled = compile_source(source, options=version).kernel(kernel_name)
    global_size = tuple(global_size) + (1,) * (3 - len(global_size))
    local_size = tuple(local_size) + (1,) * (3 - len(local_size))
    threads_per_group = local_size[0] * local_size[1] * local_size[2]
    cursor = (compiled.local_static_size
              + compiled.scratch_per_thread * threads_per_group)
    regions = []
    args = []
    va = VA_IN
    # arguments are positional: consume the buffer/scalar/local queues in
    # the kernel's declared parameter order
    buffer_queue = list(buffers)
    scalar_queue = list(scalars)
    local_queue = list(local_args)
    for _param, kind, _ty in compiled.params:
        if kind == "buffer":
            array = buffer_queue.pop(0)
            words = np.ascontiguousarray(array).reshape(-1).view(np.uint32)
            regions.append((f"buf{len(regions)}", va, words))
            args.append(va)
            va += _pages(max(words.nbytes, 4)) * PAGE_SIZE
        elif kind == "local_ptr":
            nbytes = local_queue.pop(0)
            args.append(cursor)
            cursor += (nbytes + 3) & ~3
        else:
            value = scalar_queue.pop(0)
            if isinstance(value, float) or (hasattr(value, "dtype")
                                            and value.dtype.kind == "f"):
                args.append(int(np.float32(value).view(np.uint32)))
            else:
                args.append(int(value) & 0xFFFFFFFF)
    if buffer_queue or scalar_queue or local_queue:
        raise ValueError(
            f"argument count mismatch for {kernel_name}: "
            f"{len(buffer_queue)} buffers, {len(scalar_queue)} scalars, "
            f"{len(local_queue)} local args left over")
    return DiffCase(
        program=compiled.program,
        global_size=global_size,
        local_size=local_size,
        regions=regions,
        args=args,
        local_bytes=max(4096, (cursor + 4095) & ~4095),
        name=name or kernel_name,
    )


@dataclass
class EngineResult:
    """Everything observable from one engine's execution of a case."""

    engine: str
    registers: dict = None   # gid triple -> (regs tuple, temps tuple)
    memory: dict = None      # region name -> bytes
    counters: dict = None    # normalized instruction categories
    stats: dict = None       # full JobStats fields (instrumented engines)
    cfg: tuple = None        # (edges dict, divergences dict)
    mmu: dict = None         # pages/translation behaviour
    trace: InstructionTracer = None
    error: str = None        # set when the engine raised


@dataclass
class Mismatch:
    """One observed divergence between two engines."""

    kind: str       # registers|memory|counters|stats|cfg|mmu|trace|crash
    engines: tuple
    detail: str

    def __str__(self):
        return f"[{self.kind}] {' vs '.join(self.engines)}: {self.detail}"


def build_uniforms(case):
    """The 10 NDRange uniforms + argument words (same layout in every
    engine; mirrors M2SSimulator.run_kernel and the CL runtime)."""
    g, l = case.global_size, case.local_size
    num_groups = tuple(gd // ld for gd, ld in zip(g, l))
    uniforms = list(g) + list(l) + list(num_groups)
    uniforms.append(sum(1 for gd in g if gd > 1) or 1)
    uniforms.extend(int(a) & 0xFFFFFFFF for a in case.args)
    return np.array(uniforms, dtype=np.uint32)


class _CompiledShim:
    """Just enough of a CompiledKernel for M2SSimulator.run_kernel."""

    def __init__(self, binary, local_static_size=0, scratch_per_thread=0):
        self.binary = binary
        self.local_static_size = local_static_size
        self.scratch_per_thread = scratch_per_thread


class DifferentialRunner:
    """Executes cases on an engine subset and compares all outcomes."""

    def __init__(self, engines=ENGINES, trace=True):
        for engine in engines:
            if engine not in ENGINES:
                raise ValueError(f"unknown engine {engine!r}")
        self.engines = tuple(engines)
        # instruction tracing needs both the reference interpreter and the
        # scalar baseline (tracing pins the interpreter's scalar memory
        # path, which is exactly the "interp" configuration)
        self.trace = trace and "interp" in engines and "m2s" in engines

    # -- engine execution ------------------------------------------------------

    def run_case(self, case):
        """Run *case* on every engine; returns (results dict, mismatches)."""
        results = {}
        for engine in self.engines:
            tracer = InstructionTracer() \
                if self.trace and engine in ("interp", "m2s") else None
            try:
                if engine == "m2s":
                    results[engine] = self._run_m2s(case, tracer)
                else:
                    results[engine] = self._run_quad(case, engine, tracer)
            except Exception as exc:  # noqa: BLE001 - crash is an outcome
                results[engine] = EngineResult(
                    engine=engine,
                    error=f"{type(exc).__name__}: {exc}")
        return results, self.compare(results)

    def _run_quad(self, case, engine, tracer):
        phys = PhysicalMemory(_PHYS_SIZE)
        table_frame = [_TABLE_FRAME_BASE]

        def alloc_table_frame():
            frame = table_frame[0]
            table_frame[0] += PAGE_SIZE
            return frame

        builder = PageTableBuilder(phys, alloc_table_frame)
        va_to_pa = {}
        data_frame = _DATA_FRAME_BASE
        for _name, va, words in case.regions:
            data = np.ascontiguousarray(words, dtype=np.uint32).tobytes()
            for page in range(_pages(max(len(data), 1))):
                page_va = va + page * PAGE_SIZE
                # adjacent virtual pages -> non-adjacent physical frames,
                # so cross-page quads can never pass by accident
                builder.map_page(page_va, data_frame, PTE_READ | PTE_WRITE)
                va_to_pa[page_va] = data_frame
                chunk = data[page * PAGE_SIZE:(page + 1) * PAGE_SIZE]
                if chunk:
                    phys.write_block(data_frame, chunk)
                data_frame += 2 * PAGE_SIZE
        mmu = GPUMMU(phys)
        mmu.set_page_table(builder.root)
        mmu.enabled = True
        mmu.fast_path_enabled = engine != "interp"

        instrumented = engine in ("interp", "fast", "jit", "mega")
        # CFG collection needs per-issue visibility the JIT's and the
        # megakernel's translated closures avoid, so only the interpreter
        # engines build it
        collect_cfg = engine in ("interp", "fast")
        unit = ComputeUnit(0)
        unit.prepare(case.local_bytes, instrument=instrumented,
                     collect_cfg=collect_cfg, tracer=tracer,
                     engine=_UNIT_ENGINE.get(engine, "interpreter"))
        shape = WorkgroupShape(case.global_size, case.local_size)
        uniforms = build_uniforms(case)
        registers = {}
        for flat_group in range(shape.total_groups):
            warps = unit.run_workgroup(case.program, uniforms, mmu, shape,
                                       flat_group)
            for warp in warps:
                for lane in np.flatnonzero(warp.live):
                    regs = warp.regs[lane]
                    key = (int(regs[REG_GLOBAL_ID]),
                           int(regs[REG_GLOBAL_ID + 1]),
                           int(regs[REG_GLOBAL_ID + 2]))
                    registers[key] = (
                        tuple(int(v) for v in regs),
                        tuple(int(v) for v in warp.temps[lane]))

        memory = {}
        for name, va, words in case.regions:
            nbytes = words.nbytes
            image = bytearray()
            for page in range(_pages(max(nbytes, 1))):
                image += phys.read_block(va_to_pa[va + page * PAGE_SIZE],
                                         PAGE_SIZE)
            memory[name] = bytes(image[:nbytes])

        result = EngineResult(engine=engine, registers=registers,
                              memory=memory, trace=tracer)
        if instrumented:
            stats = unit.stats
            result.counters = _quad_counters(stats)
            result.stats = _unified_dump(stats, mmu)
            if collect_cfg:
                result.cfg = (unit.cfg.edges, unit.cfg.divergences)
            result.mmu = {
                "pages_accessed": frozenset(mmu.pages_accessed),
                "translations": mmu.translations,
            }
        return result

    def _run_m2s(self, case, tracer):
        from repro.baselines.m2s import M2SSimulator

        top = max(va + _pages(max(words.nbytes, 1)) * PAGE_SIZE
                  for _n, va, words in case.regions)
        sim = M2SSimulator(memory_size=1 << max(top.bit_length() + 1, 20),
                           tracer=tracer, capture_registers=True)
        for _name, va, words in case.regions:
            if words.size:
                sim.place(va, words)
        shim = _CompiledShim(encode_program(case.program))
        sim.run_kernel(shim, case.global_size, case.local_size, case.args)
        registers = dict(sim.retired_registers)
        memory = {
            name: sim.read(va, words.size, np.uint32).tobytes()
            if words.size else b""
            for name, va, words in case.regions
        }
        counters = {
            "arith": sim.stats.arith,
            "ls": sim.stats.load_store,
            "nop": sim.stats.nop,
            "cf": sim.stats.control_flow,
        }
        return EngineResult(engine="m2s", registers=registers, memory=memory,
                            counters=counters, trace=tracer)

    # -- comparison ------------------------------------------------------------

    def compare(self, results):
        """All pairwise comparisons against the first engine in the subset
        (instrumentation-level comparisons only between engines that carry
        the corresponding data)."""
        mismatches = []
        crashed = [(e, r) for e, r in results.items() if r.error is not None]
        if crashed:
            # well-formed cases must not fault in any engine; report and
            # skip state comparisons (there is no state to compare)
            for engine, result in crashed:
                mismatches.append(Mismatch("crash", (engine,), result.error))
            return mismatches
        order = [e for e in self.engines if e in results]
        ref = results[order[0]]
        for engine in order[1:]:
            mismatches.extend(self._compare_pair(ref, results[engine]))
        return mismatches

    def _compare_pair(self, ref, other):
        found = []
        pair = (ref.engine, other.engine)
        found.extend(self._compare_registers(pair, ref, other))
        found.extend(self._compare_memory(pair, ref, other))
        if ref.counters is not None and other.counters is not None \
                and ref.counters != other.counters:
            found.append(Mismatch(
                "counters", pair,
                f"{ref.counters} != {other.counters}"))
        if ref.stats is not None and other.stats is not None \
                and ref.stats != other.stats:
            diff = [k for k in ref.stats if ref.stats[k] != other.stats[k]]
            found.append(Mismatch("stats", pair, f"fields differ: {diff}"))
        if ref.cfg is not None and other.cfg is not None \
                and ref.cfg != other.cfg:
            found.append(Mismatch("cfg", pair,
                                  "divergence CFG edges/events differ"))
        if ref.mmu is not None and other.mmu is not None \
                and ref.mmu != other.mmu:
            found.append(Mismatch(
                "mmu", pair,
                f"pages/translations differ: {ref.mmu['translations']} vs "
                f"{other.mmu['translations']} translations"))
        if ref.trace is not None and other.trace is not None:
            trace_diffs = compare_traces(ref.trace, other.trace)
            if trace_diffs:
                found.append(Mismatch("trace", pair, str(trace_diffs[0])))
        return found

    @staticmethod
    def _compare_registers(pair, ref, other):
        if set(ref.registers) != set(other.registers):
            missing = set(ref.registers) ^ set(other.registers)
            return [Mismatch("threads", pair,
                             f"thread sets differ: {sorted(missing)[:4]}")]
        for key in sorted(ref.registers):
            a_regs, a_temps = ref.registers[key]
            b_regs, b_temps = other.registers[key]
            if a_regs != b_regs:
                reg = next(i for i in range(NUM_GRF)
                           if a_regs[i] != b_regs[i])
                return [Mismatch(
                    "registers", pair,
                    f"thread {key} r{reg}: 0x{a_regs[reg]:08x} != "
                    f"0x{b_regs[reg]:08x}")]
            if a_temps != b_temps:
                t = next(i for i in range(len(a_temps))
                         if a_temps[i] != b_temps[i])
                return [Mismatch(
                    "registers", pair,
                    f"thread {key} t{t}: 0x{a_temps[t]:08x} != "
                    f"0x{b_temps[t]:08x}")]
        return []

    @staticmethod
    def _compare_memory(pair, ref, other):
        for name in ref.memory:
            a, b = ref.memory[name], other.memory.get(name)
            if a == b:
                continue
            if b is None:
                return [Mismatch("memory", pair, f"region {name} missing")]
            word = next(i for i in range(0, min(len(a), len(b)), 4)
                        if a[i:i + 4] != b[i:i + 4])
            a_val = int.from_bytes(a[word:word + 4], "little")
            b_val = int.from_bytes(b[word:word + 4], "little")
            return [Mismatch(
                "memory", pair,
                f"region {name} word {word // 4}: 0x{a_val:08x} != "
                f"0x{b_val:08x}")]
        return []


def run_case_outcome(runner, case):
    """Run *case* and normalize the result into the farm's case-outcome
    shape: ``(ok, detail, counters)``.

    *counters* holds each engine's normalized instruction categories under
    ``<engine>.<category>`` names (plain ints, deterministic order), so
    aggregated farm reports stay byte-identical however the case was
    scheduled; *detail* carries the first few mismatches on failure.
    """
    results, mismatches = runner.run_case(case)
    counters = {}
    for engine in sorted(results):
        result = results[engine]
        if result.error is not None:
            counters[f"{engine}.crash"] = 1
        elif result.counters:
            for key in sorted(result.counters):
                counters[f"{engine}.{key}"] = int(result.counters[key])
    detail = "; ".join(str(m) for m in mismatches[:3])
    return not mismatches, detail, counters


def _unified_dump(stats, mmu):
    """The golden StatsRegistry dump for one engine's run.

    Uses the same registration helpers as the full platform, so the
    conformance fuzzer guards exactly the counters the platform reports;
    golden-only filtering drops engine diagnostics (quad-path shape) that
    legitimately differ between engines.
    """
    from repro.instrument.registry import (
        StatsRegistry,
        register_job_stats,
        register_mmu_stats,
    )

    registry = StatsRegistry()
    register_job_stats(registry.scope("gpu.job"), lambda: stats)
    register_mmu_stats(registry.scope("gpu.mmu"), mmu)
    return registry.dump(golden_only=True)


def _quad_counters(stats):
    """JobStats collapsed to the categories the m2s baseline reports."""
    return {
        "arith": stats.arith_instrs,
        "ls": (stats.ls_global_instrs + stats.ls_local_instrs
               + stats.const_load_instrs),
        "nop": stats.nop_instrs,
        "cf": stats.cf_instrs,
    }
