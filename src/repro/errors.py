"""Exception hierarchy for the simulator.

Every subsystem raises a subclass of :class:`SimError`, so callers can
distinguish simulator faults from ordinary Python errors.
"""


class SimError(Exception):
    """Base class for all simulator errors."""


class MemoryError_(SimError):
    """Physical memory access outside any mapped region."""


class BusError(SimError):
    """MMIO access to an unmapped or misaligned device address."""


class MMUFault(SimError):
    """Address translation failure (unmapped page or permission violation).

    Attributes:
        vaddr: faulting virtual address.
        access: 'r', 'w' or 'x'.
    """

    def __init__(self, vaddr, access, message=""):
        super().__init__(message or f"MMU fault at 0x{vaddr:x} ({access})")
        self.vaddr = vaddr
        self.access = access


class DecodeError(SimError):
    """Invalid instruction or clause encoding."""


class GuestError(SimError):
    """Guest CPU program fault (bad opcode, misaligned access, ...)."""


class CompileError(SimError):
    """Kernel-language compilation failure.

    Attributes:
        line: 1-based source line of the error, or None.
        col: 1-based source column of the error, or None.
    """

    def __init__(self, message, line=None, col=None):
        location = f" at {line}:{col}" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.col = col


class CLError(SimError):
    """OpenCL-like runtime API misuse (bad arg index, wrong sizes, ...)."""


class DriverError(SimError):
    """GPU kernel-driver failure (out of VA space, bad descriptor, ...)."""


class JobFault(SimError):
    """A GPU job terminated with a fault (MMU fault, invalid clause, ...)."""
