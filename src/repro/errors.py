"""Exception hierarchy for the simulator.

Every subsystem raises a subclass of :class:`SimError`, so callers can
distinguish simulator faults from ordinary Python errors.
"""


class SimError(Exception):
    """Base class for all simulator errors."""


class MemoryError_(SimError):
    """Physical memory access outside any mapped region."""


class BusError(SimError):
    """MMIO access to an unmapped or misaligned device address."""


class MMUFault(SimError):
    """Address translation failure (unmapped page or permission violation).

    Attributes:
        vaddr: faulting virtual address.
        access: 'r', 'w' or 'x'.
    """

    def __init__(self, vaddr, access, message=""):
        super().__init__(message or f"MMU fault at 0x{vaddr:x} ({access})")
        self.vaddr = vaddr
        self.access = access


class DecodeError(SimError):
    """Invalid instruction or clause encoding."""


class GuestError(SimError):
    """Guest CPU program fault (bad opcode, misaligned access, ...)."""


class CompileError(SimError):
    """Kernel-language compilation failure.

    Attributes:
        line: 1-based source line of the error, or None.
        col: 1-based source column of the error, or None.
    """

    def __init__(self, message, line=None, col=None):
        location = f" at {line}:{col}" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.col = col


class CLError(SimError):
    """OpenCL-like runtime API misuse (bad arg index, wrong sizes, ...)."""


class DriverError(SimError):
    """GPU kernel-driver failure (out of VA space, bad descriptor, ...)."""


class CheckpointError(SimError):
    """A checkpoint could not be saved, verified or restored.

    Raised whenever an on-disk snapshot is missing, truncated, corrupted
    (digest mismatch) or carries an unknown format version. Restore fails
    closed: a checkpoint that does not verify is never partially applied.
    """


class IRQMismatchError(DriverError):
    """The interrupt controller and the GPU's raw IRQ status disagree.

    Raised by the driver's completion poll when the GPU reports work done
    (or faulted) in ``JOB_IRQ_RAWSTAT`` but the interrupt controller never
    latched the line (a *lost* IRQ), or the controller shows a pending GPU
    line with nothing backing it in the raw status (a *spurious* IRQ).

    Attributes:
        pending: the IRQC pending bitmask observed.
        rawstat: the GPU ``JOB_IRQ_RAWSTAT`` value observed.
        kind: ``'lost'`` or ``'spurious'``.
    """

    def __init__(self, pending, rawstat, kind):
        super().__init__(
            f"{kind} IRQ: irqc pending=0x{pending:x} "
            f"gpu rawstat=0x{rawstat:x}")
        self.pending = pending
        self.rawstat = rawstat
        self.kind = kind


class WatchdogTimeout(SimError):
    """A job exceeded its progress budget (the hardware job-slot timeout).

    Progress is measured in scheduler rounds and executed clauses — never
    wall-clock time — so identical runs trip the watchdog identically.

    Attributes:
        flat_group: flat workgroup id that exhausted its budget.
        consumed: progress units consumed when the watchdog fired.
    """

    def __init__(self, flat_group, consumed, message=""):
        super().__init__(
            message or f"workgroup {flat_group} exceeded progress budget "
                       f"({consumed} units)")
        self.flat_group = flat_group
        self.consumed = consumed


class JobFault(SimError):
    """A GPU job terminated with a fault (MMU fault, invalid clause, ...)."""


class JobHang(JobFault):
    """A GPU job was stopped by the progress watchdog (soft/hard stop)."""


class JobPreempted(JobFault):
    """A GPU job was parked at its ``JOB_SLICE`` workgroup budget.

    Raised by the job manager after running exactly the budgeted prefix
    of workgroups; the driver's arbiter soft-stops the slot and requeues
    the job at the tail of its class queue. Deterministic: the prefix is
    the first N flat workgroup ids, never a wall-clock cut.

    Attributes:
        completed: flat workgroups run before the slice expired.
        total: total workgroups of the job.
    """

    def __init__(self, completed, total, message=""):
        super().__init__(
            message or f"job sliced after {completed}/{total} workgroups")
        self.completed = completed
        self.total = total
        self.fault_class = "preempt"
