"""Clause formation: slot packing, dual-issue scheduling, temp forwarding.

This is the pass that shapes the Bifrost clause model metrics the paper
analyses (Figs. 11/13, Fig. 1):

- instructions are packed into clauses of up to 8 (FMA, ADD) tuples;
- the ADD pipe only executes simple ops, so an FMA-class op landing on an
  ADD slot forces a NOP ("empty slots introduced by the OpenCL toolchain");
- with ``dual_issue`` enabled, independent ADD-class ops are hoisted into
  otherwise-empty ADD slots (fewer NOPs, fewer tuples, fewer "arithmetic
  cycles" — the v6.1 effect of Fig. 1);
- with ``temp_forward`` enabled, single-use values whose definition and use
  share a clause are rewritten onto the clause temporaries ``t0``/``t1``,
  cutting global-register-file traffic (Fig. 4b).

Constants used by a clause are deduplicated into its embedded pool.
"""

from dataclasses import dataclass, field

from repro.clc.ir import Const, VReg
from repro.gpu.isa import MAX_CONSTS, Op, can_use_add_slot

MAX_TUPLES = 8
_SCHED_WINDOW = 12


@dataclass
class ClausePlan:
    """A planned clause: slot instruction list + constant pool."""

    slots: list = field(default_factory=list)  # IRInstr or None; even=FMA
    constants: list = field(default_factory=list)

    @property
    def tuple_count(self):
        return (len(self.slots) + 1) // 2

    def instructions(self):
        return [instr for instr in self.slots if instr is not None]


def _instr_constants(instr):
    consts = [s.bits for s in instr.srcs if isinstance(s, Const)]
    return consts


def _depends_on(instr, earlier):
    """True if *instr* must not be scheduled before *earlier*."""
    uses = set(instr.uses())
    defs = set(instr.defs())
    for e in earlier:
        e_defs = set(e.defs())
        e_uses = set(e.uses())
        if uses & e_defs or defs & e_uses or defs & e_defs:
            return True
        if instr.is_memory and e.is_memory:
            return True
    return False


def _order_slots(instrs, dual_issue):
    """Produce the slot sequence (instr or None) respecting slot classes."""
    remaining = list(instrs)
    slots = []
    parity = 0  # 0 -> next slot is FMA (accepts anything), 1 -> ADD slot
    while remaining:
        pick_index = None
        if parity == 0:
            pick_index = 0
        else:
            window = len(remaining) if dual_issue else 1
            window = min(window, _SCHED_WINDOW)
            for j in range(window):
                candidate = remaining[j]
                if not can_use_add_slot(candidate.op):
                    continue
                if j == 0 or not _depends_on(candidate, remaining[:j]):
                    pick_index = j
                    break
        if pick_index is None:
            slots.append(None)
        else:
            slots.append(remaining.pop(pick_index))
        parity ^= 1
    return slots


def schedule_block(instrs, dual_issue=False):
    """Pack a block's instructions into a list of :class:`ClausePlan`."""
    if not instrs:
        return []
    slots = _order_slots(instrs, dual_issue)
    plans = []
    current = ClausePlan()
    pool = {}
    for index in range(0, len(slots), 2):
        tuple_slots = slots[index:index + 2]
        new_consts = []
        for instr in tuple_slots:
            if instr is not None:
                for bits in _instr_constants(instr):
                    if bits not in pool and bits not in new_consts:
                        new_consts.append(bits)
        if (current.tuple_count >= MAX_TUPLES
                or len(pool) + len(new_consts) > MAX_CONSTS):
            if current.slots:
                plans.append(current)
            current = ClausePlan()
            pool = {}
            new_consts = []
            for instr in tuple_slots:
                if instr is not None:
                    for bits in _instr_constants(instr):
                        if bits not in pool and bits not in new_consts:
                            new_consts.append(bits)
        for bits in new_consts:
            pool[bits] = len(pool)
            current.constants.append(bits)
        current.slots.extend(tuple_slots)
    # trim trailing empty slots
    while current.slots and current.slots[-1] is None:
        current.slots.pop()
    if current.slots:
        plans.append(current)
    for plan in plans:
        while plan.slots and plan.slots[-1] is None:
            plan.slots.pop()
    return [plan for plan in plans if plan.slots]


_TEMPABLE_DEF_OPS = {
    Op.MOV, Op.FADD, Op.FSUB, Op.FMUL, Op.FMA, Op.FMIN, Op.FMAX, Op.FABS,
    Op.FNEG, Op.FFLOOR, Op.FRCP, Op.FSQRT, Op.FRSQ, Op.FEXP, Op.FLOG,
    Op.FSIN, Op.FCOS, Op.F2I, Op.F2U, Op.I2F, Op.U2F, Op.IADD, Op.ISUB,
    Op.IMUL, Op.IAND, Op.IOR, Op.IXOR, Op.ISHL, Op.ISHR, Op.IASHR, Op.IMIN,
    Op.IMAX, Op.UMIN, Op.UMAX, Op.IABS, Op.CMP, Op.SELECT, Op.LDU,
}


def assign_temporaries(block_plans, fn):
    """Forward single-def single-use same-clause values to t0/t1.

    Returns a dict mapping VReg -> temp index (0 or 1). Only values defined
    by register-file-producing ops, not marked ``no_temp``, not members of
    vector groups, with exactly one def and one use — both inside the same
    clause — are eligible.
    """
    def_count = {}
    use_count = {}
    for plans in block_plans.values():
        for plan in plans:
            for instr in plan.instructions():
                for d in instr.defs():
                    def_count[d] = def_count.get(d, 0) + 1
                for u in instr.uses():
                    use_count[u] = use_count.get(u, 0) + 1
    # branch conditions are read at the clause boundary from the GRF and
    # must never live in clause temporaries
    banned = set()
    for block in fn.blocks:
        term = block.terminator
        if term and term[0] in ("branch", "branchz") and isinstance(term[1], VReg):
            banned.add(term[1])

    temp_map = {}
    for plans in block_plans.values():
        for plan in plans:
            instructions = plan.instructions()
            active = {}  # temp index -> position of pending use
            positions = {}
            for position, instr in enumerate(instructions):
                positions[id(instr)] = position
            for position, instr in enumerate(instructions):
                dst = instr.dst
                if (not isinstance(dst, VReg) or dst.no_temp
                        or dst in banned
                        or dst.group is not None
                        or instr.op not in _TEMPABLE_DEF_OPS):
                    continue
                if def_count.get(dst) != 1 or use_count.get(dst) != 1:
                    continue
                use_position = None
                for later_pos in range(position + 1, len(instructions)):
                    later = instructions[later_pos]
                    if dst in later.uses():
                        use_position = later_pos
                        break
                if use_position is None:
                    continue  # the single use is in another clause/block
                slot = None
                for candidate in (0, 1):
                    pending = active.get(candidate)
                    if pending is None or pending <= position:
                        slot = candidate
                        break
                if slot is None:
                    continue
                active[slot] = use_position
                temp_map[dst] = slot
    return temp_map
