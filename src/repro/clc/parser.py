"""Recursive-descent parser for the kernel language."""

from repro.errors import CompileError
from repro.clc import ast
from repro.clc.lexer import tokenize
from repro.clc.types import PointerType, VectorType, is_vector, type_from_name

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

_TYPE_KEYWORDS = {
    "void", "float", "int", "uint", "unsigned", "bool", "char", "uchar",
    "short", "ushort", "size_t", "float2", "float4", "int2", "int4",
    "uint2", "uint4",
}

_SPACE_KEYWORDS = {
    "__global": "global", "global": "global",
    "__local": "local", "local": "local",
    "__constant": "constant", "constant": "constant",
    "__private": "private", "private": "private",
}


class Parser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ---------------------------------------------------------

    @property
    def _cur(self):
        return self._tokens[self._pos]

    def _peek(self, offset=0):
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self):
        token = self._cur
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check(self, kind, text=None):
        token = self._cur
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind, text=None):
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind, text=None):
        if not self._check(kind, text):
            token = self._cur
            wanted = text or kind
            raise CompileError(
                f"expected {wanted!r}, found {token.text!r}", token.line, token.col
            )
        return self._advance()

    def _error(self, message):
        token = self._cur
        raise CompileError(message, token.line, token.col)

    # -- top level ---------------------------------------------------------------

    def parse_translation_unit(self):
        kernels = []
        while not self._check("eof"):
            kernels.append(self._parse_kernel())
        return ast.TranslationUnit(kernels=kernels)

    def _parse_kernel(self):
        token = self._cur
        is_kernel = bool(self._accept("kw", "__kernel") or self._accept("kw", "kernel"))
        return_type = self._parse_type()
        if not (hasattr(return_type, "name") and return_type.name == "void"):
            self._error("only 'void' kernel functions are supported")
        name = self._expect("id").text
        self._expect("op", "(")
        params = []
        if not self._check("op", ")"):
            while True:
                params.append(self._parse_parameter())
                if not self._accept("op", ","):
                    break
        self._expect("op", ")")
        body = self._parse_block()
        return ast.KernelFunction(
            name=name, params=params, body=body, is_kernel=is_kernel,
            line=token.line, col=token.col,
        )

    def _parse_parameter(self):
        token = self._cur
        space = None
        while self._cur.kind == "kw" and self._cur.text in _SPACE_KEYWORDS:
            space = _SPACE_KEYWORDS[self._advance().text]
        self._accept("kw", "const")
        base = self._parse_type()
        self._accept("kw", "const")
        if self._accept("op", "*"):
            if is_vector(base):
                self._error("pointers to vector types are not supported")
            ty = PointerType(base, space or "global")
        else:
            if space not in (None, "private"):
                self._error("address space qualifiers require a pointer")
            ty = base
        self._accept("kw", "const")
        name = self._expect("id").text
        return ast.Parameter(ty=ty, name=name, line=token.line, col=token.col)

    def _parse_type(self):
        token = self._cur
        if token.kind == "kw" and token.text in _TYPE_KEYWORDS:
            self._advance()
            if token.text == "unsigned" and self._check("kw", "int"):
                self._advance()
            return type_from_name("unsigned" if token.text == "unsigned" else token.text,
                                  token.line, token.col)
        self._error(f"expected a type, found {token.text!r}")

    # -- statements -------------------------------------------------------------------

    def _parse_block(self):
        start = self._expect("op", "{")
        statements = []
        while not self._check("op", "}"):
            if self._check("eof"):
                raise CompileError("unterminated block", start.line, start.col)
            statements.append(self._parse_statement())
        self._expect("op", "}")
        return ast.Block(statements=statements, line=start.line, col=start.col)

    def _starts_declaration(self):
        token = self._cur
        if token.kind != "kw":
            return False
        return token.text in _TYPE_KEYWORDS - {"void"} or token.text in _SPACE_KEYWORDS or token.text == "const"

    def _parse_statement(self):
        token = self._cur
        if self._check("op", "{"):
            return self._parse_block()
        if self._check("op", ";"):
            self._advance()
            return ast.Block(statements=[], line=token.line, col=token.col)
        if self._check("kw", "if"):
            return self._parse_if()
        if self._check("kw", "for"):
            return self._parse_for()
        if self._check("kw", "while"):
            return self._parse_while()
        if self._check("kw", "do"):
            return self._parse_do_while()
        if self._accept("kw", "break"):
            self._expect("op", ";")
            return ast.Break(line=token.line, col=token.col)
        if self._accept("kw", "continue"):
            self._expect("op", ";")
            return ast.Continue(line=token.line, col=token.col)
        if self._accept("kw", "return"):
            value = None
            if not self._check("op", ";"):
                value = self._parse_expression()
            self._expect("op", ";")
            return ast.Return(value=value, line=token.line, col=token.col)
        if self._starts_declaration():
            return self._parse_declaration()
        return self._parse_expression_or_assignment()

    def _parse_declaration(self):
        token = self._cur
        space = "private"
        while self._cur.kind == "kw" and (
            self._cur.text in _SPACE_KEYWORDS or self._cur.text == "const"
        ):
            word = self._advance().text
            if word != "const":
                space = _SPACE_KEYWORDS[word]
        ty = self._parse_type()
        if self._accept("op", "*"):
            ty = PointerType(ty, space if space != "private" else "global")
        declarations = []
        while True:
            name = self._expect("id").text
            array_size = None
            if self._accept("op", "["):
                array_size = self._parse_expression()
                self._expect("op", "]")
            init = None
            if self._accept("op", "="):
                init = self._parse_expression()
            declarations.append(
                ast.Declaration(ty=ty, name=name, init=init, array_size=array_size,
                                space=space, line=token.line, col=token.col)
            )
            if not self._accept("op", ","):
                break
        self._expect("op", ";")
        if len(declarations) == 1:
            return declarations[0]
        return ast.Block(statements=declarations, line=token.line, col=token.col)

    def _parse_if(self):
        token = self._expect("kw", "if")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        then = self._parse_statement()
        other = None
        if self._accept("kw", "else"):
            other = self._parse_statement()
        return ast.If(cond=cond, then=then, other=other, line=token.line, col=token.col)

    def _parse_for(self):
        token = self._expect("kw", "for")
        self._expect("op", "(")
        init = None
        if not self._check("op", ";"):
            if self._starts_declaration():
                init = self._parse_declaration()
            else:
                init = self._parse_simple_assignment()
                self._expect("op", ";")
        else:
            self._advance()
        if isinstance(init, (ast.Declaration, ast.Block)):
            pass  # declaration parser consumed the ';'
        cond = None
        if not self._check("op", ";"):
            cond = self._parse_expression()
        self._expect("op", ";")
        step = None
        if not self._check("op", ")"):
            step = self._parse_simple_assignment()
        self._expect("op", ")")
        body = self._parse_statement()
        return ast.For(init=init, cond=cond, step=step, body=body,
                       line=token.line, col=token.col)

    def _parse_while(self):
        token = self._expect("kw", "while")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        body = self._parse_statement()
        return ast.While(cond=cond, body=body, line=token.line, col=token.col)

    def _parse_do_while(self):
        token = self._expect("kw", "do")
        body = self._parse_statement()
        self._expect("kw", "while")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        self._expect("op", ";")
        return ast.DoWhile(body=body, cond=cond, line=token.line, col=token.col)

    def _parse_simple_assignment(self):
        """An assignment or side-effecting expression without trailing ';'."""
        token = self._cur
        expr = self._parse_unary()
        if self._cur.kind == "op" and self._cur.text in _ASSIGN_OPS:
            op = self._advance().text
            value = self._parse_expression()
            return ast.Assignment(target=expr, op=op, value=value,
                                  line=token.line, col=token.col)
        if self._accept("op", "++"):
            return ast.Assignment(target=expr, op="+=",
                                  value=ast.IntLiteral(1, line=token.line, col=token.col),
                                  line=token.line, col=token.col)
        if self._accept("op", "--"):
            return ast.Assignment(target=expr, op="-=",
                                  value=ast.IntLiteral(1, line=token.line, col=token.col),
                                  line=token.line, col=token.col)
        return ast.ExprStatement(expr=expr, line=token.line, col=token.col)

    def _parse_expression_or_assignment(self):
        statement = self._parse_simple_assignment()
        if isinstance(statement, ast.ExprStatement):
            # could still be `expr;` like a bare call
            pass
        self._expect("op", ";")
        return statement

    # -- expressions (precedence climbing) ------------------------------------------

    def _parse_expression(self):
        return self._parse_ternary()

    def _parse_ternary(self):
        cond = self._parse_binary(0)
        if self._accept("op", "?"):
            then = self._parse_expression()
            self._expect("op", ":")
            other = self._parse_ternary()
            return ast.Ternary(cond=cond, then=then, other=other,
                               line=cond.line, col=cond.col)
        return cond

    _PRECEDENCE = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def _parse_binary(self, level):
        if level >= len(self._PRECEDENCE):
            return self._parse_unary()
        ops = self._PRECEDENCE[level]
        left = self._parse_binary(level + 1)
        while self._cur.kind == "op" and self._cur.text in ops:
            op = self._advance().text
            right = self._parse_binary(level + 1)
            left = ast.Binary(op=op, left=left, right=right,
                              line=left.line, col=left.col)
        return left

    def _parse_unary(self):
        token = self._cur
        if self._cur.kind == "op" and self._cur.text in ("-", "!", "~", "+"):
            op = self._advance().text
            operand = self._parse_unary()
            if op == "+":
                return operand
            return ast.Unary(op=op, operand=operand, line=token.line, col=token.col)
        if self._accept("op", "*"):
            operand = self._parse_unary()
            return ast.Deref(operand=operand, line=token.line, col=token.col)
        if self._accept("op", "&"):
            operand = self._parse_unary()
            return ast.AddressOf(operand=operand, line=token.line,
                                 col=token.col)
        if self._check("op", "(") and self._is_cast():
            self._advance()
            target = self._parse_type()
            self._expect("op", ")")
            if is_vector(target) and self._check("op", "("):
                self._advance()
                args = [self._parse_expression()]
                while self._accept("op", ","):
                    args.append(self._parse_expression())
                self._expect("op", ")")
                return ast.VectorConstructor(target=target, args=args,
                                             line=token.line, col=token.col)
            operand = self._parse_unary()
            return ast.Cast(target=target, operand=operand,
                            line=token.line, col=token.col)
        return self._parse_postfix()

    def _is_cast(self):
        """Lookahead: '(' type ')' not followed by an operator-only token."""
        next_token = self._peek(1)
        return next_token.kind == "kw" and next_token.text in _TYPE_KEYWORDS

    def _parse_postfix(self):
        expr = self._parse_primary()
        while True:
            token = self._cur
            if self._accept("op", "["):
                index = self._parse_expression()
                self._expect("op", "]")
                expr = ast.Index(base=expr, index=index, line=token.line, col=token.col)
            elif self._accept("op", "."):
                name = self._expect("id").text
                expr = ast.Member(base=expr, name=name, line=token.line, col=token.col)
            else:
                return expr

    def _parse_primary(self):
        token = self._cur
        if token.kind == "int":
            self._advance()
            text = token.text.rstrip("uU")
            unsigned = text != token.text
            return ast.IntLiteral(int(text, 0), unsigned=unsigned,
                                  line=token.line, col=token.col)
        if token.kind == "float":
            self._advance()
            return ast.FloatLiteral(float(token.text.rstrip("fF")),
                                    line=token.line, col=token.col)
        if token.kind == "kw" and token.text in ("true", "false"):
            self._advance()
            return ast.IntLiteral(1 if token.text == "true" else 0,
                                  line=token.line, col=token.col)
        if token.kind == "id":
            self._advance()
            if self._check("op", "("):
                self._advance()
                args = []
                if not self._check("op", ")"):
                    while True:
                        args.append(self._parse_expression())
                        if not self._accept("op", ","):
                            break
                self._expect("op", ")")
                return ast.Call(name=token.text, args=args,
                                line=token.line, col=token.col)
            return ast.Identifier(name=token.text, line=token.line, col=token.col)
        if self._accept("op", "("):
            expr = self._parse_expression()
            self._expect("op", ")")
            return expr
        self._error(f"unexpected token {token.text!r}")


def parse(source, defines=None):
    """Parse kernel-language *source* into a TranslationUnit."""
    return Parser(tokenize(source, defines)).parse_translation_unit()
