"""Type system for the kernel language.

Scalar types map to the GPU's 32-bit register model (``char``/``short``
are widened to 32-bit, ``long`` is not supported); vector types are
2- or 4-wide and scalarized during lowering, except for vector memory
accesses which lower to wide LD/ST when the compiler version supports
them. Pointers carry an address space (global, local, constant).
"""

from dataclasses import dataclass

from repro.errors import CompileError


@dataclass(frozen=True)
class ScalarType:
    name: str  # 'float' | 'int' | 'uint' | 'bool' | 'void'

    @property
    def is_float(self):
        return self.name == "float"

    @property
    def is_integer(self):
        return self.name in ("int", "uint", "bool")

    @property
    def is_signed(self):
        return self.name in ("int", "bool")

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class VectorType:
    element: ScalarType
    width: int  # 2 or 4

    def __str__(self):
        return f"{self.element}{self.width}"


@dataclass(frozen=True)
class PointerType:
    pointee: ScalarType
    space: str  # 'global' | 'local' | 'constant'

    def __str__(self):
        return f"__{self.space} {self.pointee}*"


FLOAT = ScalarType("float")
INT = ScalarType("int")
UINT = ScalarType("uint")
BOOL = ScalarType("bool")
VOID = ScalarType("void")

FLOAT2 = VectorType(FLOAT, 2)
FLOAT4 = VectorType(FLOAT, 4)
INT4 = VectorType(INT, 4)

_BY_NAME = {
    "float": FLOAT,
    "int": INT,
    "uint": UINT,
    "unsigned": UINT,
    "bool": BOOL,
    "void": VOID,
    "size_t": UINT,
    "char": INT,
    "uchar": UINT,
    "short": INT,
    "ushort": UINT,
    "float2": FLOAT2,
    "float4": FLOAT4,
    "int2": VectorType(INT, 2),
    "int4": INT4,
    "uint2": VectorType(UINT, 2),
    "uint4": VectorType(UINT, 4),
}


def type_from_name(name, line=None, col=None):
    try:
        return _BY_NAME[name]
    except KeyError:
        raise CompileError(f"unknown type {name!r}", line, col) from None


def is_scalar(ty):
    return isinstance(ty, ScalarType)


def is_vector(ty):
    return isinstance(ty, VectorType)


def is_pointer(ty):
    return isinstance(ty, PointerType)


def is_arithmetic(ty):
    return is_scalar(ty) and ty.name != "void"


def unify_arithmetic(a, b, line=None, col=None):
    """Usual arithmetic conversions over our scalar set."""
    if not is_arithmetic(a) or not is_arithmetic(b):
        raise CompileError(f"cannot combine {a} and {b}", line, col)
    if FLOAT in (a, b):
        return FLOAT
    if UINT in (a, b):
        return UINT
    return INT
