"""Semantic analysis and lowering: typed AST -> IR.

Typing and lowering are fused (classic for small compilers): expressions
are checked and converted as they are lowered, and any violation raises
:class:`~repro.errors.CompileError` with a source position.

Key mappings:

- kernel arguments -> uniform slots 10+ ("Constant Read" port); slots 0-9
  hold the NDRange description (global size, local size, num groups, dim);
- ``get_*_id`` builtins -> dispatcher-preloaded GRF registers;
- ``__local`` arrays -> statically laid out workgroup-local memory;
- private arrays with compile-time-constant indices -> registers; with
  dynamic indices -> per-thread scratch carved out of local memory;
- float division -> ``FMUL(a, FRCP(b))`` (the GPU has no divide pipe);
- ``&&``/``||``/ternary-with-memory -> real control flow (short-circuit);
- ``vload4``/``vstore4`` -> wide LD/ST when the compiler version supports
  vector load/store, else scalarized accesses.
"""

from repro.errors import CompileError
from repro.clc import ast
from repro.clc.ir import Const, IRFunction, IRInstr, Special, VReg
from repro.clc.types import (
    BOOL,
    FLOAT,
    INT,
    UINT,
    VOID,
    PointerType,
    ScalarType,
    VectorType,
    is_arithmetic,
    is_pointer,
    is_scalar,
    is_vector,
    unify_arithmetic,
)
from repro.gpu.isa import (
    ATOM_ADD,
    ATOM_AND,
    ATOM_MAX,
    ATOM_MIN,
    ATOM_MODE_SHIFT,
    ATOM_OR,
    ATOM_SUB,
    ATOM_XCHG,
    ATOM_XOR,
    REG_GLOBAL_ID,
    REG_GROUP_ID,
    REG_LOCAL_ID,
    CmpMode,
    MEM_SPACE_LOCAL,
    Op,
)

# uniform slot layout (mirrors repro.cl runtime and the dispatcher)
U_GLOBAL_SIZE = 0
U_LOCAL_SIZE = 3
U_NUM_GROUPS = 6
U_WORK_DIM = 9
U_FIRST_ARG = 10

_MEMBER_INDEX = {"x": 0, "y": 1, "z": 2, "w": 3, "s0": 0, "s1": 1, "s2": 2, "s3": 3}

# builtin name -> (atomic mode, implicit-operand-of-one)
_ATOMIC_MODES = {
    "atomic_add": (ATOM_ADD, False), "atom_add": (ATOM_ADD, False),
    "atomic_sub": (ATOM_SUB, False), "atom_sub": (ATOM_SUB, False),
    "atomic_min": (ATOM_MIN, False), "atomic_max": (ATOM_MAX, False),
    "atomic_and": (ATOM_AND, False), "atomic_or": (ATOM_OR, False),
    "atomic_xor": (ATOM_XOR, False), "atomic_xchg": (ATOM_XCHG, False),
    "atomic_inc": (ATOM_ADD, True), "atomic_dec": (ATOM_SUB, True),
}

_CMP_BY_TYPE = {
    "float": {"==": CmpMode.FEQ, "!=": CmpMode.FNE, "<": CmpMode.FLT,
              "<=": CmpMode.FLE, ">": CmpMode.FGT, ">=": CmpMode.FGE},
    "int": {"==": CmpMode.IEQ, "!=": CmpMode.INE, "<": CmpMode.ILT,
            "<=": CmpMode.ILE, ">": CmpMode.IGT, ">=": CmpMode.IGE},
    "uint": {"==": CmpMode.IEQ, "!=": CmpMode.INE, "<": CmpMode.ULT,
             "<=": CmpMode.ULE, ">": CmpMode.UGT, ">=": CmpMode.UGE},
}


class VecValue:
    """A vector rvalue: per-component scalar operands."""

    __slots__ = ("elements", "element_type")

    def __init__(self, elements, element_type):
        self.elements = list(elements)
        self.element_type = element_type

    @property
    def width(self):
        return len(self.elements)


class _Symbol:
    """Resolved name: kind in {'scalar', 'vector', 'param', 'regarray',
    'scratcharray', 'localarray'}."""

    __slots__ = ("kind", "ty", "vreg", "members", "uniform_index", "offset",
                 "count", "space")

    def __init__(self, kind, ty, **attrs):
        self.kind = kind
        self.ty = ty
        self.vreg = attrs.get("vreg")
        self.members = attrs.get("members")
        self.uniform_index = attrs.get("uniform_index")
        self.offset = attrs.get("offset")
        self.count = attrs.get("count")
        self.space = attrs.get("space")


class _BlockBuffer:
    """Instruction sink used when emitting a detached prologue."""

    def __init__(self):
        self.instrs = []

    def emit(self, instr):
        self.instrs.append(instr)
        return instr


def emit_scratch_base(fn):
    """Materialize the per-thread scratch base register for *fn*.

    Layout: ``[static __local arrays][per-thread scratch][dynamic local
    args]``; the base is ``local_static_size + flat_local_id *
    scratch_per_thread``. Both sizes are patched into marker MOVs by the
    compiler driver once they are final. The computation is inserted at
    the *front* of the entry block so it dominates every use.

    Idempotent: reuses an existing base if one was already emitted (the
    register spiller calls this after lowering).
    """
    existing = getattr(fn, "scratch_base_vreg", None)
    if existing is not None:
        return existing
    entry = fn.blocks[0]
    prologue = _BlockBuffer()

    def emit_new(op, srcs=(), imm=0, name=""):
        dst = fn.new_vreg(name)
        prologue.emit(IRInstr(op, dst=dst, srcs=tuple(srcs), imm=imm))
        return dst

    lsx = emit_new(Op.LDU, imm=U_LOCAL_SIZE, name="lsx")
    lsy = emit_new(Op.LDU, imm=U_LOCAL_SIZE + 1, name="lsy")
    term1 = emit_new(Op.IMUL, srcs=(Special(REG_LOCAL_ID + 1), lsx))
    plane = emit_new(Op.IMUL, srcs=(lsx, lsy))
    term2 = emit_new(Op.IMUL, srcs=(Special(REG_LOCAL_ID + 2), plane))
    flat = emit_new(Op.IADD, srcs=(Special(REG_LOCAL_ID), term1))
    flat = emit_new(Op.IADD, srcs=(flat, term2))
    size_placeholder = fn.new_vreg("scrsz")
    marker = prologue.emit(IRInstr(Op.MOV, dst=size_placeholder,
                                   srcs=(Const.from_int(0),)))
    fn.scratch_size_marker = marker
    scaled = emit_new(Op.IMUL, srcs=(flat, size_placeholder))
    base_placeholder = fn.new_vreg("loff")
    base_marker = prologue.emit(IRInstr(Op.MOV, dst=base_placeholder,
                                        srcs=(Const.from_int(0),)))
    fn.local_base_marker = base_marker
    base = emit_new(Op.IADD, srcs=(scaled, base_placeholder), name="scrbase")
    base.no_temp = True
    for instr in prologue.instrs:
        for reg in instr.defs():
            reg.no_spill = True
    entry.instrs[0:0] = prologue.instrs
    fn.scratch_base_vreg = base
    return base


class _LoopContext:
    __slots__ = ("break_block", "continue_block")

    def __init__(self, break_block, continue_block):
        self.break_block = break_block
        self.continue_block = continue_block


def _has_memory_access(node):
    """True if lowering *node* may emit a load/store (fault hazard)."""
    if node is None:
        return False
    if isinstance(node, (ast.Index, ast.Deref)):
        return True
    if isinstance(node, ast.Call):
        if node.name.startswith(("vload", "vstore")):
            return True
        return any(_has_memory_access(a) for a in node.args)
    for attr in ("operand", "left", "right", "cond", "then", "other", "base"):
        child = getattr(node, attr, None)
        if isinstance(child, ast.Node) and _has_memory_access(child):
            return True
    if isinstance(node, ast.VectorConstructor):
        return any(_has_memory_access(a) for a in node.args)
    return False


def _collect_array_index_info(node, info):
    """Record, per identifier, whether all Index expressions on it use
    compile-time constant indices."""
    if node is None or not isinstance(node, ast.Node):
        return
    if isinstance(node, ast.Index) and isinstance(node.base, ast.Identifier):
        name = node.base.name
        constant = _static_const(node.index) is not None
        info[name] = info.get(name, True) and constant
    for attr in ("operand", "left", "right", "cond", "then", "other", "base",
                 "index", "init", "step", "body", "value", "target", "expr"):
        _collect_array_index_info(getattr(node, attr, None), info)
    for attr in ("statements", "args"):
        for child in getattr(node, attr, []) or []:
            _collect_array_index_info(child, info)


def _static_const(node):
    """Evaluate a compile-time constant expression; None if not constant."""
    if isinstance(node, ast.IntLiteral):
        return node.value
    if isinstance(node, ast.FloatLiteral):
        return node.value
    if isinstance(node, ast.Unary):
        value = _static_const(node.operand)
        if value is None:
            return None
        if node.op == "-":
            return -value
        if node.op == "~" and isinstance(value, int):
            return ~value & 0xFFFFFFFF
        if node.op == "!":
            return 0 if value else 1
        return None
    if isinstance(node, ast.Cast):
        value = _static_const(node.operand)
        if value is None:
            return None
        if isinstance(node.target, ScalarType) and node.target.is_integer:
            return int(value)
        if isinstance(node.target, ScalarType) and node.target.is_float:
            return float(value)
        return None
    if isinstance(node, ast.Binary):
        left = _static_const(node.left)
        right = _static_const(node.right)
        if left is None or right is None:
            return None
        try:
            if node.op == "+":
                return left + right
            if node.op == "-":
                return left - right
            if node.op == "*":
                return left * right
            if node.op == "/":
                if right == 0:
                    return None
                if isinstance(left, int) and isinstance(right, int):
                    return int(left / right)
                return left / right
            if node.op == "%":
                return left - int(left / right) * right if right else None
            if node.op == "<<":
                return (left << right) & 0xFFFFFFFF
            if node.op == ">>":
                return left >> right
            if node.op == "&":
                return left & right
            if node.op == "|":
                return left | right
            if node.op == "^":
                return left ^ right
        except TypeError:
            return None
    return None


class KernelLowering:
    """Lowers one kernel function to an :class:`IRFunction`."""

    def __init__(self, kernel, options):
        self.kernel = kernel
        self.options = options
        self.fn = IRFunction(kernel.name)
        self._scopes = [{}]
        self._block = None
        self._exit_block = None
        self._loops = []
        self._ldu_cache = {}
        self._scratch_base = None
        self._local_offset = 0
        self._scratch_offset = 0
        self._array_const_info = {}
        self._dead_counter = 0

    # -- entry point -----------------------------------------------------------

    def lower(self):
        kernel = self.kernel
        _collect_array_index_info(kernel.body, self._array_const_info)
        self._block = self.fn.new_block("entry")
        self._exit_block = None

        for position, param in enumerate(kernel.params):
            self._declare_param(param, U_FIRST_ARG + position)
        self.fn.uniform_count = U_FIRST_ARG + len(kernel.params)

        self._lower_statement(kernel.body)
        if self._block.terminator is None:
            self._block.terminator = ("end",)
        if self._exit_block is not None:
            self._exit_block.terminator = ("end",)
        self.fn.local_static_size = self._local_offset
        self.fn.scratch_per_thread = self._scratch_offset
        self.fn.validate()
        return self.fn

    # -- scope helpers -----------------------------------------------------------

    def _declare(self, name, symbol, node):
        scope = self._scopes[-1]
        if name in scope:
            raise CompileError(f"redeclaration of {name!r}", node.line, node.col)
        scope[name] = symbol

    def _resolve(self, name, node):
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        raise CompileError(f"undeclared identifier {name!r}", node.line, node.col)

    def _declare_param(self, param, uniform_index):
        ty = param.ty
        if is_pointer(ty):
            kind = "param"
            self.fn.params.append(
                (param.name, "local_ptr" if ty.space == "local" else "buffer", ty)
            )
        elif is_scalar(ty) and ty.name != "void":
            kind = "param"
            self.fn.params.append((param.name, "scalar", ty))
        else:
            raise CompileError(
                f"unsupported parameter type {ty}", param.line, param.col
            )
        self._declare(param.name, _Symbol(kind, ty, uniform_index=uniform_index),
                      param)

    # -- emission helpers ----------------------------------------------------------

    def _emit(self, op, dst=None, srcs=(), flags=0, imm=0, group=None):
        instr = IRInstr(op, dst=dst, srcs=tuple(srcs), flags=flags, imm=imm,
                        group=group)
        self._block.emit(instr)
        return instr

    def _emit_to_new(self, op, srcs=(), flags=0, imm=0, name=""):
        dst = self.fn.new_vreg(name)
        self._emit(op, dst=dst, srcs=srcs, flags=flags, imm=imm)
        return dst

    def _new_block(self, name):
        block = self.fn.new_block(name)
        return block

    def _switch_to(self, block):
        self._block = block
        self._ldu_cache.pop(None, None)

    def _ldu(self, index, name="u"):
        """Load a uniform slot.

        With ``hoist_uniforms`` (modern-compiler behaviour) each slot is
        loaded once into the entry block and kept in a register; without it
        (older toolchains) the uniform port is re-read in every basic block
        that needs the value.
        """
        if getattr(self.options, "hoist_uniforms", True):
            cached = self._ldu_cache.get(index)
            if cached is not None:
                return cached
            entry = self.fn.blocks[0]
            dst = self.fn.new_vreg(name)
            dst.no_temp = True
            instr = IRInstr(Op.LDU, dst=dst, imm=index)
            if self._block is entry:
                entry.emit(instr)
            else:
                entry.instrs.append(instr)
            self._ldu_cache[index] = dst
            return dst
        key = (id(self._block), index)
        cached = self._ldu_cache.get(key)
        if cached is not None:
            return cached
        dst = self._emit_to_new(Op.LDU, imm=index, name=name)
        self._ldu_cache[key] = dst
        return dst

    def _materialize(self, value, name="v"):
        """Ensure *value* is a VReg (branch conditions must live in GRF)."""
        if isinstance(value, VReg):
            return value
        return self._emit_to_new(Op.MOV, srcs=(value,), name=name)

    def _assign_into(self, target_vreg, value, min_index):
        """Move *value* into *target_vreg*, retargeting the producing
        instruction instead of emitting a MOV when the value is a fresh
        temporary (``index >= min_index``, i.e. created while lowering this
        right-hand side) just computed by the last instruction of this
        block — a standard destination-coalescing peephole."""
        instrs = self._block.instrs
        if (isinstance(value, VReg) and instrs
                and instrs[-1].dst is value
                and value.index >= min_index
                and instrs[-1].op not in (Op.LDU, Op.LD)
                and value.group is None and not value.no_temp
                and target_vreg.group is None):
            instrs[-1].dst = target_vreg
            return
        self._emit(Op.MOV, dst=target_vreg, srcs=(value,))

    # -- conversions ------------------------------------------------------------------

    def _convert(self, value, from_ty, to_ty, node):
        if from_ty == to_ty:
            return value
        if is_vector(from_ty) or is_vector(to_ty):
            return self._convert_vector(value, from_ty, to_ty, node)
        if is_pointer(from_ty) and is_pointer(to_ty):
            return value
        if is_pointer(from_ty) or is_pointer(to_ty):
            if is_pointer(from_ty) and to_ty in (INT, UINT):
                return value
            raise CompileError(f"cannot convert {from_ty} to {to_ty}",
                               node.line, node.col)
        if not is_arithmetic(from_ty) or not is_arithmetic(to_ty):
            raise CompileError(f"cannot convert {from_ty} to {to_ty}",
                               node.line, node.col)
        if isinstance(value, Const):
            return self._convert_const(value, from_ty, to_ty)
        if from_ty.is_float and to_ty.is_integer:
            op = Op.F2I if to_ty.is_signed else Op.F2U
            return self._emit_to_new(op, srcs=(value,))
        if from_ty.is_integer and to_ty.is_float:
            op = Op.I2F if from_ty.is_signed else Op.U2F
            return self._emit_to_new(op, srcs=(value,))
        return value  # int <-> uint <-> bool: same bits

    @staticmethod
    def _convert_const(const, from_ty, to_ty):
        if from_ty.is_float and to_ty.is_integer:
            return Const.from_int(int(const.as_float))
        if from_ty.is_integer and to_ty.is_float:
            value = const.as_int if from_ty.is_signed else const.bits
            return Const.from_float(float(value))
        return const

    def _convert_vector(self, value, from_ty, to_ty, node):
        if is_vector(from_ty) and is_vector(to_ty) and from_ty.width == to_ty.width:
            elements = [
                self._convert(e, from_ty.element, to_ty.element, node)
                for e in value.elements
            ]
            return VecValue(elements, to_ty.element)
        if is_scalar(from_ty) and is_vector(to_ty):
            scalar = self._convert(value, from_ty, to_ty.element, node)
            return VecValue([scalar] * to_ty.width, to_ty.element)
        raise CompileError(f"cannot convert {from_ty} to {to_ty}",
                           node.line, node.col)

    # -- statements ------------------------------------------------------------------------

    def _lower_statement(self, stmt):
        if self._block.terminator is not None:
            # unreachable code after return/break: absorb into a dead block
            self._dead_counter += 1
            self._switch_to(self._new_block("dead"))
        if isinstance(stmt, ast.Block):
            self._scopes.append({})
            try:
                for child in stmt.statements:
                    self._lower_statement(child)
            finally:
                self._scopes.pop()
        elif isinstance(stmt, ast.Declaration):
            self._lower_declaration(stmt)
        elif isinstance(stmt, ast.Assignment):
            self._lower_assignment(stmt)
        elif isinstance(stmt, ast.ExprStatement):
            self._lower_expr_statement(stmt)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.Break):
            if not self._loops:
                raise CompileError("break outside a loop", stmt.line, stmt.col)
            self._block.terminator = ("jump", self._loops[-1].break_block)
        elif isinstance(stmt, ast.Continue):
            if not self._loops:
                raise CompileError("continue outside a loop", stmt.line, stmt.col)
            self._block.terminator = ("jump", self._loops[-1].continue_block)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                raise CompileError("kernels cannot return a value",
                                   stmt.line, stmt.col)
            if self._exit_block is None:
                self._exit_block = self.fn.new_block("exit")
            self._block.terminator = ("jump", self._exit_block)
        else:
            raise CompileError(f"unsupported statement {type(stmt).__name__}",
                               stmt.line, stmt.col)

    def _lower_expr_statement(self, stmt):
        expr = stmt.expr
        if isinstance(expr, ast.Call) and expr.name == "barrier":
            next_block = self._new_block("postbar")
            self._block.terminator = ("barrier", next_block)
            self._switch_to(next_block)
            return
        if isinstance(expr, ast.Call) and expr.name.startswith("vstore"):
            self._lower_call(expr)
            return
        # pure expression statement: evaluate for faults/side effects
        self._rvalue(expr)

    def _lower_declaration(self, decl):
        ty = decl.ty
        if decl.array_size is not None:
            self._lower_array_declaration(decl)
            return
        if is_pointer(ty):
            vreg = self.fn.new_vreg(decl.name)
            self._declare(decl.name, _Symbol("scalar", ty, vreg=vreg), decl)
            if decl.init is not None:
                value, vty = self._rvalue(decl.init)
                if not is_pointer(vty):
                    raise CompileError("pointer initializer must be a pointer",
                                       decl.line, decl.col)
                self._emit(Op.MOV, dst=vreg, srcs=(value,))
            return
        if decl.space == "local":
            raise CompileError("__local variables must be arrays",
                               decl.line, decl.col)
        if is_vector(ty):
            members = [self.fn.new_vreg(f"{decl.name}{i}") for i in range(ty.width)]
            symbol = _Symbol("vector", ty, members=members)
            self._declare(decl.name, symbol, decl)
            if decl.init is not None:
                value, vty = self._rvalue(decl.init)
                value = self._convert(value, vty, ty, decl)
                for member, element in zip(members, value.elements):
                    self._emit(Op.MOV, dst=member, srcs=(element,))
            return
        if not (is_scalar(ty) and ty.name != "void"):
            raise CompileError(f"cannot declare variable of type {ty}",
                               decl.line, decl.col)
        vreg = self.fn.new_vreg(decl.name)
        self._declare(decl.name, _Symbol("scalar", ty, vreg=vreg), decl)
        if decl.init is not None:
            snapshot = self.fn.next_vreg_index
            value, vty = self._rvalue(decl.init)
            value = self._convert(value, vty, ty, decl)
            self._assign_into(vreg, value, snapshot)

    def _lower_array_declaration(self, decl):
        size = _static_const(decl.array_size)
        if not isinstance(size, int) or size <= 0:
            raise CompileError("array size must be a positive constant",
                               decl.line, decl.col)
        ty = decl.ty
        if not is_scalar(ty):
            raise CompileError("only scalar element arrays are supported",
                               decl.line, decl.col)
        if decl.space == "local":
            offset = self._local_offset
            self._local_offset += 4 * size
            symbol = _Symbol("localarray", ty, offset=offset, count=size)
            self._declare(decl.name, symbol, decl)
            return
        # private array: registers when every index is constant, else
        # per-thread scratch in local memory
        if self._array_const_info.get(decl.name, True) and size <= 32:
            members = [self.fn.new_vreg(f"{decl.name}_{i}") for i in range(size)]
            symbol = _Symbol("regarray", ty, members=members, count=size)
        else:
            offset = self._scratch_offset
            self._scratch_offset += 4 * size
            symbol = _Symbol("scratcharray", ty, offset=offset, count=size)
        self._declare(decl.name, symbol, decl)
        if decl.init is not None:
            raise CompileError("array initializers are not supported",
                               decl.line, decl.col)

    # -- assignment --------------------------------------------------------------------------

    def _lower_assignment(self, stmt):
        target = stmt.target
        if stmt.op != "=":
            binary_op = stmt.op[:-1]
            value_expr = ast.Binary(op=binary_op, left=target, right=stmt.value,
                                    line=stmt.line, col=stmt.col)
        else:
            value_expr = stmt.value

        if isinstance(target, ast.Identifier):
            symbol = self._resolve(target.name, target)
            if symbol.kind == "scalar":
                snapshot = self.fn.next_vreg_index
                value, vty = self._rvalue(value_expr)
                value = self._convert(value, vty, symbol.ty, stmt)
                self._assign_into(symbol.vreg, value, snapshot)
                return
            if symbol.kind == "vector":
                value, vty = self._rvalue(value_expr)
                value = self._convert(value, vty, symbol.ty, stmt)
                for member, element in zip(symbol.members, value.elements):
                    self._emit(Op.MOV, dst=member, srcs=(element,))
                return
            raise CompileError(f"cannot assign to {target.name!r}",
                               stmt.line, stmt.col)
        if isinstance(target, ast.Member):
            base = target.base
            if not isinstance(base, ast.Identifier):
                raise CompileError("can only assign to components of variables",
                                   stmt.line, stmt.col)
            symbol = self._resolve(base.name, base)
            if symbol.kind != "vector":
                raise CompileError("component assignment requires a vector",
                                   stmt.line, stmt.col)
            index = _MEMBER_INDEX.get(target.name)
            if index is None or index >= symbol.ty.width:
                raise CompileError(f"bad component .{target.name}",
                                   stmt.line, stmt.col)
            snapshot = self.fn.next_vreg_index
            value, vty = self._rvalue(value_expr)
            value = self._convert(value, vty, symbol.ty.element, stmt)
            self._assign_into(symbol.members[index], value, snapshot)
            return
        if isinstance(target, (ast.Index, ast.Deref)):
            self._lower_store(target, value_expr, stmt)
            return
        raise CompileError("invalid assignment target", stmt.line, stmt.col)

    def _lower_store(self, target, value_expr, stmt):
        destination = self._address_of(target)
        kind = destination[0]
        if kind == "reg":
            _, vreg, elem_ty = destination
            snapshot = self.fn.next_vreg_index
            value, vty = self._rvalue(value_expr)
            value = self._convert(value, vty, elem_ty, stmt)
            self._assign_into(vreg, value, snapshot)
            return
        _, addr, elem_ty, local = destination
        value, vty = self._rvalue(value_expr)
        value = self._convert(value, vty, elem_ty, stmt)
        flags = MEM_SPACE_LOCAL if local else 0
        data = self._materialize(value, "st")
        self._emit(Op.ST, srcs=(addr,), flags=flags, group=[data])

    # -- addresses -------------------------------------------------------------------------------

    def _address_of(self, node):
        """Resolve an Index/Deref target.

        Returns ("reg", vreg, elem_ty) for register arrays, or
        ("mem", addr_value, elem_ty, is_local).
        """
        if isinstance(node, ast.Deref):
            value, ty = self._rvalue(node.operand)
            if not is_pointer(ty):
                raise CompileError("cannot dereference a non-pointer",
                                   node.line, node.col)
            return ("mem", self._materialize(value, "addr"), ty.pointee,
                    ty.space == "local")
        assert isinstance(node, ast.Index)
        base = node.base
        if isinstance(base, ast.Identifier):
            symbol = self._resolve(base.name, base)
            if symbol.kind == "regarray":
                index = _static_const(node.index)
                if index is None:
                    raise CompileError(
                        f"register array {base.name!r} requires constant indices",
                        node.line, node.col,
                    )
                if not 0 <= index < symbol.count:
                    raise CompileError(
                        f"index {index} out of bounds for {base.name!r}",
                        node.line, node.col,
                    )
                return ("reg", symbol.members[index], symbol.ty)
            if symbol.kind == "scratcharray":
                addr = self._scratch_address(symbol, node)
                return ("mem", addr, symbol.ty, True)
            if symbol.kind == "localarray":
                addr = self._indexed_address(Const.from_int(symbol.offset),
                                             node.index, node)
                return ("mem", addr, symbol.ty, True)
        value, ty = self._rvalue(base)
        if not is_pointer(ty):
            raise CompileError("cannot index a non-pointer", node.line, node.col)
        addr = self._indexed_address(value, node.index, node)
        return ("mem", addr, ty.pointee, ty.space == "local")

    def _indexed_address(self, base_value, index_expr, node):
        index, ity = self._rvalue(index_expr)
        if not (is_scalar(ity) and ity.is_integer):
            raise CompileError("array index must be an integer",
                               node.line, node.col)
        if isinstance(index, Const):
            if index.as_int == 0:
                return base_value  # ptr[0] / *ptr: no address arithmetic
            byte_offset = Const.from_int(index.as_int * 4)
        else:
            byte_offset = self._emit_to_new(Op.ISHL,
                                            srcs=(index, Const.from_int(2)))
        if isinstance(base_value, Const) and isinstance(byte_offset, Const):
            return Const.from_int(base_value.as_int + byte_offset.as_int)
        addr = self._emit_to_new(Op.IADD, srcs=(base_value, byte_offset), name="addr")
        return addr

    def _scratch_address(self, symbol, node):
        base = self._scratch_base_value()
        offset_value = self._indexed_address(Const.from_int(symbol.offset),
                                             node.index, node)
        return self._emit_to_new(Op.IADD, srcs=(base, offset_value), name="scr")

    def _scratch_base_value(self):
        """Per-thread scratch base inside local memory (see
        :func:`emit_scratch_base`)."""
        if self._scratch_base is not None:
            return self._scratch_base
        self._scratch_base = emit_scratch_base(self.fn)
        return self._scratch_base

    # -- control flow ---------------------------------------------------------------------------------

    def _cond_vreg(self, expr):
        """Lower a condition to a GRF register tested against zero."""
        value, ty = self._rvalue(expr)
        if is_vector(ty) or is_pointer(ty):
            raise CompileError("condition must be scalar", expr.line, expr.col)
        if ty.is_float:
            value = self._emit_to_new(
                Op.CMP, srcs=(self._materialize(value), Const.from_float(0.0)),
                flags=int(CmpMode.FNE),
            )
        cond = self._materialize(value, "cond")
        cond.no_temp = True
        return cond

    def _lower_if(self, stmt):
        cond = self._cond_vreg(stmt.cond)
        cond_block = self._block
        then_block = self._new_block("then")
        if stmt.other is not None:
            else_block = self._new_block("else")
        join_block = None

        # taken (cond == 0) -> skip the then-branch
        skip_target = else_block if stmt.other is not None else None

        self._switch_to(then_block)
        self._lower_statement(stmt.then)
        then_end = self._block

        if stmt.other is not None:
            self._switch_to(else_block)
            self._lower_statement(stmt.other)
            else_end = self._block
            join_block = self._new_block("join")
            cond_block.terminator = ("branchz", cond, else_block, then_block)
            if then_end.terminator is None:
                then_end.terminator = ("jump", join_block)
            if else_end.terminator is None:
                else_end.terminator = ("jump", join_block)
        else:
            join_block = self._new_block("join")
            cond_block.terminator = ("branchz", cond, join_block, then_block)
            if then_end.terminator is None:
                then_end.terminator = ("jump", join_block)
        self._switch_to(join_block)

    def _lower_for(self, stmt):
        self._scopes.append({})
        try:
            if stmt.init is not None:
                self._lower_statement(stmt.init)
            head = self._new_block("loop")
            body = None
            exit_block = self.fn.new_block("exit")
            self.fn.blocks.remove(exit_block)  # re-append after body blocks
            self._block.terminator = ("jump", head)
            self._switch_to(head)
            if stmt.cond is not None:
                cond = self._cond_vreg(stmt.cond)
                head_end = self._block
                body = self._new_block("body")
                head_end.terminator = ("branchz", cond, exit_block, body)
            else:
                body = self._new_block("body")
                self._block.terminator = ("jump", body)
            step_block = self.fn.new_block("step")
            self.fn.blocks.remove(step_block)
            self._loops.append(_LoopContext(exit_block, step_block))
            self._switch_to(body)
            self._lower_statement(stmt.body)
            if self._block.terminator is None:
                self._block.terminator = ("jump", step_block)
            self._loops.pop()
            self.fn.blocks.append(step_block)
            self._switch_to(step_block)
            if stmt.step is not None:
                self._lower_statement(stmt.step)
            self._block.terminator = ("jump", head)
            self.fn.blocks.append(exit_block)
            self._switch_to(exit_block)
        finally:
            self._scopes.pop()

    def _lower_while(self, stmt):
        head = self._new_block("while")
        exit_block = self.fn.new_block("exit")
        self.fn.blocks.remove(exit_block)
        self._block.terminator = ("jump", head)
        self._switch_to(head)
        cond = self._cond_vreg(stmt.cond)
        head_end = self._block
        body = self._new_block("body")
        head_end.terminator = ("branchz", cond, exit_block, body)
        self._loops.append(_LoopContext(exit_block, head))
        self._switch_to(body)
        self._lower_statement(stmt.body)
        if self._block.terminator is None:
            self._block.terminator = ("jump", head)
        self._loops.pop()
        self.fn.blocks.append(exit_block)
        self._switch_to(exit_block)

    def _lower_do_while(self, stmt):
        body = self._new_block("do")
        exit_block = self.fn.new_block("exit")
        self.fn.blocks.remove(exit_block)
        head = body
        self._block.terminator = ("jump", body)
        cond_block_holder = []
        self._loops.append(_LoopContext(exit_block, None))
        self._switch_to(body)
        # continue in a do-while jumps to the condition check; create it now
        cond_block = self.fn.new_block("docond")
        self.fn.blocks.remove(cond_block)
        self._loops[-1].continue_block = cond_block
        self._lower_statement(stmt.body)
        if self._block.terminator is None:
            self._block.terminator = ("jump", cond_block)
        self._loops.pop()
        self.fn.blocks.append(cond_block)
        self._switch_to(cond_block)
        cond = self._cond_vreg(stmt.cond)
        self._block.terminator = ("branch", cond, head, exit_block)
        self.fn.blocks.append(exit_block)
        self._switch_to(exit_block)
        del cond_block_holder

    # -- expressions -------------------------------------------------------------------------------------

    def _rvalue(self, expr):
        """Lower an expression; returns (value, type)."""
        if isinstance(expr, ast.IntLiteral):
            ty = UINT if expr.unsigned else INT
            return Const.from_int(expr.value), ty
        if isinstance(expr, ast.FloatLiteral):
            return Const.from_float(expr.value), FLOAT
        if isinstance(expr, ast.Identifier):
            return self._lower_identifier(expr)
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Ternary):
            return self._lower_ternary(expr)
        if isinstance(expr, ast.Cast):
            value, ty = self._rvalue(expr.operand)
            return self._convert(value, ty, expr.target, expr), expr.target
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        if isinstance(expr, (ast.Index, ast.Deref)):
            return self._lower_load(expr)
        if isinstance(expr, ast.AddressOf):
            return self._lower_address_of(expr)
        if isinstance(expr, ast.Member):
            return self._lower_member(expr)
        if isinstance(expr, ast.VectorConstructor):
            return self._lower_vector_constructor(expr)
        raise CompileError(f"unsupported expression {type(expr).__name__}",
                           expr.line, expr.col)

    def _lower_identifier(self, expr):
        symbol = self._resolve(expr.name, expr)
        if symbol.kind == "scalar":
            return symbol.vreg, symbol.ty
        if symbol.kind == "vector":
            return VecValue(list(symbol.members), symbol.ty.element), symbol.ty
        if symbol.kind == "param":
            value = self._ldu(symbol.uniform_index, name=expr.name)
            return value, symbol.ty
        if symbol.kind == "localarray":
            return Const.from_int(symbol.offset), PointerType(symbol.ty, "local")
        raise CompileError(f"cannot use array {expr.name!r} as a value",
                           expr.line, expr.col)

    def _lower_load(self, expr):
        destination = self._address_of(expr)
        if destination[0] == "reg":
            _, vreg, elem_ty = destination
            return vreg, elem_ty
        _, addr, elem_ty, local = destination
        flags = MEM_SPACE_LOCAL if local else 0
        dst = self.fn.new_vreg("ld")
        self._emit(Op.LD, dst=dst, srcs=(self._materialize(addr, "addr"),),
                   flags=flags, group=[dst])
        return dst, elem_ty

    def _lower_address_of(self, expr):
        """``&lvalue``: the address of a memory-resident element."""
        target = expr.operand
        if not isinstance(target, (ast.Index, ast.Deref)):
            raise CompileError("& requires an array element or *pointer",
                               expr.line, expr.col)
        destination = self._address_of(target)
        if destination[0] == "reg":
            raise CompileError(
                "cannot take the address of a register-allocated array "
                "element", expr.line, expr.col,
            )
        _, addr, elem_ty, local = destination
        return addr, PointerType(elem_ty, "local" if local else "global")

    def _lower_member(self, expr):
        value, ty = self._rvalue(expr.base)
        if not is_vector(ty):
            raise CompileError("component access requires a vector",
                               expr.line, expr.col)
        index = _MEMBER_INDEX.get(expr.name)
        if index is None or index >= ty.width:
            raise CompileError(f"bad component .{expr.name}", expr.line, expr.col)
        return value.elements[index], ty.element

    def _lower_vector_constructor(self, expr):
        target = expr.target
        if len(expr.args) == 1:
            value, ty = self._rvalue(expr.args[0])
            return self._convert(value, ty, target, expr), target
        if len(expr.args) != target.width:
            raise CompileError(
                f"(float{target.width}) constructor needs {target.width} values",
                expr.line, expr.col,
            )
        elements = []
        for arg in expr.args:
            value, ty = self._rvalue(arg)
            elements.append(self._convert(value, ty, target.element, expr))
        return VecValue(elements, target.element), target

    def _lower_unary(self, expr):
        value, ty = self._rvalue(expr.operand)
        if expr.op == "-":
            if is_vector(ty):
                op = Op.FNEG if ty.element.is_float else None
                if op is None:
                    raise CompileError("cannot negate this vector type",
                                       expr.line, expr.col)
                elements = [self._emit_to_new(op, srcs=(e,)) for e in value.elements]
                return VecValue(elements, ty.element), ty
            if ty.is_float:
                if isinstance(value, Const):
                    return Const.from_float(-value.as_float), ty
                return self._emit_to_new(Op.FNEG, srcs=(value,)), ty
            if isinstance(value, Const):
                return Const.from_int(-value.as_int), ty
            return self._emit_to_new(Op.ISUB, srcs=(Const.from_int(0), value)), ty
        if expr.op == "~":
            if not (is_scalar(ty) and ty.is_integer):
                raise CompileError("~ requires an integer", expr.line, expr.col)
            return self._emit_to_new(
                Op.IXOR, srcs=(value, Const.from_int(0xFFFFFFFF))
            ), ty
        if expr.op == "!":
            if is_vector(ty):
                raise CompileError("! requires a scalar", expr.line, expr.col)
            if ty.is_float:
                result = self._emit_to_new(
                    Op.CMP, srcs=(self._materialize(value), Const.from_float(0.0)),
                    flags=int(CmpMode.FEQ),
                )
            else:
                result = self._emit_to_new(
                    Op.CMP, srcs=(self._materialize(value), Const.from_int(0)),
                    flags=int(CmpMode.IEQ),
                )
            return result, INT
        raise CompileError(f"unsupported unary {expr.op!r}", expr.line, expr.col)

    _BIN_FLOAT = {"+": Op.FADD, "-": Op.FSUB, "*": Op.FMUL,
                  "min": Op.FMIN, "max": Op.FMAX}
    _BIN_INT = {"+": Op.IADD, "-": Op.ISUB, "*": Op.IMUL, "&": Op.IAND,
                "|": Op.IOR, "^": Op.IXOR, "<<": Op.ISHL}

    def _lower_binary(self, expr):
        op = expr.op
        if op in ("&&", "||"):
            return self._lower_logical(expr)
        left, lty = self._rvalue(expr.left)
        right, rty = self._rvalue(expr.right)
        # pointer arithmetic
        if is_pointer(lty) and op in ("+", "-") and is_scalar(rty) and rty.is_integer:
            offset = right
            if isinstance(offset, Const):
                delta = offset.as_int * 4 * (1 if op == "+" else -1)
                if isinstance(left, Const):
                    return Const.from_int(left.as_int + delta), lty
                return self._emit_to_new(
                    Op.IADD, srcs=(left, Const.from_int(delta))
                ), lty
            scaled = self._emit_to_new(Op.ISHL, srcs=(offset, Const.from_int(2)))
            gop = Op.IADD if op == "+" else Op.ISUB
            return self._emit_to_new(gop, srcs=(self._materialize(left), scaled)), lty
        if is_vector(lty) or is_vector(rty):
            return self._lower_vector_binary(expr, op, left, lty, right, rty)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            common = unify_arithmetic(lty, rty, expr.line, expr.col)
            left = self._convert(left, lty, common, expr)
            right = self._convert(right, rty, common, expr)
            mode = _CMP_BY_TYPE[common.name if common.name != "bool" else "int"][op]
            result = self._emit_to_new(
                Op.CMP, srcs=(self._materialize(left), self._materialize(right)),
                flags=int(mode),
            )
            return result, INT
        common = unify_arithmetic(lty, rty, expr.line, expr.col)
        left = self._convert(left, lty, common, expr)
        right = self._convert(right, rty, common, expr)
        folded = self._fold_binary(op, left, right, common)
        if folded is not None:
            return folded, common
        if common.is_float:
            if op == "/":
                rcp = self._emit_to_new(Op.FRCP, srcs=(right,))
                return self._emit_to_new(Op.FMUL, srcs=(left, rcp)), common
            gop = self._BIN_FLOAT.get(op)
            if gop is None:
                raise CompileError(f"operator {op!r} not defined for float",
                                   expr.line, expr.col)
            return self._emit_to_new(gop, srcs=(left, right)), common
        # integer
        if op == "/":
            gop = Op.IDIV if common.is_signed else Op.UDIV
            return self._emit_to_new(gop, srcs=(left, right)), common
        if op == "%":
            gop = Op.IREM if common.is_signed else Op.UREM
            return self._emit_to_new(gop, srcs=(left, right)), common
        if op == ">>":
            gop = Op.IASHR if common.is_signed else Op.ISHR
            return self._emit_to_new(gop, srcs=(left, right)), common
        gop = self._BIN_INT.get(op)
        if gop is None:
            raise CompileError(f"operator {op!r} not defined for integers",
                               expr.line, expr.col)
        return self._emit_to_new(gop, srcs=(left, right)), common

    @staticmethod
    def _fold_binary(op, left, right, ty):
        if not (isinstance(left, Const) and isinstance(right, Const)):
            return None
        try:
            if ty.is_float:
                a, b = left.as_float, right.as_float
                value = {"+": a + b, "-": a - b, "*": a * b,
                         "/": (a / b) if b else None}.get(op)
                if value is None:
                    return None
                return Const.from_float(value)
            a = left.as_int if ty.is_signed else left.bits
            b = right.as_int if ty.is_signed else right.bits
            if op == "/":
                if b == 0:
                    return None
                value = int(a / b)
            elif op == "%":
                if b == 0:
                    return None
                value = a - int(a / b) * b
            else:
                value = {
                    "+": a + b, "-": a - b, "*": a * b, "&": a & b, "|": a | b,
                    "^": a ^ b, "<<": a << (b & 31), ">>": a >> (b & 31),
                }.get(op)
            if value is None:
                return None
            return Const.from_int(value)
        except (OverflowError, ValueError, ZeroDivisionError, KeyError):
            return None

    def _lower_vector_binary(self, expr, op, left, lty, right, rty):
        if is_vector(lty) and is_vector(rty):
            if lty.width != rty.width:
                raise CompileError("vector width mismatch", expr.line, expr.col)
            width = lty.width
        else:
            width = lty.width if is_vector(lty) else rty.width
        element = FLOAT  # only float vectors support arithmetic here
        lvec = left if is_vector(lty) else VecValue(
            [self._convert(left, lty, element, expr)] * width, element
        )
        rvec = right if is_vector(rty) else VecValue(
            [self._convert(right, rty, element, expr)] * width, element
        )
        gop = self._BIN_FLOAT.get(op)
        if op == "/":
            elements = []
            for a, b in zip(lvec.elements, rvec.elements):
                rcp = self._emit_to_new(Op.FRCP, srcs=(b,))
                elements.append(self._emit_to_new(Op.FMUL, srcs=(a, rcp)))
            return VecValue(elements, element), VectorType(element, width)
        if gop is None:
            raise CompileError(f"vector operator {op!r} unsupported",
                               expr.line, expr.col)
        elements = [
            self._emit_to_new(gop, srcs=(a, b))
            for a, b in zip(lvec.elements, rvec.elements)
        ]
        return VecValue(elements, element), VectorType(element, width)

    def _bool_value(self, expr):
        """Lower *expr* to a 0/1 integer VReg."""
        value, ty = self._rvalue(expr)
        if is_vector(ty) or is_pointer(ty):
            raise CompileError("boolean context requires a scalar",
                               expr.line, expr.col)
        if ty.is_float:
            return self._emit_to_new(
                Op.CMP, srcs=(self._materialize(value), Const.from_float(0.0)),
                flags=int(CmpMode.FNE),
            )
        return self._emit_to_new(
            Op.CMP, srcs=(self._materialize(value), Const.from_int(0)),
            flags=int(CmpMode.INE),
        )

    def _lower_logical(self, expr):
        """Short-circuit && / || with real control flow."""
        result = self.fn.new_vreg("logic")
        result.no_temp = True
        is_and = expr.op == "&&"
        first = self._bool_value(expr.left)
        self._emit(Op.MOV, dst=result, srcs=(first,))
        cond_block = self._block
        rhs_block = self._new_block("rhs")
        join_block = self.fn.new_block("ljoin")
        self.fn.blocks.remove(join_block)
        if is_and:
            # skip rhs when first == 0
            cond_block.terminator = ("branchz", first, join_block, rhs_block)
        else:
            cond_block.terminator = ("branch", first, join_block, rhs_block)
        self._switch_to(rhs_block)
        second = self._bool_value(expr.right)
        self._emit(Op.MOV, dst=result, srcs=(second,))
        self._block.terminator = ("jump", join_block)
        self.fn.blocks.append(join_block)
        self._switch_to(join_block)
        return result, INT

    def _lower_ternary(self, expr):
        if not (_has_memory_access(expr.then) or _has_memory_access(expr.other)):
            cond = self._bool_value(expr.cond)
            then_value, then_ty = self._rvalue(expr.then)
            other_value, other_ty = self._rvalue(expr.other)
            if is_vector(then_ty) or is_vector(other_ty):
                raise CompileError("vector ternary is not supported",
                                   expr.line, expr.col)
            common = unify_arithmetic(then_ty, other_ty, expr.line, expr.col)
            then_value = self._convert(then_value, then_ty, common, expr)
            other_value = self._convert(other_value, other_ty, common, expr)
            result = self._emit_to_new(
                Op.SELECT, srcs=(then_value, other_value, cond)
            )
            return result, common
        # memory on one side: lower with control flow to preserve faults
        cond = self._cond_vreg(expr.cond)
        result = self.fn.new_vreg("tern")
        result.no_temp = True
        cond_block = self._block
        then_block = self._new_block("tthen")
        else_block = self.fn.new_block("telse")
        self.fn.blocks.remove(else_block)
        join_block = self.fn.new_block("tjoin")
        self.fn.blocks.remove(join_block)
        cond_block.terminator = ("branchz", cond, else_block, then_block)
        self._switch_to(then_block)
        then_value, then_ty = self._rvalue(expr.then)
        self._emit(Op.MOV, dst=result, srcs=(then_value,))
        self._block.terminator = ("jump", join_block)
        self.fn.blocks.append(else_block)
        self._switch_to(else_block)
        other_value, other_ty = self._rvalue(expr.other)
        common = unify_arithmetic(then_ty, other_ty, expr.line, expr.col)
        self._emit(Op.MOV, dst=result,
                   srcs=(self._convert(other_value, other_ty, common, expr),))
        self._block.terminator = ("jump", join_block)
        self.fn.blocks.append(join_block)
        self._switch_to(join_block)
        return result, common

    # -- builtin calls ------------------------------------------------------------------------------------

    _UNARY_FLOAT_BUILTINS = {
        "sqrt": Op.FSQRT, "native_sqrt": Op.FSQRT, "half_sqrt": Op.FSQRT,
        "rsqrt": Op.FRSQ, "native_rsqrt": Op.FRSQ,
        "exp": Op.FEXP, "native_exp": Op.FEXP,
        "log": Op.FLOG, "native_log": Op.FLOG,
        "fabs": Op.FABS, "floor": Op.FFLOOR,
        "sin": Op.FSIN, "native_sin": Op.FSIN,
        "cos": Op.FCOS, "native_cos": Op.FCOS,
        "native_recip": Op.FRCP,
    }

    def _float_arg(self, expr, index=0, name=""):
        value, ty = self._rvalue(expr.args[index])
        return self._convert(value, ty, FLOAT, expr)

    def _lower_call(self, expr):
        name = expr.name
        nargs = len(expr.args)
        if name in ("get_global_id", "get_local_id", "get_group_id"):
            dim = _static_const(expr.args[0]) if nargs == 1 else None
            if dim not in (0, 1, 2):
                raise CompileError(f"{name} needs a constant dimension 0-2",
                                   expr.line, expr.col)
            base = {"get_global_id": REG_GLOBAL_ID, "get_local_id": REG_LOCAL_ID,
                    "get_group_id": REG_GROUP_ID}[name]
            return Special(base + dim), UINT
        if name in ("get_global_size", "get_local_size", "get_num_groups"):
            dim = _static_const(expr.args[0]) if nargs == 1 else None
            if dim not in (0, 1, 2):
                raise CompileError(f"{name} needs a constant dimension 0-2",
                                   expr.line, expr.col)
            slot = {"get_global_size": U_GLOBAL_SIZE, "get_local_size": U_LOCAL_SIZE,
                    "get_num_groups": U_NUM_GROUPS}[name]
            return self._ldu(slot + dim, name=name), UINT
        if name == "get_work_dim":
            return self._ldu(U_WORK_DIM), UINT
        if name in self._UNARY_FLOAT_BUILTINS:
            if nargs != 1:
                raise CompileError(f"{name} takes one argument", expr.line, expr.col)
            value = self._float_arg(expr)
            return self._emit_to_new(self._UNARY_FLOAT_BUILTINS[name],
                                     srcs=(value,)), FLOAT
        if name in ("fmin", "fmax"):
            a = self._float_arg(expr, 0)
            b = self._float_arg(expr, 1)
            op = Op.FMIN if name == "fmin" else Op.FMAX
            return self._emit_to_new(op, srcs=(a, b)), FLOAT
        if name in ("min", "max"):
            left, lty = self._rvalue(expr.args[0])
            right, rty = self._rvalue(expr.args[1])
            common = unify_arithmetic(lty, rty, expr.line, expr.col)
            left = self._convert(left, lty, common, expr)
            right = self._convert(right, rty, common, expr)
            if common.is_float:
                op = Op.FMIN if name == "min" else Op.FMAX
            elif common.is_signed:
                op = Op.IMIN if name == "min" else Op.IMAX
            else:
                op = Op.UMIN if name == "min" else Op.UMAX
            return self._emit_to_new(op, srcs=(left, right)), common
        if name == "clamp":
            inner = ast.Call(name="max", args=[expr.args[0], expr.args[1]],
                             line=expr.line, col=expr.col)
            outer = ast.Call(name="min", args=[inner, expr.args[2]],
                             line=expr.line, col=expr.col)
            return self._lower_call(outer)
        if name in ("mad", "fma"):
            a = self._float_arg(expr, 0)
            b = self._float_arg(expr, 1)
            c = self._float_arg(expr, 2)
            return self._emit_to_new(Op.FMA, srcs=(a, b, c)), FLOAT
        if name in ("pow", "powr", "native_powr"):
            a = self._float_arg(expr, 0)
            b = self._float_arg(expr, 1)
            lg = self._emit_to_new(Op.FLOG, srcs=(a,))
            prod = self._emit_to_new(Op.FMUL, srcs=(b, lg))
            return self._emit_to_new(Op.FEXP, srcs=(prod,)), FLOAT
        if name == "native_divide":
            a = self._float_arg(expr, 0)
            b = self._float_arg(expr, 1)
            rcp = self._emit_to_new(Op.FRCP, srcs=(b,))
            return self._emit_to_new(Op.FMUL, srcs=(a, rcp)), FLOAT
        if name == "abs":
            value, ty = self._rvalue(expr.args[0])
            if ty.is_float:
                return self._emit_to_new(Op.FABS, srcs=(value,)), FLOAT
            return self._emit_to_new(Op.IABS, srcs=(value,)), ty
        if name == "select":
            a, aty = self._rvalue(expr.args[0])
            b, bty = self._rvalue(expr.args[1])
            c, _cty = self._rvalue(expr.args[2])
            common = unify_arithmetic(aty, bty, expr.line, expr.col)
            a = self._convert(a, aty, common, expr)
            b = self._convert(b, bty, common, expr)
            # OpenCL: select(a, b, c) == c ? b : a
            return self._emit_to_new(
                Op.SELECT, srcs=(b, a, self._materialize(c))
            ), common
        if name == "mul24":
            left, _ = self._rvalue(expr.args[0])
            right, _ = self._rvalue(expr.args[1])
            return self._emit_to_new(Op.IMUL, srcs=(left, right)), INT
        if name in ("convert_int", "convert_uint", "convert_float"):
            target = {"convert_int": INT, "convert_uint": UINT,
                      "convert_float": FLOAT}[name]
            value, ty = self._rvalue(expr.args[0])
            return self._convert(value, ty, target, expr), target
        if name in ("as_int", "as_uint", "as_float"):
            target = {"as_int": INT, "as_uint": UINT, "as_float": FLOAT}[name]
            value, _ty = self._rvalue(expr.args[0])
            return value, target  # bit-level reinterpretation
        if name in ("vload2", "vload4"):
            return self._lower_vload(expr, 2 if name == "vload2" else 4)
        if name in ("vstore2", "vstore4"):
            self._lower_vstore(expr, 2 if name == "vstore2" else 4)
            return Const.from_int(0), VOID
        if name in _ATOMIC_MODES:
            return self._lower_atomic(expr, name)
        if name == "barrier":
            raise CompileError("barrier() must be a standalone statement",
                               expr.line, expr.col)
        raise CompileError(f"unknown function {name!r}", expr.line, expr.col)

    def _lower_atomic(self, expr, name):
        """OpenCL 1.x atomics: atomic_add(p, v) etc.; returns the old
        value. ``atomic_inc``/``atomic_dec`` take only the pointer."""
        mode, implicit_one = _ATOMIC_MODES[name]
        expected = 1 if implicit_one else 2
        if len(expr.args) != expected:
            raise CompileError(f"{name} takes {expected} argument(s)",
                               expr.line, expr.col)
        pointer, pty = self._rvalue(expr.args[0])
        if not is_pointer(pty):
            raise CompileError(f"{name} requires a pointer argument",
                               expr.line, expr.col)
        if not pty.pointee.is_integer:
            raise CompileError(f"{name} requires an integer pointer",
                               expr.line, expr.col)
        if implicit_one:
            value = Const.from_int(1)
            vty = pty.pointee
        else:
            value, vty = self._rvalue(expr.args[1])
            if not (is_scalar(vty) and vty.is_integer):
                raise CompileError(f"{name} operand must be an integer",
                                   expr.line, expr.col)
        flags = (mode << ATOM_MODE_SHIFT) | (
            MEM_SPACE_LOCAL if pty.space == "local" else 0
        )
        dst = self.fn.new_vreg("atom")
        self._emit(Op.ATOM, dst=dst,
                   srcs=(self._materialize(pointer, "aaddr"),
                         self._materialize(value, "aval")),
                   flags=flags)
        return dst, pty.pointee

    # -- vector memory -------------------------------------------------------------------------------

    def _vector_address(self, expr, width):
        """vloadN/vstoreN addressing: base pointer + offset * width * 4."""
        offset_expr = expr.args[0] if expr.name.startswith("vload") else expr.args[1]
        ptr_expr = expr.args[1] if expr.name.startswith("vload") else expr.args[2]
        ptr, pty = self._rvalue(ptr_expr)
        if not is_pointer(pty) or not pty.pointee.is_float:
            raise CompileError("vload/vstore require a float pointer",
                               expr.line, expr.col)
        offset, oty = self._rvalue(offset_expr)
        if not oty.is_integer:
            raise CompileError("vload/vstore offset must be an integer",
                               expr.line, expr.col)
        stride_shift = 3 if width == 2 else 4
        if isinstance(offset, Const):
            byte_offset = Const.from_int(offset.as_int << stride_shift)
        else:
            byte_offset = self._emit_to_new(
                Op.ISHL, srcs=(offset, Const.from_int(stride_shift))
            )
        if isinstance(ptr, Const) and isinstance(byte_offset, Const):
            addr = Const.from_int(ptr.as_int + byte_offset.as_int)
        else:
            addr = self._emit_to_new(Op.IADD, srcs=(ptr, byte_offset), name="vaddr")
        local = pty.space == "local"
        return self._materialize(addr, "vaddr"), local

    def _lower_vload(self, expr, width):
        addr, local = self._vector_address(expr, width)
        space_flag = MEM_SPACE_LOCAL if local else 0
        if self.options.vector_ls:
            group = self.fn.new_group(width, "vl")
            width_flag = 1 if width == 2 else 2
            self._emit(Op.LD, dst=group[0], srcs=(addr,),
                       flags=width_flag | space_flag, group=group)
            elements = list(group)
        else:
            # older toolchains scalarize wide accesses
            elements = []
            for i in range(width):
                element_addr = self._emit_to_new(
                    Op.IADD, srcs=(addr, Const.from_int(4 * i))
                ) if i else addr
                dst = self.fn.new_vreg(f"vl{i}")
                self._emit(Op.LD, dst=dst, srcs=(element_addr,),
                           flags=space_flag, group=[dst])
                elements.append(dst)
        return VecValue(elements, FLOAT), VectorType(FLOAT, width)

    def _lower_vstore(self, expr, width):
        value, vty = self._rvalue(expr.args[0])
        if not is_vector(vty) or vty.width != width:
            raise CompileError(f"vstore{width} requires a float{width} value",
                               expr.line, expr.col)
        addr, local = self._vector_address(expr, width)
        space_flag = MEM_SPACE_LOCAL if local else 0
        if self.options.vector_ls:
            group = self.fn.new_group(width, "vs")
            for member, element in zip(group, value.elements):
                self._emit(Op.MOV, dst=member, srcs=(element,))
            width_flag = 1 if width == 2 else 2
            self._emit(Op.ST, srcs=(addr,), flags=width_flag | space_flag,
                       group=group)
        else:
            for i, element in enumerate(value.elements):
                element_addr = self._emit_to_new(
                    Op.IADD, srcs=(addr, Const.from_int(4 * i))
                ) if i else addr
                data = self._materialize(element, "vs")
                self._emit(Op.ST, srcs=(element_addr,), flags=space_flag,
                           group=[data])
