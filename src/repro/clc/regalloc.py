"""Linear-scan register allocation onto the GRF.

Virtual registers are mapped to GRF registers r0..r52 (r53..r63 are
dispatcher-preloaded thread-id registers). Vector groups (wide LD/ST
operands) receive consecutive registers. Values forwarded to clause
temporaries are excluded.

Liveness is computed on the *scheduled* instruction order (the clause
scheduler may have reordered instructions), with conservative whole-block
extension for values live across block boundaries.
"""

from repro.errors import CompileError
from repro.clc.ir import VReg
from repro.gpu.isa import ALLOCATABLE_REGS


class SpillRequired(Exception):
    """Raised when allocation fails; carries spill candidates ordered by
    live-interval length (longest first — best pressure relief)."""

    def __init__(self, candidates):
        super().__init__("register pressure exceeds the GRF")
        self.candidates = candidates


def _block_positions(fn, block_plans):
    """Assign each scheduled instruction a global position; returns
    (ordered_instrs, block_ranges) where block_ranges[block] = (start, end)
    with *end* covering the terminator position."""
    ordered = []
    ranges = {}
    for block in fn.blocks:
        start = len(ordered)
        for plan in block_plans.get(id(block), []):
            ordered.extend(plan.instructions())
        end = len(ordered)  # terminator position
        ordered.append(("term", block))
        ranges[id(block)] = (start, end)
    return ordered, ranges


def _terminator_uses(block):
    term = block.terminator
    if term and term[0] in ("branch", "branchz") and isinstance(term[1], VReg):
        return [term[1]]
    return []


def _liveness(fn, block_plans):
    """Backward dataflow: live-in/live-out sets per block (by id)."""
    use_sets = {}
    def_sets = {}
    for block in fn.blocks:
        uses = set()
        defs = set()
        for plan in block_plans.get(id(block), []):
            for instr in plan.instructions():
                for u in instr.uses():
                    if u not in defs:
                        uses.add(u)
                for d in instr.defs():
                    defs.add(d)
        for u in _terminator_uses(block):
            if u not in defs:
                uses.add(u)
        use_sets[id(block)] = uses
        def_sets[id(block)] = defs

    live_in = {id(b): set() for b in fn.blocks}
    live_out = {id(b): set() for b in fn.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(fn.blocks):
            out = set()
            for successor in block.successors:
                out |= live_in[id(successor)]
            if out != live_out[id(block)]:
                live_out[id(block)] = out
                changed = True
            new_in = use_sets[id(block)] | (out - def_sets[id(block)])
            if new_in != live_in[id(block)]:
                live_in[id(block)] = new_in
                changed = True
    return live_in, live_out


def _intervals(fn, block_plans, temp_map):
    """Compute a conservative [start, end] interval per VReg."""
    ordered, ranges = _block_positions(fn, block_plans)
    live_in, live_out = _liveness(fn, block_plans)

    starts = {}
    ends = {}

    def touch(reg, position):
        if reg in temp_map:
            return
        if reg not in starts:
            starts[reg] = position
        starts[reg] = min(starts[reg], position)
        ends[reg] = max(ends.get(reg, position), position)

    position = 0
    for block in fn.blocks:
        block_start, block_end = ranges[id(block)]
        for reg in live_in[id(block)]:
            touch(reg, block_start)
        for plan in block_plans.get(id(block), []):
            for instr in plan.instructions():
                for reg in instr.uses():
                    touch(reg, position)
                for reg in instr.defs():
                    touch(reg, position)
                position += 1
        for reg in _terminator_uses(block):
            touch(reg, block_end)
        for reg in live_out[id(block)]:
            touch(reg, block_end)
        position += 1  # terminator slot
    return starts, ends


def allocate_registers(fn, block_plans, temp_map):
    """Allocate GRF registers; returns (assignment dict, registers used).

    Raises:
        CompileError: if the kernel needs more than the allocatable GRF.
    """
    starts, ends = _intervals(fn, block_plans, temp_map)

    # treat each vector group as a single allocation unit
    units = []  # (start, end, members_tuple)
    seen_groups = set()
    for reg in starts:
        if reg.group is not None:
            key = id(reg.group[0])
            if key in seen_groups:
                continue
            seen_groups.add(key)
            members = tuple(reg.group)
            start = min(starts.get(m, starts[reg]) for m in members if m in starts)
            end = max(ends.get(m, ends[reg]) for m in members if m in ends)
            units.append((start, end, members))
        else:
            units.append((starts[reg], ends[reg], (reg,)))

    units.sort(key=lambda unit: (unit[0], unit[1]))
    free = set(range(ALLOCATABLE_REGS))
    active = []  # (end, base, width)
    assignment = {}
    max_used = -1

    for start, end, members in units:
        # expire finished intervals
        still_active = []
        for a_end, a_base, a_width in active:
            if a_end < start:
                for r in range(a_base, a_base + a_width):
                    free.add(r)
            else:
                still_active.append((a_end, a_base, a_width))
        active = still_active
        width = len(members)
        base = _find_base(free, width)
        if base is None:
            candidates = sorted(
                (unit for unit in units
                 if len(unit[2]) == 1 and not unit[2][0].no_spill
                 and unit[2][0].group is None),
                key=lambda unit: unit[0] - unit[1],  # longest interval first
            )
            ordered = [unit[2][0] for unit in candidates]
            if not ordered:
                raise CompileError(
                    f"kernel {fn.name!r} exceeds the register file "
                    f"({ALLOCATABLE_REGS} allocatable registers) and no "
                    "value is spillable"
                )
            raise SpillRequired(ordered)
        for r in range(base, base + width):
            free.discard(r)
        active.append((end, base, width))
        for offset, member in enumerate(members):
            assignment[member] = base + offset
        max_used = max(max_used, base + width - 1)

    return assignment, max_used + 1


def _find_base(free, width):
    if width == 1:
        return min(free) if free else None
    for base in sorted(free):
        if all(base + i in free for i in range(width)):
            return base
    return None
