"""Compiler version presets (the paper's Fig. 1 toolchain study).

The paper shows that successive versions of Arm's OpenCL compiler produce
substantially different code for the same kernel (arithmetic cycles vary by
up to 47%, LS cycles by 43%, register use by 9%). Our presets model that by
toggling real passes:

=========== ======== =========== ========== ============= =========
version     unroll   dual_issue  vector_ls  temp_forward  copyprop
=========== ======== =========== ========== ============= =========
v5.6        1        no          no         no            no
v5.7        1        no          yes        no            yes
v6.0        4        no          yes        yes           yes
v6.1        2        yes         yes        yes           yes
v6.2        2        yes         yes        yes           yes
=========== ======== =========== ========== ============= =========

- *vector_ls* lowers vloadN/vstoreN to wide LD/ST (fewer LS instructions
  and beats), at the cost of register shuffling and contiguous-register
  pressure (the v5.7 register increase in Fig. 1);
- *dual_issue* hoists independent simple ops into empty ADD slots (fewer
  NOPs and tuples — the v6.1 arithmetic-cycle drop);
- *unroll* trades registers for fewer branches and longer clauses.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class VersionPreset:
    name: str
    unroll_limit: int
    dual_issue: bool
    vector_ls: bool
    temp_forward: bool
    copyprop: bool
    dce: bool = True
    hoist_uniforms: bool = True


COMPILER_VERSIONS = {
    "5.6": VersionPreset("5.6", unroll_limit=1, dual_issue=False,
                         vector_ls=False, temp_forward=False, copyprop=False,
                         hoist_uniforms=False),
    "5.7": VersionPreset("5.7", unroll_limit=1, dual_issue=False,
                         vector_ls=True, temp_forward=False, copyprop=True,
                         hoist_uniforms=False),
    "6.0": VersionPreset("6.0", unroll_limit=8, dual_issue=False,
                         vector_ls=True, temp_forward=True, copyprop=True),
    "6.1": VersionPreset("6.1", unroll_limit=8, dual_issue=True,
                         vector_ls=True, temp_forward=True, copyprop=True),
    "6.2": VersionPreset("6.2", unroll_limit=8, dual_issue=True,
                         vector_ls=True, temp_forward=True, copyprop=True),
}

DEFAULT_VERSION = "6.2"
