"""Abstract syntax tree for the kernel language.

Nodes carry ``line``/``col`` for diagnostics. ``ty`` attributes are filled
by semantic analysis (:mod:`repro.clc.sema`).
"""

from dataclasses import dataclass, field


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)
    col: int = field(default=0, kw_only=True)


# -- expressions ---------------------------------------------------------------


@dataclass
class IntLiteral(Node):
    value: int
    unsigned: bool = False
    ty: object = None


@dataclass
class FloatLiteral(Node):
    value: float
    ty: object = None


@dataclass
class Identifier(Node):
    name: str
    ty: object = None


@dataclass
class Unary(Node):
    op: str  # '-' '!' '~' '+'
    operand: object = None
    ty: object = None


@dataclass
class Binary(Node):
    op: str
    left: object = None
    right: object = None
    ty: object = None


@dataclass
class Ternary(Node):
    cond: object
    then: object
    other: object
    ty: object = None


@dataclass
class Cast(Node):
    target: object  # a type
    operand: object = None
    ty: object = None


@dataclass
class Call(Node):
    name: str
    args: list = field(default_factory=list)
    ty: object = None


@dataclass
class Index(Node):
    base: object
    index: object
    ty: object = None


@dataclass
class Member(Node):
    """Vector component access: ``v.x`` / ``v.y`` / ``v.z`` / ``v.w``."""

    base: object
    name: str
    ty: object = None


@dataclass
class VectorConstructor(Node):
    """``(float4)(a, b, c, d)``."""

    target: object  # VectorType
    args: list = field(default_factory=list)
    ty: object = None


@dataclass
class Deref(Node):
    """``*ptr``."""

    operand: object
    ty: object = None


@dataclass
class AddressOf(Node):
    """``&lvalue`` (needed for atomic builtins)."""

    operand: object
    ty: object = None


# -- statements -----------------------------------------------------------------


@dataclass
class Declaration(Node):
    ty: object = None  # declared type
    name: str = ""
    init: object = None
    array_size: object = None  # expression or None
    space: str = "private"  # 'private' | 'local'


@dataclass
class Assignment(Node):
    target: object = None  # Identifier | Index | Member | Deref
    op: str = "="  # '=', '+=', ...
    value: object = None


@dataclass
class ExprStatement(Node):
    expr: object = None


@dataclass
class If(Node):
    cond: object = None
    then: object = None
    other: object = None


@dataclass
class For(Node):
    init: object = None  # Declaration | Assignment | None
    cond: object = None
    step: object = None  # Assignment | None
    body: object = None


@dataclass
class While(Node):
    cond: object = None
    body: object = None


@dataclass
class DoWhile(Node):
    body: object = None
    cond: object = None


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


@dataclass
class Return(Node):
    value: object = None


@dataclass
class Barrier(Node):
    pass


@dataclass
class Block(Node):
    statements: list = field(default_factory=list)


# -- top level -----------------------------------------------------------------------


@dataclass
class Parameter(Node):
    ty: object = None
    name: str = ""


@dataclass
class KernelFunction(Node):
    name: str = ""
    params: list = field(default_factory=list)
    body: object = None
    is_kernel: bool = True


@dataclass
class TranslationUnit(Node):
    kernels: list = field(default_factory=list)
