"""Intermediate representation: three-address code over virtual registers.

The IR is deliberately non-SSA (virtual registers are mutable), which keeps
lowering simple and matches the GPU's mutable register file. Operations map
one-to-one onto GPU opcodes (:class:`repro.gpu.isa.Op`); three pseudo
operand kinds exist besides virtual registers:

- :class:`Const` — a 32-bit literal, materialized into the clause constant
  pool ("ROM") by the scheduler;
- :class:`Special` — a dispatcher-preloaded GRF register (thread ids).

Control flow lives in block terminators, mirroring the Bifrost clause-tail
model.
"""

import struct
from dataclasses import dataclass, field

from repro.gpu.isa import Op


class VReg:
    """A virtual register.

    Attributes:
        index: unique id within the function.
        name: diagnostic hint.
        group: the vector group this register belongs to (list of VRegs
            needing consecutive GRF allocation), or None.
        no_temp: True if this value must live in the GRF (branch conditions,
            vector-group members, cross-block values).
    """

    __slots__ = ("index", "name", "group", "no_temp", "no_spill")

    def __init__(self, index, name=""):
        self.index = index
        self.name = name
        self.group = None
        self.no_temp = False
        self.no_spill = False  # spill bookkeeping itself must stay in GRF

    def __repr__(self):
        return f"%{self.index}{('.' + self.name) if self.name else ''}"


@dataclass(frozen=True)
class Const:
    """A 32-bit constant operand (raw bit pattern)."""

    bits: int

    @staticmethod
    def from_int(value):
        return Const(value & 0xFFFFFFFF)

    @staticmethod
    def from_float(value):
        return Const(struct.unpack("<I", struct.pack("<f", value))[0])

    @property
    def as_float(self):
        return struct.unpack("<f", struct.pack("<I", self.bits))[0]

    @property
    def as_int(self):
        value = self.bits
        return value - (1 << 32) if value & 0x80000000 else value

    def __repr__(self):
        return f"c(0x{self.bits:08x})"


@dataclass(frozen=True)
class Special:
    """A preloaded GRF register operand (thread/group ids)."""

    reg: int

    def __repr__(self):
        return f"s{self.reg}"


@dataclass
class IRInstr:
    """One IR instruction.

    ``group`` carries the vector register list for wide LD (destinations)
    and wide ST (data sources); scalar memory ops leave it None.
    """

    op: Op
    dst: object = None  # VReg or None
    srcs: tuple = ()
    flags: int = 0
    imm: int = 0
    group: object = None

    def uses(self):
        """All VRegs read by this instruction."""
        regs = [s for s in self.srcs if isinstance(s, VReg)]
        if self.op is Op.ST and self.group:
            regs.extend(self.group)
        return regs

    def defs(self):
        """All VRegs written by this instruction."""
        if self.op is Op.LD and self.group:
            return list(self.group)
        return [self.dst] if isinstance(self.dst, VReg) else []

    @property
    def is_memory(self):
        return self.op in (Op.LD, Op.ST, Op.LDU, Op.ATOM)

    def __repr__(self):
        parts = [self.op.name.lower()]
        if self.dst is not None:
            parts.append(f"{self.dst} <-")
        parts.append(", ".join(map(repr, self.srcs)))
        return " ".join(parts)


class BasicBlock:
    """A straight-line instruction sequence with one terminator.

    Terminators:
        ("jump", block)
        ("branch", cond_vreg, target_block, fall_block)   # taken if cond != 0
        ("branchz", cond_vreg, target_block, fall_block)  # taken if cond == 0
        ("barrier", next_block)
        ("end",)
    """

    def __init__(self, name):
        self.name = name
        self.instrs = []
        self.terminator = None

    def emit(self, instr):
        self.instrs.append(instr)
        return instr

    @property
    def successors(self):
        term = self.terminator
        if term is None or term[0] == "end":
            return []
        if term[0] in ("jump", "barrier"):
            return [term[1]]
        return [term[2], term[3]]  # branch / branchz

    def __repr__(self):
        return f"<block {self.name} ({len(self.instrs)} instrs)>"


class IRFunction:
    """A lowered kernel: ordered basic blocks plus layout metadata."""

    def __init__(self, name):
        self.name = name
        self.blocks = []
        self._next_vreg = 0
        # filled by lowering:
        self.params = []  # list of (name, kind, type) — kind: buffer/scalar/local
        self.local_static_size = 0  # bytes of __local arrays
        self.scratch_per_thread = 0  # bytes of spilled private arrays
        self.uniform_count = 0

    def new_block(self, name):
        block = BasicBlock(f"{name}{len(self.blocks)}")
        self.blocks.append(block)
        return block

    def new_vreg(self, name=""):
        reg = VReg(self._next_vreg, name)
        self._next_vreg += 1
        return reg

    @property
    def next_vreg_index(self):
        """Index the next ``new_vreg`` call will use (peephole snapshots)."""
        return self._next_vreg

    def new_group(self, width, name=""):
        """Create *width* VRegs constrained to consecutive GRF slots."""
        members = [self.new_vreg(f"{name}{i}") for i in range(width)]
        for member in members:
            member.group = members
            member.no_temp = True
        return members

    def validate(self):
        for block in self.blocks:
            if block.terminator is None:
                raise ValueError(f"block {block.name} lacks a terminator")

    def dump(self):
        lines = [f"function {self.name}:"]
        for block in self.blocks:
            lines.append(f"  {block.name}:")
            for instr in block.instrs:
                lines.append(f"    {instr!r}")
            lines.append(f"    -> {block.terminator[0]}")
        return "\n".join(lines)
