"""Optimisation passes.

AST level:
- :func:`unroll_loops` — full unrolling of constant-trip ``for`` loops up to
  a per-version limit. Unrolling turns private-array indices into constants
  (enabling register allocation of the array — the "2D register blocking"
  SGEMM variant relies on this) at the cost of register pressure.

IR level:
- :func:`prune_unreachable` — drop blocks no path reaches (early returns).
- :func:`local_copyprop` — forward MOV sources within a basic block.
- :func:`eliminate_dead_code` — remove pure instructions whose results are
  never read anywhere in the function.
"""

import copy

from repro.clc import ast
from repro.clc.ir import VReg
from repro.gpu.isa import Op

_MAX_UNROLL_BODY = 64  # statements; avoids code explosion


def _contains_loop_escape(node):
    """True if *node* contains a break/continue not nested in an inner loop."""
    if isinstance(node, (ast.Break, ast.Continue)):
        return True
    if isinstance(node, (ast.For, ast.While, ast.DoWhile)):
        return False  # escapes inside belong to the inner loop
    if isinstance(node, ast.Block):
        return any(_contains_loop_escape(s) for s in node.statements)
    if isinstance(node, ast.If):
        return (_contains_loop_escape(node.then)
                or (node.other is not None and _contains_loop_escape(node.other)))
    return False


def _assigns_to(node, name):
    """True if *node* (statement tree) assigns to variable *name*."""
    if isinstance(node, ast.Assignment):
        target = node.target
        if isinstance(target, ast.Identifier) and target.name == name:
            return True
        return False
    if isinstance(node, ast.Declaration):
        return node.name == name
    if isinstance(node, ast.Block):
        return any(_assigns_to(s, name) for s in node.statements)
    if isinstance(node, ast.If):
        return (_assigns_to(node.then, name)
                or (node.other is not None and _assigns_to(node.other, name)))
    if isinstance(node, (ast.For, ast.While, ast.DoWhile)):
        result = _assigns_to(node.body, name)
        if isinstance(node, ast.For):
            result = result or (node.init is not None and _assigns_to(node.init, name))
            result = result or (node.step is not None and _assigns_to(node.step, name))
        return result
    return False


def _substitute(node, name, value):
    """Deep-copy *node*, replacing Identifier(name) with IntLiteral(value)."""
    if not isinstance(node, ast.Node):
        return node
    if isinstance(node, ast.Identifier) and node.name == name:
        return ast.IntLiteral(value, line=node.line, col=node.col)
    clone = copy.copy(node)
    for attr, child in vars(node).items():
        if isinstance(child, ast.Node):
            setattr(clone, attr, _substitute(child, name, value))
        elif isinstance(child, list):
            setattr(clone, attr,
                    [_substitute(item, name, value) for item in child])
    return clone


def _loop_bounds(loop):
    """Extract (var, start, limit_op, limit, step) from a canonical for loop,
    or None."""
    init = loop.init
    if isinstance(init, ast.Declaration) and init.init is not None:
        if init.array_size is not None:
            return None
        var = init.name
        start = _as_const_int(init.init)
        declared = True
    elif isinstance(init, ast.Assignment) and init.op == "=" and \
            isinstance(init.target, ast.Identifier):
        var = init.target.name
        start = _as_const_int(init.value)
        declared = False
    else:
        return None
    if start is None:
        return None
    cond = loop.cond
    if not (isinstance(cond, ast.Binary) and cond.op in ("<", "<=")
            and isinstance(cond.left, ast.Identifier) and cond.left.name == var):
        return None
    limit = _as_const_int(cond.right)
    if limit is None:
        return None
    step_stmt = loop.step
    if not (isinstance(step_stmt, ast.Assignment)
            and isinstance(step_stmt.target, ast.Identifier)
            and step_stmt.target.name == var
            and step_stmt.op in ("+=", "-=")):
        return None
    step = _as_const_int(step_stmt.value)
    if step is None or step == 0:
        return None
    if step_stmt.op == "-=":
        step = -step
    return var, start, cond.op, limit, step, declared


def _as_const_int(node):
    if isinstance(node, ast.IntLiteral):
        return node.value
    if isinstance(node, ast.Unary) and node.op == "-":
        inner = _as_const_int(node.operand)
        return -inner if inner is not None else None
    if isinstance(node, ast.Binary):
        left = _as_const_int(node.left)
        right = _as_const_int(node.right)
        if left is None or right is None:
            return None
        try:
            return {
                "+": left + right, "-": left - right, "*": left * right,
                "<<": left << right, ">>": left >> right,
            }.get(node.op)
        except (TypeError, ValueError):
            return None
    return None


def unroll_loops(node, limit):
    """Recursively unroll constant-trip for-loops with trip count <= limit."""
    if limit <= 1 or not isinstance(node, ast.Node):
        return node
    # transform children first (inner loops unroll before outer ones)
    for attr, child in vars(node).items():
        if isinstance(child, ast.Node):
            setattr(node, attr, unroll_loops(child, limit))
        elif isinstance(child, list):
            setattr(node, attr, [unroll_loops(item, limit) for item in child])
    if not isinstance(node, ast.For):
        return node
    bounds = _loop_bounds(node)
    if bounds is None:
        return node
    var, start, op, stop, step, declared = bounds
    values = []
    current = start
    while (current < stop if op == "<" else current <= stop) if step > 0 else \
            (current > stop if op == "<" else current >= stop):
        values.append(current)
        current += step
        if len(values) > limit:
            return node
    if not values:
        return ast.Block(statements=[], line=node.line, col=node.col)
    if _assigns_to(node.body, var) or _contains_loop_escape(node.body):
        return node
    if _statement_count(node.body) * len(values) > _MAX_UNROLL_BODY:
        return node
    statements = [_substitute(node.body, var, v) for v in values]
    if not declared:
        statements.append(
            ast.Assignment(target=ast.Identifier(var, line=node.line, col=node.col),
                           op="=", value=ast.IntLiteral(current),
                           line=node.line, col=node.col)
        )
    return ast.Block(statements=statements, line=node.line, col=node.col)


def _statement_count(node):
    if isinstance(node, ast.Block):
        return sum(_statement_count(s) for s in node.statements)
    if isinstance(node, ast.If):
        return 1 + _statement_count(node.then) + (
            _statement_count(node.other) if node.other else 0)
    if isinstance(node, (ast.For, ast.While, ast.DoWhile)):
        return 2 + _statement_count(node.body)
    return 1


# -- IR passes ----------------------------------------------------------------------


def prune_unreachable(fn):
    """Remove blocks unreachable from the entry block."""
    if not fn.blocks:
        return fn
    reachable = set()
    stack = [fn.blocks[0]]
    while stack:
        block = stack.pop()
        if id(block) in reachable:
            continue
        reachable.add(id(block))
        stack.extend(block.successors)
    fn.blocks = [b for b in fn.blocks if id(b) in reachable]
    return fn


def local_copyprop(fn):
    """Forward MOV sources to later uses within each basic block."""
    for block in fn.blocks:
        available = {}  # VReg -> operand
        for instr in block.instrs:
            # rewrite sources
            new_srcs = []
            for src in instr.srcs:
                while isinstance(src, VReg) and src in available:
                    src = available[src]
                new_srcs.append(src)
            instr.srcs = tuple(new_srcs)
            if instr.op is Op.ST and instr.group:
                group = []
                for member in instr.group:
                    replaced = member
                    while isinstance(replaced, VReg) and replaced in available:
                        candidate = available[replaced]
                        if not isinstance(candidate, VReg):
                            break  # stores need registers; keep the VReg
                        replaced = candidate
                    group.append(replaced)
                instr.group = group
            # invalidate mappings clobbered by this definition
            for defined in instr.defs():
                available.pop(defined, None)
                stale = [k for k, v in available.items() if v is defined]
                for key in stale:
                    available.pop(key)
            # record plain register-to-operand moves
            if (instr.op is Op.MOV and isinstance(instr.dst, VReg)
                    and instr.dst.group is None):
                source = instr.srcs[0]
                if not (isinstance(source, VReg) and source.group is not None):
                    available[instr.dst] = source
    return fn


def eliminate_dead_code(fn):
    """Remove pure instructions whose destination is never read."""
    while True:
        used = set()
        for block in fn.blocks:
            for instr in block.instrs:
                used.update(instr.uses())
            term = block.terminator
            if term and term[0] in ("branch", "branchz"):
                used.add(term[1])
        changed = False
        for block in fn.blocks:
            kept = []
            for instr in block.instrs:
                defs = instr.defs()
                removable = (
                    instr.op not in (Op.ST, Op.ATOM)
                    and defs
                    and not any(d in used for d in defs)
                )
                if removable:
                    changed = True
                else:
                    kept.append(instr)
            block.instrs = kept
        if not changed:
            return fn
