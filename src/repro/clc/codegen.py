"""Binary code generation: scheduled IR -> GPU Program -> binary image.

Block terminators become clause tails; blocks whose fall-through successor
is not the next block in layout get a trailing JUMP clause. Constants become
clause-pool ("ROM") operands; forwarded values become t0/t1 operands.
"""

from repro.errors import CompileError
from repro.clc.ir import Const, Special, VReg
from repro.gpu.isa import (
    CONST_BASE,
    NOP_INSTR,
    OPERAND_NONE,
    TEMP_BASE,
    Clause,
    Instruction,
    Op,
    Program,
    Tail,
)


class _BlockLayout:
    __slots__ = ("block", "plans", "first_clause", "clause_count", "extra_jump")

    def __init__(self, block, plans):
        self.block = block
        self.plans = plans
        self.first_clause = 0
        self.clause_count = 0
        self.extra_jump = None  # block to jump to from the trailing clause


def _operand(value, assignment, temp_map, const_pool):
    if isinstance(value, VReg):
        temp = temp_map.get(value)
        if temp is not None:
            return TEMP_BASE + temp
        try:
            return assignment[value]
        except KeyError:
            raise CompileError(f"unallocated register {value!r}") from None
    if isinstance(value, Special):
        return value.reg
    if isinstance(value, Const):
        return CONST_BASE + const_pool[value.bits]
    raise CompileError(f"bad operand {value!r}")


def _encode_slot(instr, assignment, temp_map, const_pool):
    if instr is None:
        return NOP_INSTR
    op = instr.op
    dst = OPERAND_NONE
    srca = srcb = srcc = OPERAND_NONE
    if op is Op.ST:
        srca = _operand(instr.srcs[0], assignment, temp_map, const_pool)
        srcb = _operand(instr.group[0], assignment, temp_map, const_pool)
    elif op is Op.LD:
        srca = _operand(instr.srcs[0], assignment, temp_map, const_pool)
        dst = _operand(instr.group[0], assignment, temp_map, const_pool)
    elif op is Op.LDU:
        dst = _operand(instr.dst, assignment, temp_map, const_pool)
    else:
        if instr.dst is not None:
            dst = _operand(instr.dst, assignment, temp_map, const_pool)
        operands = [
            _operand(s, assignment, temp_map, const_pool) for s in instr.srcs
        ]
        if len(operands) > 0:
            srca = operands[0]
        if len(operands) > 1:
            srcb = operands[1]
        if len(operands) > 2:
            srcc = operands[2]
    return Instruction(op=op, dst=dst, srca=srca, srcb=srcb, srcc=srcc,
                       flags=instr.flags, imm=instr.imm)


def generate_program(fn, block_plans, assignment, temp_map):
    """Emit the final :class:`~repro.gpu.isa.Program` for a kernel."""
    layouts = []
    for block in fn.blocks:
        plans = block_plans.get(id(block), [])
        layouts.append(_BlockLayout(block, plans))

    # first pass: clause counts and indices
    by_block = {id(layout.block): layout for layout in layouts}
    clause_index = 0
    for position, layout in enumerate(layouts):
        next_block = layouts[position + 1].block if position + 1 < len(layouts) else None
        term = layout.block.terminator
        count = max(1, len(layout.plans))
        extra = None
        if term[0] in ("branch", "branchz"):
            fall = term[3]
            if fall is not next_block:
                extra = fall
        elif term[0] == "barrier":
            if term[1] is not next_block:
                extra = term[1]
        if extra is not None:
            count += 1
        layout.extra_jump = extra
        layout.first_clause = clause_index
        layout.clause_count = count
        clause_index += count

    # second pass: emit
    clauses = []
    for position, layout in enumerate(layouts):
        next_block = layouts[position + 1].block if position + 1 < len(layouts) else None
        term = layout.block.terminator
        plans = layout.plans
        emitted = []
        if plans:
            for plan in plans:
                pool = {bits: i for i, bits in enumerate(plan.constants)}
                tuples = []
                slots = list(plan.slots)
                if len(slots) % 2:
                    slots.append(None)
                for i in range(0, len(slots), 2):
                    fma = _encode_slot(slots[i], assignment, temp_map, pool)
                    add = _encode_slot(slots[i + 1], assignment, temp_map, pool)
                    tuples.append((fma, add))
                emitted.append(Clause(tuples=tuples, constants=list(plan.constants)))
        else:
            emitted.append(Clause(tuples=[(NOP_INSTR, NOP_INSTR)]))

        last = emitted[-1]
        if term[0] == "end":
            last.tail = Tail.END
        elif term[0] == "jump":
            target = term[1]
            if target is next_block and layout.extra_jump is None:
                last.tail = Tail.FALLTHROUGH
            else:
                last.tail = Tail.JUMP
                last.target = by_block[id(target)].first_clause
        elif term[0] in ("branch", "branchz"):
            cond = term[1]
            target = term[2]
            last.tail = Tail.BRANCH if term[0] == "branch" else Tail.BRANCH_Z
            cond_reg = assignment.get(cond)
            if cond_reg is None:
                raise CompileError(
                    f"branch condition {cond!r} has no register in {fn.name!r}"
                )
            last.cond_reg = cond_reg
            last.target = by_block[id(target)].first_clause
        elif term[0] == "barrier":
            last.tail = Tail.BARRIER
        else:  # pragma: no cover
            raise CompileError(f"unknown terminator {term[0]!r}")

        if layout.extra_jump is not None:
            jump_clause = Clause(tuples=[(NOP_INSTR, NOP_INSTR)], tail=Tail.JUMP,
                                 target=by_block[id(layout.extra_jump)].first_clause)
            emitted.append(jump_clause)

        clauses.extend(emitted)

    program = Program(clauses=clauses)
    program.validate()
    return program
