"""Compiler driver: source -> compiled kernels.

The entry point :func:`compile_source` runs the full pipeline for every
kernel in the translation unit and returns a :class:`CompiledProgram` with
per-kernel binaries and metadata — the artifact the OpenCL runtime's
``clBuildProgram`` equivalent hands to the driver.
"""

from dataclasses import dataclass, field

from repro.errors import CompileError
from repro.clc.codegen import generate_program
from repro.clc.ir import Const
from repro.clc.lower import KernelLowering
from repro.clc.parser import parse
from repro.clc.passes import (
    eliminate_dead_code,
    local_copyprop,
    prune_unreachable,
    unroll_loops,
)
from repro.clc.regalloc import SpillRequired, allocate_registers
from repro.clc.schedule import assign_temporaries, schedule_block
from repro.clc.spill import spill_vreg, spillable_candidates
from repro.clc.versions import COMPILER_VERSIONS, DEFAULT_VERSION
from repro.gpu.encoding import encode_program
from repro.gpu.verify import VerifyContext, verify_program


@dataclass(frozen=True)
class CompilerOptions:
    """Pass configuration; usually derived from a version preset."""

    version: str = DEFAULT_VERSION
    unroll_limit: int = 2
    dual_issue: bool = True
    vector_ls: bool = True
    temp_forward: bool = True
    copyprop: bool = True
    dce: bool = True
    hoist_uniforms: bool = True
    # Run the static verifier over generated code and fail the build on
    # error-severity findings (a compiler that ships a binary its own
    # verifier rejects is a compiler bug).
    verify: bool = True

    @staticmethod
    def from_version(version):
        try:
            preset = COMPILER_VERSIONS[str(version)]
        except KeyError:
            raise CompileError(f"unknown compiler version {version!r}") from None
        return CompilerOptions(
            version=preset.name,
            unroll_limit=preset.unroll_limit,
            dual_issue=preset.dual_issue,
            vector_ls=preset.vector_ls,
            temp_forward=preset.temp_forward,
            copyprop=preset.copyprop,
            dce=preset.dce,
            hoist_uniforms=preset.hoist_uniforms,
        )


@dataclass
class CompiledKernel:
    """One compiled kernel: binary image + launch metadata.

    Attributes:
        name: kernel function name.
        binary: encoded program image (what the driver maps for the GPU).
        program: the decoded form (for offline inspection/disassembly).
        work_registers: GRF registers used (the Fig. 1 "Registers" metric).
        local_static_size: bytes of ``__local`` arrays declared in-kernel.
        scratch_per_thread: bytes of per-thread private-array scratch.
        params: list of (name, kind, type); kind in buffer/scalar/local_ptr.
        uniform_count: uniform slots consumed (10 + number of arguments).
    """

    name: str
    binary: bytes
    program: object
    work_registers: int
    local_static_size: int
    scratch_per_thread: int
    params: list
    uniform_count: int

    def static_metrics(self):
        """Static code metrics (slot/NOP counts, clause sizes)."""
        sizes = {}
        for clause in self.program.clauses:
            sizes[clause.size] = sizes.get(clause.size, 0) + 1
        return {
            "clauses": len(self.program.clauses),
            "slots": self.program.static_slot_count,
            "nops": self.program.static_nop_count,
            "registers": self.work_registers,
            "clause_sizes": sizes,
            "binary_bytes": len(self.binary),
        }


@dataclass
class CompiledProgram:
    """All kernels of a translation unit, compiled with one option set."""

    options: CompilerOptions
    kernels: dict = field(default_factory=dict)

    def kernel(self, name):
        try:
            return self.kernels[name]
        except KeyError:
            raise CompileError(f"no kernel named {name!r}") from None


_MAX_SPILL_ROUNDS = 16


def _patch_layout_markers(fn):
    """Write the (current) scratch-layout sizes into their marker MOVs.

    Called before every scheduling round: the clause constant pools
    snapshot these values, and spilling grows ``scratch_per_thread``.
    """
    marker = getattr(fn, "scratch_size_marker", None)
    if marker is not None:
        marker.srcs = (Const.from_int(fn.scratch_per_thread),)
    marker = getattr(fn, "local_base_marker", None)
    if marker is not None:
        marker.srcs = (Const.from_int(fn.local_static_size),)


def compile_kernel(kernel_ast, options):
    """Run the pipeline for a single kernel AST."""
    if options.unroll_limit > 1:
        kernel_ast.body = unroll_loops(kernel_ast.body, options.unroll_limit)

    fn = KernelLowering(kernel_ast, options).lower()

    prune_unreachable(fn)
    if options.copyprop:
        local_copyprop(fn)
    if options.dce:
        eliminate_dead_code(fn)

    # schedule + allocate, spilling the longest-lived value and retrying
    # whenever pressure exceeds the GRF
    for _round in range(_MAX_SPILL_ROUNDS):
        _patch_layout_markers(fn)  # sizes may grow as spills are added
        block_plans = {
            id(block): schedule_block(block.instrs,
                                      dual_issue=options.dual_issue)
            for block in fn.blocks
        }
        temp_map = (
            assign_temporaries(block_plans, fn) if options.temp_forward
            else {}
        )
        try:
            assignment, registers_used = allocate_registers(
                fn, block_plans, temp_map
            )
            break
        except SpillRequired as exc:
            eligible = spillable_candidates(fn)
            victim = next((c for c in exc.candidates if c in eligible), None)
            if victim is None:
                raise CompileError(
                    f"kernel {fn.name!r}: register pressure cannot be "
                    "relieved by spilling"
                ) from exc
            spill_vreg(fn, victim)
    else:
        raise CompileError(
            f"kernel {fn.name!r}: still over register budget after "
            f"{_MAX_SPILL_ROUNDS} spill rounds"
        )

    program = generate_program(fn, block_plans, assignment, temp_map)
    binary = encode_program(program)
    compiled = CompiledKernel(
        name=fn.name,
        binary=binary,
        program=program,
        work_registers=registers_used,
        local_static_size=fn.local_static_size,
        scratch_per_thread=fn.scratch_per_thread,
        params=list(fn.params),
        uniform_count=fn.uniform_count,
    )
    if options.verify:
        report = verify_program(program,
                                VerifyContext.from_compiled_kernel(compiled))
        if not report.ok:
            details = "; ".join(str(f) for f in report.errors[:8])
            raise CompileError(
                f"kernel {fn.name!r}: generated code fails static "
                f"verification: {details}"
            )
    return compiled


def compile_source(source, options=None, defines=None):
    """Compile kernel-language *source*; returns a :class:`CompiledProgram`.

    Args:
        source: kernel-language text (may contain several ``__kernel``
            functions).
        options: a :class:`CompilerOptions`, a version string ("5.6" ..
            "6.2"), or None for the default version.
        defines: mapping of preprocessor defines (like ``-D`` options).
    """
    if options is None:
        options = CompilerOptions.from_version(DEFAULT_VERSION)
    elif isinstance(options, str):
        options = CompilerOptions.from_version(options)

    unit = parse(source, defines)
    if not unit.kernels:
        raise CompileError("no kernel functions found")
    compiled = CompiledProgram(options=options)
    for kernel_ast in unit.kernels:
        compiled.kernels[kernel_ast.name] = compile_kernel(kernel_ast, options)
    return compiled
