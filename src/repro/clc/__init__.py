"""The vendor-style JIT compiler for GPU kernels.

A complete compilation pipeline for an OpenCL-C-like kernel language,
mirroring the role of Arm's OpenCL toolchain in the paper's software stack:

  preprocess -> lex -> parse -> sema -> lower to IR -> optimize ->
  clause scheduling (slot packing, temp forwarding) -> register
  allocation -> binary codegen

Different *compiler versions* (v5.6 .. v6.2, see
:mod:`repro.clc.versions`) toggle real optimisation passes and therefore
produce different code for the same kernel — the effect the paper
quantifies in Fig. 1.
"""

from repro.clc.compiler import (
    CompiledKernel,
    CompiledProgram,
    CompilerOptions,
    compile_source,
)
from repro.clc.versions import COMPILER_VERSIONS, DEFAULT_VERSION

__all__ = [
    "CompiledKernel",
    "CompiledProgram",
    "CompilerOptions",
    "compile_source",
    "COMPILER_VERSIONS",
    "DEFAULT_VERSION",
]
