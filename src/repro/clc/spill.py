"""Register spilling.

When linear-scan allocation cannot fit the live values into the GRF, the
longest-lived spillable value is evicted to per-thread scratch memory (the
same local-memory region dynamic private arrays use). Each definition is
followed by a store and each use preceded by a reload, splitting the long
live range into short ones — the classic spill-everywhere strategy.

Real Mali compilers do exactly this above the register-capacity knee (the
paper's SGEMM variant 6 observes it: "meant to increase register usage, but
the increase is just 3% on Mali" — the compiler spilled instead).
"""

from repro.clc.ir import Const, IRInstr, VReg
from repro.clc.lower import emit_scratch_base
from repro.gpu.isa import MEM_SPACE_LOCAL, Op


def spillable_candidates(fn):
    """VRegs eligible for spilling, with terminator conditions excluded
    (clause tails read conditions straight from the GRF)."""
    banned = set()
    for block in fn.blocks:
        term = block.terminator
        if term and term[0] in ("branch", "branchz") and isinstance(term[1], VReg):
            banned.add(term[1])
    eligible = set()
    for block in fn.blocks:
        for instr in block.instrs:
            for reg in instr.defs() + instr.uses():
                if (reg.group is None and not reg.no_spill
                        and reg not in banned):
                    eligible.add(reg)
    return eligible


def spill_vreg(fn, victim):
    """Rewrite *fn* so *victim* lives in per-thread scratch memory."""
    if victim.group is not None or victim.no_spill:
        raise ValueError(f"{victim!r} is not spillable")
    base = emit_scratch_base(fn)
    offset = fn.scratch_per_thread
    fn.scratch_per_thread += 4
    victim.no_spill = True  # its residual short ranges must not re-spill

    def make_addr(out):
        addr = fn.new_vreg("spadr")
        addr.no_spill = True
        addr.no_temp = True
        out.append(IRInstr(Op.IADD, dst=addr,
                           srcs=(base, Const.from_int(offset))))
        return addr

    for block in fn.blocks:
        rewritten = []
        for instr in block.instrs:
            if victim in instr.uses():
                addr = make_addr(rewritten)
                reload = fn.new_vreg(f"{victim.name}_r")
                reload.no_spill = True
                rewritten.append(IRInstr(Op.LD, dst=reload, srcs=(addr,),
                                         flags=MEM_SPACE_LOCAL,
                                         group=[reload]))
                instr.srcs = tuple(reload if s is victim else s
                                   for s in instr.srcs)
                if instr.op is Op.ST and instr.group:
                    instr.group = [reload if m is victim else m
                                   for m in instr.group]
            rewritten.append(instr)
            if victim in instr.defs():
                addr = make_addr(rewritten)
                rewritten.append(IRInstr(Op.ST, srcs=(addr,),
                                         flags=MEM_SPACE_LOCAL,
                                         group=[victim]))
        block.instrs = rewritten
    return offset
