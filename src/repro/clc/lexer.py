"""Lexer for the kernel language.

Produces a stream of :class:`Token` with source positions for error
reporting. A tiny preprocessor handles ``//`` and ``/* */`` comments and
object-like ``#define NAME value`` macros (including ``-D`` style defines
passed at build time).
"""

import re
from dataclasses import dataclass

from repro.errors import CompileError

KEYWORDS = {
    "__kernel", "kernel", "__global", "global", "__local", "local",
    "__constant", "constant", "__private", "private", "const", "void",
    "float", "int", "uint", "unsigned", "bool", "char", "uchar", "short",
    "ushort", "long", "ulong", "size_t", "float2", "float4", "int2", "int4",
    "uint2", "uint4", "if", "else", "for", "while", "do", "break",
    "continue", "return", "true", "false",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<float>(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?[fF]|(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<hex>0[xX][0-9a-fA-F]+[uU]?)
  | (?P<int>\d+[uU]?)
  | (?P<id>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><<=|>>=|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|\+\+|--|[-+*/%<>=!&|^~?:;,.(){}\[\]])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # 'float' | 'int' | 'id' | 'kw' | 'op' | 'eof'
    text: str
    line: int
    col: int

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def _strip_comments(source):
    out = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
        elif ch == "/" and i + 1 < n and source[i + 1] == "*":
            end = source.find("*/", i + 2)
            if end < 0:
                raise CompileError("unterminated block comment")
            # keep newlines for line numbering
            out.append("".join(c if c == "\n" else " " for c in source[i:end + 2]))
            i = end + 2
            continue
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def preprocess(source, defines=None):
    """Strip comments and apply object-like #define substitution."""
    source = _strip_comments(source)
    macros = dict(defines or {})
    lines = []
    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith("#define"):
            parts = stripped.split(None, 2)
            if len(parts) < 2:
                raise CompileError(f"malformed directive: {stripped}")
            name = parts[1]
            if "(" in name:
                raise CompileError("function-like macros are not supported")
            macros[name] = parts[2] if len(parts) > 2 else "1"
            lines.append("")
            continue
        if stripped.startswith("#pragma") or stripped.startswith("#include"):
            lines.append("")
            continue
        if stripped.startswith("#"):
            raise CompileError(f"unsupported directive: {stripped.split()[0]}")
        lines.append(line)
    text = "\n".join(lines)
    # iterate substitution to support macros referencing macros (bounded)
    for _ in range(8):
        changed = False
        for name, value in macros.items():
            pattern = r"\b" + re.escape(name) + r"\b"
            new_text = re.sub(pattern, str(value), text)
            if new_text != text:
                text = new_text
                changed = True
        if not changed:
            break
    return text


def tokenize(source, defines=None):
    """Tokenize *source*; returns a list of tokens ending with EOF."""
    text = preprocess(source, defines)
    tokens = []
    line = 1
    line_start = 0
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        match = _TOKEN_RE.match(text, i)
        if match is None:
            raise CompileError(f"unexpected character {ch!r}", line, i - line_start + 1)
        col = i - line_start + 1
        kind = match.lastgroup
        value = match.group()
        if kind == "hex":
            kind = "int"
        if kind == "id" and value in KEYWORDS:
            kind = "kw"
        tokens.append(Token(kind, value, line, col))
        i = match.end()
    tokens.append(Token("eof", "", line, 1))
    return tokens
