"""Workload base class and result record."""

import abc
import time
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.cl import CommandQueue, Context
from repro.instrument.stats import JobStats


@dataclass
class WorkloadResult:
    """Outcome of one workload execution on the simulated platform.

    Attributes:
        name: workload name.
        stats: merged per-job statistics over all kernel launches.
        jobs: number of kernel launches (Table III "Comp. Jobs").
        verified: True if outputs matched the NumPy reference.
        gpu_seconds: host wall time inside kernel launches (GPU simulation).
        total_seconds: host wall time of the whole run, including the
            simulated-CPU driver work (full-system time, Fig. 7).
        cpu_seconds: host wall time spent simulating guest CPU data
            movement (the Fig. 9 "driver runtime").
        guest_instructions: guest CPU instructions executed for this run.
        extra: workload-specific metrics.
    """

    name: str
    stats: JobStats
    jobs: int
    verified: bool
    gpu_seconds: float = 0.0
    total_seconds: float = 0.0
    cpu_seconds: float = 0.0
    guest_instructions: int = 0
    extra: dict = field(default_factory=dict)


class Workload(abc.ABC):
    """A benchmark: kernel source + host orchestration + NumPy oracle.

    Subclasses set ``name``, ``suite``, ``paper_input`` (the Table II
    configuration) and implement :meth:`execute` (device run, returning
    outputs for verification) and :meth:`reference` (NumPy oracle).
    """

    name = ""
    suite = ""
    paper_input = ""
    source = ""

    def __init__(self, **params):
        defaults = dict(self.default_params())
        unknown = set(params) - set(defaults)
        if unknown:
            raise TypeError(f"{self.name}: unknown parameters {sorted(unknown)}")
        defaults.update(params)
        self.params = defaults
        self.rng = np.random.default_rng(self.seed())

    def seed(self):
        # crc32, not hash(): str hashing is salted per process, which
        # made inputs (and e.g. the bfs job count) vary between runs
        return zlib.crc32(self.name.encode("utf-8"))

    @classmethod
    def compile_defines(cls):
        """Preprocessor defines needed to compile ``source`` standalone
        (must mirror what :meth:`execute` passes to build_program, so the
        lint tooling compiles the same code the workload runs)."""
        return {}

    @staticmethod
    def default_params():
        """Mapping of parameter name -> default (scaled-down) value."""
        return {}

    # -- to implement ------------------------------------------------------------

    @abc.abstractmethod
    def prepare(self):
        """Generate the (seeded, deterministic) problem inputs."""

    @abc.abstractmethod
    def execute(self, context, queue, inputs, version=None):
        """Run on the simulated platform; returns device outputs."""

    @abc.abstractmethod
    def reference(self, inputs):
        """NumPy oracle; returns expected outputs."""

    def check(self, outputs, expected):
        """Compare device outputs with the oracle (override for custom
        tolerances)."""
        for got, want in zip(outputs, expected):
            got = np.asarray(got)
            want = np.asarray(want)
            if got.dtype.kind == "f" or want.dtype.kind == "f":
                if not np.allclose(got.astype(np.float64),
                                   want.astype(np.float64),
                                   rtol=2e-4, atol=2e-5):
                    return False
            elif not np.array_equal(got, want):
                return False
        return True

    # -- harness -------------------------------------------------------------------

    def run(self, context=None, version=None, verify=True):
        """Full run: prepare, execute, verify; returns a WorkloadResult."""
        context = context or Context()
        queue = CommandQueue(context)
        inputs = self.prepare()
        cpu_before = context.cpu_seconds
        guest_before = context.guest_instructions
        start = time.perf_counter()
        outputs = self.execute(context, queue, inputs, version=version)
        total_seconds = time.perf_counter() - start
        verified = True
        if verify:
            expected = self.reference(inputs)
            verified = self.check(outputs, expected)
        return WorkloadResult(
            name=self.name,
            stats=queue.total_stats,
            jobs=queue.kernels_launched,
            verified=verified,
            total_seconds=total_seconds,
            cpu_seconds=context.cpu_seconds - cpu_before,
            guest_instructions=context.guest_instructions - guest_before,
        )

    def run_native(self, repeats=1):
        """Time the NumPy oracle (the paper's native-hardware stand-in)."""
        inputs = self.prepare()
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            self.reference(inputs)
            best = min(best, time.perf_counter() - start)
        return best
