"""Rodinia 3.1 workloads (Table II)."""

import numpy as np

from repro.kernels.base import Workload


class Backprop(Workload):
    """Neural-network layer forward pass (Rodinia back propagation).

    Each thread computes one hidden unit: a long dot product over the input
    layer with strided global loads — the main-memory-dominated workload of
    Fig. 12.
    """

    name = "backprop"
    suite = "Rodinia 3.1"
    paper_input = "65536 nodes"

    source = """
    __kernel void layer_forward(__global float* input_units,
                                __global float* weights,
                                __global float* hidden_units,
                                int n_in, int n_hidden) {
        int j = get_global_id(0);
        __global float* wp = weights + n_hidden + j;
        __global float* ip = input_units;
        float sum = weights[j];
        for (int i = 0; i < n_in; i += 1) {
            sum = mad(wp[0], ip[0], sum);
            wp = wp + n_hidden;
            ip = ip + 1;
        }
        hidden_units[j] = 1.0f / (1.0f + exp(0.0f - sum));
    }
    """

    @staticmethod
    def default_params():
        return {"n_in": 512, "n_hidden": 64}

    def prepare(self):
        p = self.params
        return {
            "input": self.rng.random(p["n_in"], dtype=np.float32),
            "weights": (self.rng.random((p["n_in"] + 1, p["n_hidden"]))
                        .astype(np.float32) - 0.5),
        }

    def execute(self, context, queue, inputs, version=None):
        p = self.params
        buf_in = context.buffer_from_array(inputs["input"])
        buf_w = context.buffer_from_array(inputs["weights"])
        buf_out = context.alloc_buffer(4 * p["n_hidden"])
        kernel = context.build_program(self.source, version=version) \
            .kernel("layer_forward")
        kernel.set_args(buf_in, buf_w, buf_out, p["n_in"], p["n_hidden"])
        queue.enqueue_nd_range(kernel, (p["n_hidden"],),
                               (min(16, p["n_hidden"]),))
        return [queue.enqueue_read_buffer(buf_out, np.float32)]

    def reference(self, inputs):
        weights = inputs["weights"].astype(np.float64)
        sums = weights[0] + inputs["input"].astype(np.float64) @ weights[1:]
        return [(1.0 / (1.0 + np.exp(-sums))).astype(np.float32)]


class NearestNeighbor(Workload):
    """Nearest neighbour: per-record Euclidean distance to a target; the
    host scans the distances for the k smallest (as in Rodinia)."""

    name = "nn"
    suite = "Rodinia 3.1"
    paper_input = "5 records, 30 lat, 90 long"

    source = """
    __kernel void nn_distance(__global float* lat, __global float* lng,
                              __global float* dist, float lat0, float lng0) {
        int i = get_global_id(0);
        float dlat = lat[i] - lat0;
        float dlng = lng[i] - lng0;
        dist[i] = sqrt(dlat * dlat + dlng * dlng);
    }
    """

    @staticmethod
    def default_params():
        return {"records": 1024, "k": 5}

    def prepare(self):
        n = self.params["records"]
        return {
            "lat": (self.rng.random(n, dtype=np.float32) * 60).astype(np.float32),
            "lng": (self.rng.random(n, dtype=np.float32) * 180).astype(np.float32),
            "target": (np.float32(30.0), np.float32(90.0)),
        }

    def execute(self, context, queue, inputs, version=None):
        n = self.params["records"]
        buf_lat = context.buffer_from_array(inputs["lat"])
        buf_lng = context.buffer_from_array(inputs["lng"])
        buf_dist = context.alloc_buffer(4 * n)
        kernel = context.build_program(self.source, version=version) \
            .kernel("nn_distance")
        lat0, lng0 = inputs["target"]
        kernel.set_args(buf_lat, buf_lng, buf_dist, lat0, lng0)
        queue.enqueue_nd_range(kernel, (n,), (64,))
        dist = queue.enqueue_read_buffer(buf_dist, np.float32)
        nearest = np.argsort(dist)[: self.params["k"]].astype(np.int64)
        return [dist, nearest]

    def reference(self, inputs):
        lat0, lng0 = inputs["target"]
        dist = np.sqrt((inputs["lat"] - lat0) ** 2 + (inputs["lng"] - lng0) ** 2)
        nearest = np.argsort(dist)[: self.params["k"]].astype(np.int64)
        return [dist.astype(np.float32), nearest]
