"""AMD APP SDK 2.5 workloads (Table II).

Default sizes are scaled down from the paper's inputs (a pure-Python
functional simulator is orders of magnitude slower than the C++ original);
every workload accepts size parameters to scale back up.
"""

import numpy as np

from repro.cl import LocalMemory
from repro.kernels.base import Workload


class BinarySearch(Workload):
    """Iterative device-side binary search: one bisection step per kernel
    launch, so the workload is short kernels with heavy CPU interaction —
    exactly why it scales poorly with host threads in Fig. 10."""

    name = "BinarySearch"
    suite = "AMD APP 2.5"
    paper_input = "16777216 elements"

    source = """
    __kernel void bsearch_step(__global float* sorted_data, __global int* lo,
                               __global int* hi, __global float* keys) {
        int i = get_global_id(0);
        int l = lo[i];
        int h = hi[i];
        if (l < h) {
            int mid = (l + h) >> 1;
            if (keys[i] > sorted_data[mid]) {
                lo[i] = mid + 1;
            } else {
                hi[i] = mid;
            }
        }
    }
    """

    @staticmethod
    def default_params():
        return {"n": 4096, "keys": 256}

    def prepare(self):
        n = self.params["n"]
        data = np.sort(self.rng.random(n, dtype=np.float32))
        keys = data[self.rng.integers(0, n, self.params["keys"])]
        return {"data": data, "keys": keys}

    def execute(self, context, queue, inputs, version=None):
        data, keys = inputs["data"], inputs["keys"]
        k = len(keys)
        buf_data = context.buffer_from_array(data)
        buf_keys = context.buffer_from_array(keys)
        buf_lo = context.buffer_from_array(np.zeros(k, dtype=np.int32))
        buf_hi = context.buffer_from_array(np.full(k, len(data), dtype=np.int32))
        kernel = context.build_program(self.source, version=version) \
            .kernel("bsearch_step")
        kernel.set_args(buf_data, buf_lo, buf_hi, buf_keys)
        steps = int(np.ceil(np.log2(len(data)))) + 1
        for _ in range(steps):
            queue.enqueue_nd_range(kernel, (k,), (min(64, k),))
        return [queue.enqueue_read_buffer(buf_lo, np.int32)]

    def reference(self, inputs):
        return [np.searchsorted(inputs["data"], inputs["keys"], "left")
                .astype(np.int32)]


class BinomialOption(Workload):
    """Binomial option pricing: one workgroup per option, local-memory
    backward induction with barriers each step."""

    name = "BinomialOption"
    suite = "AMD APP 2.5"
    paper_input = "512 samples"

    source = """
    __kernel void binomial(__global float* spot, __global float* out,
                           __local float* values, int steps) {
        int lid = get_local_id(0);
        int opt = get_group_id(0);
        float s = spot[opt];
        float strike = 100.0f;
        float fsteps = (float)steps;
        float vdt = 0.30f * sqrt(1.0f / fsteps);
        float u = exp(vdt);
        float d = exp(0.0f - vdt);
        float r = exp(0.02f / fsteps);
        float p = (r - d) / (u - d);
        float disc = 1.0f / r;
        float leaf = s * exp(vdt * (float)(2 * lid - steps));
        values[lid] = fmax(leaf - strike, 0.0f);
        barrier(1);
        for (int j = steps; j > 0; j -= 1) {
            if (lid < j) {
                values[lid] = (p * values[lid + 1]
                               + (1.0f - p) * values[lid]) * disc;
            }
            barrier(1);
        }
        if (lid == 0) {
            out[opt] = values[0];
        }
    }
    """

    @staticmethod
    def default_params():
        return {"options": 16, "steps": 15}

    def prepare(self):
        options = self.params["options"]
        spot = (80.0 + 40.0 * self.rng.random(options)).astype(np.float32)
        return {"spot": spot}

    def execute(self, context, queue, inputs, version=None):
        spot = inputs["spot"]
        steps = self.params["steps"]
        group = steps + 1
        buf_spot = context.buffer_from_array(spot)
        buf_out = context.alloc_buffer(4 * len(spot))
        kernel = context.build_program(self.source, version=version) \
            .kernel("binomial")
        kernel.set_args(buf_spot, buf_out, LocalMemory(4 * (group + 1)), steps)
        queue.enqueue_nd_range(kernel, (len(spot) * group,), (group,))
        return [queue.enqueue_read_buffer(buf_out, np.float32)]

    def reference(self, inputs):
        steps = self.params["steps"]
        spot = inputs["spot"].astype(np.float32)
        fsteps = np.float32(steps)
        vdt = np.float32(0.30) * np.sqrt(np.float32(1.0) / fsteps)
        u = np.exp(vdt, dtype=np.float32)
        d = np.exp(-vdt, dtype=np.float32)
        r = np.exp(np.float32(0.02) / fsteps, dtype=np.float32)
        p = (r - d) / (u - d)
        disc = np.float32(1.0) / r
        lid = np.arange(steps + 1, dtype=np.float32)
        prices = []
        for s in spot:
            leaf = s * np.exp(vdt * (2 * lid - steps), dtype=np.float32)
            values = np.maximum(leaf - np.float32(100.0), np.float32(0.0))
            for j in range(steps, 0, -1):
                values[:j] = (p * values[1:j + 1] + (1 - p) * values[:j]) * disc
            prices.append(values[0])
        return [np.array(prices, dtype=np.float32)]


class BitonicSort(Workload):
    """Bitonic sorting network: one kernel launch per (stage, pass)."""

    name = "BitonicSort"
    suite = "AMD APP 2.5"
    paper_input = "2048 elements"

    source = """
    __kernel void bitonic_step(__global uint* data, uint j, uint k) {
        uint i = get_global_id(0);
        uint partner = i ^ j;
        if (partner > i) {
            uint a = data[i];
            uint b = data[partner];
            uint ascending = ((i & k) == 0u) ? 1u : 0u;
            if ((ascending == 1u && a > b) || (ascending == 0u && a < b)) {
                data[i] = b;
                data[partner] = a;
            }
        }
    }
    """

    @staticmethod
    def default_params():
        return {"n": 512}

    def prepare(self):
        n = self.params["n"]
        if n & (n - 1):
            raise ValueError("BitonicSort size must be a power of two")
        return {"data": self.rng.integers(0, 2**31, n).astype(np.uint32)}

    def execute(self, context, queue, inputs, version=None):
        data = inputs["data"]
        n = len(data)
        buf = context.buffer_from_array(data)
        kernel = context.build_program(self.source, version=version) \
            .kernel("bitonic_step")
        k = 2
        while k <= n:
            j = k >> 1
            while j > 0:
                kernel.set_args(buf, np.uint32(j), np.uint32(k))
                queue.enqueue_nd_range(kernel, (n,), (min(64, n),))
                j >>= 1
            k <<= 1
        return [queue.enqueue_read_buffer(buf, np.uint32)]

    def reference(self, inputs):
        return [np.sort(inputs["data"])]


class DCT(Workload):
    """8x8 block discrete cosine transform over an image."""

    name = "DCT"
    suite = "AMD APP 2.5"
    paper_input = "10000x1000 matrix"

    source = """
    __kernel void dct8x8(__global float* in_image, __global float* out_image,
                         int width) {
        int x = get_global_id(0);
        int y = get_global_id(1);
        int bx = (x >> 3) << 3;
        int by = (y >> 3) << 3;
        int u = x & 7;
        int v = y & 7;
        float pi = 3.14159265358979f;
        float sum = 0.0f;
        for (int i = 0; i < 8; i += 1) {
            for (int j = 0; j < 8; j += 1) {
                float pix = in_image[(by + i) * width + bx + j];
                float ci = cos((2.0f * (float)i + 1.0f) * (float)v * pi / 16.0f);
                float cj = cos((2.0f * (float)j + 1.0f) * (float)u * pi / 16.0f);
                sum += pix * ci * cj;
            }
        }
        float au = (u == 0) ? 0.70710678f : 1.0f;
        float av = (v == 0) ? 0.70710678f : 1.0f;
        out_image[y * width + x] = 0.25f * au * av * sum;
    }
    """

    @staticmethod
    def default_params():
        return {"width": 32, "height": 24}

    def prepare(self):
        width, height = self.params["width"], self.params["height"]
        if width % 8 or height % 8:
            raise ValueError("DCT image dimensions must be multiples of 8")
        image = self.rng.random((height, width), dtype=np.float32)
        return {"image": image}

    def execute(self, context, queue, inputs, version=None):
        image = inputs["image"]
        height, width = image.shape
        buf_in = context.buffer_from_array(image)
        buf_out = context.alloc_buffer(image.nbytes)
        kernel = context.build_program(self.source, version=version) \
            .kernel("dct8x8")
        kernel.set_args(buf_in, buf_out, width)
        queue.enqueue_nd_range(kernel, (width, height), (8, 8))
        out = queue.enqueue_read_buffer(buf_out, np.float32)
        return [out.reshape(height, width)]

    def reference(self, inputs):
        image = inputs["image"].astype(np.float64)
        height, width = image.shape
        i = np.arange(8)
        basis = np.cos((2 * i[:, None] + 1) * i[None, :] * np.pi / 16)
        alpha = np.where(i == 0, np.sqrt(0.5), 1.0)
        out = np.empty_like(image)
        for by in range(0, height, 8):
            for bx in range(0, width, 8):
                block = image[by:by + 8, bx:bx + 8]
                # out[v,u] = 0.25 a(u) a(v) sum_{i,j} block[i,j] C[i,v] C[j,u]
                coeffs = 0.25 * np.einsum(
                    "ij,iv,ju->vu", block, basis, basis
                ) * alpha[None, :] * alpha[:, None]
                out[by:by + 8, bx:bx + 8] = coeffs
        return [out.astype(np.float32)]


class DwtHaar1D(Workload):
    """1D Haar wavelet transform: one kernel launch per level."""

    name = "DwtHaar1D"
    suite = "AMD APP 2.5"
    paper_input = "8388608 signal"

    source = """
    __kernel void dwt_step(__global float* in_signal, __global float* approx,
                           __global float* coeffs, int len) {
        int i = get_global_id(0);
        if (i < len) {
            float a = in_signal[2 * i];
            float b = in_signal[2 * i + 1];
            float rsqrt2 = 0.70710678f;
            approx[i] = (a + b) * rsqrt2;
            coeffs[len + i] = (a - b) * rsqrt2;
        }
    }
    """

    @staticmethod
    def default_params():
        return {"n": 1024}

    def prepare(self):
        n = self.params["n"]
        if n & (n - 1):
            raise ValueError("signal length must be a power of two")
        return {"signal": self.rng.standard_normal(n).astype(np.float32)}

    def execute(self, context, queue, inputs, version=None):
        signal = inputs["signal"]
        n = len(signal)
        buf_a = context.buffer_from_array(signal)
        buf_b = context.alloc_buffer(signal.nbytes)
        buf_out = context.alloc_buffer(signal.nbytes)
        kernel = context.build_program(self.source, version=version) \
            .kernel("dwt_step")
        length = n // 2
        src, dst = buf_a, buf_b
        while length >= 1:
            kernel.set_args(src, dst, buf_out, length)
            threads = max(4, length)
            queue.enqueue_nd_range(kernel, (threads,), (min(64, threads),))
            src, dst = dst, src
            length //= 2
        approx = queue.enqueue_read_buffer(src, np.float32)
        coeffs = queue.enqueue_read_buffer(buf_out, np.float32)
        coeffs[0] = approx[0]
        return [coeffs]

    def reference(self, inputs):
        signal = inputs["signal"].astype(np.float32)
        out = np.zeros_like(signal)
        current = signal
        rsqrt2 = np.float32(0.70710678)
        length = len(signal) // 2
        while length >= 1:
            a = current[0::2]
            b = current[1::2]
            approx = (a + b) * rsqrt2
            out[length:2 * length] = (a - b) * rsqrt2
            current = approx
            length //= 2
        out[0] = current[0]
        return [out]


class FloydWarshall(Workload):
    """All-pairs shortest paths: one kernel launch per pivot node."""

    name = "FloydWarshall"
    suite = "AMD APP 2.5"
    paper_input = "256 nodes"

    source = """
    __kernel void fw_step(__global float* dist, int n, int k) {
        int j = get_global_id(0);
        int i = get_global_id(1);
        float via = dist[i * n + k] + dist[k * n + j];
        float cur = dist[i * n + j];
        if (via < cur) {
            dist[i * n + j] = via;
        }
    }
    """

    @staticmethod
    def default_params():
        return {"n": 32}

    def prepare(self):
        n = self.params["n"]
        dist = (1.0 + 9.0 * self.rng.random((n, n))).astype(np.float32)
        np.fill_diagonal(dist, 0.0)
        return {"dist": dist}

    def execute(self, context, queue, inputs, version=None):
        dist = inputs["dist"]
        n = dist.shape[0]
        buf = context.buffer_from_array(dist)
        kernel = context.build_program(self.source, version=version) \
            .kernel("fw_step")
        for k in range(n):
            kernel.set_args(buf, n, k)
            queue.enqueue_nd_range(kernel, (n, n), (min(8, n), min(8, n)))
        out = queue.enqueue_read_buffer(buf, np.float32)
        return [out.reshape(n, n)]

    def reference(self, inputs):
        dist = inputs["dist"].astype(np.float32).copy()
        n = dist.shape[0]
        for k in range(n):
            dist = np.minimum(dist, dist[:, [k]] + dist[[k], :]).astype(np.float32)
        return [dist]


class MatrixTranspose(Workload):
    """Tiled matrix transpose through local memory."""

    name = "MatrixTranspose"
    suite = "AMD APP 2.5"
    paper_input = "3008x3008 matrix"

    source = """
    __kernel void transpose(__global float* in_mat, __global float* out_mat,
                            __local float* tile, int width, int height) {
        int lx = get_local_id(0);
        int ly = get_local_id(1);
        int gx = get_global_id(0);
        int gy = get_global_id(1);
        int ts = get_local_size(0);
        tile[ly * ts + lx] = in_mat[gy * width + gx];
        barrier(1);
        int ox = get_group_id(1) * ts + lx;
        int oy = get_group_id(0) * ts + ly;
        out_mat[oy * height + ox] = tile[lx * ts + ly];
    }
    """

    @staticmethod
    def default_params():
        return {"width": 64, "height": 32, "tile": 8}

    def prepare(self):
        width, height = self.params["width"], self.params["height"]
        return {"matrix": self.rng.random((height, width), dtype=np.float32)}

    def execute(self, context, queue, inputs, version=None):
        matrix = inputs["matrix"]
        height, width = matrix.shape
        tile = self.params["tile"]
        buf_in = context.buffer_from_array(matrix)
        buf_out = context.alloc_buffer(matrix.nbytes)
        kernel = context.build_program(self.source, version=version) \
            .kernel("transpose")
        kernel.set_args(buf_in, buf_out, LocalMemory(4 * tile * tile),
                        width, height)
        queue.enqueue_nd_range(kernel, (width, height), (tile, tile))
        out = queue.enqueue_read_buffer(buf_out, np.float32)
        return [out.reshape(width, height)]

    def reference(self, inputs):
        return [inputs["matrix"].T.copy()]


class RecursiveGaussian(Workload):
    """Recursive (IIR) Gaussian approximation: row pass then column pass."""

    name = "RecursiveGaussian"
    suite = "AMD APP 2.5"
    paper_input = "1536x1536 image"

    source = """
    __kernel void rgauss_rows(__global float* in_image, __global float* out_image,
                              int width, float a) {
        int row = get_global_id(0);
        int base = row * width;
        float yp = in_image[base];
        out_image[base] = yp;
        for (int i = 1; i < width; i += 1) {
            yp = a * in_image[base + i] + (1.0f - a) * yp;
            out_image[base + i] = yp;
        }
        yp = out_image[base + width - 1];
        for (int i = width - 2; i >= 0; i -= 1) {
            yp = a * out_image[base + i] + (1.0f - a) * yp;
            out_image[base + i] = yp;
        }
    }

    __kernel void rgauss_cols(__global float* in_image, __global float* out_image,
                              int width, int height, float a) {
        int col = get_global_id(0);
        float yp = in_image[col];
        out_image[col] = yp;
        for (int i = 1; i < height; i += 1) {
            yp = a * in_image[i * width + col] + (1.0f - a) * yp;
            out_image[i * width + col] = yp;
        }
        yp = out_image[(height - 1) * width + col];
        for (int i = height - 2; i >= 0; i -= 1) {
            yp = a * out_image[i * width + col] + (1.0f - a) * yp;
            out_image[i * width + col] = yp;
        }
    }
    """

    @staticmethod
    def default_params():
        return {"width": 32, "height": 32, "alpha": 0.6}

    def prepare(self):
        width, height = self.params["width"], self.params["height"]
        return {"image": self.rng.random((height, width), dtype=np.float32)}

    def execute(self, context, queue, inputs, version=None):
        image = inputs["image"]
        height, width = image.shape
        alpha = np.float32(self.params["alpha"])
        buf_in = context.buffer_from_array(image)
        buf_mid = context.alloc_buffer(image.nbytes)
        buf_out = context.alloc_buffer(image.nbytes)
        program = context.build_program(self.source, version=version)
        rows = program.kernel("rgauss_rows")
        rows.set_args(buf_in, buf_mid, width, alpha)
        queue.enqueue_nd_range(rows, (height,), (min(16, height),))
        cols = program.kernel("rgauss_cols")
        cols.set_args(buf_mid, buf_out, width, height, alpha)
        queue.enqueue_nd_range(cols, (width,), (min(16, width),))
        out = queue.enqueue_read_buffer(buf_out, np.float32)
        return [out.reshape(height, width)]

    @staticmethod
    def _iir(data, a):
        out = np.empty_like(data)
        yp = data[:, 0].copy()
        out[:, 0] = yp
        for i in range(1, data.shape[1]):
            yp = a * data[:, i] + (1 - a) * yp
            out[:, i] = yp
        yp = out[:, -1].copy()
        for i in range(data.shape[1] - 2, -1, -1):
            yp = a * out[:, i] + (1 - a) * yp
            out[:, i] = yp
        return out

    def reference(self, inputs):
        a = np.float32(self.params["alpha"])
        image = inputs["image"].astype(np.float32)
        mid = self._iir(image, a)
        out = self._iir(mid.T, a).T
        return [out]

    def check(self, outputs, expected):
        return np.allclose(outputs[0], expected[0], rtol=2e-3, atol=2e-4)


class Reduction(Workload):
    """Tree reduction in local memory; host iterates until one value."""

    name = "Reduction"
    suite = "AMD APP 2.5"
    paper_input = "9999360 elements"

    source = """
    __kernel void reduce_sum(__global float* in_data, __global float* out_data,
                             __local float* scratch, int n) {
        int gid = get_global_id(0);
        int lid = get_local_id(0);
        int lsz = get_local_size(0);
        float v = 0.0f;
        if (gid < n) {
            v = in_data[gid];
        }
        scratch[lid] = v;
        barrier(1);
        for (int offset = lsz >> 1; offset > 0; offset = offset >> 1) {
            if (lid < offset) {
                scratch[lid] = scratch[lid] + scratch[lid + offset];
            }
            barrier(1);
        }
        if (lid == 0) {
            out_data[get_group_id(0)] = scratch[0];
        }
    }
    """

    @staticmethod
    def default_params():
        return {"n": 4096, "group": 64}

    def prepare(self):
        return {"data": self.rng.random(self.params["n"], dtype=np.float32)}

    def execute(self, context, queue, inputs, version=None):
        data = inputs["data"]
        group = self.params["group"]
        kernel = context.build_program(self.source, version=version) \
            .kernel("reduce_sum")
        buf_in = context.buffer_from_array(data)
        n = len(data)
        while n > 1:
            groups = -(-n // group)
            padded = groups * group
            buf_out = context.alloc_buffer(4 * max(1, groups))
            kernel.set_args(buf_in, buf_out, LocalMemory(4 * group), n)
            queue.enqueue_nd_range(kernel, (padded,), (group,))
            buf_in = buf_out
            n = groups
        return [queue.enqueue_read_buffer(buf_in, np.float32, count=1)]

    def reference(self, inputs):
        return [np.array([inputs["data"].sum(dtype=np.float64)],
                         dtype=np.float32)]

    def check(self, outputs, expected):
        return np.allclose(outputs[0], expected[0], rtol=1e-3)


class ScanLargeArrays(Workload):
    """Two-level inclusive scan: block scan, block-sum scan, offset add."""

    name = "ScanLargeArrays"
    suite = "AMD APP 2.5"
    paper_input = "1048576 elements"

    source = """
    __kernel void scan_block(__global float* in_data, __global float* out_data,
                             __global float* sums, __local float* temp, int n) {
        int gid = get_global_id(0);
        int lid = get_local_id(0);
        int lsz = get_local_size(0);
        float v = 0.0f;
        if (gid < n) {
            v = in_data[gid];
        }
        temp[lid] = v;
        barrier(1);
        for (int off = 1; off < lsz; off = off << 1) {
            float t = 0.0f;
            if (lid >= off) {
                t = temp[lid - off];
            }
            barrier(1);
            temp[lid] = temp[lid] + t;
            barrier(1);
        }
        out_data[gid] = temp[lid];
        if (lid == lsz - 1) {
            sums[get_group_id(0)] = temp[lid];
        }
    }

    __kernel void add_offsets(__global float* data,
                              __global float* scanned_sums) {
        int gid = get_global_id(0);
        int grp = get_group_id(0);
        if (grp > 0) {
            data[gid] = data[gid] + scanned_sums[grp - 1];
        }
    }
    """

    @staticmethod
    def default_params():
        return {"n": 1024, "group": 64}

    def prepare(self):
        return {"data": self.rng.random(self.params["n"], dtype=np.float32)}

    def execute(self, context, queue, inputs, version=None):
        data = inputs["data"]
        group = self.params["group"]
        n = len(data)
        groups = -(-n // group)
        program = context.build_program(self.source, version=version)
        scan = program.kernel("scan_block")
        add = program.kernel("add_offsets")

        buf_in = context.buffer_from_array(data)
        buf_out = context.alloc_buffer(4 * groups * group)
        buf_sums = context.buffer_from_array(np.zeros(groups, dtype=np.float32))
        scan.set_args(buf_in, buf_out, buf_sums, LocalMemory(4 * group), n)
        queue.enqueue_nd_range(scan, (groups * group,), (group,))

        buf_sums_scanned = context.alloc_buffer(4 * groups)
        buf_dummy = context.alloc_buffer(4)
        scan.set_args(buf_sums, buf_sums_scanned, buf_dummy,
                      LocalMemory(4 * groups), groups)
        queue.enqueue_nd_range(scan, (groups,), (groups,))

        add.set_args(buf_out, buf_sums_scanned)
        queue.enqueue_nd_range(add, (groups * group,), (group,))
        out = queue.enqueue_read_buffer(buf_out, np.float32)
        return [out[:n]]

    def reference(self, inputs):
        return [np.cumsum(inputs["data"], dtype=np.float32)]

    def check(self, outputs, expected):
        return np.allclose(outputs[0], expected[0], rtol=1e-3, atol=1e-4)


class SobelFilter(Workload):
    """3x3 Sobel edge detection — the paper's compute-dense, regular
    workload (few empty slots, little CPU interaction, scales well)."""

    name = "SobelFilter"
    suite = "AMD APP 2.5"
    paper_input = "1536x1536 image"

    source = """
    __kernel void sobel(__global float* in_image, __global float* out_image,
                        int width, int height) {
        int x = get_global_id(0);
        int y = get_global_id(1);
        int idx = y * width + x;
        if (x > 0 && x < width - 1 && y > 0 && y < height - 1) {
            float i00 = in_image[idx - width - 1];
            float i01 = in_image[idx - width];
            float i02 = in_image[idx - width + 1];
            float i10 = in_image[idx - 1];
            float i12 = in_image[idx + 1];
            float i20 = in_image[idx + width - 1];
            float i21 = in_image[idx + width];
            float i22 = in_image[idx + width + 1];
            float gx = i00 + 2.0f * i10 + i20 - i02 - 2.0f * i12 - i22;
            float gy = i00 + 2.0f * i01 + i02 - i20 - 2.0f * i21 - i22;
            out_image[idx] = sqrt(gx * gx + gy * gy) * 0.5f;
        } else {
            out_image[idx] = 0.0f;
        }
    }
    """

    @staticmethod
    def default_params():
        return {"width": 64, "height": 48}

    def prepare(self):
        width, height = self.params["width"], self.params["height"]
        return {"image": self.rng.random((height, width), dtype=np.float32)}

    def execute(self, context, queue, inputs, version=None):
        image = inputs["image"]
        height, width = image.shape
        buf_in = context.buffer_from_array(image)
        buf_out = context.alloc_buffer(image.nbytes)
        kernel = context.build_program(self.source, version=version) \
            .kernel("sobel")
        kernel.set_args(buf_in, buf_out, width, height)
        local = (min(16, width), min(4, height))
        queue.enqueue_nd_range(kernel, (width, height), local)
        out = queue.enqueue_read_buffer(buf_out, np.float32)
        return [out.reshape(height, width)]

    def reference(self, inputs):
        image = inputs["image"].astype(np.float32)
        gx = np.zeros_like(image)
        gy = np.zeros_like(image)
        i = image
        gx[1:-1, 1:-1] = (
            i[:-2, :-2] + 2 * i[1:-1, :-2] + i[2:, :-2]
            - i[:-2, 2:] - 2 * i[1:-1, 2:] - i[2:, 2:]
        )
        gy[1:-1, 1:-1] = (
            i[:-2, :-2] + 2 * i[:-2, 1:-1] + i[:-2, 2:]
            - i[2:, :-2] - 2 * i[2:, 1:-1] - i[2:, 2:]
        )
        out = np.sqrt(gx * gx + gy * gy) * np.float32(0.5)
        out[0, :] = out[-1, :] = 0.0
        out[:, 0] = out[:, -1] = 0.0
        return [out]


class URNG(Workload):
    """Uniform random noise generator: per-pixel LCG noise injection."""

    name = "URNG"
    suite = "AMD APP 2.5"
    paper_input = "1536x1536 image"

    source = """
    __kernel void urng(__global float* in_image, __global float* out_image,
                       int factor) {
        int i = get_global_id(0);
        uint seed = (uint)i * 747796405u + 2891336453u;
        for (int r = 0; r < 8; r += 1) {
            seed = seed * 1664525u + 1013904223u;
        }
        float noise = (float)(seed & 65535u) / 65535.0f - 0.5f;
        out_image[i] = in_image[i] + noise * (float)factor * 0.02f;
    }
    """

    @staticmethod
    def default_params():
        return {"n": 4096, "factor": 2}

    def prepare(self):
        return {"image": self.rng.random(self.params["n"], dtype=np.float32)}

    def execute(self, context, queue, inputs, version=None):
        image = inputs["image"]
        buf_in = context.buffer_from_array(image)
        buf_out = context.alloc_buffer(image.nbytes)
        kernel = context.build_program(self.source, version=version) \
            .kernel("urng")
        kernel.set_args(buf_in, buf_out, self.params["factor"])
        queue.enqueue_nd_range(kernel, (len(image),), (64,))
        return [queue.enqueue_read_buffer(buf_out, np.float32)]

    def reference(self, inputs):
        image = inputs["image"]
        n = len(image)
        with np.errstate(over="ignore"):
            seed = (np.arange(n, dtype=np.uint32) * np.uint32(747796405)
                    + np.uint32(2891336453))
            for _ in range(8):
                seed = seed * np.uint32(1664525) + np.uint32(1013904223)
        noise = (seed & np.uint32(65535)).astype(np.float32) / np.float32(65535.0) \
            - np.float32(0.5)
        factor = np.float32(self.params["factor"]) * np.float32(0.02)
        return [image + noise * factor]
