"""Parboil workloads (Table II)."""

import numpy as np

from repro.kernels.base import Workload


class BFS(Workload):
    """Frontier-based breadth-first search.

    The host iterates level-by-level, reading a done-flag back after every
    launch — the workload with the paper's heaviest CPU-GPU interaction
    (Table III: ~1000 compute jobs, high control-register traffic) and the
    divergence example of Fig. 6.
    """

    name = "bfs"
    suite = "Parboil"
    paper_input = "1257001 nodes"

    source = """
    __kernel void bfs_step(__global int* rows, __global int* cols,
                           __global int* levels, __global int* done,
                           int depth) {
        int i = get_global_id(0);
        if (levels[i] == depth) {
            int start = rows[i];
            int end = rows[i + 1];
            for (int e = start; e < end; e += 1) {
                int v = cols[e];
                if (levels[v] == -1) {
                    levels[v] = depth + 1;
                    done[0] = 1;
                }
            }
        }
    }
    """

    @staticmethod
    def default_params():
        return {"n": 256, "chord_every": 16}

    def prepare(self):
        """Ring graph + sparse chords: a graph with non-trivial diameter, so
        the search needs many iterations (the paper's many-jobs behaviour)."""
        n = self.params["n"]
        chord = self.params["chord_every"]
        edges = [[] for _ in range(n)]
        for i in range(n):
            edges[i].append((i + 1) % n)
        for i in range(0, n, chord):
            target = int(self.rng.integers(0, n))
            if target != i:
                edges[i].append(target)
        rows = np.zeros(n + 1, dtype=np.int32)
        cols = []
        for i, neighbours in enumerate(edges):
            rows[i + 1] = rows[i] + len(neighbours)
            cols.extend(neighbours)
        return {"rows": rows, "cols": np.array(cols, dtype=np.int32), "src": 0}

    def execute(self, context, queue, inputs, version=None):
        rows, cols, src = inputs["rows"], inputs["cols"], inputs["src"]
        n = len(rows) - 1
        levels = np.full(n, -1, dtype=np.int32)
        levels[src] = 0
        buf_rows = context.buffer_from_array(rows)
        buf_cols = context.buffer_from_array(cols)
        buf_levels = context.buffer_from_array(levels)
        buf_done = context.buffer_from_array(np.zeros(1, dtype=np.int32))
        kernel = context.build_program(self.source, version=version) \
            .kernel("bfs_step")
        depth = 0
        while depth < n:
            queue.enqueue_write_buffer(buf_done, np.zeros(1, dtype=np.int32))
            kernel.set_args(buf_rows, buf_cols, buf_levels, buf_done, depth)
            queue.enqueue_nd_range(kernel, (n,), (min(64, n),))
            done = queue.enqueue_read_buffer(buf_done, np.int32)
            if done[0] == 0:
                break
            depth += 1
        return [queue.enqueue_read_buffer(buf_levels, np.int32)]

    def reference(self, inputs):
        rows, cols, src = inputs["rows"], inputs["cols"], inputs["src"]
        n = len(rows) - 1
        levels = np.full(n, -1, dtype=np.int32)
        levels[src] = 0
        frontier = [src]
        depth = 0
        while frontier:
            next_frontier = []
            for u in frontier:
                for e in range(rows[u], rows[u + 1]):
                    v = cols[e]
                    if levels[v] == -1:
                        levels[v] = depth + 1
                        next_frontier.append(v)
            frontier = next_frontier
            depth += 1
        return [levels]


class Cutcp(Workload):
    """Cutoff-limited Coulombic potential on a 3D grid."""

    name = "cutcp"
    suite = "Parboil"
    paper_input = "67 atoms"

    source = """
    __kernel void cutcp(__global float* atoms, __global float* grid,
                        int natoms, int nx, int ny, float spacing,
                        float cutoff2) {
        int x = get_global_id(0);
        int y = get_global_id(1);
        int z = get_global_id(2);
        float px = (float)x * spacing;
        float py = (float)y * spacing;
        float pz = (float)z * spacing;
        float pot = 0.0f;
        for (int a = 0; a < natoms; a += 1) {
            float dx = atoms[4 * a] - px;
            float dy = atoms[4 * a + 1] - py;
            float dz = atoms[4 * a + 2] - pz;
            float q = atoms[4 * a + 3];
            float r2 = dx * dx + dy * dy + dz * dz;
            if (r2 < cutoff2 && r2 > 0.000001f) {
                float s = 1.0f - r2 / cutoff2;
                pot += q * rsqrt(r2) * s * s;
            }
        }
        grid[(z * ny + y) * nx + x] = pot;
    }
    """

    @staticmethod
    def default_params():
        return {"natoms": 32, "nx": 16, "ny": 16, "nz": 4,
                "spacing": 0.5, "cutoff": 3.0}

    def prepare(self):
        p = self.params
        box = (p["nx"] * p["spacing"], p["ny"] * p["spacing"],
               p["nz"] * p["spacing"])
        atoms = np.zeros((p["natoms"], 4), dtype=np.float32)
        atoms[:, 0] = self.rng.random(p["natoms"]) * box[0]
        atoms[:, 1] = self.rng.random(p["natoms"]) * box[1]
        atoms[:, 2] = self.rng.random(p["natoms"]) * box[2]
        atoms[:, 3] = (self.rng.random(p["natoms"]) * 2 - 1).astype(np.float32)
        return {"atoms": atoms}

    def execute(self, context, queue, inputs, version=None):
        p = self.params
        atoms = inputs["atoms"]
        nx, ny, nz = p["nx"], p["ny"], p["nz"]
        buf_atoms = context.buffer_from_array(atoms)
        buf_grid = context.alloc_buffer(4 * nx * ny * nz)
        kernel = context.build_program(self.source, version=version) \
            .kernel("cutcp")
        kernel.set_args(buf_atoms, buf_grid, len(atoms), nx, ny,
                        np.float32(p["spacing"]),
                        np.float32(p["cutoff"] ** 2))
        queue.enqueue_nd_range(kernel, (nx, ny, nz), (min(8, nx), min(4, ny), 1))
        out = queue.enqueue_read_buffer(buf_grid, np.float32)
        return [out.reshape(nz, ny, nx)]

    def reference(self, inputs):
        p = self.params
        atoms = inputs["atoms"].astype(np.float64)
        nx, ny, nz = p["nx"], p["ny"], p["nz"]
        spacing = p["spacing"]
        cutoff2 = p["cutoff"] ** 2
        zs, ys, xs = np.meshgrid(
            np.arange(nz) * spacing, np.arange(ny) * spacing,
            np.arange(nx) * spacing, indexing="ij",
        )
        grid = np.zeros((nz, ny, nx))
        for ax, ay, az, q in atoms:
            r2 = (ax - xs) ** 2 + (ay - ys) ** 2 + (az - zs) ** 2
            mask = (r2 < cutoff2) & (r2 > 1e-6)
            s = 1.0 - r2 / cutoff2
            with np.errstate(divide="ignore", invalid="ignore"):
                contrib = q / np.sqrt(r2) * s * s
            grid += np.where(mask, contrib, 0.0)
        return [grid.astype(np.float32)]

    def check(self, outputs, expected):
        return np.allclose(outputs[0], expected[0], rtol=5e-3, atol=5e-4)


class Sgemm(Workload):
    """Parboil SGEMM: C = alpha * A @ B + beta * C (naive kernel)."""

    name = "sgemm"
    suite = "Parboil"
    paper_input = "128x96, 96x160 matrices"

    source = """
    __kernel void sgemm(__global float* a, __global float* b,
                        __global float* c, int m, int n, int k,
                        float alpha, float beta) {
        int col = get_global_id(0);
        int row = get_global_id(1);
        float acc = 0.0f;
        for (int i = 0; i < k; i += 1) {
            acc += a[row * k + i] * b[i * n + col];
        }
        c[row * n + col] = alpha * acc + beta * c[row * n + col];
    }
    """

    @staticmethod
    def default_params():
        return {"m": 32, "k": 24, "n": 40}

    def prepare(self):
        p = self.params
        return {
            "a": self.rng.random((p["m"], p["k"]), dtype=np.float32),
            "b": self.rng.random((p["k"], p["n"]), dtype=np.float32),
            "c": self.rng.random((p["m"], p["n"]), dtype=np.float32),
        }

    def execute(self, context, queue, inputs, version=None):
        p = self.params
        buf_a = context.buffer_from_array(inputs["a"])
        buf_b = context.buffer_from_array(inputs["b"])
        buf_c = context.buffer_from_array(inputs["c"])
        kernel = context.build_program(self.source, version=version) \
            .kernel("sgemm")
        kernel.set_args(buf_a, buf_b, buf_c, p["m"], p["n"], p["k"],
                        np.float32(1.0), np.float32(0.5))
        queue.enqueue_nd_range(kernel, (p["n"], p["m"]), (8, 8))
        out = queue.enqueue_read_buffer(buf_c, np.float32)
        return [out.reshape(p["m"], p["n"])]

    def reference(self, inputs):
        return [(inputs["a"] @ inputs["b"] + 0.5 * inputs["c"])
                .astype(np.float32)]


class Spmv(Workload):
    """CSR sparse matrix-vector multiply: one thread per row (irregular
    row lengths drive divergence)."""

    name = "spmv"
    suite = "Parboil"
    paper_input = "1138x1138, 2596 nnz"

    source = """
    __kernel void spmv(__global int* row_ptr, __global int* col_idx,
                       __global float* values, __global float* x,
                       __global float* y) {
        int row = get_global_id(0);
        int start = row_ptr[row];
        int end = row_ptr[row + 1];
        float acc = 0.0f;
        for (int e = start; e < end; e += 1) {
            acc += values[e] * x[col_idx[e]];
        }
        y[row] = acc;
    }
    """

    @staticmethod
    def default_params():
        return {"n": 128, "avg_nnz": 8}

    def prepare(self):
        n = self.params["n"]
        avg = self.params["avg_nnz"]
        row_ptr = np.zeros(n + 1, dtype=np.int32)
        col_idx = []
        values = []
        for i in range(n):
            nnz = int(self.rng.integers(1, 2 * avg))
            cols = np.unique(self.rng.integers(0, n, nnz))
            row_ptr[i + 1] = row_ptr[i] + len(cols)
            col_idx.extend(cols.tolist())
            values.extend(self.rng.random(len(cols)).astype(np.float32).tolist())
        return {
            "row_ptr": row_ptr,
            "col_idx": np.array(col_idx, dtype=np.int32),
            "values": np.array(values, dtype=np.float32),
            "x": self.rng.random(n, dtype=np.float32),
        }

    def execute(self, context, queue, inputs, version=None):
        n = self.params["n"]
        buf_rows = context.buffer_from_array(inputs["row_ptr"])
        buf_cols = context.buffer_from_array(inputs["col_idx"])
        buf_vals = context.buffer_from_array(inputs["values"])
        buf_x = context.buffer_from_array(inputs["x"])
        buf_y = context.alloc_buffer(4 * n)
        kernel = context.build_program(self.source, version=version) \
            .kernel("spmv")
        kernel.set_args(buf_rows, buf_cols, buf_vals, buf_x, buf_y)
        queue.enqueue_nd_range(kernel, (n,), (min(32, n),))
        return [queue.enqueue_read_buffer(buf_y, np.float32)]

    def reference(self, inputs):
        n = self.params["n"]
        y = np.zeros(n, dtype=np.float32)
        row_ptr, col_idx = inputs["row_ptr"], inputs["col_idx"]
        values, x = inputs["values"], inputs["x"]
        for i in range(n):
            sl = slice(row_ptr[i], row_ptr[i + 1])
            y[i] = np.dot(values[sl].astype(np.float64),
                          x[col_idx[sl]].astype(np.float64))
        return [y]


class Stencil(Workload):
    """7-point 3D Jacobi stencil, iterated with ping-pong buffers — the
    paper's many-jobs, many-pages workload (Table III: 100 jobs)."""

    name = "stencil"
    suite = "Parboil"
    paper_input = "128x128x32, 100 iterations"

    source = """
    __kernel void stencil7(__global float* in_grid, __global float* out_grid,
                           int nx, int ny, int nz, float c0, float c1) {
        int x = get_global_id(0);
        int y = get_global_id(1);
        int z = get_global_id(2);
        int idx = (z * ny + y) * nx + x;
        if (x > 0 && x < nx - 1 && y > 0 && y < ny - 1
                && z > 0 && z < nz - 1) {
            float acc = in_grid[idx - 1] + in_grid[idx + 1]
                      + in_grid[idx - nx] + in_grid[idx + nx]
                      + in_grid[idx - nx * ny] + in_grid[idx + nx * ny];
            out_grid[idx] = c0 * in_grid[idx] + c1 * acc;
        } else {
            out_grid[idx] = in_grid[idx];
        }
    }
    """

    @staticmethod
    def default_params():
        return {"nx": 16, "ny": 16, "nz": 8, "iterations": 10,
                "c0": 0.5, "c1": 0.08}

    def prepare(self):
        p = self.params
        grid = self.rng.random((p["nz"], p["ny"], p["nx"])).astype(np.float32)
        return {"grid": grid}

    def execute(self, context, queue, inputs, version=None):
        p = self.params
        grid = inputs["grid"]
        nx, ny, nz = p["nx"], p["ny"], p["nz"]
        buf_a = context.buffer_from_array(grid)
        buf_b = context.buffer_from_array(grid)
        kernel = context.build_program(self.source, version=version) \
            .kernel("stencil7")
        src, dst = buf_a, buf_b
        for _ in range(p["iterations"]):
            kernel.set_args(src, dst, nx, ny, nz,
                            np.float32(p["c0"]), np.float32(p["c1"]))
            queue.enqueue_nd_range(kernel, (nx, ny, nz),
                                   (min(8, nx), min(4, ny), 1))
            src, dst = dst, src
        out = queue.enqueue_read_buffer(src, np.float32)
        return [out.reshape(nz, ny, nx)]

    def reference(self, inputs):
        p = self.params
        c0, c1 = np.float32(p["c0"]), np.float32(p["c1"])
        grid = inputs["grid"].astype(np.float32).copy()
        for _ in range(p["iterations"]):
            out = grid.copy()
            acc = (
                grid[1:-1, 1:-1, :-2] + grid[1:-1, 1:-1, 2:]
                + grid[1:-1, :-2, 1:-1] + grid[1:-1, 2:, 1:-1]
                + grid[:-2, 1:-1, 1:-1] + grid[2:, 1:-1, 1:-1]
            )
            out[1:-1, 1:-1, 1:-1] = c0 * grid[1:-1, 1:-1, 1:-1] + c1 * acc
            grid = out
        return [grid]

    def check(self, outputs, expected):
        return np.allclose(outputs[0], expected[0], rtol=1e-3, atol=1e-4)
