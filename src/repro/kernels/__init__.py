"""Benchmark workloads (Table II of the paper).

Every workload pairs a kernel-language implementation with a NumPy
reference: the reference is both the correctness oracle and the "native
hardware" stand-in for slowdown measurements (Fig. 7).

Use :func:`get_workload` / :data:`WORKLOADS` to instantiate by name.
"""

from repro.kernels.base import Workload, WorkloadResult
from repro.kernels import amd, parboil, rodinia
from repro.kernels.matrixmul import MatrixMul
from repro.kernels.sgemm_variants import (
    SGEMM_VARIANTS,
    ClblasSgemm,
    SgemmVariant,
)

WORKLOADS = {
    workload.name: workload
    for workload in (
        amd.BinarySearch,
        amd.BinomialOption,
        amd.BitonicSort,
        amd.DCT,
        amd.DwtHaar1D,
        amd.FloydWarshall,
        amd.MatrixTranspose,
        amd.RecursiveGaussian,
        amd.Reduction,
        amd.ScanLargeArrays,
        amd.SobelFilter,
        amd.URNG,
        parboil.BFS,
        parboil.Cutcp,
        parboil.Sgemm,
        parboil.Spmv,
        parboil.Stencil,
        rodinia.Backprop,
        rodinia.NearestNeighbor,
        MatrixMul,
        ClblasSgemm,
    )
}


def get_workload(name, **params):
    """Instantiate a workload by its registry name."""
    try:
        cls = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
    return cls(**params)


__all__ = [
    "Workload",
    "WorkloadResult",
    "WORKLOADS",
    "get_workload",
    "MatrixMul",
    "SGEMM_VARIANTS",
    "SgemmVariant",
]
