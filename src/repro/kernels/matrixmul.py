"""MatrixMul — the Fig. 1 compiler-version study kernel.

Written with ``vload4`` so that toolchain versions with and without wide
load/store support produce visibly different LS instruction/cycle counts,
and with an inner pattern whose slot packing responds to dual-issue
scheduling — the knobs the paper's Fig. 1 varies across Arm compiler
versions 5.6-6.2.
"""

import numpy as np

from repro.kernels.base import Workload


class MatrixMul(Workload):
    name = "MatrixMul"
    suite = "AMD APP 2.5"
    paper_input = "compiler study (Fig. 1)"

    # N is a build-time define (like real OpenCL hosts pass -D N=...), so
    # the k-loop has a compile-time trip count the unroller can act on.
    source = """
    __kernel void matrixmul(__global float* a, __global float* b,
                            __global float* c, int n) {
        int col = get_global_id(0);
        int row = get_global_id(1);
        float acc = 0.0f;
        for (int k = 0; k < N; k += 4) {
            float4 av = vload4(0, a + row * N + k);
            acc += av.x * b[k * N + col];
            acc += av.y * b[(k + 1) * N + col];
            acc += av.z * b[(k + 2) * N + col];
            acc += av.w * b[(k + 3) * N + col];
        }
        c[row * N + col] = acc;
    }
    """

    @staticmethod
    def default_params():
        return {"n": 32}

    @classmethod
    def compile_defines(cls):
        return {"N": cls.default_params()["n"]}

    def prepare(self):
        n = self.params["n"]
        if n % 4:
            raise ValueError("MatrixMul size must be a multiple of 4")
        return {
            "a": self.rng.random((n, n), dtype=np.float32),
            "b": self.rng.random((n, n), dtype=np.float32),
        }

    def execute(self, context, queue, inputs, version=None):
        n = self.params["n"]
        buf_a = context.buffer_from_array(inputs["a"])
        buf_b = context.buffer_from_array(inputs["b"])
        buf_c = context.alloc_buffer(4 * n * n)
        program = context.build_program(self.source, version=version,
                                        defines={"N": n})
        kernel = program.kernel("matrixmul")
        kernel.set_args(buf_a, buf_b, buf_c, n)
        queue.enqueue_nd_range(kernel, (n, n), (min(8, n), min(8, n)))
        out = queue.enqueue_read_buffer(buf_c, np.float32)
        self.last_kernel = kernel
        return [out.reshape(n, n)]

    def reference(self, inputs):
        return [(inputs["a"] @ inputs["b"]).astype(np.float32)]

    def check(self, outputs, expected):
        return np.allclose(outputs[0], expected[0], rtol=1e-3, atol=1e-4)

    def compile_metrics(self, version):
        """Static + dynamic metrics for one compiler version (Fig. 1)."""
        from repro.cl import Context

        context = Context()
        result = self.run(context=context, version=version)
        stats = result.stats
        kernel = self.last_kernel
        return {
            "version": version,
            "arith_cycles": stats.arith_cycles,
            "arith_instrs": stats.arith_instrs,
            "ls_cycles": stats.ls_cycles,
            "ls_instrs": stats.ls_instrs,
            "registers": kernel.compiled.work_registers,
            "nops": stats.nop_instrs,
            "verified": result.verified,
        }
