"""Six SGEMM kernels, iteratively optimized for desktop GPUs (Fig. 15).

Modelled on the myGEMM / CLBlast progression the paper evaluates:

1. naive            — one thread per element, global memory only
2. local-mem tiling — square tiles staged in local memory
3. more work/thread — each thread computes four output rows
4. wider data types — float4 global loads into local tiles
5. transposed input — A is transposed for unit-stride tile loads
6. 2D reg blocking  — each thread accumulates a 4x4 block in registers,
                      no local tiling (low local traffic, high global
                      traffic — the Mali-pessimal variant of Fig. 15)

All variants compute C = A @ B for square matrices.
"""

from dataclasses import dataclass

import numpy as np

from repro.kernels.base import Workload

_SGEMM1 = """
__kernel void sgemm1(__global float* a, __global float* b, __global float* c,
                     int n) {
    int col = get_global_id(0);
    int row = get_global_id(1);
    float acc = 0.0f;
    for (int k = 0; k < n; k += 1) {
        acc += a[row * n + k] * b[k * n + col];
    }
    c[row * n + col] = acc;
}
"""

_SGEMM2 = """
__kernel void sgemm2(__global float* a, __global float* b, __global float* c,
                     int n) {
    __local float asub[64];
    __local float bsub[64];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int col = get_global_id(0);
    int row = get_global_id(1);
    float acc = 0.0f;
    int ntiles = n / 8;
    for (int t = 0; t < ntiles; t += 1) {
        asub[ly * 8 + lx] = a[row * n + t * 8 + lx];
        bsub[ly * 8 + lx] = b[(t * 8 + ly) * n + col];
        barrier(1);
        for (int k = 0; k < 8; k += 1) {
            acc += asub[ly * 8 + k] * bsub[k * 8 + lx];
        }
        barrier(1);
    }
    c[row * n + col] = acc;
}
"""

_SGEMM3 = """
__kernel void sgemm3(__global float* a, __global float* b, __global float* c,
                     int n) {
    __local float asub[256];
    __local float bsub[64];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int col = get_global_id(0);
    int row0 = get_group_id(1) * 32 + ly * 4;
    float acc0 = 0.0f;
    float acc1 = 0.0f;
    float acc2 = 0.0f;
    float acc3 = 0.0f;
    int ntiles = n / 8;
    for (int t = 0; t < ntiles; t += 1) {
        for (int w = 0; w < 4; w += 1) {
            asub[(ly * 4 + w) * 8 + lx] = a[(row0 + w) * n + t * 8 + lx];
        }
        bsub[ly * 8 + lx] = b[(t * 8 + ly) * n + col];
        barrier(1);
        for (int k = 0; k < 8; k += 1) {
            float bv = bsub[k * 8 + lx];
            acc0 += asub[(ly * 4) * 8 + k] * bv;
            acc1 += asub[(ly * 4 + 1) * 8 + k] * bv;
            acc2 += asub[(ly * 4 + 2) * 8 + k] * bv;
            acc3 += asub[(ly * 4 + 3) * 8 + k] * bv;
        }
        barrier(1);
    }
    c[row0 * n + col] = acc0;
    c[(row0 + 1) * n + col] = acc1;
    c[(row0 + 2) * n + col] = acc2;
    c[(row0 + 3) * n + col] = acc3;
}
"""

_SGEMM4 = """
__kernel void sgemm4(__global float* a, __global float* b, __global float* c,
                     int n) {
    __local float asub[256];
    __local float bsub[256];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int col = get_global_id(0);
    int row = get_global_id(1);
    float acc = 0.0f;
    int ntiles = n / 32;
    for (int t = 0; t < ntiles; t += 1) {
        float4 av = vload4(0, a + row * n + t * 32 + lx * 4);
        vstore4(av, 0, asub + ly * 32 + lx * 4);
        for (int w = 0; w < 4; w += 1) {
            bsub[(ly * 4 + w) * 8 + lx] = b[(t * 32 + ly * 4 + w) * n + col];
        }
        barrier(1);
        for (int k = 0; k < 32; k += 1) {
            acc += asub[ly * 32 + k] * bsub[k * 8 + lx];
        }
        barrier(1);
    }
    c[row * n + col] = acc;
}
"""

_SGEMM5 = """
__kernel void sgemm5(__global float* at, __global float* b, __global float* c,
                     int n) {
    __local float asub[64];
    __local float bsub[64];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int col = get_global_id(0);
    int row = get_global_id(1);
    float acc = 0.0f;
    int ntiles = n / 8;
    for (int t = 0; t < ntiles; t += 1) {
        asub[ly * 8 + lx] = at[(t * 8 + ly) * n + get_group_id(1) * 8 + lx];
        bsub[ly * 8 + lx] = b[(t * 8 + ly) * n + col];
        barrier(1);
        for (int k = 0; k < 8; k += 1) {
            acc += asub[k * 8 + ly] * bsub[k * 8 + lx];
        }
        barrier(1);
    }
    c[row * n + col] = acc;
}
"""


def _generate_sgemm6():
    """2D register blocking with explicit 4x4 accumulators (desktop-GPU
    style; fully unrolled in the source, as a tuned kernel would be)."""
    lines = [
        "__kernel void sgemm6(__global float* a, __global float* b,"
        " __global float* c, int n) {",
        "    int cx = get_global_id(0);",
        "    int cy = get_global_id(1);",
        "    int col0 = cx * 4;",
        "    int row0 = cy * 4;",
    ]
    for r in range(4):
        for s in range(4):
            lines.append(f"    float acc{r}{s} = 0.0f;")
    lines.append("    for (int k = 0; k < n; k += 1) {")
    for r in range(4):
        lines.append(f"        float a{r} = a[(row0 + {r}) * n + k];")
    for s in range(4):
        lines.append(f"        float b{s} = b[k * n + col0 + {s}];")
    for r in range(4):
        for s in range(4):
            lines.append(f"        acc{r}{s} += a{r} * b{s};")
    lines.append("    }")
    for r in range(4):
        for s in range(4):
            lines.append(f"    c[(row0 + {r}) * n + col0 + {s}] = acc{r}{s};")
    lines.append("}")
    return "\n".join(lines)


_SGEMM6 = _generate_sgemm6()


@dataclass(frozen=True)
class VariantSpec:
    index: int
    label: str
    kernel: str
    source: str
    transpose_a: bool
    global_size: str  # 'full' | 'rows4' | 'block4x4'
    local_size: tuple


SGEMM_VARIANTS = [
    VariantSpec(1, "Naive", "sgemm1", _SGEMM1, False, "full", (8, 8)),
    VariantSpec(2, "LocalMemTiling", "sgemm2", _SGEMM2, False, "full", (8, 8)),
    VariantSpec(3, "MoreWorkPerThread", "sgemm3", _SGEMM3, False, "rows4", (8, 8)),
    VariantSpec(4, "WiderDataTypes", "sgemm4", _SGEMM4, False, "full", (8, 8)),
    VariantSpec(5, "TransposedInput", "sgemm5", _SGEMM5, True, "full", (8, 8)),
    VariantSpec(6, "2DRegBlocking", "sgemm6", _SGEMM6, False, "block4x4", (4, 4)),
]


class ClblasSgemm(Workload):
    """The Table-II "clBLAS SGEMM" entry: a tuned library-style GEMM.

    clBLAS's generated kernel is a local-memory tiled GEMM; we use the
    tiled variant (variant 2) with library-style alpha/beta handling.
    """

    name = "clblas_sgemm"
    suite = "clBLAS"
    paper_input = "1024x1024 matrix"
    source = _SGEMM2.replace("sgemm2", "clblas_sgemm")

    @staticmethod
    def default_params():
        return {"n": 32}

    def prepare(self):
        n = self.params["n"]
        if n % 8:
            raise ValueError("clBLAS SGEMM size must be a multiple of 8")
        return {
            "a": self.rng.random((n, n), dtype=np.float32),
            "b": self.rng.random((n, n), dtype=np.float32),
        }

    def execute(self, context, queue, inputs, version=None):
        n = self.params["n"]
        buf_a = context.buffer_from_array(inputs["a"])
        buf_b = context.buffer_from_array(inputs["b"])
        buf_c = context.alloc_buffer(4 * n * n)
        kernel = context.build_program(self.source, version=version) \
            .kernel("clblas_sgemm")
        kernel.set_args(buf_a, buf_b, buf_c, n)
        queue.enqueue_nd_range(kernel, (n, n), (8, 8))
        out = queue.enqueue_read_buffer(buf_c, np.float32)
        return [out.reshape(n, n)]

    def reference(self, inputs):
        return [(inputs["a"] @ inputs["b"]).astype(np.float32)]

    def check(self, outputs, expected):
        return np.allclose(outputs[0], expected[0], rtol=1e-3, atol=1e-4)


class SgemmVariant(Workload):
    """One of the six Fig. 15 SGEMM variants (select with ``variant=``)."""

    name = "sgemm_variant"
    suite = "myGEMM / CLBlast"
    paper_input = "1024x1024 matrix"

    def __init__(self, variant=1, **params):
        self.spec = SGEMM_VARIANTS[variant - 1]
        self.name = f"sgemm{variant}:{self.spec.label}"
        self.source = self.spec.source
        super().__init__(**params)

    def seed(self):
        return 20190324  # same inputs for every variant

    @staticmethod
    def default_params():
        return {"n": 32}

    def prepare(self):
        n = self.params["n"]
        if n % 32:
            raise ValueError("SGEMM variant size must be a multiple of 32")
        return {
            "a": self.rng.random((n, n), dtype=np.float32),
            "b": self.rng.random((n, n), dtype=np.float32),
        }

    def execute(self, context, queue, inputs, version=None):
        n = self.params["n"]
        spec = self.spec
        a_host = inputs["a"].T.copy() if spec.transpose_a else inputs["a"]
        buf_a = context.buffer_from_array(a_host)
        buf_b = context.buffer_from_array(inputs["b"])
        buf_c = context.alloc_buffer(4 * n * n)
        kernel = context.build_program(self.source, version=version) \
            .kernel(spec.kernel)
        kernel.set_args(buf_a, buf_b, buf_c, n)
        if spec.global_size == "full":
            global_size = (n, n)
        elif spec.global_size == "rows4":
            global_size = (n, n // 4)
        else:
            global_size = (n // 4, n // 4)
        queue.enqueue_nd_range(kernel, global_size, spec.local_size)
        self.last_kernel = kernel
        out = queue.enqueue_read_buffer(buf_c, np.float32)
        return [out.reshape(n, n)]

    def reference(self, inputs):
        return [(inputs["a"] @ inputs["b"]).astype(np.float32)]

    def check(self, outputs, expected):
        return np.allclose(outputs[0], expected[0], rtol=1e-3, atol=1e-4)
