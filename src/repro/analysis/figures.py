"""Per-figure data generation (Figs. 1, 6-15 and Table III)."""

import time

import numpy as np

from repro.baselines.m2s_runtime import M2SContext, M2SQueue
from repro.baselines.native import native_seconds
from repro.baselines.desktopgpu import DesktopGPUModel, MobileGPUModel
from repro.cl import CommandQueue, Context
from repro.core.platform import MobilePlatform, PlatformConfig
from repro.gpu.device import GPUConfig
from repro.kernels import get_workload
from repro.kernels.matrixmul import MatrixMul
from repro.kernels.sgemm_variants import SgemmVariant

COMPILER_VERSION_ORDER = ("5.6", "5.7", "6.0", "6.1", "6.2")

FIG11_WORKLOADS = (
    "BinarySearch", "BinomialOption", "DCT", "DwtHaar1D", "FloydWarshall",
    "MatrixTranspose", "RecursiveGaussian", "Reduction", "ScanLargeArrays",
    "SobelFilter", "URNG", "backprop", "bfs", "cutcp", "nn", "sgemm",
    "spmv", "stencil",
)

FIG13_WORKLOADS = FIG11_WORKLOADS + ("BitonicSort",)

FIG7_WORKLOADS = (
    "BinarySearch", "BinomialOption", "BitonicSort", "DCT", "DwtHaar1D",
    "MatrixTranspose", "Reduction", "SobelFilter", "URNG",
)

FIG8_WORKLOADS = (
    "BinarySearch", "BinomialOption", "BitonicSort", "DCT", "DwtHaar1D",
    "FloydWarshall", "MatrixTranspose", "RecursiveGaussian", "Reduction",
    "ScanLargeArrays", "SobelFilter", "sgemm", "stencil",
)


# -- Fig. 1: compiler versions -------------------------------------------------------


def fig01_compiler_versions(n=32):
    """MatrixMul metrics per compiler version, normalized to v5.6."""
    rows = []
    for version in COMPILER_VERSION_ORDER:
        workload = MatrixMul(n=n)
        metrics = workload.compile_metrics(version)
        rows.append(metrics)
    base = rows[0]
    normalized = []
    for metrics in rows:
        normalized.append({
            "version": metrics["version"],
            "arith_cycles": metrics["arith_cycles"] / base["arith_cycles"],
            "arith_instrs": metrics["arith_instrs"] / base["arith_instrs"],
            "ls_cycles": metrics["ls_cycles"] / base["ls_cycles"],
            "ls_instrs": metrics["ls_instrs"] / base["ls_instrs"],
            "registers": metrics["registers"] / base["registers"],
            "verified": metrics["verified"],
        })
    return normalized


# -- Fig. 6: BFS divergence CFG ---------------------------------------------------------


def fig06_bfs_cfg(n=128):
    """Run BFS with CFG collection; returns (dot text, divergence info)."""
    config = PlatformConfig(gpu=GPUConfig(collect_cfg=True))
    context = Context(MobilePlatform(config))
    workload = get_workload("bfs", n=n)
    queue = CommandQueue(context)
    inputs = workload.prepare()
    workload.execute(context, queue, inputs)
    merged = None
    for result in context.platform.gpu.job_manager.results:
        if result.cfg is None:
            continue
        if merged is None:
            merged = result.cfg
        else:
            merged.merge(result.cfg)
    divergent = {
        merged.node_label(node): merged.divergence_fraction(node)
        for node in merged.divergences
    }
    return merged.to_dot(), divergent, merged


# -- Fig. 7: slowdown over native --------------------------------------------------------


def fig07_slowdown(workloads=FIG7_WORKLOADS, sizes=None):
    """Per workload: GPU-only and full-system slowdown vs native NumPy."""
    rows = []
    for name in workloads:
        workload = get_workload(name, **(sizes or {}).get(name, {}))
        result = workload.run()
        native = native_seconds(workload)
        gpu_seconds = result.total_seconds - result.cpu_seconds
        rows.append({
            "benchmark": name,
            "native_seconds": native,
            "gpu_slowdown": gpu_seconds / native,
            "full_system_slowdown": result.total_seconds / native,
            "verified": result.verified,
        })
    return rows


# -- Fig. 8: speed vs Multi2Sim-style baseline ---------------------------------------------


def run_workload_m2s(workload, instrument=True, verify=True):
    """Run a workload on the intercepted-runtime baseline simulator."""
    context = M2SContext(instrument=instrument)
    queue = M2SQueue(context)
    inputs = workload.prepare()
    start = time.perf_counter()
    outputs = workload.execute(context, queue, inputs)
    seconds = time.perf_counter() - start
    verified = True
    if verify:
        verified = workload.check(outputs, workload.reference(inputs))
    return seconds, verified, context.sim.stats


def fig08_vs_m2s(workloads=FIG8_WORKLOADS, sizes=None):
    """Our simulator's speedup over the baseline, with/without
    instrumentation (the paper's Fig. 8 bars)."""
    rows = []
    for name in workloads:
        params = (sizes or {}).get(name, {})
        m2s_seconds, m2s_ok, _ = run_workload_m2s(get_workload(name, **params))

        def _full_system(instrument):
            config = PlatformConfig(gpu=GPUConfig(instrument=instrument))
            context = Context(MobilePlatform(config))
            workload = get_workload(name, **params)
            result = workload.run(context=context)
            return result.total_seconds, result.verified

        with_instr, ok_instr = _full_system(True)
        without_instr, ok_plain = _full_system(False)
        rows.append({
            "benchmark": name,
            "m2s_seconds": m2s_seconds,
            "speedup_with_instr": m2s_seconds / with_instr,
            "speedup_without_instr": m2s_seconds / without_instr,
            "instr_overhead": with_instr / without_instr - 1.0,
            "verified": m2s_ok and ok_instr and ok_plain,
        })
    return rows


# -- Fig. 9: CPU-side driver runtime scaling ------------------------------------------------


def fig09_driver_scaling(sizes=((16, 12), (32, 24), (48, 36), (64, 48))):
    """SobelFilter driver (CPU-side) time: DBT vs interpretive engine."""
    rows = []
    for width, height in sizes:
        row = {"input": f"{width}x{height}"}
        for engine in ("dbt", "interpretive"):
            config = PlatformConfig(cpu_engine=engine)
            context = Context(MobilePlatform(config))
            workload = get_workload("SobelFilter", width=width, height=height)
            result = workload.run(context=context)
            row[f"{engine}_driver_seconds"] = result.cpu_seconds
            row[f"{engine}_guest_instructions"] = result.guest_instructions
            row[f"{engine}_verified"] = result.verified
        row["dbt_speedup"] = (row["interpretive_driver_seconds"]
                              / max(row["dbt_driver_seconds"], 1e-9))
        rows.append(row)
    return rows


# -- Fig. 10: host-thread scaling --------------------------------------------------------------


def fig10_thread_scaling(threads=(1, 2, 4, 8, 16, 32, 64),
                         workload_names=("SobelFilter", "BinarySearch")):
    """Host-thread scaling, modelled from the measured serial/parallel
    split (Amdahl) plus a real-thread-pool correctness run.

    CPython's GIL prevents genuine multi-thread speedup inside one
    process, so the wall-clock curve is computed from measured quantities:
    the serial CPU-interaction time and the parallel GPU execution time,
    with parallelism capped by the number of thread-groups per job. The
    real thread-pool path is exercised (and verified) at ``threads=4``.
    """
    # BinarySearch in the paper's AMD form is an iterative narrow search:
    # very few threads per short kernel, so there is almost nothing to
    # spread over host threads (one thread-group per job here)
    sizes = {"BinarySearch": {"keys": 16}}
    launch_overhead = _calibrate_launch_overhead()
    results = {}
    for name in workload_names:
        workload = get_workload(name, **sizes.get(name, {}))
        result = workload.run()
        # serial portion: simulated-CPU driver work + per-job descriptor/
        # doorbell/IRQ handling (measured, not assumed)
        serial = result.cpu_seconds + launch_overhead * result.jobs
        parallel = max(result.total_seconds - serial, 0.0)
        groups_per_job = max(result.stats.workgroups / max(result.jobs, 1), 1)
        base = serial + parallel
        curve = []
        for t in threads:
            effective = min(t, groups_per_job)
            modelled = serial + parallel / effective
            curve.append({"threads": t, "speedup": base / modelled})
        # exercise the real virtual-core thread pool and verify outputs
        config = PlatformConfig(gpu=GPUConfig(num_host_threads=4))
        pool_context = Context(MobilePlatform(config))
        pool_result = get_workload(name, **sizes.get(name, {})) \
            .run(context=pool_context)
        results[name] = {
            "curve": curve,
            "serial_fraction": serial / base if base else 0.0,
            "threadpool_verified": pool_result.verified,
        }
    return results


def _calibrate_launch_overhead(launches=30):
    """Measure the fixed serial cost of one kernel launch: a minimal
    one-workgroup kernel is launched repeatedly and the average wall time
    per launch (descriptor build, uniform upload, doorbell, IRQ service)
    is returned."""
    source = """
    __kernel void nopk(__global int* out) {
        out[get_local_id(0)] = 0;
    }
    """
    context = Context()
    queue = CommandQueue(context)
    kernel = context.build_program(source).kernel("nopk")
    buffer = context.alloc_buffer(64)
    kernel.set_args(buffer)
    queue.enqueue_nd_range(kernel, (4,), (4,))  # warm caches
    start = time.perf_counter()
    for _ in range(launches):
        queue.enqueue_nd_range(kernel, (4,), (4,))
    return (time.perf_counter() - start) / launches


# -- Figs. 11-13: program statistics across the suite ----------------------------------------------


def run_suite_stats(workloads=FIG13_WORKLOADS, sizes=None):
    """Run each workload once; returns [(name, JobStats, WorkloadResult)]."""
    collected = []
    for name in workloads:
        workload = get_workload(name, **(sizes or {}).get(name, {}))
        result = workload.run()
        collected.append((name, result.stats, result))
    return collected


# -- Table III: system statistics -------------------------------------------------------------------


_TABLE03_SIZES = {
    # SobelFilter processes a real image: its buffers span many pages while
    # BinomialOption's small option arrays span few (the paper's 4609 vs 31
    # contrast, scaled down); stencil's iterated ping-pong volume touches
    # the most pages of all (the paper's 99603)
    "SobelFilter": {"width": 128, "height": 96},
    "stencil": {"nx": 32, "ny": 32, "nz": 16, "iterations": 10},
}


def table03_system_stats(workloads=("bfs", "BinomialOption", "SobelFilter",
                                    "stencil"), sizes=None):
    """Per-workload platform-level interaction counters, each on a fresh
    platform so counters are not polluted by other runs."""
    rows = []
    if sizes is None:
        sizes = _TABLE03_SIZES
    for name in workloads:
        context = Context()
        workload = get_workload(name, **(sizes or {}).get(name, {}))
        result = workload.run(context=context)
        system = context.platform.system_stats()
        rows.append({
            "benchmark": name,
            "pages_accessed": system.pages_accessed,
            "ctrl_reg_reads": system.ctrl_reg_reads,
            "ctrl_reg_writes": system.ctrl_reg_writes,
            "interrupts_asserted": system.interrupts_asserted,
            "compute_jobs": system.compute_jobs,
            "verified": result.verified,
        })
    return rows


# -- Fig. 14: SLAMBench configurations ------------------------------------------------------------------


def fig14_slambench():
    """Metrics for fast3/express relative to standard, plus native FPS."""
    from repro.slam import CONFIGS, KFusionPipeline

    absolute = {}
    fps = {}
    for name in ("standard", "fast3", "express"):
        pipeline = KFusionPipeline(name)
        metrics, _ = pipeline.run_gpu()
        absolute[name] = metrics
        native_seconds_total = min(pipeline.run_native()[0] for _ in range(3))
        fps[name] = CONFIGS[name].frames / native_seconds_total
    relative = {}
    for name in ("fast3", "express"):
        relative[name] = {
            key: (absolute[name][key] / absolute["standard"][key]
                  if absolute["standard"][key] else 0.0)
            for key in absolute[name]
            if key != "total_seconds"
        }
    fps_relative = {name: fps[name] / fps["standard"]
                    for name in ("fast3", "express")}
    return {"absolute": absolute, "relative": relative,
            "fps": fps, "fps_relative": fps_relative}


# -- Fig. 15: SGEMM variants -----------------------------------------------------------------------------


def fig15_sgemm(n=32):
    """Six SGEMM variants: stats normalized to variant 6, plus mobile and
    desktop-GPU runtime estimates (both normalized to variant 6).

    All variants touch the same data (A, B, C: 3*n^2 elements), which sets
    the mobile model's compulsory DRAM footprint.
    """
    desktop_model = DesktopGPUModel()
    mobile_model = MobileGPUModel()
    footprint = 3 * n * n
    raw = []
    for variant in range(1, 7):
        workload = SgemmVariant(variant=variant, n=n)
        result = workload.run()
        stats = result.stats
        registers = workload.last_kernel.compiled.work_registers
        wide_fraction = 1.0 if variant == 4 else 0.0
        desktop_cost = desktop_model.estimate_cost(
            stats, registers, stats.threads_launched,
            wide_fraction=wide_fraction,
        )
        mobile_cost = mobile_model.estimate_cost(stats, registers, footprint)
        raw.append({
            "variant": variant,
            "label": workload.spec.label,
            "arith_instrs": stats.arith_instrs,
            "cf_instrs": stats.cf_instrs,
            "const_reads": stats.const_reads,
            "global_ls": stats.ls_global_instrs,
            "grf_accesses": stats.grf_reads + stats.grf_writes,
            "local_ls": stats.ls_local_instrs,
            "nop_instrs": stats.nop_instrs,
            "num_clauses": stats.clauses_executed,
            "rom_reads": stats.rom_reads,
            "temp_accesses": stats.temp_reads + stats.temp_writes,
            "registers": registers,
            "mali_runtime": mobile_cost,
            "desktop_runtime": desktop_cost,
            "sim_seconds": result.total_seconds - result.cpu_seconds,
            "verified": result.verified,
        })
    base = raw[5]  # variant 6, as in the paper
    normalized = []
    for row in raw:
        entry = {"variant": row["variant"], "label": row["label"],
                 "registers": row["registers"], "verified": row["verified"]}
        for key in ("arith_instrs", "cf_instrs", "const_reads", "global_ls",
                    "grf_accesses", "local_ls", "nop_instrs", "num_clauses",
                    "rom_reads", "temp_accesses", "mali_runtime",
                    "desktop_runtime"):
            denominator = base[key] or 1
            entry[key] = row[key] / denominator
        normalized.append(entry)
    return {"raw": raw, "normalized": normalized}
