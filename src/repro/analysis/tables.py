"""Static tables from the paper (I, II, IV) and their renderers."""

from repro.instrument.report import format_table

# -- Table I: system configurations ------------------------------------------------

TABLE_I = [
    ("Simulated platform", "RISC-like 64-bit CPU, Bifrost-like GPU (8 cores), "
                           "kbase-like driver + OpenCL-like runtime"),
    ("Paper's simulated platform", "Arm-v7A/v8A CPU, Mali-G71 MP8, Arch Linux "
                                   "4.8.8, Mali DDK r3p0/r9p0"),
    ("Baseline", "Multi2Sim-style intercepted-runtime functional simulator"),
    ("Native reference", "vectorized NumPy on the host (HiKey960 stand-in)"),
]

# -- Table II: benchmark inventory -----------------------------------------------------


def table02_benchmarks():
    """Rows: suite, benchmark, paper input, our default input."""
    from repro.kernels import WORKLOADS

    rows = []
    for name in sorted(WORKLOADS):
        cls = WORKLOADS[name]
        defaults = ", ".join(f"{k}={v}" for k, v in
                             sorted(cls.default_params().items()))
        rows.append((cls.suite, name, cls.paper_input, defaults))
    return rows


# -- Table IV: simulator feature matrix ----------------------------------------------------

TABLE_IV = [
    # simulator, full system, guest CPU, guest GPU, GPU ISA, toolchain,
    # perf model, max rel. error
    ("Barra", "GPU only", "N/A", "NVIDIA Tesla", "Approx. Tesla ISA",
     "Emulated", "Instruction-accurate", "<= 81.6%"),
    ("GPGPU-Sim", "GPU only", "N/A", "NVIDIA-like GT200", "PTX/SASS",
     "Custom", "Cycle-accurate", "<= 50.0%"),
    ("gem5-gpu", "Yes", "x86", "NVIDIA GTX580/GT200", "PTX/SASS",
     "Custom", "Cycle-accurate", "<= 22.0%"),
    ("Multi2Sim", "Yes", "x86/Arm/MIPS", "AMD Everg./S.Isl., NVIDIA Fermi",
     "AMD GCN1 SASS", "Custom", "Cycle-accurate", "<= 30.0%"),
    ("Multi2Sim Kepler", "Yes", "x86/Arm/MIPS", "NVIDIA Kepler", "SASS",
     "Custom", "Cycle-accurate", "<= 200%"),
    ("ATTILA", "GPU only", "N/A", "ATTILA", "ARB", "Custom",
     "Cycle-accurate", "N/A"),
    ("GPUOcelot", "GPU only", "N/A", "NVIDIA/AMD Radeon", "PTX", "Custom",
     "Instruction-accurate", "Not evaluated"),
    ("HSAemu", "Yes", "Retargetable/Arm-v7A", "Generic", "HSAIL", "Custom",
     "Cycle-accurate", "N/A"),
    ("GPUTejas", "GPU only", "N/A", "NVIDIA Tesla", "PTX u-ops", "Custom",
     "Cycle-accurate", "<= 29.7%"),
    ("MacSim", "Yes", "x86", "NVIDIA G80/GT200/Fermi", "PTX u-ops",
     "Custom", "Cycle-accurate", "Not evaluated"),
    ("TEAPOT", "Yes", "Generic", "Generic mobile GPU", "Emulated", "Custom",
     "Cycle-accurate", "N/A"),
    ("QEMU/MARSSx86/PTLsim", "Yes", "x86", "NVIDIA Tesla-like", "Generic",
     "Custom", "Cycle-accurate", "Not evaluated"),
    ("GemDroid", "Yes", "x86/Arm-v7A", "ATTILA", "ARB", "Custom",
     "Cycle-accurate", "N/A"),
    ("GCN3 Simulator", "Yes", "x86", "AMD Pro A12-8800B APU", "GCN3",
     "Vendor", "Cycle-accurate", "~42%"),
    ("This simulator (paper)", "Yes", "Retargetable/Arm-v7A/v8A",
     "Retargetable/Arm Mali-G71", "Native binary", "Vendor",
     "Instruction-accurate", "0.0%"),
]


def render_table_i():
    return format_table(("item", "value"), TABLE_I,
                        title="Table I: system configurations")


def render_table_ii():
    return format_table(
        ("suite", "benchmark", "paper input", "our default input"),
        table02_benchmarks(), title="Table II: benchmarks and data sets",
    )


def render_table_iv():
    headers = ("simulator", "full system", "guest CPU", "guest GPU",
               "GPU ISA", "toolchain", "perf model", "max rel. error")
    return format_table(headers, TABLE_IV,
                        title="Table IV: GPU simulator feature comparison")
