"""Figure/table regeneration: one function per paper artifact.

Each ``figXX_*`` / ``tableXX_*`` function runs the necessary simulations
and returns the rows/series the paper's figure reports; the benchmark
harness under ``benchmarks/`` prints them. Keeping the logic here makes
the same data available to tests, examples and benchmarks.
"""

from repro.analysis import figures, tables

__all__ = ["figures", "tables"]
