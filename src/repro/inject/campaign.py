"""Seeded fault campaigns: sweep workloads under fault plans and assert
the recovery invariants.

For every (workload, scenario, seed) case the campaign:

1. runs the workload **clean** (no injector) and keeps the output bytes
   plus the clean-run observables (GPU-VA pages touched, workgroup
   count) that seed the plan generator;
2. derives a :class:`~repro.inject.plan.FaultPlan` from the case seed;
3. runs the workload **under the plan** and checks the scenario's
   invariant:

   - *recoverable* scenarios (transient faults, IRQ mismatches) must
     complete **bit-exactly** equal to the clean run, with the injected
     fault actually fired and the recovery counters moved;
   - *unrecoverable* scenarios (persistent faults) must surface a clean
     :class:`~repro.errors.SimError` — never a hang, never a raw
     non-simulation exception — and must leave the platform usable: a
     follow-up clean run on the *same* platform has to verify;
   - the *heap-grow* scenario runs a kernel over a grow-on-fault buffer
     and requires bit-exact results with the page-fault worker having
     grown the region;

4. optionally re-runs the faulted case and requires identical fault
   counters, firing logs and outputs (determinism invariant — this is
   what makes every campaign failure a reproducer).

Failures are written as JSON reproducer files using the conformance
corpus envelope (``format``/``name``/``expect``/``notes``) with the
fault plan inline.

Bit-exact recovery relies on jobs being **replayable** (outputs a pure
function of inputs): the driver re-runs a faulted job from the start,
exactly as kbase replays jobs, so kernels that read-modify-write their
outputs are outside the contract. All campaign workloads are replayable.
"""

import json
import os
import random
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.cl import CommandQueue, Context
from repro.core.platform import MobilePlatform, PlatformConfig
from repro.errors import SimError
from repro.gpu.device import GPUConfig
from repro.inject.injector import FaultInjector
from repro.inject.plan import FaultPlan, FaultSpec
from repro.kernels import Workload, get_workload
from repro.kernels.parboil import Sgemm
from repro.mem.physical import PAGE_SIZE

REPRO_FORMAT = "fault-campaign-repro-v1"

#: scenario -> expected outcome class
SCENARIOS = {
    "mmu-transient": "recover",
    "mmu-persistent": "fail-clean",
    "hang-transient": "recover",
    "hang-persistent": "fail-clean",
    "descriptor-transient": "recover",
    "descriptor-persistent": "fail-clean",
    "irq-lost": "recover",
    "irq-spurious": "recover",
    "alloc-fail": "fail-clean",
    "heap-grow": "grow",
    # cross-tenant adversarial cases: an attacker tenant faults (or runs
    # a malicious kernel) while the victim tenant runs the campaign
    # workload — the victim must match its solo baseline byte-for-byte
    "xtenant-mmu": "isolate",
    "xtenant-hang": "isolate",
    "xtenant-irq-lost": "isolate",
    "xtenant-oob": "isolate",
}

#: campaign engine name -> tenancy-harness engine mode
_TENANCY_MODES = {"interpreter": "fast", "jit": "jit", "mega": "mega"}

DEFAULT_WORKLOADS = ("sgemm", "divergent")

_DIVERGENT_SOURCE = """
__kernel void divergent(__global int* data, __global int* out) {
    int i = get_global_id(0);
    int v = data[i];
    int acc = 0;
    if (v % 2 == 0) {
        for (int j = 0; j < (v & 7); j += 1) {
            acc += j * v;
        }
    } else {
        acc = v * 3 + 1;
    }
    out[i] = acc;
}
"""

_GROW_SOURCE = """
__kernel void fillseq(__global int* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        out[i] = i * 1103 + 12345;
    }
}
"""


class DivergentWorkload(Workload):
    """Warp-divergent synthetic workload (replayable variant of
    ``examples/divergent.cl``: outputs depend only on inputs)."""

    name = "divergent"
    suite = "synthetic"
    paper_input = "n=4096"
    source = _DIVERGENT_SOURCE

    @staticmethod
    def default_params():
        return {"n": 4096}

    def prepare(self):
        n = self.params["n"]
        return {"data": self.rng.integers(0, 64, size=n).astype(np.int32)}

    def execute(self, context, queue, inputs, version=None):
        data = inputs["data"]
        n = data.size
        buf_data = context.buffer_from_array(data)
        buf_out = context.alloc_buffer(n * 4)
        queue.enqueue_fill_buffer(buf_out, 0)
        program = context.build_program(self.source)
        kernel = program.kernel("divergent")
        kernel.set_args(buf_data, buf_out)
        queue.enqueue_nd_range(kernel, (n,), (64,))
        return [queue.enqueue_read_buffer(buf_out, dtype=np.int32, count=n)]

    def reference(self, inputs):
        v = inputs["data"].astype(np.int64)
        k = v & 7
        even = v * (k * (k - 1) // 2)
        odd = v * 3 + 1
        return [np.where(v % 2 == 0, even, odd).astype(np.int32)]


class ReplayableSgemm(Sgemm):
    """sgemm with ``beta = 0``: C is written, never read, so a replayed
    job is bit-identical — the registry variant's ``beta = 0.5``
    read-modify-writes C and is outside the replay contract."""

    def execute(self, context, queue, inputs, version=None):
        p = self.params
        buf_a = context.buffer_from_array(inputs["a"])
        buf_b = context.buffer_from_array(inputs["b"])
        buf_c = context.buffer_from_array(inputs["c"])
        kernel = context.build_program(self.source, version=version) \
            .kernel("sgemm")
        kernel.set_args(buf_a, buf_b, buf_c, p["m"], p["n"], p["k"],
                        np.float32(1.0), np.float32(0.0))
        queue.enqueue_nd_range(kernel, (p["n"], p["m"]), (8, 8))
        out = queue.enqueue_read_buffer(buf_c, np.float32)
        return [out.reshape(p["m"], p["n"])]

    def reference(self, inputs):
        return [(inputs["a"] @ inputs["b"]).astype(np.float32)]


def _make_workload(name):
    """Campaign workloads must be *replayable* (outputs a pure function
    of inputs): the recovery ladder re-runs faulted jobs from scratch."""
    if name == "divergent":
        return DivergentWorkload()
    if name == "sgemm":
        return ReplayableSgemm()
    return get_workload(name)


@dataclass
class CaseResult:
    """Outcome of one campaign case."""

    workload: str
    scenario: str
    seed: int
    ok: bool
    detail: str = ""
    fired: int = 0
    counters: dict = field(default_factory=dict)


@dataclass
class CampaignReport:
    """All case results plus the sweep configuration."""

    engine: str
    num_host_threads: int
    cases: list = field(default_factory=list)

    @property
    def failures(self):
        return [case for case in self.cases if not case.ok]

    @property
    def ok(self):
        return not self.failures

    def summary(self):
        lines = [
            f"fault campaign: engine={self.engine} "
            f"threads={self.num_host_threads} "
            f"cases={len(self.cases)} failures={len(self.failures)}"
        ]
        for case in self.cases:
            mark = "ok  " if case.ok else "FAIL"
            lines.append(
                f"  {mark} {case.workload:<12} {case.scenario:<22} "
                f"seed={case.seed} fired={case.fired} {case.detail}")
        return "\n".join(lines)


class _Execution:
    """One platform run of a workload, clean or under a plan."""

    def __init__(self, platform, context, injector, outputs, verified,
                 error):
        self.platform = platform
        self.context = context
        self.injector = injector
        self.outputs = outputs
        self.verified = verified
        self.error = error

    @property
    def output_bytes(self):
        if self.outputs is None:
            return None
        return b"".join(
            np.ascontiguousarray(np.asarray(out)).tobytes()
            for out in self.outputs)

    def counters(self):
        driver = self.platform.driver
        gpu = self.platform.gpu
        counts = {
            "driver.retries": driver.retries,
            "driver.resets": driver.resets,
            "driver.soft_stops": driver.soft_stops,
            "driver.hard_stops": driver.hard_stops,
            "driver.irq_mismatches": driver.irq_mismatches,
            "driver.spurious_irqs": driver.spurious_irqs,
            "driver.backoff_ticks": driver.backoff_ticks,
            "driver.page_faults": driver.page_faults,
            "driver.pages_grown": driver.pages_grown,
            "driver.alloc_failures": driver.alloc_failures,
            "driver.faults_unrecovered": driver.faults_unrecovered,
            "gpu.faults.mmu_injected": gpu.mmu.injected_faults,
            "gpu.faults.page_faults_resolved": gpu.mmu.page_faults_resolved,
            "gpu.faults.watchdog_timeouts": gpu.job_manager.watchdog_timeouts,
            "gpu.faults.descriptor_corruptions":
                gpu.job_manager.descriptor_corruptions,
            "gpu.faults.soft_resets": gpu.soft_resets,
        }
        if self.injector is not None:
            counts["inject.total"] = self.injector.total_fired
        return counts


def _new_platform(engine, num_host_threads):
    config = PlatformConfig(gpu=GPUConfig(
        num_host_threads=num_host_threads, engine=engine))
    return MobilePlatform(config)


def _execute(workload_name, engine, num_host_threads, plan=None):
    """Run *workload_name* on a fresh platform, optionally under *plan*.

    SimErrors are captured (they are legal outcomes of a fault plan);
    anything else propagates — a non-SimError escaping is itself a
    campaign failure, caught and reported by the case runner.
    """
    platform = _new_platform(engine, num_host_threads)
    context = Context(platform)
    injector = None
    if plan is not None:
        injector = FaultInjector(plan)
        platform.attach_injector(injector)
    workload = _make_workload(workload_name)
    outputs = None
    verified = None
    error = None
    try:
        queue = CommandQueue(context)
        inputs = workload.prepare()
        outputs = workload.execute(context, queue, inputs)
        verified = workload.check(outputs, workload.reference(inputs))
    except SimError as exc:
        error = exc
    return _Execution(platform, context, injector, outputs, verified, error)


def _clean_observables(execution):
    """Plan-generator inputs from a clean run: touched GPU-VA pages and
    the workgroup count of the (last) job."""
    pages = sorted(execution.platform.gpu.mmu.pages_accessed)
    results = execution.platform.last_job_results()
    groups = max((result.stats.workgroups for result in results
                  if result.stats is not None), default=1)
    return pages, max(1, groups)


def build_plan(scenario, rng, pages, groups):
    """Derive the scenario's fault plan from the case RNG and the
    clean-run observables."""
    persistent = scenario.endswith("-persistent")
    count = None if persistent else 1
    if scenario.startswith("mmu-"):
        spec = FaultSpec(
            "mmu.page", key=rng.choice(pages), count=count,
            params={"kind": rng.choice(["translation", "permission"]),
                    "access": rng.choice(["r", "w"])})
    elif scenario.startswith("hang-"):
        spec = FaultSpec("core.hang", key=rng.randrange(groups),
                         count=count)
    elif scenario.startswith("descriptor-"):
        # corrupt the job-type field: any bit-flip there turns the
        # descriptor into a guaranteed clean fault (never a silently
        # wrong job), which is what the recovery invariant needs
        spec = FaultSpec(
            "descriptor.read", count=count,
            params={"offset": rng.randrange(4),
                    "mask": rng.randrange(1, 256)})
    elif scenario == "irq-lost":
        spec = FaultSpec("irq.lost", count=1)
    elif scenario == "irq-spurious":
        spec = FaultSpec("irq.spurious", count=1,
                         params={"line": "mmu"})
    elif scenario == "alloc-fail":
        spec = FaultSpec("alloc.phys", occurrence=1 + rng.randrange(2),
                         count=1)
    else:
        raise ValueError(f"unknown scenario {scenario!r}")
    return FaultPlan([spec], name=scenario)


def _usable_after(execution, workload_name):
    """A follow-up clean run on the *same* platform must verify."""
    execution.platform.attach_injector(None)
    workload = _make_workload(workload_name)
    queue = CommandQueue(execution.context)
    inputs = workload.prepare()
    outputs = workload.execute(execution.context, queue, inputs)
    return workload.check(outputs, workload.reference(inputs))


def _run_grow_case(rng, engine, num_host_threads):
    """heap-grow: a kernel sweeps a grow-on-fault buffer; the page-fault
    worker must grow the mapping and the result must be exact."""
    platform = _new_platform(engine, num_host_threads)
    context = Context(platform)
    queue = CommandQueue(context)
    n_pages = 4 + rng.randrange(8)
    n = n_pages * PAGE_SIZE // 4
    buffer = context.alloc_buffer(n * 4, grow_on_fault=True)
    program = context.build_program(_GROW_SOURCE)
    kernel = program.kernel("fillseq")
    kernel.set_args(buffer, n)
    queue.enqueue_nd_range(kernel, (n,), (64,))
    got = queue.enqueue_read_buffer(buffer, dtype=np.int32, count=n)
    want = (np.arange(n, dtype=np.int64) * 1103 + 12345).astype(np.int32)
    driver = platform.driver
    if not np.array_equal(got, want):
        return False, "grow-on-fault output mismatch", driver
    if driver.page_faults == 0 or driver.pages_grown == 0:
        return False, ("page-fault worker never grew the region "
                       f"(page_faults={driver.page_faults})"), driver
    committed = buffer.region.committed
    if committed < n * 4:
        return False, (f"region under-committed: {committed} < {n * 4}"), \
            driver
    return True, (f"pages_grown={driver.pages_grown} "
                  f"page_faults={driver.page_faults}"), driver


def run_case(workload_name, scenario, seed, engine="interpreter",
             num_host_threads=1, clean=None, check_determinism=True):
    """Run one campaign case; returns (CaseResult, FaultPlan or None).

    *clean* is an optional cached clean :class:`_Execution` for this
    workload/engine/threads combination (clean runs are deterministic,
    so the cache is exact).
    """
    rng = random.Random(f"{workload_name}:{scenario}:{seed}")
    expect = SCENARIOS[scenario]

    if expect == "isolate":
        # deferred import: the tenancy harness pulls in the CL runtime
        from repro.tenancy.harness import run_adversarial

        ok, detail, counters = run_adversarial(
            scenario, seed, victim=workload_name,
            engine_mode=_TENANCY_MODES.get(engine, engine),
            num_host_threads=num_host_threads,
            check_determinism=check_determinism)
        fired = counters.pop("inject.total", 0)
        return CaseResult(workload_name, scenario, seed, ok, detail,
                          fired=fired, counters=counters), None

    if expect == "grow":
        ok, detail, driver = _run_grow_case(rng, engine, num_host_threads)
        counters = {"driver.page_faults": driver.page_faults,
                    "driver.pages_grown": driver.pages_grown}
        return CaseResult(workload_name, scenario, seed, ok, detail,
                          counters=counters), None

    if clean is None:
        clean = _execute(workload_name, engine, num_host_threads)
    if clean.error is not None or not clean.verified:
        return CaseResult(
            workload_name, scenario, seed, False,
            f"clean run failed: {clean.error or 'verification'}"), None
    pages, groups = _clean_observables(clean)
    plan = build_plan(scenario, rng, pages, groups)

    faulted = _execute(workload_name, engine, num_host_threads, plan=plan)
    fired = faulted.injector.total_fired
    counters = faulted.counters()
    result = CaseResult(workload_name, scenario, seed, True,
                        fired=fired, counters=counters)

    def fail(detail):
        result.ok = False
        result.detail = detail
        return result, plan

    if fired == 0:
        return fail("plan never fired")
    if expect == "recover":
        if faulted.error is not None:
            return fail(f"expected recovery, got {faulted.error!r}")
        if not faulted.verified:
            return fail("recovered run failed verification")
        if faulted.output_bytes != clean.output_bytes:
            return fail("recovered output not bit-exact vs clean run")
    else:  # fail-clean
        if faulted.error is None:
            return fail("expected a clean SimError, run completed")
        if not _usable_after(faulted, workload_name):
            return fail("platform unusable after unrecoverable fault")

    if check_determinism:
        repeat = _execute(workload_name, engine, num_host_threads,
                          plan=plan)
        if repeat.counters() != counters:
            return fail(f"non-deterministic counters: {repeat.counters()} "
                        f"!= {counters}")
        if repeat.injector.log != faulted.injector.log:
            return fail("non-deterministic firing log")
        if repeat.output_bytes != faulted.output_bytes:
            return fail("non-deterministic outputs under plan")
        if str(repeat.error) != str(faulted.error):
            return fail("non-deterministic error under plan")

    result.detail = " ".join(
        f"{key.split('.')[-1]}={value}"
        for key, value in sorted(counters.items()) if value)
    return result, plan


def write_reproducer(out_dir, case, plan, engine, num_host_threads):
    """Write a failing case as a corpus-style JSON reproducer; returns
    the file path. Plans are single-spec, i.e. already minimal."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    name = f"{case.workload}--{case.scenario}--s{case.seed}"
    entry = {
        "format": REPRO_FORMAT,
        "name": name,
        "workload": case.workload,
        "scenario": case.scenario,
        "seed": case.seed,
        "engine": engine,
        "num_host_threads": num_host_threads,
        "plan": plan.to_dict() if plan is not None else None,
        "expect": SCENARIOS[case.scenario],
        "notes": case.detail,
        "counters": case.counters,
    }
    from repro.checkpoint.format import atomic_write_text

    path = out_dir / f"{name}.json"
    atomic_write_text(str(path), json.dumps(entry, indent=2) + "\n")
    return path


def replay_reproducer(path, check_determinism=True):
    """Re-run a reproducer file; returns its CaseResult."""
    entry = json.loads(Path(path).read_text())
    if entry.get("format") != REPRO_FORMAT:
        raise ValueError(f"{path}: not a {REPRO_FORMAT} file")
    result, _plan = run_case(
        entry["workload"], entry["scenario"], entry["seed"],
        engine=entry.get("engine", "interpreter"),
        num_host_threads=entry.get("num_host_threads", 1),
        check_determinism=check_determinism)
    return result


def farm_case_specs(workloads=DEFAULT_WORKLOADS, scenarios=None, seeds=1,
                    engines=("interpreter",), threads=(1,),
                    check_determinism=False):
    """Case-provider interface for the simulation farm: the full
    ``workloads × scenarios × seeds × engines × threads`` grid, one spec
    per case, each independently executable by :func:`run_farm_case` on
    any worker (fresh platform per case, no shared state). *seeds* is a
    count (``3`` means seeds 0..2) or an explicit list of seed values."""
    scenario_names = list(scenarios or SCENARIOS)
    for scenario in scenario_names:
        if scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {scenario!r}")
    seed_values = range(seeds) if isinstance(seeds, int) else list(seeds)
    for workload in workloads:
        for scenario in scenario_names:
            for seed in seed_values:
                for engine in engines:
                    for num_threads in threads:
                        yield {
                            "workload": workload,
                            "scenario": scenario,
                            "seed": int(seed),
                            "engine": engine,
                            "num_host_threads": int(num_threads),
                            "check_determinism": bool(check_determinism),
                        }


def run_farm_case(spec, artifact_dir=None):
    """Execute one fault-campaign spec (inside a farm worker); returns
    ``(ok, detail, counters, artifacts)``.

    Failures are written as standard fault-campaign reproducers under
    *artifact_dir*, so a farm report's failing case is replayable with
    ``repro.tools faultcampaign --replay``.
    """
    engine = spec.get("engine", "interpreter")
    num_host_threads = spec.get("num_host_threads", 1)
    try:
        case, plan = run_case(
            spec["workload"], spec["scenario"], spec["seed"],
            engine=engine, num_host_threads=num_host_threads,
            check_determinism=spec.get("check_determinism", False))
    except Exception as exc:  # invariant: nothing escapes raw
        case = CaseResult(
            spec["workload"], spec["scenario"], spec["seed"], False,
            f"non-SimError escaped: {type(exc).__name__}: {exc}")
        plan = None
    artifacts = []
    if not case.ok and artifact_dir is not None:
        path = write_reproducer(artifact_dir, case, plan, engine,
                                num_host_threads)
        artifacts.append(os.path.basename(str(path)))
    counters = {key: int(value) for key, value in
                sorted(case.counters.items())}
    counters["fired"] = int(case.fired)
    return case.ok, case.detail, counters, artifacts


def run_campaign(workloads=DEFAULT_WORKLOADS, scenarios=None, seeds=1,
                 engine="interpreter", num_host_threads=1, out_dir=None,
                 check_determinism=True, progress=None):
    """Sweep ``workloads x scenarios x seeds``; returns a CampaignReport.

    Failing cases are written as reproducers under *out_dir* when given.
    *progress* is an optional callable taking each CaseResult as it
    lands (the CLI uses it for live output).
    """
    scenario_names = list(scenarios or SCENARIOS)
    report = CampaignReport(engine=engine,
                            num_host_threads=num_host_threads)
    clean_cache = {}
    for workload_name in workloads:
        for scenario in scenario_names:
            expect = SCENARIOS[scenario]
            if (expect not in ("grow", "isolate")
                    and workload_name not in clean_cache):
                clean_cache[workload_name] = _execute(
                    workload_name, engine, num_host_threads)
            for seed in range(seeds):
                try:
                    case, plan = run_case(
                        workload_name, scenario, seed, engine=engine,
                        num_host_threads=num_host_threads,
                        clean=clean_cache.get(workload_name),
                        check_determinism=check_determinism)
                except Exception as exc:  # invariant: nothing escapes raw
                    case = CaseResult(
                        workload_name, scenario, seed, False,
                        f"non-SimError escaped: {type(exc).__name__}: "
                        f"{exc}")
                    plan = None
                report.cases.append(case)
                if not case.ok and out_dir is not None:
                    write_reproducer(out_dir, case, plan, engine,
                                     num_host_threads)
                if progress is not None:
                    progress(case)
    return report
