"""Declarative, seeded fault plans.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries, each naming
one *injection site* and a deterministic trigger. Sites are keyed one of
two ways, chosen so a plan replays identically across runs and across
``num_host_threads`` settings:

- **key-keyed** sites fire on a deterministic identifier of the access —
  the GPU-VA page for ``mmu.page``, the flat workgroup id for
  ``core.hang``. Keys are stable whatever order parallel units reach
  them in.
- **occurrence-keyed** sites fire on the Nth visit to the site. These
  sites all sit on the single-threaded driver/submission path
  (descriptor reads, allocations, IRQ delivery), where visit order is
  deterministic by construction.

Plans serialize to/from plain dicts (the campaign's reproducer files use
the same ``format``/``name``/``expect`` envelope as the conformance
corpus, with the plan inline).
"""

from dataclasses import dataclass, field

#: site name -> (keyed?, description)
SITES = {
    "mmu.page": (True, "MMU fault on first touch of an armed GPU-VA page "
                       "(key = VA page number)"),
    "core.hang": (True, "clause-budget stall of one workgroup; the "
                        "progress watchdog parks the job "
                        "(key = flat workgroup id)"),
    "descriptor.read": (False, "bit-flip in a job-descriptor read "
                               "(occurrence-keyed, driver path)"),
    "alloc.phys": (False, "physical allocation failure "
                          "(occurrence-keyed, driver path)"),
    "irq.lost": (False, "suppress a GPU JOB IRQ line assertion "
                        "(occurrence-keyed, IRQ delivery path)"),
    "irq.spurious": (False, "assert an IRQ line with no work behind it "
                            "(occurrence-keyed, submission path)"),
}


@dataclass
class FaultSpec:
    """One armed fault.

    Attributes:
        site: one of :data:`SITES`.
        key: deterministic trigger for key-keyed sites (VA page number,
            flat workgroup id); must be None for occurrence-keyed sites.
        occurrence: 1-based visit number a occurrence-keyed site starts
            firing at (ignored for key-keyed sites).
        count: times to fire before the spec disarms; None means
            persistent (fires on every match — the unrecoverable shape).
        params: site-specific parameters passed through to the hook
            (e.g. ``kind``/``access`` for ``mmu.page``, ``offset``/
            ``mask`` for ``descriptor.read``, ``stall_rounds`` for
            ``core.hang``).
        tenant: when set, the spec only fires while the injector's
            ``current_tenant`` matches — the cross-tenant adversarial
            campaigns arm an attacker's faults without ever perturbing a
            victim tenant's jobs. None (the default) fires regardless.
    """

    site: str
    key: int = None
    occurrence: int = 1
    count: int = 1
    params: dict = field(default_factory=dict)
    tenant: int = None

    def __post_init__(self):
        if self.site not in SITES:
            raise ValueError(
                f"unknown injection site {self.site!r}; "
                f"known: {sorted(SITES)}")
        keyed = SITES[self.site][0]
        if keyed and self.key is None:
            raise ValueError(f"site {self.site!r} requires a key")
        if not keyed and self.key is not None:
            raise ValueError(f"site {self.site!r} is occurrence-keyed")
        if self.count is not None and self.count < 1:
            raise ValueError("count must be >= 1 or None (persistent)")
        if self.occurrence < 1:
            raise ValueError("occurrence is 1-based")

    def to_dict(self):
        out = {"site": self.site}
        if self.key is not None:
            out["key"] = self.key
        if self.occurrence != 1:
            out["occurrence"] = self.occurrence
        out["count"] = self.count
        if self.params:
            out["params"] = dict(self.params)
        if self.tenant is not None:
            out["tenant"] = self.tenant
        return out

    @classmethod
    def from_dict(cls, data):
        return cls(site=data["site"], key=data.get("key"),
                   occurrence=data.get("occurrence", 1),
                   count=data.get("count", 1),
                   params=dict(data.get("params", {})),
                   tenant=data.get("tenant"))


class FaultPlan:
    """An ordered collection of :class:`FaultSpec` entries.

    Attributes:
        specs: the armed faults.
        name: human-readable label (campaign scenario name).
        seed: the campaign seed the plan was derived from, for
            reproducer files; purely informational here.
    """

    def __init__(self, specs, name="", seed=None):
        self.specs = list(specs)
        self.name = name
        self.seed = seed

    def __iter__(self):
        return iter(self.specs)

    def __len__(self):
        return len(self.specs)

    def to_dict(self):
        out = {"specs": [spec.to_dict() for spec in self.specs]}
        if self.name:
            out["name"] = self.name
        if self.seed is not None:
            out["seed"] = self.seed
        return out

    @classmethod
    def from_dict(cls, data):
        return cls([FaultSpec.from_dict(item) for item in data["specs"]],
                   name=data.get("name", ""), seed=data.get("seed"))
