"""The fault injector: arms a :class:`~repro.inject.plan.FaultPlan` at
the simulator's registered injection sites.

The injector is consulted by the GPU MMU (``fire_page``/``page_armed``),
the job manager and shader cores (``fire`` with a key), and the driver
and platform IRQ routing (``fire`` occurrence-keyed). Every hook sits on
a cold path — TLB misses, descriptor parses, submission, IRQ assertion —
so an attached injector costs the execution hot path nothing, and a
detached one (the default) costs nothing anywhere.

Firing is thread-safe and deterministic: key-keyed specs consume on
their key (whichever parallel unit arrives first takes the one armed
fault; the end state is identical), occurrence-keyed specs count visits
on single-threaded paths.
"""

import threading

from repro.inject.plan import SITES, FaultPlan


class _Armed:
    """Mutable firing state for one spec."""

    __slots__ = ("spec", "remaining")

    def __init__(self, spec):
        self.spec = spec
        self.remaining = spec.count  # None = persistent

    @property
    def live(self):
        return self.remaining is None or self.remaining > 0

    def consume(self):
        if self.remaining is not None:
            self.remaining -= 1


class FaultInjector:
    """Arms a plan; fires specs at the registered sites.

    Args:
        plan: a :class:`FaultPlan` (or an iterable of specs).
        events: optional EventTracer; every firing emits a
            ``fault_injected`` instant on the ``inject`` track.
    """

    def __init__(self, plan, events=None):
        if not isinstance(plan, FaultPlan):
            plan = FaultPlan(plan)
        self.plan = plan
        self.events = events
        # tenant id of the work currently running (the driver sets this
        # around each dispatch and tenant allocation); specs with a
        # ``tenant`` field only fire while it matches
        self.current_tenant = None
        self._lock = threading.Lock()
        self._keyed = {}  # (site, key) -> [_Armed]
        self._occ = {}  # site -> [_Armed]
        self._visits = {site: 0 for site in SITES}
        self.fired = {site: 0 for site in SITES}
        self.log = []  # (site, key_or_visit) in firing order
        for spec in plan:
            if SITES[spec.site][0]:
                self._keyed.setdefault((spec.site, spec.key),
                                       []).append(_Armed(spec))
            else:
                self._occ.setdefault(spec.site, []).append(_Armed(spec))

    @property
    def total_fired(self):
        return sum(self.fired.values())

    def _eligible(self, armed):
        spec_tenant = armed.spec.tenant
        return spec_tenant is None or spec_tenant == self.current_tenant

    def _record(self, site, detail, params):
        self.fired[site] += 1
        self.log.append((site, detail))
        if self.events is not None:
            self.events.instant("fault_injected", "inject", site,
                                args={"at": detail, **params})

    # -- hook API (called by the instrumented components) ---------------------

    def fire(self, site, key=None):
        """Consult the injector at *site*; returns the spec's params dict
        when a fault should be injected here, else None.

        Key-keyed sites pass the deterministic key (flat workgroup id);
        occurrence-keyed sites pass nothing and are counted per visit.
        """
        with self._lock:
            if key is not None:
                return self._fire_keyed(site, key)
            self._visits[site] += 1
            visit = self._visits[site]
            for armed in self._occ.get(site, ()):
                if armed.live and visit >= armed.spec.occurrence \
                        and self._eligible(armed):
                    armed.consume()
                    self._record(site, visit, armed.spec.params)
                    return armed.spec.params
            return None

    def _fire_keyed(self, site, key):
        for armed in self._keyed.get((site, key), ()):
            if armed.live and self._eligible(armed):
                armed.consume()
                self._record(site, key, armed.spec.params)
                return armed.spec.params
        return None

    def fire_page(self, vpage):
        """MMU hook: consume an armed ``mmu.page`` fault for *vpage*."""
        with self._lock:
            return self._fire_keyed("mmu.page", vpage)

    def page_armed(self, vpage):
        """Non-consuming probe: is *vpage* armed for injection?

        The MMU's quad fast-path tiers use this to defer armed pages to
        the scalar replay without consuming the fault, so it fires
        exactly once, with reference semantics, in the scalar miss path.
        """
        for armed in self._keyed.get(("mmu.page", vpage), ()):
            if armed.live and self._eligible(armed):
                return True
        return False

    # -- stats ---------------------------------------------------------------

    def register_stats(self, scope):
        """Register per-site firing counters (all non-golden: they exist
        only when a plan is attached)."""
        for site in sorted(SITES):
            scope.probe(site.replace(".", "_"),
                        (lambda s=site: self.fired[s]),
                        desc=f"faults injected at {site}", golden=False)
        scope.probe("total", lambda: self.total_fired,
                    desc="total faults injected", golden=False)
