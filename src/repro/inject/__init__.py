"""Deterministic fault injection and recovery campaigns.

- :mod:`repro.inject.plan` — declarative, seeded fault plans
  (:class:`FaultSpec` / :class:`FaultPlan`) over the simulator's
  registered injection sites.
- :mod:`repro.inject.injector` — the :class:`FaultInjector` the
  platform components consult (``MobilePlatform.attach_injector``).
- :mod:`repro.inject.campaign` — seeded campaigns asserting the
  recovery invariants (bit-exact recovery, clean failure, usable-after,
  determinism), with corpus-style JSON reproducers.
"""

from repro.inject.injector import FaultInjector
from repro.inject.plan import SITES, FaultPlan, FaultSpec

__all__ = ["FaultInjector", "FaultPlan", "FaultSpec", "SITES"]
