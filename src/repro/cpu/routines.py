"""Guest routine library: assembly routines run on the simulated CPU.

The OpenCL runtime performs its bulk data movement by invoking these
routines, so CPU-side driver cost is actually *simulated* (instructions
fetched, decoded and executed on the guest CPU) rather than free host work.
This is what makes the Fig. 9 driver-runtime scaling measurable.

Calling convention: arguments in ``x1``-``x3``, results in ``x4``; routines
end with ``halt``.
"""

from repro.cpu.assembler import assemble
from repro.cpu.core import CPU, DBTCore, Interpreter

MEMCPY_ASM = """
# memcpy: x1=dst, x2=src, x3=len (bytes)
    li   x4, 8
loop8:
    bltu x3, x4, tail
    ld   x5, x2, 0
    sd   x5, x1, 0
    addi x1, x1, 8
    addi x2, x2, 8
    addi x3, x3, -8
    jal  x0, loop8
tail:
    beq  x3, x0, done
    lbu  x5, x2, 0
    sb   x5, x1, 0
    addi x1, x1, 1
    addi x2, x2, 1
    addi x3, x3, -1
    jal  x0, tail
done:
    halt
"""

MEMSET_ASM = """
# memset: x1=dst, x2=byte value, x3=len (bytes)
    beq  x3, x0, done
loop:
    sb   x2, x1, 0
    addi x1, x1, 1
    addi x3, x3, -1
    bne  x3, x0, loop
done:
    halt
"""

CHECKSUM_ASM = """
# checksum: x1=addr, x2=len (32-bit words) -> x4 = 32-bit additive checksum
    mov  x4, x0
    beq  x2, x0, done
loop:
    lw   x5, x1, 0
    add  x4, x4, x5
    addi x1, x1, 4
    addi x2, x2, -1
    bne  x2, x0, loop
done:
    ldi  x6, 0xffffffff
    and  x4, x4, x6
    halt
"""

_ROUTINES = {
    "memcpy": MEMCPY_ASM,
    "memset": MEMSET_ASM,
    "checksum": CHECKSUM_ASM,
}


class GuestRoutines:
    """Loads the routine library into guest memory and invokes routines.

    Args:
        bus: the system bus.
        code_base: physical address where routine code is placed.
        engine: ``"dbt"`` (block-translation cache, our simulator's mode) or
            ``"interpretive"`` (per-instruction re-decode, the baseline mode).
    """

    def __init__(self, bus, code_base=0x0010_0000, engine="dbt"):
        self.bus = bus
        self.cpu = CPU(bus)
        if engine == "dbt":
            self.engine = DBTCore(self.cpu)
        elif engine == "interpretive":
            self.engine = Interpreter(self.cpu)
        else:
            raise ValueError(f"unknown CPU engine {engine!r}")
        self._entries = {}
        address = code_base
        for name, source in _ROUTINES.items():
            image = assemble(source)
            bus.write_block(address, image)
            self._entries[name] = address
            address += len(image) + (-len(image)) % 64

    def call(self, name, x1=0, x2=0, x3=0, max_instructions=500_000_000):
        """Run routine *name*; returns the result register ``x4``."""
        cpu = self.cpu
        cpu.reset(pc=self._entries[name])
        cpu.regs[1] = x1
        cpu.regs[2] = x2
        cpu.regs[3] = x3
        self.engine.run(max_instructions=max_instructions)
        return cpu.regs[4]

    def memcpy(self, dst, src, length):
        """Guest-simulated memcpy of *length* bytes."""
        self.call("memcpy", dst, src, length)

    def memset(self, dst, value, length):
        self.call("memset", dst, value, length)

    def checksum(self, addr, words):
        return self.call("checksum", addr, words)

    @property
    def instructions_executed(self):
        return self.cpu.instructions_executed

    def register_stats(self, scope):
        """Register guest-CPU counters under *scope* (``cpu.core``).

        Instruction counts are architectural (engine-invariant); the DBT
        translation count is an engine diagnostic.
        """
        scope.probe("instructions", lambda: self.instructions_executed,
                    desc="guest instructions retired")
        translations = getattr(self.engine, "translations", None)
        if translations is not None:
            scope.probe("dbt_translations",
                        lambda: self.engine.translations,
                        desc="basic blocks translated by the DBT engine",
                        golden=False)
