"""Guest CPU simulation.

The paper simulates the Arm CPU with full-system dynamic binary translation
(DBT). We substitute a compact 64-bit RISC guest ISA (we cannot ship an
AArch64 Linux stack), with two execution engines over the same binaries:

- :class:`~repro.cpu.core.Interpreter` — decodes every instruction on every
  execution (how Multi2Sim-class simulators run CPU code);
- :class:`~repro.cpu.core.DBTCore` — translates basic blocks once into
  cached pre-decoded handler lists (the paper's JIT/DBT approach).

The OpenCL runtime routes bulk data movement (buffer writes/reads) through
guest routines executed on this CPU, so CPU-side driver cost scales with
input size exactly as in Fig. 9.
"""

from repro.cpu.isa import CpuOp
from repro.cpu.assembler import assemble
from repro.cpu.core import CPU, DBTCore, Interpreter
from repro.cpu.routines import GuestRoutines

__all__ = ["CpuOp", "assemble", "CPU", "DBTCore", "Interpreter", "GuestRoutines"]
