"""Guest CPU cores: interpretive and DBT execution engines.

Both engines run identical binaries against the system bus. The
:class:`Interpreter` re-fetches and re-decodes every instruction — the
execution model of interpretive CPU simulators (the paper's Multi2Sim
comparison point). The :class:`DBTCore` mimics dynamic binary translation:
basic blocks are decoded once into pre-decoded instruction tuples, cached by
entry address, and replayed without fetch/decode work — the mechanism behind
the paper's ">15x faster CPU-side software stack" result (Fig. 9).
"""

from repro.errors import GuestError
from repro.cpu.isa import (
    BLOCK_TERMINATORS,
    BRANCH_OPS,
    MASK64,
    NUM_REGS,
    REG_ZERO,
    CpuOp,
    TWO_WORD_OPS,
    decode,
    sign64,
)


class CPU:
    """Architectural state shared by both execution engines."""

    def __init__(self, bus):
        self.bus = bus
        self.regs = [0] * NUM_REGS
        self.pc = 0
        self.halted = False
        self.instructions_executed = 0
        self.ecall_pending = False

    def reset(self, pc=0):
        # mutate in place: translated DBT blocks close over this list
        self.regs[:] = [0] * NUM_REGS
        self.pc = pc
        self.halted = False
        self.ecall_pending = False

    # -- single-instruction semantics (shared by both engines) ----------------

    def execute_decoded(self, op, rd, rs1, rs2, imm, extra=0):
        """Execute one pre-decoded instruction; returns new PC."""
        regs = self.regs
        pc = self.pc
        next_pc = pc + (8 if op in TWO_WORD_OPS else 4)
        a = regs[rs1]
        b = regs[rs2]

        if op is CpuOp.ADD:
            value = (a + b) & MASK64
        elif op is CpuOp.SUB:
            value = (a - b) & MASK64
        elif op is CpuOp.AND:
            value = a & b
        elif op is CpuOp.OR:
            value = a | b
        elif op is CpuOp.XOR:
            value = a ^ b
        elif op is CpuOp.SLL:
            value = (a << (b & 63)) & MASK64
        elif op is CpuOp.SRL:
            value = a >> (b & 63)
        elif op is CpuOp.SRA:
            value = (sign64(a) >> (b & 63)) & MASK64
        elif op is CpuOp.MUL:
            value = (a * b) & MASK64
        elif op is CpuOp.DIVU:
            value = a // b if b else MASK64
        elif op is CpuOp.SLT:
            value = 1 if sign64(a) < sign64(b) else 0
        elif op is CpuOp.SLTU:
            value = 1 if a < b else 0
        elif op is CpuOp.ADDI:
            value = (a + imm) & MASK64
        elif op is CpuOp.ANDI:
            value = a & (imm & MASK64)
        elif op is CpuOp.ORI:
            value = a | (imm & 0xFFF)
        elif op is CpuOp.XORI:
            value = a ^ (imm & 0xFFF)
        elif op is CpuOp.SLLI:
            value = (a << (imm & 63)) & MASK64
        elif op is CpuOp.SRLI:
            value = a >> (imm & 63)
        elif op is CpuOp.SRAI:
            value = (sign64(a) >> (imm & 63)) & MASK64
        elif op is CpuOp.LDI:
            value = extra
        elif op is CpuOp.LDIH:
            value = regs[rd] | (extra << 32)
        elif op is CpuOp.LBU:
            value = self.bus.read_u8((a + imm) & MASK64)
        elif op is CpuOp.LW:
            value = self.bus.read_u32((a + imm) & MASK64)
        elif op is CpuOp.LD:
            value = self.bus.read_u64((a + imm) & MASK64)
        elif op is CpuOp.SB:
            self.bus.write_u8((a + imm) & MASK64, regs[rd] & 0xFF)
            self.pc = next_pc
            return next_pc
        elif op is CpuOp.SW:
            self.bus.write_u32((a + imm) & MASK64, regs[rd] & 0xFFFFFFFF)
            self.pc = next_pc
            return next_pc
        elif op is CpuOp.SD:
            self.bus.write_u64((a + imm) & MASK64, regs[rd])
            self.pc = next_pc
            return next_pc
        elif op is CpuOp.BEQ:
            self.pc = pc + imm * 4 if a == b else next_pc
            return self.pc
        elif op is CpuOp.BNE:
            self.pc = pc + imm * 4 if a != b else next_pc
            return self.pc
        elif op is CpuOp.BLT:
            self.pc = pc + imm * 4 if sign64(a) < sign64(b) else next_pc
            return self.pc
        elif op is CpuOp.BGE:
            self.pc = pc + imm * 4 if sign64(a) >= sign64(b) else next_pc
            return self.pc
        elif op is CpuOp.BLTU:
            self.pc = pc + imm * 4 if a < b else next_pc
            return self.pc
        elif op is CpuOp.BGEU:
            self.pc = pc + imm * 4 if a >= b else next_pc
            return self.pc
        elif op is CpuOp.JAL:
            if rd != REG_ZERO:
                regs[rd] = next_pc
            self.pc = pc + imm * 4
            return self.pc
        elif op is CpuOp.JALR:
            if rd != REG_ZERO:
                regs[rd] = next_pc
            self.pc = (a + imm) & MASK64 & ~3
            return self.pc
        elif op is CpuOp.HALT:
            self.halted = True
            self.pc = next_pc
            return next_pc
        elif op is CpuOp.ECALL:
            self.ecall_pending = True
            self.pc = next_pc
            return next_pc
        elif op is CpuOp.NOP:
            self.pc = next_pc
            return next_pc
        else:  # pragma: no cover - decode() already rejects unknown opcodes
            raise GuestError(f"unimplemented opcode {op!r}")

        if rd != REG_ZERO:
            regs[rd] = value
        self.pc = next_pc
        return next_pc


class Interpreter:
    """Fetch-decode-execute loop; decodes every instruction every time."""

    name = "interpretive"

    def __init__(self, cpu):
        self.cpu = cpu

    def run(self, max_instructions=100_000_000):
        cpu = self.cpu
        bus = cpu.bus
        executed = 0
        while not cpu.halted and not cpu.ecall_pending:
            word = bus.read_u32(cpu.pc)
            op, rd, rs1, rs2, imm = decode(word)
            extra = bus.read_u32(cpu.pc + 4) if op in TWO_WORD_OPS else 0
            cpu.execute_decoded(op, rd, rs1, rs2, imm, extra)
            executed += 1
            if executed > max_instructions:
                raise GuestError("instruction budget exceeded (guest stuck?)")
        cpu.instructions_executed += executed
        return executed


class DBTCore:
    """Dynamic-binary-translation engine.

    Basic blocks are translated once into lists of *specialized closures*:
    operand indices, immediates and even the instruction's own PC are baked
    in at translation time (the "early partial evaluation" of the paper's
    retargetable-simulator lineage), so replaying a hot block does no
    fetch, no decode and no operand dispatch.
    """

    name = "dbt"

    def __init__(self, cpu, max_block=64):
        self.cpu = cpu
        self.max_block = max_block
        self._blocks = {}
        self.translations = 0

    def invalidate(self):
        """Drop all translated blocks (e.g. after loading new guest code)."""
        self._blocks.clear()

    def _translate(self, entry_pc):
        """Translate the basic block at *entry_pc* into closures.

        Returns (closures, instruction_count). Every closure mutates the
        shared register list directly; only the final (terminator) closure
        touches ``cpu.pc``.
        """
        cpu = self.cpu
        bus = cpu.bus
        regs = cpu.regs
        closures = []
        position = entry_pc
        count = 0
        terminated = False
        for _ in range(self.max_block):
            word = bus.read_u32(position)
            op, rd, rs1, rs2, imm = decode(word)
            extra = 0
            pc_here = position
            if op in TWO_WORD_OPS:
                extra = bus.read_u32(position + 4)
                position += 8
            else:
                position += 4
            next_pc = position
            count += 1
            closures.append(
                self._compile(op, rd, rs1, rs2, imm, extra, pc_here, next_pc,
                              regs, bus, cpu)
            )
            if op in BLOCK_TERMINATORS:
                terminated = True
                break
        if not terminated:
            # block hit the size cap: continue at the fall-through address
            def continue_block(cpu=cpu, target=position):
                cpu.pc = target
            closures.append(continue_block)
        self.translations += 1
        return closures, count

    @staticmethod
    def _compile(op, rd, rs1, rs2, imm, extra, pc, next_pc, regs, bus, cpu):
        """Build one specialized closure. Falls back to the generic
        interpreter semantics for the long tail of rare opcodes."""
        if op is CpuOp.ADDI:
            if rd:
                def fn():
                    regs[rd] = (regs[rs1] + imm) & MASK64
            else:
                def fn():
                    pass
            return fn
        if op is CpuOp.ADD and rd:
            def fn():
                regs[rd] = (regs[rs1] + regs[rs2]) & MASK64
            return fn
        if op is CpuOp.SUB and rd:
            def fn():
                regs[rd] = (regs[rs1] - regs[rs2]) & MASK64
            return fn
        if op is CpuOp.AND and rd:
            def fn():
                regs[rd] = regs[rs1] & regs[rs2]
            return fn
        if op is CpuOp.LDI and rd:
            def fn():
                regs[rd] = extra
            return fn
        if op is CpuOp.LBU and rd:
            def fn():
                regs[rd] = bus.read_u8((regs[rs1] + imm) & MASK64)
            return fn
        if op is CpuOp.LW and rd:
            def fn():
                regs[rd] = bus.read_u32((regs[rs1] + imm) & MASK64)
            return fn
        if op is CpuOp.LD and rd:
            def fn():
                regs[rd] = bus.read_u64((regs[rs1] + imm) & MASK64)
            return fn
        if op is CpuOp.SB:
            def fn():
                bus.write_u8((regs[rs1] + imm) & MASK64, regs[rd] & 0xFF)
            return fn
        if op is CpuOp.SW:
            def fn():
                bus.write_u32((regs[rs1] + imm) & MASK64,
                              regs[rd] & 0xFFFFFFFF)
            return fn
        if op is CpuOp.SD:
            def fn():
                bus.write_u64((regs[rs1] + imm) & MASK64, regs[rd])
            return fn
        if op in BRANCH_OPS:
            taken = pc + imm * 4
            if op is CpuOp.BEQ:
                def fn():
                    cpu.pc = taken if regs[rs1] == regs[rs2] else next_pc
            elif op is CpuOp.BNE:
                def fn():
                    cpu.pc = taken if regs[rs1] != regs[rs2] else next_pc
            elif op is CpuOp.BLTU:
                def fn():
                    cpu.pc = taken if regs[rs1] < regs[rs2] else next_pc
            elif op is CpuOp.BGEU:
                def fn():
                    cpu.pc = taken if regs[rs1] >= regs[rs2] else next_pc
            elif op is CpuOp.BLT:
                def fn():
                    cpu.pc = (taken if sign64(regs[rs1]) < sign64(regs[rs2])
                              else next_pc)
            else:  # BGE
                def fn():
                    cpu.pc = (taken if sign64(regs[rs1]) >= sign64(regs[rs2])
                              else next_pc)
            return fn
        if op is CpuOp.JAL:
            target = pc + imm * 4

            def fn():
                if rd:
                    regs[rd] = next_pc
                cpu.pc = target
            return fn
        if op is CpuOp.JALR:
            def fn():
                if rd:
                    regs[rd] = next_pc
                cpu.pc = (regs[rs1] + imm) & MASK64 & ~3
            return fn
        if op is CpuOp.HALT:
            def fn():
                cpu.halted = True
                cpu.pc = next_pc
            return fn
        if op is CpuOp.ECALL:
            def fn():
                cpu.ecall_pending = True
                cpu.pc = next_pc
            return fn

        # generic fallback; pc must be synchronized around the call
        def fn():
            cpu.pc = pc
            cpu.execute_decoded(op, rd, rs1, rs2, imm, extra)
        return fn

    def run(self, max_instructions=100_000_000):
        cpu = self.cpu
        blocks = self._blocks
        executed = 0
        while not cpu.halted and not cpu.ecall_pending:
            entry = blocks.get(cpu.pc)
            if entry is None:
                entry = self._translate(cpu.pc)
                blocks[cpu.pc] = entry
            closures, count = entry
            for fn in closures:
                fn()
            executed += count
            if executed > max_instructions:
                raise GuestError("instruction budget exceeded (guest stuck?)")
        cpu.instructions_executed += executed
        return executed
