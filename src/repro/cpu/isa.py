"""Guest CPU instruction set.

A 64-bit RISC ISA with 16 general-purpose registers (``x0`` hardwired to
zero, ``x14`` = stack pointer alias ``sp``, ``x15`` = link register ``lr``).

Encoding: 32-bit words, ``op(8) | rd(4) | rs1(4) | rs2(4) | imm12(12)``
from the top bit downward:

- bits 31-24: opcode
- bits 23-20: rd
- bits 19-16: rs1
- bits 15-12: rs2
- bits 11-0: signed 12-bit immediate

:attr:`CpuOp.LDI` consumes a second 32-bit word holding an unsigned 32-bit
immediate; :attr:`CpuOp.LDIH` ORs its second word into bits 32-63 — together
they materialize any 64-bit constant.
"""

import enum

NUM_REGS = 16
REG_ZERO = 0
REG_SP = 14
REG_LR = 15

MASK64 = (1 << 64) - 1


class CpuOp(enum.IntEnum):
    HALT = 0x00
    NOP = 0x01

    # register-register ALU
    ADD = 0x10
    SUB = 0x11
    AND = 0x12
    OR = 0x13
    XOR = 0x14
    SLL = 0x15
    SRL = 0x16
    SRA = 0x17
    MUL = 0x18
    DIVU = 0x19
    SLT = 0x1A  # rd = (rs1 <s rs2)
    SLTU = 0x1B

    # register-immediate ALU
    ADDI = 0x20
    ANDI = 0x21
    ORI = 0x22
    XORI = 0x23
    SLLI = 0x24
    SRLI = 0x25
    SRAI = 0x26

    # wide immediates (two-word forms)
    LDI = 0x28  # rd = next_word (zero-extended)
    LDIH = 0x29  # rd |= next_word << 32

    # memory (address = rs1 + imm12)
    LBU = 0x30
    LW = 0x31  # 32-bit zero-extended
    LD = 0x32  # 64-bit
    SB = 0x34
    SW = 0x35
    SD = 0x36

    # control (branch targets are imm12 words relative to the branch)
    BEQ = 0x40
    BNE = 0x41
    BLT = 0x42
    BGE = 0x43
    BLTU = 0x44
    BGEU = 0x45
    JAL = 0x48  # rd = return address; pc += imm12 words
    JALR = 0x49  # rd = return address; pc = rs1 + imm12

    ECALL = 0x50  # simulator hypercall (a7-style code in x1)


TWO_WORD_OPS = frozenset({CpuOp.LDI, CpuOp.LDIH})

BRANCH_OPS = frozenset(
    {CpuOp.BEQ, CpuOp.BNE, CpuOp.BLT, CpuOp.BGE, CpuOp.BLTU, CpuOp.BGEU}
)

BLOCK_TERMINATORS = BRANCH_OPS | {CpuOp.JAL, CpuOp.JALR, CpuOp.HALT, CpuOp.ECALL}


def encode(op, rd=0, rs1=0, rs2=0, imm=0):
    """Encode one instruction word."""
    if not -2048 <= imm <= 4095:
        raise ValueError(f"immediate {imm} out of 12-bit range")
    return (
        ((int(op) & 0xFF) << 24)
        | ((rd & 0xF) << 20)
        | ((rs1 & 0xF) << 16)
        | ((rs2 & 0xF) << 12)
        | (imm & 0xFFF)
    )


def decode(word):
    """Decode one instruction word to (op, rd, rs1, rs2, imm_signed)."""
    op = CpuOp((word >> 24) & 0xFF)
    rd = (word >> 20) & 0xF
    rs1 = (word >> 16) & 0xF
    rs2 = (word >> 12) & 0xF
    imm = word & 0xFFF
    if imm & 0x800:
        imm -= 0x1000
    return op, rd, rs1, rs2, imm


def sign64(value):
    """Interpret a 64-bit pattern as signed."""
    value &= MASK64
    return value - (1 << 64) if value >> 63 else value
