"""Essential platform devices.

"Such an approach also requires additional components to be emulated
including an MMU, interrupt controller, timer devices, storage and network
devices." (Section III). We model the subset the compute stack needs: a
UART for console output, a timer, an interrupt controller the driver polls,
and a simple block device backed by a RAM image.
"""

from repro.errors import BusError
from repro.mem.bus import MMIODevice

# UART registers
UART_DATA = 0x0  # WO: transmit byte
UART_STATUS = 0x4  # RO: always ready (bit 0)

# Timer registers
TIMER_COUNT_LO = 0x0
TIMER_COUNT_HI = 0x4

# Interrupt controller registers
IRQC_PENDING = 0x0  # RO: pending source bitmask
IRQC_ACK = 0x4  # WO: clear sources

# Network device registers
NET_TX_DATA = 0x0  # WO: enqueue a byte of the outgoing frame
NET_TX_SEND = 0x4  # WO: transmit the queued frame
NET_RX_STATUS = 0x8  # RO: bytes available in the receive queue
NET_RX_DATA = 0xC  # RO: dequeue one byte

# Block device registers
BLK_SECTOR = 0x0  # RW: target sector
BLK_ADDR_LO = 0x4  # RW: memory buffer address
BLK_ADDR_HI = 0x8
BLK_CMD = 0xC  # WO: 1 = read sector, 2 = write sector
BLK_STATUS = 0x10  # RO: 1 = ok

SECTOR_SIZE = 512


class UART(MMIODevice):
    """Console output device; captures transmitted bytes."""

    def __init__(self):
        self.output = bytearray()

    def read_reg(self, offset):
        if offset == UART_STATUS:
            return 1
        if offset == UART_DATA:
            return 0
        raise BusError(f"bad UART register 0x{offset:x}")

    def write_reg(self, offset, value):
        if offset == UART_DATA:
            self.output.append(value & 0xFF)
        else:
            raise BusError(f"bad UART register 0x{offset:x}")

    @property
    def text(self):
        return self.output.decode("latin-1")


class Timer(MMIODevice):
    """Monotonic counter; advanced by the platform per simulated event."""

    def __init__(self):
        self.count = 0

    def tick(self, amount=1):
        self.count += amount

    def read_reg(self, offset):
        if offset == TIMER_COUNT_LO:
            return self.count & 0xFFFFFFFF
        if offset == TIMER_COUNT_HI:
            return (self.count >> 32) & 0xFFFFFFFF
        raise BusError(f"bad timer register 0x{offset:x}")

    def write_reg(self, offset, value):
        raise BusError("timer registers are read-only")


class InterruptController(MMIODevice):
    """Latches device interrupt lines; the driver polls and acknowledges."""

    # interrupt source bits
    SRC_GPU_JOB = 1 << 0
    SRC_GPU_MMU = 1 << 1
    SRC_TIMER = 1 << 2
    SRC_BLOCK = 1 << 3

    def __init__(self):
        self.pending = 0
        self.assertions = 0

    def raise_irq(self, source):
        self.pending |= source
        self.assertions += 1

    def read_reg(self, offset):
        if offset == IRQC_PENDING:
            return self.pending
        raise BusError(f"bad IRQC register 0x{offset:x}")

    def write_reg(self, offset, value):
        if offset == IRQC_ACK:
            self.pending &= ~value
        else:
            raise BusError(f"bad IRQC register 0x{offset:x}")


class NetworkDevice(MMIODevice):
    """A loopback network interface.

    Frames written through the TX registers are delivered to the receive
    queue (loopback), or to a host-side callback when one is installed —
    enough to exercise a guest network driver path without a real NIC.
    """

    def __init__(self, on_transmit=None):
        self._tx_queue = bytearray()
        self._rx_queue = bytearray()
        self.frames_sent = 0
        self.on_transmit = on_transmit

    def inject_frame(self, data):
        """Host-side: make *data* available to the guest receive path."""
        self._rx_queue.extend(data)

    def read_reg(self, offset):
        if offset == NET_RX_STATUS:
            return len(self._rx_queue)
        if offset == NET_RX_DATA:
            if not self._rx_queue:
                return 0
            return self._rx_queue.pop(0)
        raise BusError(f"bad network register 0x{offset:x}")

    def write_reg(self, offset, value):
        if offset == NET_TX_DATA:
            self._tx_queue.append(value & 0xFF)
        elif offset == NET_TX_SEND:
            frame = bytes(self._tx_queue)
            self._tx_queue.clear()
            self.frames_sent += 1
            if self.on_transmit is not None:
                self.on_transmit(frame)
            else:
                self._rx_queue.extend(frame)  # loopback
        else:
            raise BusError(f"bad network register 0x{offset:x}")


class BlockDevice(MMIODevice):
    """Sector-addressed storage backed by a host-side RAM image."""

    def __init__(self, memory, capacity_sectors=2048):
        self._memory = memory
        self._image = bytearray(capacity_sectors * SECTOR_SIZE)
        self.capacity_sectors = capacity_sectors
        self._sector = 0
        self._addr_lo = 0
        self._addr_hi = 0
        self._status = 1

    def load_image(self, data, sector=0):
        """Pre-populate the disk image (e.g. a guest file system)."""
        offset = sector * SECTOR_SIZE
        self._image[offset:offset + len(data)] = data

    def read_image(self, sector, count=1):
        offset = sector * SECTOR_SIZE
        return bytes(self._image[offset:offset + count * SECTOR_SIZE])

    def read_reg(self, offset):
        if offset == BLK_SECTOR:
            return self._sector
        if offset == BLK_ADDR_LO:
            return self._addr_lo
        if offset == BLK_ADDR_HI:
            return self._addr_hi
        if offset == BLK_STATUS:
            return self._status
        raise BusError(f"bad block-device register 0x{offset:x}")

    def write_reg(self, offset, value):
        if offset == BLK_SECTOR:
            self._sector = value
        elif offset == BLK_ADDR_LO:
            self._addr_lo = value
        elif offset == BLK_ADDR_HI:
            self._addr_hi = value
        elif offset == BLK_CMD:
            self._execute(value)
        else:
            raise BusError(f"bad block-device register 0x{offset:x}")

    def _execute(self, command):
        if self._sector >= self.capacity_sectors:
            self._status = 0
            return
        buffer_addr = self._addr_lo | (self._addr_hi << 32)
        image_off = self._sector * SECTOR_SIZE
        if command == 1:  # read sector into memory
            self._memory.write_block(buffer_addr, self._image[image_off:image_off + SECTOR_SIZE])
            self._status = 1
        elif command == 2:  # write sector from memory
            self._image[image_off:image_off + SECTOR_SIZE] = self._memory.read_block(
                buffer_addr, SECTOR_SIZE
            )
            self._status = 1
        else:
            self._status = 0
