"""Two-pass assembler for the guest CPU ISA.

Syntax (one instruction or directive per line; ``#`` starts a comment)::

    label:
        ldi   x1, 0xdeadbeef      # 32-bit immediate (two words)
        li    x2, 0x123456789abc  # pseudo: expands to ldi/ldih as needed
        addi  x2, x2, -8
        lw    x3, x2, 4           # x3 = *(u32*)(x2 + 4)
        sw    x3, x2, 0
        beq   x3, x0, done
        jal   lr, subroutine
        jr    x15                 # pseudo: jalr x0, x15, 0
        mov   x4, x3              # pseudo: addi x4, x3, 0
    done:
        halt

Register names: ``x0``-``x15``, with aliases ``zero`` (x0), ``sp`` (x14),
``lr`` (x15). Branch/JAL targets may be labels (word-relative offsets are
computed) or literal integers.
"""

import struct

from repro.errors import GuestError
from repro.cpu.isa import CpuOp, REG_LR, REG_SP, REG_ZERO, TWO_WORD_OPS, encode

_REG_ALIASES = {"zero": REG_ZERO, "sp": REG_SP, "lr": REG_LR}

_THREE_REG = {
    "add": CpuOp.ADD, "sub": CpuOp.SUB, "and": CpuOp.AND, "or": CpuOp.OR,
    "xor": CpuOp.XOR, "sll": CpuOp.SLL, "srl": CpuOp.SRL, "sra": CpuOp.SRA,
    "mul": CpuOp.MUL, "divu": CpuOp.DIVU, "slt": CpuOp.SLT, "sltu": CpuOp.SLTU,
}

_TWO_REG_IMM = {
    "addi": CpuOp.ADDI, "andi": CpuOp.ANDI, "ori": CpuOp.ORI, "xori": CpuOp.XORI,
    "slli": CpuOp.SLLI, "srli": CpuOp.SRLI, "srai": CpuOp.SRAI,
    "lbu": CpuOp.LBU, "lw": CpuOp.LW, "ld": CpuOp.LD,
    "sb": CpuOp.SB, "sw": CpuOp.SW, "sd": CpuOp.SD,
    "jalr": CpuOp.JALR,
}

_BRANCHES = {
    "beq": CpuOp.BEQ, "bne": CpuOp.BNE, "blt": CpuOp.BLT,
    "bge": CpuOp.BGE, "bltu": CpuOp.BLTU, "bgeu": CpuOp.BGEU,
}


def _parse_reg(token):
    token = token.strip().rstrip(",").lower()
    if token in _REG_ALIASES:
        return _REG_ALIASES[token]
    if token.startswith("x"):
        try:
            index = int(token[1:])
        except ValueError:
            raise GuestError(f"bad register {token!r}") from None
        if 0 <= index < 16:
            return index
    raise GuestError(f"bad register {token!r}")


def _parse_int(token):
    token = token.strip().rstrip(",")
    try:
        return int(token, 0)
    except ValueError:
        raise GuestError(f"bad integer {token!r}") from None


def _tokenize(line):
    code = line.split("#", 1)[0].strip()
    if not code:
        return None, None
    label = None
    if ":" in code:
        label, code = code.split(":", 1)
        label = label.strip()
        code = code.strip()
    if not code:
        return label, None
    parts = code.replace(",", " ").split()
    return label, parts


def assemble(source):
    """Assemble *source* text into a ``bytes`` machine-code image."""
    # pass 1: measure sizes, collect labels
    labels = {}
    parsed = []
    word_offset = 0
    for line_no, line in enumerate(source.splitlines(), start=1):
        label, parts = _tokenize(line)
        if label is not None:
            if label in labels:
                raise GuestError(f"duplicate label {label!r} (line {line_no})")
            labels[label] = word_offset
        if parts is None:
            continue
        mnemonic = parts[0].lower()
        size = _instruction_words(mnemonic, parts, line_no)
        parsed.append((word_offset, mnemonic, parts, line_no))
        word_offset += size

    # pass 2: emit
    words = []
    for offset, mnemonic, parts, line_no in parsed:
        words.extend(_emit(offset, mnemonic, parts, labels, line_no))
    return struct.pack(f"<{len(words)}I", *words)


def _instruction_words(mnemonic, parts, line_no):
    if mnemonic in ("ldi", "ldih"):
        return 2
    if mnemonic == "li":
        value = _parse_int(parts[2]) & ((1 << 64) - 1)
        return 2 if value < (1 << 32) else 4
    if mnemonic in _THREE_REG or mnemonic in _TWO_REG_IMM or mnemonic in _BRANCHES:
        return 1
    if mnemonic in ("jal", "jr", "mov", "halt", "nop", "ecall"):
        return 1
    raise GuestError(f"unknown mnemonic {mnemonic!r} (line {line_no})")


def _resolve_target(token, labels, current_word, line_no):
    token = token.strip().rstrip(",")
    if token in labels:
        return labels[token] - current_word
    try:
        return int(token, 0)
    except ValueError:
        raise GuestError(f"unknown label {token!r} (line {line_no})") from None


def _emit(offset, mnemonic, parts, labels, line_no):
    try:
        if mnemonic in _THREE_REG:
            rd, rs1, rs2 = (_parse_reg(p) for p in parts[1:4])
            return [encode(_THREE_REG[mnemonic], rd, rs1, rs2)]
        if mnemonic in _TWO_REG_IMM:
            rd = _parse_reg(parts[1])
            rs1 = _parse_reg(parts[2])
            imm = _parse_int(parts[3]) if len(parts) > 3 else 0
            return [encode(_TWO_REG_IMM[mnemonic], rd, rs1, 0, imm)]
        if mnemonic in _BRANCHES:
            rs1 = _parse_reg(parts[1])
            rs2 = _parse_reg(parts[2])
            delta = _resolve_target(parts[3], labels, offset, line_no)
            return [encode(_BRANCHES[mnemonic], 0, rs1, rs2, delta)]
        if mnemonic == "jal":
            rd = _parse_reg(parts[1])
            delta = _resolve_target(parts[2], labels, offset, line_no)
            return [encode(CpuOp.JAL, rd, 0, 0, delta)]
        if mnemonic == "jr":
            rs1 = _parse_reg(parts[1])
            return [encode(CpuOp.JALR, 0, rs1, 0, 0)]
        if mnemonic == "mov":
            rd = _parse_reg(parts[1])
            rs1 = _parse_reg(parts[2])
            return [encode(CpuOp.ADDI, rd, rs1, 0, 0)]
        if mnemonic == "ldi":
            rd = _parse_reg(parts[1])
            value = _parse_int(parts[2])
            return [encode(CpuOp.LDI, rd), value & 0xFFFFFFFF]
        if mnemonic == "ldih":
            rd = _parse_reg(parts[1])
            value = _parse_int(parts[2])
            return [encode(CpuOp.LDIH, rd), value & 0xFFFFFFFF]
        if mnemonic == "li":
            rd = _parse_reg(parts[1])
            value = _parse_int(parts[2]) & ((1 << 64) - 1)
            words = [encode(CpuOp.LDI, rd), value & 0xFFFFFFFF]
            if value >= (1 << 32):
                words += [encode(CpuOp.LDIH, rd), (value >> 32) & 0xFFFFFFFF]
            return words
        if mnemonic == "halt":
            return [encode(CpuOp.HALT)]
        if mnemonic == "nop":
            return [encode(CpuOp.NOP)]
        if mnemonic == "ecall":
            return [encode(CpuOp.ECALL)]
    except IndexError:
        raise GuestError(f"missing operand (line {line_no})") from None
    raise GuestError(f"unknown mnemonic {mnemonic!r} (line {line_no})")
