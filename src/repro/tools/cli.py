"""The ``repro-sim`` command-line interface.

Subcommands:

- ``compile FILE``  — compile a kernel file; print per-kernel code metrics
  (optionally for every compiler version with ``--all-versions``).
- ``disasm FILE``   — clause-level disassembly of a compiled kernel.
- ``run FILE``      — run a kernel on the full simulated platform with
  auto-generated buffers; print instrumentation.
- ``workloads``     — list the built-in Table-II workloads.
- ``bench NAME``    — run one built-in workload; print stats + cycle
  estimate.
- ``conformance``   — coverage-guided differential fuzzing campaign across
  the execution engines (or ``--replay DIR`` of a reproducer corpus).
- ``stats FILE``    — run a kernel and dump the unified cross-layer
  StatsRegistry (text or JSON).
- ``trace FILE``    — run a kernel with the event tracer attached; write
  Chrome-trace/Perfetto JSON (load it in chrome://tracing or
  https://ui.perfetto.dev).
- ``overhead``      — self-measure instrumentation overhead on a built-in
  workload against the paper's <5% budget.
- ``faultcampaign`` — seeded fault-injection sweep asserting the
  kbase-faithful recovery invariants (bit-exact recovery, clean failure,
  usable-after, determinism); failing cases become JSON reproducers
  (``--replay DIR`` re-runs them).
- ``lint FILE``     — run the static binary verifier over compiled
  kernels; findings are inlined into the clause disassembly
  (``--builtin`` sweeps every shipped workload + SLAM kernel,
  ``--json`` emits the stable ``repro-lint-report/1`` document).
- ``analyze FILE``  — static cost & resource analysis: loop trip
  bounds, per-clause issue costs, access-pattern classes and sound
  per-launch upper bounds on clause issues and pages touched
  (``--json`` emits ``repro-analyze-report/1``; ``--soundness`` runs
  the differential dominance sweep holding the bounds against observed
  golden counters and writes ``analysis_report.json`` with ``--out``).
- ``farm``          — the config-driven simulation farm: ``farm run
  CONFIG`` executes a declarative mixed sweep (conformance + faults +
  lint + bench) on a multiprocess worker pool with a deterministic
  aggregate report; ``farm resume DIR`` finishes an interrupted
  campaign from its digest-verified journal (the final ``report.json``
  is byte-identical to an uninterrupted run); ``farm plan`` prints the
  case/shard expansion; ``farm example`` prints a copy-pasteable
  config.

The campaign verbs (``conformance``, ``faultcampaign``, ``lint``,
``analyze``, ``farm``) exit non-zero on any failing case (2 on usage
errors) and end their output with a stable machine-parsable summary
line::

    RESULT <verb> status=<ok|fail> key=value ...

so wrapping automation (CI, the farm itself) never has to scrape
human-oriented output.
"""

import argparse
import os
import sys

import numpy as np


def _result_line(verb, ok, **fields):
    """The one-line machine-parsable campaign summary (stable format:
    ``RESULT <verb> status=<ok|fail> k=v ...``, space-separated, values
    free of spaces)."""
    parts = [f"RESULT {verb}", f"status={'ok' if ok else 'fail'}"]
    parts.extend(f"{key}={value}" for key, value in fields.items())
    print(" ".join(parts))


def _ensure_outdir(path, verb):
    """Create an output directory (parents included) before a verb
    starts computing. Returns an error message (the verb prints it and
    exits 2) instead of raising, so an unwritable ``--out`` fails fast
    and clean rather than mid-campaign with a traceback."""
    try:
        os.makedirs(path, exist_ok=True)
    except OSError as exc:
        return f"{verb}: cannot create output directory {path!r}: {exc}"
    if not os.access(path, os.W_OK | os.X_OK):
        return f"{verb}: output directory {path!r} is not writable"
    return None


def _add_compile_args(parser):
    parser.add_argument("file", help="kernel-language source file")
    parser.add_argument("--version", default=None,
                        help="compiler version preset (5.6 .. 6.2)")
    parser.add_argument("-D", "--define", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="preprocessor define (repeatable)")


def _add_launch_args(parser):
    parser.add_argument("--kernel", default=None)
    parser.add_argument("--global-size", type=int, nargs="+", default=[64],
                        dest="global_size")
    parser.add_argument("--local-size", type=int, nargs="+", default=None,
                        dest="local_size")
    parser.add_argument("--elements", type=int, default=64,
                        help="elements per auto-generated buffer")
    parser.add_argument("--local", type=int, default=64,
                        help="words per LocalMemory argument")
    parser.add_argument("--arg", action="append", default=[],
                        metavar="NAME=VALUE", help="scalar argument value")
    parser.add_argument("--seed", type=int, default=0)


def _defines(options):
    defines = {}
    for item in options.define:
        name, _, value = item.partition("=")
        defines[name] = value or "1"
    return defines


def _cmd_compile(options):
    from repro.clc import COMPILER_VERSIONS, compile_source

    with open(options.file) as handle:
        source = handle.read()
    versions = (sorted(COMPILER_VERSIONS) if options.all_versions
                else [options.version])
    print(f"{'kernel':20s} {'version':8s} {'clauses':>8s} {'slots':>6s} "
          f"{'nops':>5s} {'regs':>5s} {'scratch':>8s} {'bytes':>6s}")
    for version in versions:
        program = compile_source(source, options=version,
                                 defines=_defines(options))
        for name in sorted(program.kernels):
            kernel = program.kernels[name]
            metrics = kernel.static_metrics()
            print(f"{name:20s} {version or 'default':8s} "
                  f"{metrics['clauses']:8d} {metrics['slots']:6d} "
                  f"{metrics['nops']:5d} {metrics['registers']:5d} "
                  f"{kernel.scratch_per_thread:8d} "
                  f"{metrics['binary_bytes']:6d}")
    return 0


def _cmd_disasm(options):
    from repro.clc import compile_source
    from repro.gpu.disasm import disassemble

    with open(options.file) as handle:
        source = handle.read()
    program = compile_source(source, options=options.version,
                             defines=_defines(options))
    for name in sorted(program.kernels):
        if options.kernel and name != options.kernel:
            continue
        compiled = program.kernels[name]
        annotations = None
        if options.cost:
            from repro.gpu.verify import VerifyContext, verify_program
            from repro.gpu.verify.analyze import (
                ANALYZE_PASSES,
                cost_annotations,
            )

            ctx = VerifyContext.from_compiled_kernel(compiled)
            report = verify_program(compiled.program, ctx,
                                    passes=ANALYZE_PASSES)
            summary = report.facts.get("cost")
            if summary is not None:
                annotations = cost_annotations(summary, ctx)
        print(f"; kernel {name}")
        print(disassemble(compiled.program, annotations=annotations))
        print()
    return 0


def _prepare_launch(options, context):
    """Shared kernel-launch setup (compile, auto-generate buffers, bind
    args) for the run/stats/trace verbs. Returns (queue, kernel, buffers,
    global_size, local_size)."""
    from repro.cl import CommandQueue, LocalMemory

    with open(options.file) as handle:
        source = handle.read()
    queue = CommandQueue(context)
    program = context.build_program(source, version=options.version,
                                    defines=_defines(options))
    name = options.kernel or program.kernel_names[0]
    kernel = program.kernel(name)

    rng = np.random.default_rng(options.seed)
    scalar_values = {}
    for item in options.arg:
        arg_name, _, value = item.partition("=")
        scalar_values[arg_name] = value
    buffers = []
    for position, (param_name, kind, ty) in enumerate(kernel.compiled.params):
        if kind == "buffer":
            if ty.pointee.is_float:
                array = rng.random(options.elements, dtype=np.float32)
            else:
                array = rng.integers(0, 100, options.elements) \
                    .astype(np.int32)
            buffer = context.buffer_from_array(array)
            buffers.append((param_name, buffer, array.dtype))
            kernel.set_arg(position, buffer)
        elif kind == "local_ptr":
            kernel.set_arg(position, LocalMemory(4 * options.local))
        else:
            raw = scalar_values.get(param_name, options.elements)
            value = float(raw) if ty.is_float else int(raw)
            kernel.set_arg(position, value)

    global_size = tuple(options.global_size)
    local_size = tuple(options.local_size) if options.local_size else None
    return queue, kernel, buffers, global_size, local_size


def _cmd_run(options):
    from repro.cl import Context

    context = Context()
    queue, kernel, buffers, global_size, local_size = \
        _prepare_launch(options, context)
    name = kernel.name
    stats = queue.enqueue_nd_range(kernel, global_size, local_size)
    print(f"ran {name}: {stats.threads_launched} threads, "
          f"{stats.workgroups} workgroups")
    mix = stats.instruction_mix()
    print("instruction mix: "
          + ", ".join(f"{k}={100 * v:.1f}%" for k, v in mix.items()))
    print(f"clauses executed: {stats.clauses_executed} "
          f"(avg size {stats.average_clause_size():.2f})")
    print(f"divergent branches: {stats.divergent_branches}")
    system = context.platform.system_stats()
    print(f"system: pages={system.pages_accessed} "
          f"regR={system.ctrl_reg_reads} regW={system.ctrl_reg_writes} "
          f"irqs={system.interrupts_asserted}")
    for param_name, buffer, dtype in buffers[: options.show_buffers]:
        data = queue.enqueue_read_buffer(buffer, dtype,
                                         count=min(8, options.elements))
        print(f"{param_name}[:8] = {data}")
    return 0


def _cmd_workloads(_options):
    from repro.kernels import WORKLOADS

    print(f"{'name':18s} {'suite':14s} {'paper input':28s} defaults")
    for name in sorted(WORKLOADS):
        cls = WORKLOADS[name]
        defaults = ", ".join(f"{k}={v}" for k, v in
                             sorted(cls.default_params().items()))
        print(f"{name:18s} {cls.suite:14s} {cls.paper_input:28s} {defaults}")
    return 0


def _cmd_bench(options):
    from repro.instrument.timing import CycleModel
    from repro.kernels import get_workload

    params = {}
    for item in options.param:
        name, _, value = item.partition("=")
        params[name] = int(value)
    workload = get_workload(options.name, **params)
    result = workload.run()
    stats = result.stats
    print(f"{options.name}: verified={result.verified} jobs={result.jobs} "
          f"wall={result.total_seconds:.3f}s "
          f"(cpu-side {result.cpu_seconds:.3f}s)")
    mix = stats.instruction_mix()
    print("instruction mix: "
          + ", ".join(f"{k}={100 * v:.1f}%" for k, v in mix.items()))
    breakdown = stats.data_access_breakdown()
    print("data accesses:   "
          + ", ".join(f"{k}={100 * v:.1f}%" for k, v in breakdown.items()))
    estimate = CycleModel().estimate(stats, jobs=result.jobs)
    print(f"cycle estimate: {estimate['total_cycles']:.0f} cycles "
          f"({estimate['bound_by']}-bound, "
          f"occupancy {100 * estimate['occupancy']:.0f}%)")
    return 0 if result.verified else 1


def _cmd_stats(options):
    from repro.cl import Context
    from repro.instrument.registry import format_registry

    context = Context()
    queue, kernel, _buffers, global_size, local_size = \
        _prepare_launch(options, context)
    queue.enqueue_nd_range(kernel, global_size, local_size)
    registry = context.platform.stats_registry
    if options.json:
        print(registry.to_json(golden_only=options.golden_only))
    else:
        print(format_registry(registry, golden_only=options.golden_only))
    return 0


def _cmd_trace(options):
    import json

    from repro.cl import Context
    from repro.instrument.tracing import EventTracer, validate_trace

    parent = os.path.dirname(os.path.abspath(options.output))
    error = _ensure_outdir(parent, "trace")
    if error:
        print(error)
        return 2

    context = Context()
    tracer = EventTracer(ring_size=options.limit,
                         sample_every=options.sample)
    context.platform.attach_events(tracer)
    queue, kernel, _buffers, global_size, local_size = \
        _prepare_launch(options, context)
    queue.enqueue_nd_range(kernel, global_size, local_size)
    trace = tracer.to_chrome_trace()
    from repro.checkpoint.format import atomic_write_bytes

    try:
        atomic_write_bytes(
            options.output,
            json.dumps(trace, indent=1).encode("utf-8"))
    except OSError as exc:
        print(f"trace: cannot write {options.output}: {exc}")
        return 2
    print(f"wrote {len(trace['traceEvents'])} events to {options.output} "
          f"(open in chrome://tracing or https://ui.perfetto.dev)")
    if options.validate:
        # a ring buffer may have evicted opening B events
        problems = validate_trace(trace,
                                  check_balance=options.limit is None)
        for problem in problems:
            print(f"invalid: {problem}")
        if problems:
            return 1
        print("trace validates against the schema")
    return 0


def _cmd_overhead(options):
    from repro.core.platform import MobilePlatform, PlatformConfig
    from repro.cl import Context
    from repro.gpu.device import GPUConfig
    from repro.instrument.overhead import measure_overhead
    from repro.kernels import get_workload

    def run(instrument):
        config = PlatformConfig(gpu=GPUConfig(instrument=instrument))
        context = Context(MobilePlatform(config))
        workload = get_workload(options.workload)
        workload.run(context=context, verify=False)

    report = measure_overhead(run, workload=options.workload,
                              repeats=options.repeats,
                              budget=options.budget)
    if options.json:
        print(report.to_json())
    else:
        print("\n".join(report.lines()))
    return 0 if report.within_budget else 1


def _cmd_conformance(options):
    from repro.validate import ENGINES, replay_directory, run_conformance

    engines = tuple(options.engines.split("+")) if options.engines \
        else ENGINES
    if options.replay:
        outcomes, failed = replay_directory(options.replay, engines=engines)
        if not outcomes:
            print(f"conformance: no corpus entries under {options.replay}")
            return 2
        for path, name, mismatches in outcomes:
            status = "FAIL" if mismatches else "ok"
            print(f"{status:4s} {name} ({path})")
            for mismatch in mismatches:
                print(f"     {mismatch}")
        _result_line("conformance", not failed, mode="replay",
                     entries=len(outcomes), failures=len(failed))
        return 1 if failed else 0

    if options.write_corpus:
        error = _ensure_outdir(options.write_corpus, "conformance")
        if error:
            print(error)
            return 2

    def progress(done, budget, failures):
        if done % 50 == 0 or done == budget:
            print(f"  {done}/{budget} programs, {failures} mismatching",
                  flush=True)

    report = run_conformance(
        seed=options.seed, budget=options.budget, engines=engines,
        minimize=not options.no_minimize, corpus_out=options.write_corpus,
        progress=progress if options.budget >= 50 else None)
    print("\n".join(report.lines()))
    short = report.coverage.fraction < options.min_coverage
    if short:
        print(f"coverage {100 * report.coverage.fraction:.1f}% below "
              f"required {100 * options.min_coverage:.1f}%")
    ok = report.ok and not short
    _result_line("conformance", ok, mode="fuzz", seed=options.seed,
                 programs=report.cases_run, failures=len(report.failures),
                 coverage=f"{report.coverage.fraction:.4f}")
    return 0 if ok else 1


def _cmd_lint(options):
    from repro.gpu.verify import Severity
    from repro.gpu.verify.lint import (
        builtin_targets,
        format_unit,
        lint_source,
        lint_target,
    )

    min_severity = Severity.NOTE if options.notes else Severity.WARNING
    units = []

    if options.builtin:
        for target in builtin_targets():
            units.extend(lint_target(target, version=options.version,
                                     kernel=options.kernel))
    else:
        if not options.file:
            print("lint: need a FILE or --builtin")
            return 2
        try:
            with open(options.file) as handle:
                source = handle.read()
        except OSError as exc:
            print(f"lint: cannot read {options.file}: {exc}")
            return 2
        units = lint_source(options.file, source, defines=_defines(options),
                            version=options.version, kernel=options.kernel)

    if options.json:
        import json

        from repro.gpu.verify.lint import units_to_json

        document = units_to_json(units, min_severity=min_severity)
        print(json.dumps(document, indent=1))
        return 1 if document["totals"]["errors"] else 0

    total = {"kernels": 0, "errors": 0, "warnings": 0, "notes": 0}
    for unit in units:
        if unit.error:
            print(f"FAIL {unit.label}: {unit.summary()}")
            total["errors"] += 1
            continue
        total["kernels"] += 1
        for key in ("errors", "warnings", "notes"):
            total[key] += unit.counts[key]
        print(format_unit(unit, disasm=not options.no_disasm,
                          min_severity=min_severity))

    print(f"linted {total['kernels']} kernel(s): {total['errors']} "
          f"error(s), {total['warnings']} warning(s), "
          f"{total['notes']} note(s)")
    _result_line("lint", not total["errors"], kernels=total["kernels"],
                 errors=total["errors"], warnings=total["warnings"],
                 notes=total["notes"])
    return 1 if total["errors"] else 0


def _cmd_analyze(options):
    if options.soundness:
        return _analyze_soundness(options)

    from repro.gpu.verify.analyze import (
        analyze_source,
        analyze_target,
        builtin_targets,
        format_unit,
        units_to_json,
    )

    geometry = {}
    if options.global_size:
        def _dims3(sizes):
            return tuple((list(sizes) + [1, 1])[:3])

        local = options.local_size or [min(64, options.global_size[0])]
        geometry = {"global_size": _dims3(options.global_size),
                    "local_size": _dims3(local)}

    units = []
    if options.builtin:
        for target in builtin_targets():
            units.extend(analyze_target(target, version=options.version,
                                        kernel=options.kernel, **geometry))
    else:
        if not options.file:
            print("analyze: need a FILE, --builtin or --soundness")
            return 2
        try:
            with open(options.file) as handle:
                source = handle.read()
        except OSError as exc:
            print(f"analyze: cannot read {options.file}: {exc}")
            return 2
        units = analyze_source(options.file, source,
                               defines=_defines(options),
                               version=options.version,
                               kernel=options.kernel, **geometry)

    if options.json:
        import json

        document = units_to_json(units)
        print(json.dumps(document, indent=1))
        return 1 if document["totals"]["failed"] else 0

    for unit in units:
        print(format_unit(unit, disasm=options.disasm))
    failed = sum(1 for u in units if not u.ok)
    unbounded = sum(1 for u in units if u.ok and not u.bounded)
    print(f"analyzed {len(units) - failed} kernel(s): {failed} failed, "
          f"{unbounded} with unbounded loops")
    _result_line("analyze", not failed, kernels=len(units) - failed,
                 failed=failed, unbounded=unbounded)
    return 1 if failed else 0


def _analyze_soundness(options):
    """``analyze --soundness``: the differential dominance sweep.

    Every static bound must dominate the observed golden counters; any
    violation (or a failed output verification, which would make the
    comparison meaningless) fails the verb."""
    from repro.validate import soundness

    records = []
    verified = True
    if options.workloads != ["none"]:
        names = None if options.workloads == ["all"] else options.workloads
        workload_records, verified = soundness.workload_records(
            names=names, version=options.version)
        records.extend(workload_records)
    if not options.no_slam:
        records.extend(soundness.slam_records(version=options.version))
    records.extend(soundness.stress_records(options.seed))
    if options.progen:
        records.extend(soundness.progen_records(options.seed,
                                                options.progen))
    if options.corpus:
        records.extend(soundness.corpus_records(options.corpus))

    report = soundness.build_report(records)
    totals = report["totals"]
    for record in records:
        if not record["ok"]:
            print(f"VIOLATION {record['label']}: "
                  f"issues {record['observed_issues']} vs bound "
                  f"{record['bound_issues']}, pages "
                  f"{record['observed_pages']} vs bound "
                  f"{record['bound_pages']} {record['error']}")
    if options.out:
        soundness.write_report(options.out, report)
        print(f"report: {options.out}")
    tight = totals["median_tightness_issues"]
    print(f"soundness: {totals['records']} record(s), "
          f"{totals['violations']} violation(s), "
          f"{totals['unbounded_issues']} unbounded, median tightness "
          f"{'n/a' if tight is None else f'{tight:.3f}'}")
    ok = verified and not totals["violations"]
    _result_line("analyze", ok, mode="soundness",
                 records=totals["records"],
                 violations=totals["violations"],
                 unbounded=totals["unbounded_issues"],
                 verified=verified)
    return 0 if ok else 1


def _cmd_faultcampaign(options):
    from repro.inject.campaign import (
        SCENARIOS,
        replay_reproducer,
        run_campaign,
    )

    if options.replay:
        from pathlib import Path

        paths = sorted(Path(options.replay).glob("*.json"))
        if not paths:
            print(f"faultcampaign: no reproducers under {options.replay}")
            return 2
        failed = 0
        for path in paths:
            case = replay_reproducer(
                path, check_determinism=not options.no_determinism)
            status = "ok  " if case.ok else "FAIL"
            failed += not case.ok
            print(f"{status} {case.workload} {case.scenario} "
                  f"seed={case.seed} ({path})")
        print(f"replayed {len(paths)} reproducers, {failed} failing")
        _result_line("faultcampaign", not failed, mode="replay",
                     cases=len(paths), failures=failed)
        return 1 if failed else 0

    scenarios = options.scenarios.split(",") if options.scenarios else None
    if scenarios:
        unknown = set(scenarios) - set(SCENARIOS)
        if unknown:
            print(f"unknown scenarios: {sorted(unknown)}; "
                  f"known: {sorted(SCENARIOS)}")
            return 2

    if options.write_repros:
        error = _ensure_outdir(options.write_repros, "faultcampaign")
        if error:
            print(error)
            return 2

    def progress(case):
        mark = "ok  " if case.ok else "FAIL"
        print(f"  {mark} {case.workload} {case.scenario} seed={case.seed} "
              f"fired={case.fired} {case.detail}", flush=True)

    report = run_campaign(
        workloads=options.workloads, scenarios=scenarios,
        seeds=options.seeds, engine=options.engine,
        num_host_threads=options.threads, out_dir=options.write_repros,
        check_determinism=not options.no_determinism,
        progress=progress if options.verbose else None)
    print(report.summary())
    if report.failures and options.write_repros:
        print(f"wrote {len(report.failures)} reproducers to "
              f"{options.write_repros}")
    _result_line("faultcampaign", report.ok, mode="sweep",
                 engine=options.engine, cases=len(report.cases),
                 failures=len(report.failures))
    return 0 if report.ok else 1


def _cmd_tenants(options):
    from repro.tenancy.harness import (
        ADVERSARIAL_SCENARIOS,
        check_isolation,
        default_plans,
        fairness_report,
        run_adversarial,
        run_mixed,
        solo_baseline,
    )

    if options.adversarial:
        scenarios = (sorted(ADVERSARIAL_SCENARIOS)
                     if options.adversarial == "all"
                     else options.adversarial.split(","))
        unknown = set(scenarios) - set(ADVERSARIAL_SCENARIOS)
        if unknown:
            print(f"unknown scenarios: {sorted(unknown)}; "
                  f"known: {sorted(ADVERSARIAL_SCENARIOS)}")
            return 2
        failed = 0
        for scenario in scenarios:
            ok, detail, counters = run_adversarial(
                scenario, options.seed, engine_mode=options.engine,
                num_host_threads=options.threads,
                check_determinism=not options.no_determinism)
            failed += not ok
            mark = "ok  " if ok else "FAIL"
            print(f"{mark} {scenario} resets="
                  f"{counters['driver.resets']} "
                  f"retries={counters['driver.retries']} "
                  f"fired={counters.get('inject.total', 0)} {detail}")
        _result_line("tenants", not failed, mode="adversarial",
                     engine=options.engine, cases=len(scenarios),
                     failures=failed)
        return 1 if failed else 0

    if options.tenants < 2:
        print("tenants: need at least 2 tenants")
        return 2
    plans = default_plans(options.tenants, jobs=options.jobs)
    multi = run_mixed(plans, engine_mode=options.engine,
                      num_host_threads=options.threads, seed=options.seed)
    print(fairness_report(multi))
    bad = [record for record in multi.records.values()
           if record.errors or not record.verified]
    for record in bad:
        print(f"tenant{record.tenant_id} FAILED: "
              f"{'; '.join(record.errors) or 'verification'}")

    # solo-vs-multi golden invariance: every tenant the arbiter never
    # sliced must have run bit-identically to a solo session (preempted
    # tenants replay workgroups, so their translation counts legitimately
    # grow with contention — they are skipped, and reported as such)
    isolation_failures = 0
    checked = 0
    if not options.no_isolation:
        for tenant_id in sorted(multi.records):
            record = multi.records[tenant_id]
            if record.preemptions:
                print(f"isolation tenant{tenant_id}: skipped "
                      f"(preempted x{record.preemptions})")
                continue
            solo = solo_baseline(plans, tenant_id,
                                 engine_mode=options.engine,
                                 num_host_threads=options.threads,
                                 seed=options.seed)
            diffs = check_isolation(record, solo.records[tenant_id])
            checked += 1
            isolation_failures += bool(diffs)
            status = "ok" if not diffs else "FAIL " + "; ".join(diffs)
            print(f"isolation tenant{tenant_id}: solo-vs-multi golden "
                  f"stats {status}")

    ok = not bad and not isolation_failures
    _result_line("tenants", ok, mode="fairness", engine=options.engine,
                 tenants=len(multi.records),
                 dispatches=multi.driver.arbiter.dispatched,
                 preemptions=multi.driver.preemptions,
                 promotions=multi.driver.arbiter.promotions,
                 isolation_checked=checked,
                 failures=len(bad) + isolation_failures)
    return 0 if ok else 1


_FARM_EXAMPLE = """\
{
 "name": "example-sweep",
 "shard_size": 2,
 "timeout_s": 120,
 "max_attempts": 2,
 "sweeps": [
  {"kind": "conformance", "engines": ["interp", "fast"],
   "seeds": 2, "budget": 5},
  {"kind": "fault", "workloads": ["sgemm"],
   "scenarios": ["irq-lost", "mmu-transient"], "seeds": [0],
   "engines": ["interpreter"]},
  {"kind": "lint", "targets": ["builtin:sgemm", "slam"]},
  {"kind": "analyze", "targets": ["builtin:sgemm", "slam"]},
  {"kind": "bench", "engines": ["interpreter"],
   "workloads": [{"name": "nn", "params": {"records": 128}}]}
 ]
}"""


def _cmd_farm(options):
    from repro.errors import CheckpointError
    from repro.validate.farm import (
        FarmConfigError,
        FarmError,
        expand_cases,
        load_config,
        plan_shards,
        resume_farm,
        run_farm,
    )

    if options.farm_action == "example":
        print(_FARM_EXAMPLE)
        return 0

    try:
        if options.farm_action == "resume":
            error = _ensure_outdir(options.outdir, "farm")
            if error:
                print(error)
                return 2
            run = resume_farm(
                options.outdir, workers=options.workers,
                progress=print if options.verbose else None)
            config = load_config(run.report["config"])
        else:
            config = load_config(options.config)
            if options.farm_action == "plan":
                cases = expand_cases(config)
                shards = plan_shards([case["id"] for case in cases],
                                     config.shard_size)
                print(f"farm '{config.name}' "
                      f"(config {config.config_hash[:12]}): "
                      f"{len(cases)} cases in {len(shards)} shards")
                for shard in shards:
                    print(f"{shard.shard_id}:")
                    for case_id in shard.case_ids:
                        print(f"  {case_id}")
                return 0
            if options.out is not None:
                error = _ensure_outdir(options.out, "farm")
                if error:
                    print(error)
                    return 2
            run = run_farm(config, workers=options.workers,
                           outdir=options.out,
                           progress=print if options.verbose else None)
    except FarmConfigError as exc:
        print(f"farm: bad config: {exc}")
        return 2
    except CheckpointError as exc:
        print(f"farm: {exc}")
        return 2
    except FarmError as exc:
        print(f"farm: {exc}")
        return 2

    print(run.summary())
    if run.report_path:
        print(f"report: {run.report_path}")
    totals = run.report["totals"]
    _result_line("farm", run.ok, config=config.config_hash[:12],
                 cases=totals["cases"],
                 **{verdict: totals[verdict]
                    for verdict in ("pass", "fail", "error",
                                    "timeout", "crash")})
    return 0 if run.ok else 1


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Full-system mobile CPU/GPU simulator tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile and show metrics")
    _add_compile_args(p_compile)
    p_compile.add_argument("--all-versions", action="store_true",
                           help="compile with every version preset")
    p_compile.set_defaults(func=_cmd_compile)

    p_disasm = sub.add_parser("disasm", help="clause-level disassembly")
    _add_compile_args(p_disasm)
    p_disasm.add_argument("--kernel", default=None)
    p_disasm.add_argument("--cost", action="store_true",
                          help="inline per-clause cost/loop/access "
                               "annotations from the static analysis")
    p_disasm.set_defaults(func=_cmd_disasm)

    p_run = sub.add_parser("run", help="run a kernel on the platform")
    _add_compile_args(p_run)
    _add_launch_args(p_run)
    p_run.add_argument("--show-buffers", type=int, default=1)
    p_run.set_defaults(func=_cmd_run)

    p_stats = sub.add_parser(
        "stats", help="run a kernel; dump the unified stats registry")
    _add_compile_args(p_stats)
    _add_launch_args(p_stats)
    p_stats.add_argument("--json", action="store_true",
                         help="emit JSON instead of the text table")
    p_stats.add_argument("--golden-only", action="store_true",
                         help="only engine-invariant (golden) stats")
    p_stats.set_defaults(func=_cmd_stats)

    p_trace = sub.add_parser(
        "trace", help="run a kernel; write Chrome-trace/Perfetto JSON")
    _add_compile_args(p_trace)
    _add_launch_args(p_trace)
    p_trace.add_argument("--output", "-o", default="trace.json",
                         help="output path (default: trace.json)")
    p_trace.add_argument("--limit", type=int, default=None, metavar="N",
                         help="ring-buffer mode: keep only the last N events")
    p_trace.add_argument("--sample", type=int, default=1, metavar="N",
                         help="record every Nth high-frequency span")
    p_trace.add_argument("--validate", action="store_true",
                         help="check the emitted trace against the schema")
    p_trace.set_defaults(func=_cmd_trace)

    p_over = sub.add_parser(
        "overhead",
        help="self-measure instrumentation overhead (paper: <5%%)")
    p_over.add_argument("--workload", default="sgemm",
                        help="built-in workload name (default: sgemm)")
    p_over.add_argument("--repeats", type=int, default=5,
                        help="timed repetitions per mode")
    p_over.add_argument("--budget", type=float, default=0.05,
                        help="overhead budget as a fraction (default 0.05)")
    p_over.add_argument("--json", action="store_true")
    p_over.set_defaults(func=_cmd_overhead)

    p_work = sub.add_parser("workloads", help="list built-in workloads")
    p_work.set_defaults(func=_cmd_workloads)

    p_bench = sub.add_parser("bench", help="run a built-in workload")
    p_bench.add_argument("name")
    p_bench.add_argument("--param", action="append", default=[],
                         metavar="NAME=VALUE")
    p_bench.set_defaults(func=_cmd_bench)

    p_conf = sub.add_parser(
        "conformance",
        help="differential fuzzing campaign across execution engines")
    p_conf.add_argument("--seed", type=int, default=0,
                        help="generator stream seed")
    p_conf.add_argument("--budget", type=int, default=200,
                        help="number of programs to generate and run")
    p_conf.add_argument("--engines", default=None, metavar="A+B+...",
                        help="engine subset, e.g. interp+fast+mega+m2s "
                             "(default: all five)")
    p_conf.add_argument("--replay", default=None, metavar="DIR",
                        help="replay a corpus directory instead of fuzzing")
    p_conf.add_argument("--write-corpus", default=None, metavar="DIR",
                        help="write minimized reproducers here on failure")
    p_conf.add_argument("--no-minimize", action="store_true",
                        help="skip failure minimization")
    p_conf.add_argument("--min-coverage", type=float, default=0.0,
                        help="fail below this coverage fraction (0..1)")
    p_conf.set_defaults(func=_cmd_conformance)

    p_lint = sub.add_parser(
        "lint",
        help="static verifier over compiled kernels (annotated disasm)")
    p_lint.add_argument("file", nargs="?", default=None,
                        help="kernel-language source file")
    p_lint.add_argument("--version", default=None,
                        help="compiler version preset (5.6 .. 6.2)")
    p_lint.add_argument("-D", "--define", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="preprocessor define (repeatable)")
    p_lint.add_argument("--kernel", default=None,
                        help="lint only this kernel")
    p_lint.add_argument("--builtin", action="store_true",
                        help="lint every built-in workload + SLAM kernel "
                             "instead of a file")
    p_lint.add_argument("--notes", action="store_true",
                        help="also show note-severity findings")
    p_lint.add_argument("--no-disasm", action="store_true",
                        help="plain finding list, no annotated disassembly")
    p_lint.add_argument("--json", action="store_true",
                        help="stable repro-lint-report/1 JSON instead of "
                             "text")
    p_lint.set_defaults(func=_cmd_lint)

    p_analyze = sub.add_parser(
        "analyze",
        help="static cost & resource analysis (loop bounds, issue/page "
             "bounds) or the --soundness dominance sweep")
    p_analyze.add_argument("file", nargs="?", default=None,
                           help="kernel-language source file")
    p_analyze.add_argument("--version", default=None,
                           help="compiler version preset (5.6 .. 6.2)")
    p_analyze.add_argument("-D", "--define", action="append", default=[],
                           metavar="NAME=VALUE",
                           help="preprocessor define (repeatable)")
    p_analyze.add_argument("--kernel", default=None,
                           help="analyze only this kernel")
    p_analyze.add_argument("--builtin", action="store_true",
                           help="analyze every built-in workload + SLAM "
                                "kernel instead of a file")
    p_analyze.add_argument("--global-size", type=int, nargs="+",
                           default=None, dest="global_size",
                           help="evaluate bounds for this launch geometry")
    p_analyze.add_argument("--local-size", type=int, nargs="+",
                           default=None, dest="local_size")
    p_analyze.add_argument("--json", action="store_true",
                           help="stable repro-analyze-report/1 JSON "
                                "instead of text")
    p_analyze.add_argument("--disasm", action="store_true",
                           help="include cost-annotated disassembly")
    p_analyze.add_argument("--soundness", action="store_true",
                           help="differential dominance sweep: static "
                                "bounds vs observed golden counters")
    p_analyze.add_argument("--workloads", nargs="+", default=["all"],
                           metavar="NAME",
                           help="soundness workload subset ('all' or "
                                "'none')")
    p_analyze.add_argument("--no-slam", action="store_true",
                           help="skip the SLAM pipeline in --soundness")
    p_analyze.add_argument("--progen", type=int, default=0, metavar="N",
                           help="also check N generated programs")
    p_analyze.add_argument("--corpus", default=None, metavar="DIR",
                           help="also check a reproducer corpus directory")
    p_analyze.add_argument("--seed", type=int, default=0,
                           help="generator seed for --soundness")
    p_analyze.add_argument("--out", default=None, metavar="FILE",
                           help="write analysis_report.json here "
                                "(--soundness)")
    p_analyze.set_defaults(func=_cmd_analyze)

    p_fault = sub.add_parser(
        "faultcampaign",
        help="seeded fault-injection campaign with recovery invariants")
    p_fault.add_argument("--workloads", nargs="+",
                         default=["sgemm", "divergent"],
                         help="workload names (default: sgemm divergent)")
    p_fault.add_argument("--scenarios", default=None,
                         metavar="A,B,...",
                         help="comma-separated scenario subset "
                              "(default: all)")
    p_fault.add_argument("--seeds", type=int, default=1,
                         help="seeds per (workload, scenario) case")
    p_fault.add_argument("--engine", default="interpreter",
                         choices=("interpreter", "jit", "mega"))
    p_fault.add_argument("--threads", type=int, default=1,
                         help="num_host_threads for the GPU model")
    p_fault.add_argument("--write-repros", default=None, metavar="DIR",
                         help="write failing cases here as JSON "
                              "reproducers")
    p_fault.add_argument("--replay", default=None, metavar="DIR",
                         help="replay a reproducer directory instead of "
                              "sweeping")
    p_fault.add_argument("--no-determinism", action="store_true",
                         help="skip the double-run determinism check "
                              "(halves runtime)")
    p_fault.add_argument("--verbose", action="store_true",
                         help="print each case as it lands")
    p_fault.set_defaults(func=_cmd_faultcampaign)

    p_tenants = sub.add_parser(
        "tenants",
        help="multi-tenant fairness campaign and cross-tenant "
             "isolation checks")
    p_tenants.add_argument("--tenants", type=int, default=4,
                           help="client contexts sharing the GPU "
                                "(default: 4, mixed rt/fg/bg classes)")
    p_tenants.add_argument("--jobs", type=int, default=2,
                           help="jobs submitted per tenant")
    p_tenants.add_argument("--engine", default="fast",
                           choices=("interp", "fast", "jit", "mega"))
    p_tenants.add_argument("--threads", type=int, default=1,
                           help="num_host_threads for the GPU model")
    p_tenants.add_argument("--seed", type=int, default=0,
                           help="input-data seed")
    p_tenants.add_argument("--adversarial", default=None,
                           metavar="A,B,...|all",
                           help="run attacker-vs-victim scenarios "
                                "instead of a fairness campaign")
    p_tenants.add_argument("--no-isolation", action="store_true",
                           help="skip the solo-vs-multi golden "
                                "comparison")
    p_tenants.add_argument("--no-determinism", action="store_true",
                           help="skip the adversarial double-run "
                                "determinism check")
    p_tenants.set_defaults(func=_cmd_tenants)

    p_farm = sub.add_parser(
        "farm",
        help="config-driven parallel simulation farm (mixed sweeps)")
    farm_sub = p_farm.add_subparsers(dest="farm_action", required=True)
    pf_run = farm_sub.add_parser(
        "run", help="execute a sweep config on a worker pool")
    pf_run.add_argument("config", help="JSON sweep config path")
    pf_run.add_argument("--workers", type=int, default=2,
                        help="worker process count (report-invariant)")
    pf_run.add_argument("--out", default=None, metavar="DIR",
                        help="write report.json, run.log and per-case "
                             "artifacts here")
    pf_run.add_argument("--verbose", action="store_true",
                        help="stream per-case results as they land")
    pf_run.set_defaults(func=_cmd_farm)
    pf_resume = farm_sub.add_parser(
        "resume",
        help="finish an interrupted campaign from its journal "
             "(report.json comes out byte-identical to an "
             "uninterrupted run)")
    pf_resume.add_argument("outdir",
                           help="the campaign's --out directory "
                                "(holds resume/)")
    pf_resume.add_argument("--workers", type=int, default=2,
                           help="worker process count (report-invariant)")
    pf_resume.add_argument("--verbose", action="store_true",
                           help="stream per-case results as they land")
    pf_resume.set_defaults(func=_cmd_farm)
    pf_plan = farm_sub.add_parser(
        "plan", help="print the deterministic case/shard expansion")
    pf_plan.add_argument("config", help="JSON sweep config path")
    pf_plan.set_defaults(func=_cmd_farm)
    pf_example = farm_sub.add_parser(
        "example", help="print a copy-pasteable sweep config")
    pf_example.set_defaults(func=_cmd_farm)

    options = parser.parse_args(argv)
    return options.func(options)


if __name__ == "__main__":
    sys.exit(main())
