"""Command-line tooling (``python -m repro.tools`` / ``repro-sim``)."""

from repro.tools.cli import main

__all__ = ["main"]
