"""repro — full-system functional simulation of a mobile CPU/GPU platform.

A from-scratch Python reproduction of "Full-System Simulation of Mobile
CPU/GPU Platforms" (Kaszyk et al., ISPASS 2019): a Bifrost-like GPU model
(clause execution, quad warps, Job Manager, GPU MMU), a guest CPU with
DBT-style execution, a kbase-like kernel driver, an OpenCL-like runtime
with a real JIT compiler, instrumentation, baselines and the paper's
benchmark workloads.

Convenience re-exports of the primary entry points::

    from repro import Context, CommandQueue, compile_source, get_workload

See README.md and DESIGN.md for the architecture overview and
docs/internals.md for a code walkthrough.
"""

__version__ = "1.0.0"

from repro.cl import Buffer, CommandQueue, Context, Kernel, LocalMemory, Program
from repro.clc import compile_source
from repro.core.platform import MobilePlatform, PlatformConfig
from repro.gpu.device import GPUConfig
from repro.kernels import WORKLOADS, get_workload

__all__ = [
    "Buffer",
    "CommandQueue",
    "Context",
    "GPUConfig",
    "Kernel",
    "LocalMemory",
    "MobilePlatform",
    "PlatformConfig",
    "Program",
    "WORKLOADS",
    "compile_source",
    "get_workload",
    "__version__",
]
