"""Plain-text report formatting for statistics tables and figure series.

Benchmarks print the same rows/series the paper reports; these helpers keep
the formatting in one place.
"""


def format_table(headers, rows, title=None):
    """Render an aligned plain-text table."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_instruction_mix(named_stats):
    """Fig. 11-style rows: benchmark, % arith, % load/store, % nop, % cf."""
    rows = []
    for name, stats in named_stats:
        mix = stats.instruction_mix()
        rows.append(
            (
                name,
                f"{100 * mix['arithmetic']:.1f}",
                f"{100 * mix['load_store']:.1f}",
                f"{100 * mix['nop']:.1f}",
                f"{100 * mix['control_flow']:.1f}",
            )
        )
    return format_table(
        ("benchmark", "arith%", "ls%", "nop%", "cf%"),
        rows,
        title="Instruction mix (Fig. 11)",
    )


def format_data_access_breakdown(named_stats):
    """Fig. 12-style rows across the visible memory hierarchy."""
    rows = []
    for name, stats in named_stats:
        b = stats.data_access_breakdown()
        rows.append(
            (
                name,
                f"{100 * b['temp']:.1f}",
                f"{100 * b['grf_read']:.1f}",
                f"{100 * b['grf_write']:.1f}",
                f"{100 * b['constant_read']:.1f}",
                f"{100 * b['rom']:.1f}",
                f"{100 * b['main_memory']:.1f}",
            )
        )
    return format_table(
        ("benchmark", "temp%", "grfR%", "grfW%", "const%", "rom%", "mainmem%"),
        rows,
        title="Data access breakdown (Fig. 12)",
    )


def format_clause_histogram(named_stats, max_size=8):
    """Fig. 13-style rows: per-benchmark clause-size distribution."""
    rows = []
    for name, stats in named_stats:
        histogram = stats.clause_size_histogram
        total = sum(histogram.values()) or 1
        row = [name]
        for size in range(1, max_size + 1):
            row.append(f"{100 * histogram.get(size, 0) / total:.1f}")
        rows.append(tuple(row))
    headers = ("benchmark",) + tuple(f"sz{size}" for size in range(1, max_size + 1))
    return format_table(headers, rows, title="Clause size distribution % (Fig. 13)")
