"""Unified hierarchical statistics registry (cross-layer observability).

Every simulator layer — guest CPU, kbase driver, CL runtime, Job Manager,
shader cores, GPU MMU — registers its counters into one
:class:`StatsRegistry` under dotted hierarchical names
(``gpu.core0.warp.divergent_branches``), the way gem5's versioned stats
framework gives every SimObject a stats group. The registry is what turns
the functional simulator into a measurement instrument: one place to dump,
one schema to regress against, one report generator.

Stat kinds:

- :class:`Counter` — a plain accumulating integer, incremented by the
  owning component.
- :class:`Probe` — a zero-cost view onto a value the component already
  maintains (read via a callable at dump time). Hot paths keep their
  existing attribute counters; the registry observes them without adding
  per-event work, which is how the <5% instrumentation budget survives.
- :class:`Distribution` — a value -> count histogram (clause sizes).
- :class:`Formula` — derived at dump time from other stats (totals,
  mixes, averages), never stored.

Stats carry a ``golden`` flag: golden stats are architecturally defined
and must be identical across execution engines (interpreter, fast-path,
JIT) and stable across runs; non-golden stats are implementation
diagnostics (TLB hit shapes, decode-cache effectiveness) that legitimately
vary with the engine. ``dump(golden_only=True)`` is the cross-engine
conformance surface.
"""

import json


class Stat:
    """Base: a named value in the registry."""

    kind = "stat"

    def __init__(self, name, desc="", golden=True):
        self.name = name
        self.desc = desc
        self.golden = golden

    def value(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def reset(self):
        """Return the stat to its initial state (no-op for views)."""


class Counter(Stat):
    """An accumulating integer owned by the registry."""

    kind = "counter"

    def __init__(self, name, desc="", golden=True):
        super().__init__(name, desc, golden)
        self._value = 0

    def increment(self, amount=1):
        self._value += amount

    def add(self, amount):
        self._value += amount

    def value(self):
        return self._value

    def reset(self):
        self._value = 0


class Probe(Stat):
    """A read-only view onto a component-owned value (evaluated at dump)."""

    kind = "probe"

    def __init__(self, name, fn, desc="", golden=True):
        super().__init__(name, desc, golden)
        self._fn = fn

    def value(self):
        return self._fn()


class Distribution(Stat):
    """A value -> count histogram.

    Either registry-owned (use :meth:`record`) or a view onto a
    component-owned dict (pass ``fn`` returning the mapping).
    """

    kind = "distribution"

    def __init__(self, name, fn=None, desc="", golden=True):
        super().__init__(name, desc, golden)
        self._fn = fn
        self._samples = {} if fn is None else None

    def record(self, sample, count=1):
        if self._samples is None:
            raise TypeError(f"{self.name} is a view distribution")
        self._samples[sample] = self._samples.get(sample, 0) + count

    def value(self):
        samples = self._samples if self._fn is None else self._fn()
        return {key: samples[key] for key in sorted(samples)}

    def reset(self):
        if self._samples is not None:
            self._samples.clear()


class Formula(Stat):
    """A value derived from other stats at dump time.

    The callable receives the owning :class:`StatsRegistry`, so formulas
    can be expressed over dotted names:
    ``lambda reg: reg.value("gpu.job.arith_instrs") + ...``.
    """

    kind = "formula"

    def __init__(self, name, fn, desc="", golden=True):
        super().__init__(name, desc, golden)
        self._fn = fn
        self._registry = None

    def value(self):
        return self._fn(self._registry)


class StatsRegistry:
    """The single cross-layer home for simulator statistics."""

    def __init__(self):
        self._stats = {}

    # -- registration ----------------------------------------------------------

    def _install(self, stat):
        existing = self._stats.get(stat.name)
        if existing is not None:
            if type(existing) is not type(stat):
                raise ValueError(
                    f"stat {stat.name!r} already registered as "
                    f"{existing.kind}")
            return existing
        self._stats[stat.name] = stat
        return stat

    def counter(self, name, desc="", golden=True):
        """Get-or-create an accumulating counter."""
        return self._install(Counter(name, desc, golden))

    def probe(self, name, fn, desc="", golden=True):
        """Register a view onto a component-owned value."""
        return self._install(Probe(name, fn, desc, golden))

    def distribution(self, name, fn=None, desc="", golden=True):
        """Get-or-create a histogram (or a view when *fn* is given)."""
        return self._install(Distribution(name, fn, desc, golden))

    def formula(self, name, fn, desc="", golden=True):
        """Register a derived stat computed from the registry at dump."""
        stat = self._install(Formula(name, fn, desc, golden))
        stat._registry = self
        return stat

    def scope(self, prefix):
        """A view of the registry that prefixes every name with *prefix*."""
        return Scope(self, prefix)

    # -- queries ---------------------------------------------------------------

    def __contains__(self, name):
        return name in self._stats

    def __len__(self):
        return len(self._stats)

    def get(self, name):
        return self._stats[name]

    def value(self, name):
        return self._stats[name].value()

    def names(self):
        return sorted(self._stats)

    def stats(self):
        return [self._stats[name] for name in self.names()]

    # -- output ----------------------------------------------------------------

    def dump(self, golden_only=False):
        """Flat ``{dotted name: value}`` mapping, sorted by name.

        With ``golden_only`` the dump contains exactly the stats that are
        architecturally defined — the surface that must be identical
        across execution engines and stable across runs.
        """
        out = {}
        for name in self.names():
            stat = self._stats[name]
            if golden_only and not stat.golden:
                continue
            out[name] = stat.value()
        return out

    def tree(self, golden_only=False):
        """The dump folded into nested dicts along the dotted hierarchy."""
        root = {}
        for name, value in self.dump(golden_only).items():
            node = root
            parts = name.split(".")
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            node[parts[-1]] = value
        return root

    def to_json(self, golden_only=False, indent=2):
        return json.dumps(self.dump(golden_only), indent=indent, default=str)

    def snapshot(self, golden_only=False):
        """A transport-safe copy of :meth:`dump` for crossing process
        boundaries (the simulation farm pickles per-case snapshots back
        to the campaign manager and writes them into the aggregate
        report).

        Unlike the raw dump, every value is a plain ``int``/``float``/
        ``str`` and distribution buckets become string keys, so the
        snapshot round-trips through both pickle and JSON without the
        int-vs-str key ambiguity ``json.loads(json.dumps(...))``
        introduces, and never drags live Probe callables (and the
        component graph behind them) across the boundary.
        """
        return {name: snapshot_value(value)
                for name, value in self.dump(golden_only).items()}

    def reset(self):
        for stat in self._stats.values():
            stat.reset()


class Scope:
    """A dotted-prefix view of a :class:`StatsRegistry`."""

    def __init__(self, registry, prefix):
        self.registry = registry
        self.prefix = prefix

    def _name(self, name):
        return f"{self.prefix}.{name}" if self.prefix else name

    def counter(self, name, desc="", golden=True):
        return self.registry.counter(self._name(name), desc, golden)

    def probe(self, name, fn, desc="", golden=True):
        return self.registry.probe(self._name(name), fn, desc, golden)

    def distribution(self, name, fn=None, desc="", golden=True):
        return self.registry.distribution(self._name(name), fn, desc, golden)

    def formula(self, name, fn, desc="", golden=True):
        return self.registry.formula(self._name(name), fn, desc, golden)

    def scope(self, prefix):
        return Scope(self.registry, self._name(prefix))


def snapshot_value(value):
    """Normalize one stat value into the snapshot transport form."""
    if isinstance(value, dict):
        return {str(key): snapshot_value(sample)
                for key, sample in sorted(value.items())}
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, int):
        return int(value)
    if isinstance(value, (frozenset, set, tuple, list)):
        return [snapshot_value(item) for item in sorted(value)]
    return str(value)


def diff_snapshots(reference, other):
    """Names whose values differ between two snapshots (including names
    present on only one side), sorted — the farm's bit-exactness check."""
    names = set(reference) | set(other)
    missing = object()
    return sorted(name for name in names
                  if reference.get(name, missing) != other.get(name, missing))


def format_registry(registry, golden_only=False, show_desc=True):
    """gem5-style text dump: aligned ``name  value  # description`` rows,
    distributions expanded one bucket per row."""
    rows = []
    for stat in registry.stats():
        if golden_only and not stat.golden:
            continue
        value = stat.value()
        if isinstance(value, dict):
            rows.append((stat.name, "", stat.desc))
            for bucket, count in value.items():
                rows.append((f"{stat.name}::{bucket}", str(count), ""))
        else:
            if isinstance(value, float):
                text = f"{value:.6g}"
            else:
                text = str(value)
            rows.append((stat.name, text, stat.desc))
    if not rows:
        return "(no statistics registered)"
    name_width = max(len(name) for name, _v, _d in rows)
    value_width = max(len(value) for _n, value, _d in rows)
    lines = []
    for name, value, desc in rows:
        line = f"{name:<{name_width}}  {value:>{value_width}}"
        if show_desc and desc:
            line += f"  # {desc}"
        lines.append(line.rstrip())
    return "\n".join(lines)


# -- canonical component registrations -----------------------------------------
#
# These helpers define the one mapping from component state to registry
# names. Both the full platform (repro.core.platform) and the conformance
# harness (repro.validate.runner) use them, so the fuzzer guards exactly
# the counters the platform reports.

_JOB_STAT_FIELDS = (
    ("arith_instrs", "arithmetic instructions, per active lane"),
    ("ls_global_instrs", "global load/store instructions"),
    ("ls_local_instrs", "workgroup-local load/store instructions"),
    ("nop_instrs", "empty issue slots executed"),
    ("cf_instrs", "control-flow instructions"),
    ("const_load_instrs", "uniform-port loads (LDU)"),
    ("arith_cycles", "tuples issued, per warp"),
    ("ls_cycles", "128-bit memory beats, per warp"),
    ("temp_reads", "clause-temporary reads"),
    ("temp_writes", "clause-temporary writes"),
    ("grf_reads", "general-register-file reads"),
    ("grf_writes", "general-register-file writes"),
    ("const_reads", "uniform-port reads"),
    ("rom_reads", "clause constant-pool reads"),
    ("main_mem_accesses", "global memory accesses, per element"),
    ("local_mem_accesses", "local memory accesses, per element"),
    ("clauses_executed", "clauses executed, per warp"),
    ("divergent_branches", "warp-divergent branch events"),
    ("branch_events", "branch clauses executed, per warp"),
    ("threads_launched", "threads dispatched"),
    ("warps_launched", "quad warps dispatched"),
    ("workgroups", "thread-groups dispatched"),
)


def register_job_stats(scope, provider):
    """Register a :class:`~repro.instrument.stats.JobStats` view under
    *scope*. *provider* is a zero-arg callable returning the live JobStats
    (so merged totals keep flowing into already-registered probes)."""
    for field, desc in _JOB_STAT_FIELDS:
        scope.probe(field, (lambda f=field: getattr(provider(), f)),
                    desc=desc)
    scope.distribution(
        "clause_size_histogram",
        fn=lambda: provider().clause_size_histogram,
        desc="clause size -> execution count (Fig. 13)")
    scope.formula(
        "total_instrs", lambda _reg: provider().total_instrs,
        desc="all executed instruction slots")
    scope.formula(
        "ls_instrs", lambda _reg: provider().ls_instrs,
        desc="all load/store-class instructions")
    scope.formula(
        "average_clause_size", lambda _reg: provider().average_clause_size(),
        desc="mean executed clause size")


def register_mmu_stats(scope, mmu):
    """Register GPU MMU counters. Translation counts and the distinct-page
    set are architectural (identical across engines, PR 1's bit-exactness
    guarantee); the quad-path shape counters are diagnostics."""
    scope.probe("translations", lambda: mmu.translations,
                desc="address translations performed")
    scope.probe("pages_accessed", lambda: len(mmu.pages_accessed),
                desc="distinct GPU-VA pages touched (Table III)")
    scope.probe("fault_status", lambda: mmu.fault_status,
                desc="latched fault status register", golden=False)
    scope.probe("quad_accesses", lambda: mmu.quad_accesses,
                desc="vector accesses served by the quad fast path",
                golden=False)
    scope.probe("quad_fallbacks", lambda: mmu.quad_fallbacks,
                desc="quad accesses replayed on the scalar path",
                golden=False)
    scope.probe("wide_accesses", lambda: mmu.wide_accesses,
                desc="workgroup-wide accesses served by the mega tier",
                golden=False)
    scope.probe("wide_fallbacks", lambda: mmu.wide_fallbacks,
                desc="workgroup-wide accesses replayed per lane",
                golden=False)
