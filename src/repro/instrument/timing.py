"""First-order cycle estimation from functional statistics.

The paper positions its functional simulator as "a prerequisite to detailed
timing simulation" and names micro-architectural performance modelling as
future work (Section VII-A). This module provides that first step: a
machine-description-driven cycle estimate computed *from the functional
statistics* the simulator already collects — no second execution needed.

The model is deliberately first-order (issue-bound, not stall-accurate):

- each execution engine issues one tuple per cycle; the instrumented
  ``arith_cycles`` (tuples issued, including empty slots) divided by the
  machine's total EE count bounds arithmetic time;
- the load/store unit costs ``ls_cycles`` beats plus a per-access DRAM
  penalty for the fraction of traffic that misses on-chip storage;
- thread-group occupancy limits how much of the machine a job can use;
- divergence serializes: each divergent branch re-issues its path.
"""

from dataclasses import dataclass


@dataclass
class MachineDescription:
    """Timing parameters of the modelled GPU (defaults: G71 MP8-like)."""

    shader_cores: int = 8
    engines_per_core: int = 3  # Bifrost EEs per SC
    warps_per_engine: int = 4  # latency-hiding depth
    ls_units_per_core: int = 1
    dram_latency: float = 100.0  # cycles per missing access
    dram_hit_fraction: float = 0.9  # on-chip hit rate assumption
    barrier_cost: float = 20.0  # cycles per barrier per workgroup
    job_overhead: float = 500.0  # JM setup cycles per job


class CycleModel:
    """Estimates execution cycles for a job from its JobStats."""

    def __init__(self, machine=None):
        self.machine = machine or MachineDescription()

    def estimate(self, stats, jobs=1):
        """Estimated cycles for *stats* (merged over *jobs* jobs).

        Returns a dict with the bound components and the total, so callers
        can see whether a kernel is issue-, memory- or occupancy-bound.
        """
        m = self.machine
        total_engines = m.shader_cores * m.engines_per_core

        # occupancy: a job cannot use more cores than it has workgroups
        groups = max(stats.workgroups, 1)
        usable_cores = min(m.shader_cores, groups)
        usable_engines = usable_cores * m.engines_per_core
        occupancy = usable_engines / total_engines

        arith_bound = stats.arith_cycles / max(usable_engines, 1)

        ls_beats = stats.ls_cycles
        misses = (stats.main_mem_accesses * (1.0 - m.dram_hit_fraction))
        memory_bound = (
            ls_beats / max(usable_cores * m.ls_units_per_core, 1)
            + misses * m.dram_latency
            / max(usable_cores * m.warps_per_engine, 1)
        )

        divergence_penalty = stats.divergent_branches * 2.0
        barrier_cycles = 0.0
        # each barrier tail executed once per warp; approximate workgroup
        # barriers from clause histogram is not possible, so use warps
        barrier_cycles = m.barrier_cost * stats.workgroups

        total = (max(arith_bound, memory_bound)
                 + divergence_penalty + barrier_cycles
                 + m.job_overhead * jobs)
        return {
            "arith_bound": arith_bound,
            "memory_bound": memory_bound,
            "divergence_penalty": divergence_penalty,
            "barrier_cycles": barrier_cycles,
            "occupancy": occupancy,
            "bound_by": "memory" if memory_bound > arith_bound else "arith",
            "total_cycles": total,
        }

    def estimate_runtime_seconds(self, stats, jobs=1, frequency_hz=850e6):
        """Wall-clock estimate at a given GPU clock (G71: ~850 MHz)."""
        return self.estimate(stats, jobs)["total_cycles"] / frequency_hz
