"""Self-measured instrumentation overhead (the paper's Fig. 8 claim).

The paper reports that full instrumentation costs below 5% simulation
slowdown. This module makes that claim testable against *this* simulator:
run a workload bare (``instrument=False``, the "w/o instrum." mode) and
fully instrumented, time both, and report the ratio.

Measurement discipline: the two modes are timed in alternation (bare,
instrumented, bare, instrumented, ...) so slow host drift hits both
equally, and the **minimum** over repeats is compared — the minimum is
the least-noise estimate of the true cost on a timeshared host (the
classic rule for microbenchmarks). A warmup run per mode is discarded to
absorb decode caches, JIT translation and allocator warmup.
"""

import json
import time
from dataclasses import dataclass, field


@dataclass
class OverheadReport:
    """Timing comparison of bare vs instrumented runs of one workload."""

    workload: str
    bare_times: list = field(default_factory=list)
    instrumented_times: list = field(default_factory=list)
    budget: float = 0.05  # the paper's <5% claim

    @property
    def bare_s(self):
        return min(self.bare_times)

    @property
    def instrumented_s(self):
        return min(self.instrumented_times)

    @property
    def overhead(self):
        """Fractional slowdown: 0.03 means instrumentation costs 3%."""
        return self.instrumented_s / self.bare_s - 1.0

    @property
    def within_budget(self):
        return self.overhead < self.budget

    def lines(self):
        verdict = "PASS" if self.within_budget else "FAIL"
        return [
            f"workload:            {self.workload}",
            f"repeats:             {len(self.bare_times)} per mode",
            f"bare (best):         {self.bare_s * 1e3:.2f} ms",
            f"instrumented (best): {self.instrumented_s * 1e3:.2f} ms",
            f"overhead:            {self.overhead * 100.0:+.2f}%"
            f"  (budget <{self.budget * 100.0:.0f}%)  [{verdict}]",
        ]

    def to_dict(self):
        return {
            "workload": self.workload,
            "repeats": len(self.bare_times),
            "bare_s": self.bare_s,
            "instrumented_s": self.instrumented_s,
            "bare_times_s": self.bare_times,
            "instrumented_times_s": self.instrumented_times,
            "overhead_fraction": self.overhead,
            "budget_fraction": self.budget,
            "within_budget": self.within_budget,
        }

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent)


def measure_overhead(run, workload="workload", repeats=5, budget=0.05):
    """Time ``run(instrument)`` bare vs instrumented.

    *run* executes the workload once; it receives ``instrument`` (bool)
    and must rebuild any state itself so repeats are independent. Runs
    alternate modes; one discarded warmup per mode precedes timing.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    report = OverheadReport(workload=workload, budget=budget)
    run(False)
    run(True)
    for _ in range(repeats):
        for instrument, times in ((False, report.bare_times),
                                  (True, report.instrumented_times)):
            start = time.perf_counter()
            run(instrument)
            times.append(time.perf_counter() - start)
    return report
