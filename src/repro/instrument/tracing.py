"""Structured event tracing in Chrome-trace / Perfetto JSON.

The tracer records the full job lifecycle as duration spans —
``clEnqueueNDRangeKernel`` → ``kbase_ioctl(job_submit)`` → Job Manager
slot → workgroup → clause batches — plus instant events for asynchronous
happenings (MMU faults, interrupts). The output is the Trace Event Format
consumed by ``chrome://tracing`` and https://ui.perfetto.dev: a JSON
object with a ``traceEvents`` array of ``{name, ph, ts, pid, tid}``
records, where ``ph`` is ``B``/``E`` (span begin/end), ``i`` (instant) or
``M`` (metadata naming the pid/tid rows).

Components pass human-readable process/track labels (``"gpu"``,
``"core0"``); the tracer interns them to the small integers the format
requires and emits ``process_name``/``thread_name`` metadata so the
viewer shows the labels. Timestamps are host-relative microseconds.

Two always-on modes keep tracing affordable:

- **ring buffer** (``ring_size=N``): only the most recent N events are
  retained (flight-recorder style — attach after the interesting moment).
- **sampling** (``sample_every=N`` via :meth:`sampled_span`): only every
  Nth span per name is recorded, for high-frequency spans like per-warp
  clause batches.
"""

import json
import threading
import time
from collections import deque
from contextlib import contextmanager


class EventTracer:
    """Collects Chrome-trace events from every simulator layer.

    Thread-safe: parallel execution units append concurrently.
    """

    def __init__(self, ring_size=None, sample_every=1):
        if ring_size is not None and ring_size <= 0:
            raise ValueError("ring_size must be positive")
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        self.ring_size = ring_size
        self.sample_every = sample_every
        self._events = deque(maxlen=ring_size) if ring_size else []
        self._lock = threading.Lock()
        self._t0 = time.perf_counter_ns()
        self._pids = {}  # label -> pid int
        self._tids = {}  # (pid, label) -> tid int
        self._sample_counts = {}  # span name -> occurrences seen

    # -- identity interning ----------------------------------------------------

    def _pid(self, label):
        pid = self._pids.get(label)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[label] = pid
        return pid

    def _tid(self, pid, label):
        key = (pid, label)
        tid = self._tids.get(key)
        if tid is None:
            tid = sum(1 for p, _l in self._tids if p == pid) + 1
            self._tids[key] = tid
        return tid

    def _now_us(self):
        return (time.perf_counter_ns() - self._t0) / 1000.0

    def _emit(self, event):
        with self._lock:
            self._events.append(event)

    # -- event API -------------------------------------------------------------

    def begin(self, name, process, track, args=None):
        """Open a duration span (``ph: B``). Pair with :meth:`end`."""
        with self._lock:
            pid = self._pid(process)
            tid = self._tid(pid, track)
        event = {"name": name, "ph": "B", "ts": self._now_us(),
                 "pid": pid, "tid": tid}
        if args:
            event["args"] = args
        self._emit(event)
        return pid, tid

    def end(self, name, process, track):
        """Close the innermost span opened under the same name/track."""
        with self._lock:
            pid = self._pid(process)
            tid = self._tid(pid, track)
        self._emit({"name": name, "ph": "E", "ts": self._now_us(),
                    "pid": pid, "tid": tid})

    @contextmanager
    def span(self, name, process, track, args=None):
        """Duration span covering a ``with`` body (emits B ... E)."""
        self.begin(name, process, track, args)
        try:
            yield
        finally:
            self.end(name, process, track)

    @contextmanager
    def sampled_span(self, name, process, track, args=None):
        """Like :meth:`span`, but records only every Nth occurrence of
        *name* (N = ``sample_every``); the rest run untraced."""
        with self._lock:
            count = self._sample_counts.get(name, 0)
            self._sample_counts[name] = count + 1
        if count % self.sample_every:
            yield
            return
        with self.span(name, process, track, args):
            yield

    def instant(self, name, process, track, args=None):
        """A point-in-time event (``ph: i``, thread-scoped)."""
        with self._lock:
            pid = self._pid(process)
            tid = self._tid(pid, track)
        event = {"name": name, "ph": "i", "s": "t", "ts": self._now_us(),
                 "pid": pid, "tid": tid}
        if args:
            event["args"] = args
        self._emit(event)

    # -- export ----------------------------------------------------------------

    def __len__(self):
        return len(self._events)

    def events(self):
        """The recorded non-metadata events, oldest first."""
        with self._lock:
            return list(self._events)

    def metadata_events(self):
        """``M`` events naming every pid/tid seen so far."""
        out = []
        with self._lock:
            for label, pid in self._pids.items():
                out.append({"name": "process_name", "ph": "M", "pid": pid,
                            "tid": 0, "args": {"name": label}})
            for (pid, label), tid in self._tids.items():
                out.append({"name": "thread_name", "ph": "M", "pid": pid,
                            "tid": tid, "args": {"name": label}})
        return out

    def to_chrome_trace(self):
        """The complete trace object for chrome://tracing / Perfetto."""
        return {
            "traceEvents": self.metadata_events() + self.events(),
            "displayTimeUnit": "ms",
        }

    def write(self, path):
        from repro.checkpoint.format import atomic_write_text

        atomic_write_text(path, json.dumps(self.to_chrome_trace(),
                                           indent=1))

    def clear(self):
        with self._lock:
            self._events.clear()
            self._sample_counts.clear()


_VALID_PHASES = {"B", "E", "X", "i", "M"}


def validate_trace(trace, check_balance=True):
    """Validate a Chrome-trace object; return a list of problems.

    An empty list means the trace conforms: every event carries the
    required fields, phases are known, timestamps within a track are
    monotonic, every pid/tid is named by metadata, and (for unbounded
    traces — a ring buffer may have evicted opening events, so pass
    ``check_balance=False`` there) B/E pairs balance and nest properly
    per track.
    """
    problems = []
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return ["trace is not an object with a traceEvents array"]
    events = trace["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not an array"]

    named_pids = set()
    named_tids = set()
    stacks = {}  # (pid, tid) -> [span names]
    last_ts = {}  # (pid, tid) -> last timestamp

    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing name")
        pid = event.get("pid")
        tid = event.get("tid")
        if not isinstance(pid, int) or not isinstance(tid, int):
            problems.append(f"{where}: pid/tid must be integers")
            continue
        if phase == "M":
            if event["name"] == "process_name":
                named_pids.add(pid)
            elif event["name"] == "thread_name":
                named_tids.add((pid, tid))
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: missing or negative ts")
            continue
        track = (pid, tid)
        if ts < last_ts.get(track, 0.0):
            problems.append(
                f"{where}: ts goes backwards on pid={pid} tid={tid}")
        last_ts[track] = ts
        if phase == "X" and event.get("dur", 0) < 0:
            problems.append(f"{where}: negative dur")
        if phase == "B":
            stacks.setdefault(track, []).append(event["name"])
        elif phase == "E":
            stack = stacks.setdefault(track, [])
            if not stack:
                if check_balance:
                    problems.append(
                        f"{where}: E {event['name']!r} with no open span "
                        f"on pid={pid} tid={tid}")
            elif stack[-1] != event["name"]:
                problems.append(
                    f"{where}: E {event['name']!r} does not nest "
                    f"(innermost open span is {stack[-1]!r})")
            else:
                stack.pop()

    if check_balance:
        for (pid, tid), stack in stacks.items():
            for name in stack:
                problems.append(
                    f"span {name!r} on pid={pid} tid={tid} never closed")
    for pid in {e.get("pid") for e in events
                if isinstance(e, dict) and e.get("ph") not in (None, "M")}:
        if pid not in named_pids:
            problems.append(f"pid {pid} has no process_name metadata")
    for track in last_ts:
        if track not in named_tids:
            problems.append(
                f"pid={track[0]} tid={track[1]} has no thread_name metadata")
    return problems
