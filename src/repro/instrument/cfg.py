"""Divergence control-flow graph (paper Fig. 6).

The simulator tracks the program counter on clause boundaries and builds a
control-flow graph whose edges carry the number of threads that followed
them. Basic blocks where lanes of a warp chose different successors are
flagged as divergence points, "pinpointing the divergence on actual GPU
instructions".
"""

import networkx as nx


class DivergenceCFG:
    """Collects clause-boundary transitions and renders the CFG.

    Nodes are clause indices (plus the virtual ``END`` node); edge weights
    are thread counts. ``divergences[node]`` counts warp-level divergent
    branch events whose branch clause was *node*.
    """

    END = "END"

    def __init__(self, base_address=0xAA000000):
        self._edges = {}
        self._divergences = {}
        self._executions = {}
        self.base_address = base_address

    # -- collection (called from the warp executor) --------------------------

    def record_execution(self, clause_index, thread_count):
        self._executions[clause_index] = self._executions.get(clause_index, 0) + thread_count

    def record_edge(self, src_clause, dst_clause, thread_count):
        key = (src_clause, dst_clause)
        self._edges[key] = self._edges.get(key, 0) + thread_count

    def record_divergence(self, clause_index, warp_count=1):
        self._divergences[clause_index] = self._divergences.get(clause_index, 0) + warp_count

    # -- queries --------------------------------------------------------------

    @property
    def edges(self):
        return dict(self._edges)

    @property
    def divergences(self):
        return dict(self._divergences)

    def merge(self, other):
        for (src, dst), count in other._edges.items():
            self.record_edge(src, dst, count)
        for node, count in other._divergences.items():
            self.record_divergence(node, count)
        for node, count in other._executions.items():
            self.record_execution(node, count)
        return self

    def node_label(self, node):
        """Paper-style label: the clause's instruction address."""
        if node == self.END:
            return "END"
        return f"{self.base_address + node * 0x10:x}"

    def to_networkx(self):
        """Build a weighted DiGraph; edge attr ``fraction`` is the share of
        threads leaving the source node along that edge."""
        graph = nx.DiGraph()
        out_totals = {}
        for (src, _dst), count in self._edges.items():
            out_totals[src] = out_totals.get(src, 0) + count
        for (src, dst), count in self._edges.items():
            graph.add_edge(
                src,
                dst,
                threads=count,
                fraction=count / out_totals[src] if out_totals[src] else 0.0,
            )
        for node in graph.nodes:
            graph.nodes[node]["label"] = self.node_label(node)
            graph.nodes[node]["divergent"] = node in self._divergences
            graph.nodes[node]["executions"] = self._executions.get(node, 0)
        return graph

    def divergence_fraction(self, node):
        """Fraction of branch events at *node* that diverged."""
        executed = self._executions.get(node, 0)
        if not executed:
            return 0.0
        return self._divergences.get(node, 0) / executed

    def to_dot(self):
        """Render in the style of Fig. 6: divergent blocks are annotated,
        edges carry the proportion of threads following them."""
        graph = self.to_networkx()
        lines = ["digraph cfg {", "  node [shape=box];"]
        for node, data in graph.nodes(data=True):
            label = data["label"]
            if data["divergent"]:
                pct = 100.0 * self.divergence_fraction(node)
                label += f"\\n({pct:.1f}% dvg.)"
            lines.append(f'  "{data["label"]}" [label="{label}"];')
        for src, dst, data in graph.edges(data=True):
            pct = 100.0 * data["fraction"]
            lines.append(
                f'  "{graph.nodes[src]["label"]}" -> "{graph.nodes[dst]["label"]}"'
                f' [label="{pct:.2f}%"];'
            )
        lines.append("}")
        return "\n".join(lines)
