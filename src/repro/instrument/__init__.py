"""Instrumentation: execution statistics, divergence CFGs, reports.

The paper's Section IV: instruction counts and breakdowns, data-access
breakdowns across the architecturally visible memory hierarchy, clause
metrics, system-level CPU-GPU interaction counters, and a control-flow
graph pinpointing thread divergence on actual GPU instructions (Fig. 6).
"""

from repro.instrument.stats import JobStats, SystemStats, merge_stats
from repro.instrument.cfg import DivergenceCFG
from repro.instrument.report import (
    format_clause_histogram,
    format_data_access_breakdown,
    format_instruction_mix,
    format_table,
)

__all__ = [
    "JobStats",
    "SystemStats",
    "merge_stats",
    "DivergenceCFG",
    "format_clause_histogram",
    "format_data_access_breakdown",
    "format_instruction_mix",
    "format_table",
]
