"""Instrumentation: execution statistics, divergence CFGs, reports.

The paper's Section IV: instruction counts and breakdowns, data-access
breakdowns across the architecturally visible memory hierarchy, clause
metrics, system-level CPU-GPU interaction counters, and a control-flow
graph pinpointing thread divergence on actual GPU instructions (Fig. 6).

Cross-layer observability (the ROADMAP direction): every layer registers
its counters into one hierarchical :class:`StatsRegistry`, the
:class:`EventTracer` emits Chrome-trace/Perfetto JSON for the full job
lifecycle, and :func:`measure_overhead` self-checks the paper's <5%
instrumentation budget.
"""

from repro.instrument.stats import (
    JobStats,
    SystemStats,
    apply_clause_stats,
    merge_stats,
)
from repro.instrument.cfg import DivergenceCFG
from repro.instrument.registry import (
    Counter,
    Distribution,
    Formula,
    Probe,
    Scope,
    StatsRegistry,
    format_registry,
    register_job_stats,
    register_mmu_stats,
)
from repro.instrument.tracing import EventTracer, validate_trace
from repro.instrument.overhead import OverheadReport, measure_overhead
from repro.instrument.report import (
    format_clause_histogram,
    format_data_access_breakdown,
    format_instruction_mix,
    format_table,
)

__all__ = [
    "JobStats",
    "SystemStats",
    "apply_clause_stats",
    "merge_stats",
    "DivergenceCFG",
    "Counter",
    "Distribution",
    "Formula",
    "Probe",
    "Scope",
    "StatsRegistry",
    "format_registry",
    "register_job_stats",
    "register_mmu_stats",
    "EventTracer",
    "validate_trace",
    "OverheadReport",
    "measure_overhead",
    "format_clause_histogram",
    "format_data_access_breakdown",
    "format_instruction_mix",
    "format_table",
]
