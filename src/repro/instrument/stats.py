"""Execution statistics counters.

Two granularities:

- :class:`JobStats` — per-GPU-job program-execution metrics (Section IV-A/C):
  instruction mix, data-access breakdown, clause metrics, divergence.
  Collected by the shader cores. When several parallel execution units run
  thread-groups of the same job, each unit fills its own instance and they
  are merged at job completion ("requiring no further synchronization").
- :class:`SystemStats` — platform-level CPU-GPU interaction metrics
  (Section IV-B, Table III): pages accessed by the GPU, control-register
  reads/writes, interrupts asserted, compute jobs. Collected by the GPU
  device and MMU.
"""

from dataclasses import dataclass, field


@dataclass
class JobStats:
    """Program-execution metrics for one GPU job (dynamic counts).

    "Instructions" are counted per active lane (a thread-level view);
    "cycles" are counted per warp issue (a machine-level view) — the
    distinction Fig. 1 draws between e.g. arithmetic cycles and arithmetic
    instructions.
    """

    # instruction mix, per active lane (Fig. 11 categories)
    arith_instrs: int = 0
    ls_global_instrs: int = 0
    ls_local_instrs: int = 0
    nop_instrs: int = 0
    cf_instrs: int = 0
    const_load_instrs: int = 0  # LDU; also counted in ls-neutral mix below

    # machine-level cycle estimates, per warp
    arith_cycles: int = 0  # tuples issued
    ls_cycles: int = 0  # 128-bit memory beats

    # data-access breakdown, per active lane (Fig. 12 categories)
    temp_reads: int = 0
    temp_writes: int = 0
    grf_reads: int = 0
    grf_writes: int = 0
    const_reads: int = 0  # uniform port (kernel args, NDRange info)
    rom_reads: int = 0  # clause constant pool
    main_mem_accesses: int = 0  # global loads/stores (per element)
    local_mem_accesses: int = 0  # workgroup-local loads/stores (per element)

    # clause metrics (Fig. 13)
    clauses_executed: int = 0  # per warp
    clause_size_histogram: dict = field(default_factory=dict)  # size -> count

    # divergence (Section IV-C)
    divergent_branches: int = 0
    branch_events: int = 0

    # dispatch shape
    threads_launched: int = 0
    warps_launched: int = 0
    workgroups: int = 0

    @property
    def total_instrs(self):
        """All executed instruction slots, including NOPs and CF."""
        return (
            self.arith_instrs
            + self.ls_global_instrs
            + self.ls_local_instrs
            + self.const_load_instrs
            + self.nop_instrs
            + self.cf_instrs
        )

    @property
    def ls_instrs(self):
        """All load/store-class instructions (global + local + uniform)."""
        return self.ls_global_instrs + self.ls_local_instrs + self.const_load_instrs

    def instruction_mix(self):
        """Normalized Fig. 11 breakdown: arith / load-store / nop / cf."""
        total = self.total_instrs
        if total == 0:
            return {"arithmetic": 0.0, "load_store": 0.0, "nop": 0.0, "control_flow": 0.0}
        return {
            "arithmetic": self.arith_instrs / total,
            "load_store": self.ls_instrs / total,
            "nop": self.nop_instrs / total,
            "control_flow": self.cf_instrs / total,
        }

    def data_access_breakdown(self):
        """Normalized Fig. 12 breakdown across the memory hierarchy."""
        categories = {
            "temp": self.temp_reads + self.temp_writes,
            "grf_read": self.grf_reads,
            "grf_write": self.grf_writes,
            "constant_read": self.const_reads,
            "rom": self.rom_reads,
            "main_memory": self.main_mem_accesses,
        }
        total = sum(categories.values())
        if total == 0:
            return {name: 0.0 for name in categories}
        return {name: value / total for name, value in categories.items()}

    def average_clause_size(self):
        total = sum(self.clause_size_histogram.values())
        if total == 0:
            return 0.0
        weighted = sum(size * count for size, count in self.clause_size_histogram.items())
        return weighted / total

    def merge(self, other):
        """Accumulate *other* into self (job-completion totalling)."""
        for name in (
            "arith_instrs", "ls_global_instrs", "ls_local_instrs", "nop_instrs",
            "cf_instrs", "const_load_instrs", "arith_cycles", "ls_cycles",
            "temp_reads", "temp_writes", "grf_reads", "grf_writes",
            "const_reads", "rom_reads", "main_mem_accesses",
            "local_mem_accesses", "clauses_executed", "divergent_branches",
            "branch_events", "threads_launched", "warps_launched", "workgroups",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for size, count in other.clause_size_histogram.items():
            self.clause_size_histogram[size] = self.clause_size_histogram.get(size, 0) + count
        return self


def merge_stats(stats_list):
    """Merge an iterable of :class:`JobStats` into a fresh instance."""
    total = JobStats()
    for stats in stats_list:
        total.merge(stats)
    return total


def apply_clause_stats(stats, clauses, pending):
    """Apply deferred per-clause counters to *stats* and clear *pending*.

    *pending* maps clause index -> ``[issues, total active lanes]``. Every
    field in :class:`~repro.gpu.isa.ClauseMetrics` is static per clause and
    scales linearly in issues/lanes, so accumulating ``(issues, lanes)``
    per clause index and multiplying out here is arithmetically identical
    to per-issue additions — at a dict increment per clause instead of ~16
    attribute additions. Shared by the interpreter and the JIT engine so
    both produce bit-identical :class:`JobStats`.
    """
    if not pending:
        return
    histogram = stats.clause_size_histogram
    for clause_index, (issues, lanes) in pending.items():
        clause = clauses[clause_index]
        metrics = clause.metrics()
        size = clause.size
        stats.clauses_executed += issues
        histogram[size] = histogram.get(size, 0) + issues
        stats.arith_cycles += size * issues
        stats.ls_cycles += metrics.ls_beats * issues
        stats.arith_instrs += metrics.arith_instrs * lanes
        stats.nop_instrs += metrics.nop_instrs * lanes
        stats.ls_global_instrs += metrics.ls_global_instrs * lanes
        stats.ls_local_instrs += metrics.ls_local_instrs * lanes
        stats.const_load_instrs += metrics.const_load_instrs * lanes
        stats.temp_reads += metrics.temp_reads * lanes
        stats.temp_writes += metrics.temp_writes * lanes
        stats.grf_reads += metrics.grf_reads * lanes
        stats.grf_writes += metrics.grf_writes * lanes
        stats.const_reads += metrics.const_reads * lanes
        stats.rom_reads += metrics.rom_reads * lanes
        stats.main_mem_accesses += metrics.main_mem_accesses * lanes
        stats.local_mem_accesses += metrics.local_mem_accesses * lanes
    pending.clear()


@dataclass
class SystemStats:
    """System-level CPU-GPU interaction counters (Table III)."""

    pages_accessed: int = 0  # distinct GPU-VA pages touched via the GPU MMU
    ctrl_reg_reads: int = 0
    ctrl_reg_writes: int = 0
    interrupts_asserted: int = 0
    compute_jobs: int = 0
    mmu_faults: int = 0
    tlb_flushes: int = 0

    def as_row(self):
        """Table III row: pages, reg reads, reg writes, IRQs, jobs."""
        return (
            self.pages_accessed,
            self.ctrl_reg_reads,
            self.ctrl_reg_writes,
            self.interrupts_asserted,
            self.compute_jobs,
        )
