"""Checkpoint on-disk format: atomic files, SHA-256 manifest, fail-closed
loading.

A checkpoint is a directory::

    <dir>/state.json      # all JSON-serializable platform state
    <dir>/memory.bin      # physical pages + block-device image (binary)
    <dir>/manifest.json   # written LAST: version + per-file SHA-256

Every file is written atomically (temp file + ``os.replace``), and the
manifest lands only after both payload files are durably in place — a
kill at any point leaves either a complete checkpoint or one that fails
manifest verification. Loading verifies every digest before a single
byte of state is applied, so a truncated or bit-flipped checkpoint
raises :class:`~repro.errors.CheckpointError` instead of producing a
wrong-answer resume.
"""

import hashlib
import json
import os
import tempfile

from repro.errors import CheckpointError

#: bump when the serialized state layout changes incompatibly
CHECKPOINT_VERSION = 1

STATE_FILE = "state.json"
MEMORY_FILE = "memory.bin"
MANIFEST_FILE = "manifest.json"


def atomic_write_bytes(path, data):
    """Write *data* to *path* via a temp file + ``os.replace``.

    The rename is atomic on POSIX, so concurrent readers (and any resume
    after a kill) see either the previous complete file or the new
    complete file — never a truncated intermediate.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory,
                                    prefix=os.path.basename(path) + ".")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_text(path, text):
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path, obj):
    atomic_write_bytes(
        path, (json.dumps(obj, sort_keys=True, indent=1) + "\n")
        .encode("utf-8"))


def sha256_hex(data):
    return hashlib.sha256(data).hexdigest()


def write_checkpoint_dir(directory, state_bytes, memory_bytes,
                         golden_snapshot):
    """Materialize a checkpoint directory; the manifest is written last.

    *golden_snapshot* (the registry's golden dump at save time) rides in
    the manifest so a restore can prove the re-assembled platform
    reports bit-identical golden statistics before handing it back.
    """
    os.makedirs(directory, exist_ok=True)
    atomic_write_bytes(os.path.join(directory, STATE_FILE), state_bytes)
    atomic_write_bytes(os.path.join(directory, MEMORY_FILE), memory_bytes)
    manifest = {
        "checkpoint_version": CHECKPOINT_VERSION,
        "files": {
            STATE_FILE: sha256_hex(state_bytes),
            MEMORY_FILE: sha256_hex(memory_bytes),
        },
        "golden": golden_snapshot,
    }
    atomic_write_json(os.path.join(directory, MANIFEST_FILE), manifest)
    return manifest


def _read_file(directory, name):
    path = os.path.join(directory, name)
    try:
        with open(path, "rb") as handle:
            return handle.read()
    except OSError as exc:
        raise CheckpointError(
            f"checkpoint file missing or unreadable: {path}: {exc}") \
            from exc


def load_checkpoint_dir(directory):
    """Read and digest-verify a checkpoint directory.

    Returns ``(state_dict, memory_bytes, manifest)``. Raises
    :class:`CheckpointError` on any missing file, digest mismatch,
    malformed JSON or unknown version — before any state is applied.
    """
    raw_manifest = _read_file(directory, MANIFEST_FILE)
    try:
        manifest = json.loads(raw_manifest)
    except ValueError as exc:
        raise CheckpointError(
            f"corrupt checkpoint manifest in {directory}: {exc}") from exc
    version = manifest.get("checkpoint_version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r} in {directory} "
            f"(this build reads version {CHECKPOINT_VERSION})")
    files = manifest.get("files")
    if not isinstance(files, dict) \
            or set(files) != {STATE_FILE, MEMORY_FILE}:
        raise CheckpointError(
            f"checkpoint manifest in {directory} lists unexpected files: "
            f"{sorted(files) if isinstance(files, dict) else files!r}")
    payloads = {}
    for name, expected in files.items():
        data = _read_file(directory, name)
        actual = sha256_hex(data)
        if actual != expected:
            raise CheckpointError(
                f"checkpoint digest mismatch for {name} in {directory}: "
                f"manifest says {expected}, file hashes to {actual} "
                f"(truncated or corrupted checkpoint)")
        payloads[name] = data
    try:
        state = json.loads(payloads[STATE_FILE])
    except ValueError as exc:
        raise CheckpointError(
            f"corrupt checkpoint state in {directory}: {exc}") from exc
    return state, payloads[MEMORY_FILE], manifest
