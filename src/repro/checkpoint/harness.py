"""Differential checkpoint harness: ``checkpoint -> restore -> finish``
must be bit-identical to a straight run.

The harness runs a deterministic multi-step workload (an SGEMM chain,
one fresh CL context per step, data drawn from one persistent NumPy RNG
stream) on a platform, either straight through or checkpointed part-way
and resumed — by default in a **fresh process** via
``python -m repro.checkpoint.harness resume <dir> <out.json>`` — and
compares the full identity surface:

- per-step output digests (SHA-256 of the result buffers),
- the golden statistics snapshot,
- every carve-out's memory digest.

The RNG stream crosses the checkpoint through the ``extra`` payload
(``bit_generator.state``), demonstrating that host-side resume state
rides the same manifest-verified format as the platform.

Run ``python -m repro.checkpoint.harness smoke`` for the CI tier-1
gate: save/restore/finish SGEMM bit-exact on every engine plus a
2-tenant config.
"""

import hashlib
import json
import os
import subprocess
import sys
import tempfile

import numpy as np

#: engine mode -> (GPU engine, MMU fast path) — mirrors the tenancy
#: harness's modes so campaigns sweep the same four execution tiers
ENGINE_MODES = {
    "interp": ("interpreter", False),
    "fast": ("interpreter", True),
    "jit": ("jit", True),
    "mega": ("mega", True),
}

SGEMM_SOURCE = """
__kernel void sgemm(__global float* c, __global const float* a,
                    __global const float* b, int n) {
    int col = get_global_id(0);
    int row = get_global_id(1);
    float acc = 0.0f;
    for (int k = 0; k < n; k++) {
        acc += a[row * n + k] * b[k * n + col];
    }
    c[row * n + col] = acc;
}
"""


def default_spec(engine_mode="fast", tenants=0, steps=2, n=8, seed=7):
    """A harness spec: plain JSON, the complete description of a run.

    ``tenants=0`` is the single-client driver; ``tenants>=2`` configures
    that many tenants (alternating fg/bg QoS) and submits each step's
    jobs through the arbiter.
    """
    return {"engine_mode": engine_mode, "tenants": tenants,
            "steps": steps, "n": n, "seed": seed}


def build_platform(spec):
    from repro.core.platform import MobilePlatform, PlatformConfig
    from repro.driver.kbase import TenancyConfig, TenantSpec
    from repro.gpu.device import GPUConfig

    engine, fast = ENGINE_MODES[spec["engine_mode"]]
    tenancy = None
    if spec["tenants"]:
        tenancy = TenancyConfig([
            TenantSpec(f"tenant{i}", qos=("fg" if i % 2 == 0 else "bg"))
            for i in range(spec["tenants"])])
    platform = MobilePlatform(PlatformConfig(
        gpu=GPUConfig(engine=engine), tenancy=tenancy)).initialize()
    platform.gpu.mmu.fast_path_enabled = fast
    return platform


def _run_one(context, queue, rng, n):
    program = context.build_program(SGEMM_SOURCE)
    kernel = program.kernel("sgemm")
    a = rng.random(n * n, dtype=np.float32)
    b = rng.random(n * n, dtype=np.float32)
    buf_a = context.buffer_from_array(a)
    buf_b = context.buffer_from_array(b)
    buf_c = context.alloc_buffer(n * n * 4)
    kernel.set_arg(0, buf_c)
    kernel.set_arg(1, buf_a)
    kernel.set_arg(2, buf_b)
    kernel.set_arg(3, n)
    return kernel, buf_c


def run_step(platform, spec, rng):
    """One harness step; returns the step's output digest(s).

    Single-client: one synchronous SGEMM launch. Multi-tenant: one
    arbitrated async SGEMM per tenant, drained together — bg tenants
    get JOB_SLICE-preempted when fg work is waiting, so the preemption
    machinery is inside the differential surface.
    """
    from repro.cl import CommandQueue, Context

    n = spec["n"]
    digests = []
    if not spec["tenants"]:
        context = Context(platform)
        queue = CommandQueue(context)
        kernel, buf_c = _run_one(context, queue, rng, n)
        queue.enqueue_nd_range(kernel, (n, n), (4, 4))
        out = queue.enqueue_read_buffer(buf_c, np.float32, count=n * n)
        digests.append(hashlib.sha256(out.tobytes()).hexdigest())
        return digests
    pending = []
    for tenant in platform.driver.tenants:
        context = Context(platform, tenant=tenant)
        queue = CommandQueue(context)
        kernel, buf_c = _run_one(context, queue, rng, n)
        queue.enqueue_nd_range_async(kernel, (n, n), (2, 2))
        pending.append((queue, buf_c))
    platform.driver.drain()
    for queue, buf_c in pending:
        out = queue.enqueue_read_buffer(buf_c, np.float32, count=n * n)
        digests.append(hashlib.sha256(out.tobytes()).hexdigest())
    return digests


def record_run(platform, digests):
    """The bit-identity surface of a finished run."""
    memory = platform.memory
    return {
        "digests": digests,
        "golden": platform.stats_registry.snapshot(golden_only=True),
        "carveouts": {name: memory.carveout_digest(name)
                      for name in memory.carveout_names},
    }


def compare_records(reference, other):
    """Human-readable differences between two run records ([] = equal)."""
    problems = []
    if reference["digests"] != other["digests"]:
        problems.append("output digests differ")
    if reference["carveouts"] != other["carveouts"]:
        differing = sorted(
            name for name in set(reference["carveouts"])
            | set(other["carveouts"])
            if reference["carveouts"].get(name)
            != other["carveouts"].get(name))
        problems.append(f"carve-out digests differ: {differing}")
    if reference["golden"] != other["golden"]:
        from repro.instrument.registry import diff_snapshots

        diffs = diff_snapshots(reference["golden"], other["golden"])
        problems.append(
            f"golden stats differ ({len(diffs)}): {diffs[:8]}")
    return problems


def straight_run(spec):
    """Run every step without interruption; returns the run record."""
    platform = build_platform(spec)
    rng = np.random.default_rng(spec["seed"])
    digests = []
    for _ in range(spec["steps"]):
        digests.extend(run_step(platform, spec, rng))
    return record_run(platform, digests)


def _rng_state(rng):
    return json.loads(json.dumps(rng.bit_generator.state))


def checkpointed_run(spec, checkpoint_dir, stop_after=1,
                     fresh_process=True):
    """Run *stop_after* steps, checkpoint, resume, finish.

    With ``fresh_process`` (the default, and the tentpole's contract)
    the resume happens in a subprocess that knows nothing but the
    checkpoint directory; its run record comes back through a JSON file.
    """
    platform = build_platform(spec)
    rng = np.random.default_rng(spec["seed"])
    digests = []
    for _ in range(stop_after):
        digests.extend(run_step(platform, spec, rng))
    platform.save_checkpoint(checkpoint_dir, extra={
        "harness": {"spec": spec, "completed_steps": stop_after,
                    "digests": digests, "rng_state": _rng_state(rng)}})
    del platform
    if not fresh_process:
        return resume_from(checkpoint_dir)
    out_path = os.path.join(checkpoint_dir, "resume-record.json")
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep \
        + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.checkpoint.harness", "resume",
         checkpoint_dir, out_path],
        env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"fresh-process resume failed (exit {proc.returncode}):\n"
            f"{proc.stdout}{proc.stderr}")
    with open(out_path) as handle:
        return json.load(handle)


def resume_from(checkpoint_dir):
    """Restore a harness checkpoint and run the remaining steps."""
    from repro.core.platform import MobilePlatform

    platform, extra = MobilePlatform.restore_checkpoint(checkpoint_dir)
    harness = extra["harness"]
    spec = harness["spec"]
    rng = np.random.default_rng(spec["seed"])
    rng.bit_generator.state = harness["rng_state"]
    digests = list(harness["digests"])
    for _ in range(harness["completed_steps"], spec["steps"]):
        digests.extend(run_step(platform, spec, rng))
    return record_run(platform, digests)


def run_differential(spec, fresh_process=True, stop_after=1):
    """Straight vs checkpointed+resumed; returns the problem list
    (empty means bit-identical)."""
    reference = straight_run(spec)
    with tempfile.TemporaryDirectory(prefix="repro-ckpt-") as directory:
        resumed = checkpointed_run(
            spec, os.path.join(directory, "ckpt"),
            stop_after=stop_after, fresh_process=fresh_process)
    return compare_records(reference, resumed)


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "resume":
        from repro.checkpoint.format import atomic_write_bytes

        _cmd, checkpoint_dir, out_path = argv
        result = resume_from(checkpoint_dir)
        atomic_write_bytes(
            out_path,
            (json.dumps(result, sort_keys=True, indent=1) + "\n")
            .encode("utf-8"))
        return 0
    if argv and argv[0] == "smoke":
        failed = 0
        for engine_mode in ENGINE_MODES:
            for tenants in (0, 2):
                spec = default_spec(engine_mode=engine_mode,
                                    tenants=tenants)
                problems = run_differential(spec)
                mark = "ok  " if not problems else "FAIL"
                failed += bool(problems)
                print(f"{mark} checkpoint {engine_mode} "
                      f"tenants={tenants}"
                      + ("".join(f"\n     {p}" for p in problems)))
        status = "ok" if not failed else "fail"
        print(f"RESULT checkpoint status={status} "
              f"cases={2 * len(ENGINE_MODES)} failures={failed}")
        return 1 if failed else 0
    print("usage: python -m repro.checkpoint.harness "
          "{smoke | resume <dir> <out.json>}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
