"""Deterministic full-platform checkpoint/restore (``repro.checkpoint``).

gem5 treats checkpointing as the enabler of long full-system runs; this
package gives the simulated mobile platform the same capability. A
checkpoint captures the **entire platform** — physical memory pages and
carve-outs, per-tenant LPAE page tables and allocator state, MMU
registers and AS tagging, kbase driver queues and arbiter state,
in-flight jobs at workgroup boundaries (a running job checkpoints as
PREEMPTED-and-requeued, exactly like arbiter preemption), fault-injector
plan/consumption state, and the device/driver counters behind the golden
:class:`~repro.instrument.registry.StatsRegistry` — into a versioned,
SHA-256-manifested directory that restores into a **fresh process**
bit-identically: continuing the run produces the same outputs, golden
stats subtrees and carve-out digests as never having stopped.

Layers above this package:

- ``MobilePlatform.save_checkpoint() / restore_checkpoint()`` — the
  platform-level API (``repro.core.platform``);
- ``MobilePlatform.enable_auto_checkpoint()`` — periodic snapshots every
  N retired jobs;
- ``repro.tools farm resume <dir>`` — crash-resilient farm campaigns
  via the per-case outcome journal (``repro.validate.farm.manager``).

Corruption fails closed: any truncated, bit-flipped or hand-edited
checkpoint raises :class:`~repro.errors.CheckpointError` during digest
verification — never a wrong-answer resume.
"""

from repro.checkpoint.format import (
    CHECKPOINT_VERSION,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    load_checkpoint_dir,
    write_checkpoint_dir,
)
from repro.checkpoint.state import (
    apply_memory,
    apply_state,
    capture_state,
    deserialize_config,
    serialize_config,
    serialize_memory,
    state_to_bytes,
)
from repro.errors import CheckpointError


def save_checkpoint(platform, directory, extra=None):
    """Snapshot *platform* into *directory*; returns the manifest.

    *extra* is an optional JSON-serializable payload stored alongside
    the platform state and handed back by :func:`restore_checkpoint` —
    the place for caller-owned resume state (RNG streams, harness step
    indices, recorded buffer addresses).
    """
    state = capture_state(platform, extra=extra)
    golden = platform.stats_registry.snapshot(golden_only=True)
    return write_checkpoint_dir(
        directory, state_to_bytes(state), serialize_memory(platform),
        golden)


def restore_checkpoint(directory):
    """Rebuild a platform from *directory*; returns ``(platform, extra)``.

    The checkpoint is digest-verified before any state is applied, and
    the restored platform's golden statistics snapshot is compared
    against the one sealed into the manifest — a mismatch (impossible
    unless the checkpoint was corrupted in a digest-colliding way or
    written by an incompatible build) raises
    :class:`~repro.errors.CheckpointError` rather than returning a
    platform that would silently diverge.
    """
    from repro.core.platform import MobilePlatform

    state, memory_bytes, manifest = load_checkpoint_dir(directory)
    platform = MobilePlatform(deserialize_config(state["config"]))
    apply_memory(platform, memory_bytes)
    apply_state(platform, state)
    golden = platform.stats_registry.snapshot(golden_only=True)
    if golden != manifest["golden"]:
        from repro.instrument.registry import diff_snapshots

        diffs = diff_snapshots(manifest["golden"], golden)
        raise CheckpointError(
            f"restored platform does not reproduce the checkpoint's "
            f"golden statistics ({len(diffs)} differing): "
            f"{', '.join(diffs[:8])}")
    return platform, state.get("extra")


__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "apply_memory",
    "apply_state",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "capture_state",
    "deserialize_config",
    "load_checkpoint_dir",
    "restore_checkpoint",
    "save_checkpoint",
    "serialize_config",
    "serialize_memory",
    "state_to_bytes",
    "write_checkpoint_dir",
]
