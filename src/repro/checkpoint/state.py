"""Full-platform state capture and re-application.

The serializer follows the gem5 checkpoint philosophy: objects are
**rebuilt from configuration** in the restoring process, then their
mutable state is overwritten from the snapshot. Nothing host-side (CL
``Buffer``/``Kernel`` handles, event tracers, injected callables) is
serialized — those belong to the process, not the platform.

Two invariants make the restored platform bit-identical to the saved
one:

- **No MMIO on the restore path.** ``ctrl_reg_reads``/``ctrl_reg_writes``
  and ``tlb_flushes`` are golden Table-III counters; every device and
  MMU register is re-applied directly on object attributes and the
  saved counter values are restored verbatim.
- **Caches are either dropped or rewarmed without counters.** The MMU
  TLB and load/store view caches are pure accelerators (``translations``
  and ``pages_accessed`` count on every access, hit or miss) and are
  dropped. The Job Manager's decode cache is *not* droppable — a cold
  cache would re-fetch kernel binaries through ``mmu.load_block`` and
  inflate the golden translation count — so its keys are serialized and
  the programs re-decoded through a private page-table walk that touches
  no registered counter.
"""

import json

from repro.driver.kbase import (
    ArbiterPolicy,
    PendingJob,
    QoSClass,
    Region,
    TenancyConfig,
    TenantSpec,
)
from repro.errors import CheckpointError
from repro.gpu.device import GPUConfig
from repro.gpu.encoding import decode_program
from repro.inject.injector import FaultInjector
from repro.inject.plan import FaultPlan
from repro.instrument.registry import _JOB_STAT_FIELDS
from repro.instrument.stats import JobStats
from repro.mem.pagetable import PageTableWalker
from repro.mem.physical import PAGE_SIZE

_U64 = 8

# PendingJob fields that serialize verbatim (``tenant`` is rebound by id
# on restore; completion state is identity-false for queued jobs)
_PENDING_JOB_FIELDS = (
    "tenant_id", "priority", "descriptor_va", "workgroups", "label",
    "seq", "queued_tick", "wait_ticks", "preemptions", "dispatch_count",
)

_REGION_FIELDS = ("gpu_va", "phys", "size", "committed", "growable")

_TENANT_COUNTERS = (
    "regions_allocated", "regions_freed", "bytes_mapped", "page_faults",
    "pages_grown", "alloc_failures", "jobs_submitted", "jobs_completed",
    "jobs_failed", "dispatches", "preemptions", "wait_ticks",
    "translations",
)

_DRIVER_COUNTERS = (
    "jobs_submitted", "retries", "resets", "soft_stops", "hard_stops",
    "irq_mismatches", "spurious_irqs", "backoff_ticks",
    "faults_unrecovered", "as_switches",
)

_GPU_DEVICE_FIELDS = (
    "_shader_ready", "_job_irq_rawstat", "_job_irq_mask",
    "_mmu_irq_rawstat", "_mmu_irq_mask", "_job_status", "_fault_reason",
    "_job_count", "_submit_lo", "_pgd_lo", "_pgd_hi", "_job_slice",
    "soft_resets", "job_soft_stops", "job_hard_stops",
)

_SYSTEM_STATS_FIELDS = (
    "pages_accessed", "ctrl_reg_reads", "ctrl_reg_writes",
    "interrupts_asserted", "compute_jobs", "mmu_faults", "tlb_flushes",
)

_MMU_FIELDS = (
    "_enabled", "_as_id", "_as_tag", "fault_addr", "fault_status",
    "translations", "page_faults_resolved", "injected_faults",
    "quad_accesses", "quad_fallbacks", "wide_accesses", "wide_fallbacks",
    "_fast_path_enabled",
)

_JOBMANAGER_COUNTERS = (
    "decode_count", "jobs_retired", "watchdog_timeouts",
    "jobs_preempted", "descriptor_corruptions", "decode_cache_enabled",
)


def _job_stats_to_dict(stats):
    out = {name: getattr(stats, name) for name, _desc in _JOB_STAT_FIELDS}
    out["clause_size_histogram"] = {
        str(size): count
        for size, count in sorted(stats.clause_size_histogram.items())}
    return out


def _job_stats_apply(stats, data):
    """In-place restore: registered probes close over the existing
    JobStats objects (``lambda s=stats: ...``), so the objects must be
    mutated, never replaced."""
    for name, _desc in _JOB_STAT_FIELDS:
        setattr(stats, name, data[name])
    stats.clause_size_histogram.clear()
    stats.clause_size_histogram.update(
        (int(size), count)
        for size, count in data["clause_size_histogram"].items())
    return stats


def _job_stats_from_dict(data):
    return _job_stats_apply(JobStats(), data)


def _region_to_dict(region):
    return {name: getattr(region, name) for name in _REGION_FIELDS}


def _region_from_dict(data):
    return Region(**{name: data[name] for name in _REGION_FIELDS})


# -- configuration --------------------------------------------------------------


def serialize_config(config):
    """The :class:`PlatformConfig` as plain JSON (tracers are dropped —
    they are host-process observers, not platform state)."""
    gpu = config.gpu
    tenancy = None
    if config.tenancy is not None:
        qos_classes = None
        if config.tenancy.qos_classes is not None:
            qos_classes = {
                key: {"name": qos.name, "priority": qos.priority,
                      "slice_workgroups": qos.slice_workgroups}
                for key, qos in sorted(config.tenancy.qos_classes.items())}
        arbiter = None
        if config.tenancy.arbiter is not None:
            arbiter = {
                "starvation_bound": config.tenancy.arbiter.starvation_bound,
                "max_preemptions": config.tenancy.arbiter.max_preemptions}
        tenancy = {
            "tenants": [{"name": spec.name, "qos": spec.qos}
                        for spec in config.tenancy.tenants],
            "arbiter": arbiter,
            "qos_classes": qos_classes,
        }
    return {
        "gpu": {
            "num_shader_cores": gpu.num_shader_cores,
            "num_host_threads": gpu.num_host_threads,
            "instrument": gpu.instrument,
            "collect_cfg": gpu.collect_cfg,
            "engine": gpu.engine,
        },
        "cpu_engine": config.cpu_engine,
        "memory_size": config.memory_size,
        "tenancy": tenancy,
    }


def deserialize_config(data):
    from repro.core.platform import PlatformConfig

    tenancy = None
    if data["tenancy"] is not None:
        raw = data["tenancy"]
        qos_classes = None
        if raw["qos_classes"] is not None:
            qos_classes = {
                key: QoSClass(name=qos["name"], priority=qos["priority"],
                              slice_workgroups=qos["slice_workgroups"])
                for key, qos in raw["qos_classes"].items()}
        arbiter = None
        if raw["arbiter"] is not None:
            arbiter = ArbiterPolicy(
                starvation_bound=raw["arbiter"]["starvation_bound"],
                max_preemptions=raw["arbiter"]["max_preemptions"])
        tenancy = TenancyConfig(
            tenants=[TenantSpec(name=spec["name"], qos=spec["qos"])
                     for spec in raw["tenants"]],
            arbiter=arbiter, qos_classes=qos_classes)
    return PlatformConfig(
        gpu=GPUConfig(**data["gpu"]),
        cpu_engine=data["cpu_engine"],
        memory_size=data["memory_size"],
        tenancy=tenancy,
    )


# -- capture --------------------------------------------------------------------


def serialize_memory(platform):
    """Physical pages + block-device image as one binary blob.

    Layout (all integers u64 little-endian)::

        page_count, then page_count x (page_index, 4096 raw bytes),
        block_image_length, block image bytes

    All allocated pages are stored, including all-zero ones, so the
    restored ``allocated_pages`` count (and every carve-out digest,
    which walks allocated pages) matches exactly.
    """
    memory = platform.memory
    chunks = []
    indices = sorted(memory._pages)
    chunks.append(len(indices).to_bytes(_U64, "little"))
    for index in indices:
        chunks.append(index.to_bytes(_U64, "little"))
        chunks.append(bytes(memory._pages[index]))
    image = bytes(platform.block._image)
    chunks.append(len(image).to_bytes(_U64, "little"))
    chunks.append(image)
    return b"".join(chunks)


def apply_memory(platform, blob):
    memory = platform.memory
    try:
        pos = 0
        count = int.from_bytes(blob[pos:pos + _U64], "little")
        pos += _U64
        pages = {}
        for _ in range(count):
            index = int.from_bytes(blob[pos:pos + _U64], "little")
            pos += _U64
            page = blob[pos:pos + PAGE_SIZE]
            pos += PAGE_SIZE
            if len(page) != PAGE_SIZE:
                raise CheckpointError("truncated page payload")
            pages[index] = bytearray(page)
        image_len = int.from_bytes(blob[pos:pos + _U64], "little")
        pos += _U64
        image = blob[pos:pos + image_len]
        if len(image) != image_len or pos + image_len != len(blob):
            raise CheckpointError("truncated block-device payload")
    except (IndexError, OverflowError) as exc:
        raise CheckpointError(
            f"malformed checkpoint memory payload: {exc}") from exc
    memory._pages = pages
    memory._views = {}
    platform.block._image = bytearray(image)


def _capture_arbiter(arbiter):
    queues = []
    for priority, per_tenant in arbiter._queues.items():
        tenant_queues = []
        for tenant_id, jobs in per_tenant.items():
            tenant_queues.append([
                tenant_id,
                [{name: getattr(job, name)
                  for name in _PENDING_JOB_FIELDS} for job in jobs]])
        queues.append([priority, tenant_queues])
    return {
        "tick": arbiter.tick,
        "submitted": arbiter.submitted,
        "dispatched": arbiter.dispatched,
        "promotions": arbiter.promotions,
        "queues": queues,
        "order": [[priority, list(order)]
                  for priority, order in arbiter._order.items()],
        "cursor": [[priority, cursor]
                   for priority, cursor in arbiter._cursor.items()],
    }


def _apply_arbiter(driver, data):
    from collections import deque

    arbiter = driver.arbiter
    arbiter.tick = data["tick"]
    arbiter.submitted = data["submitted"]
    arbiter.dispatched = data["dispatched"]
    arbiter.promotions = data["promotions"]
    arbiter._queues = {}
    for priority, tenant_queues in data["queues"]:
        per = arbiter._queues.setdefault(priority, {})
        for tenant_id, jobs in tenant_queues:
            per[tenant_id] = deque(
                PendingJob(tenant=driver.tenant(job["tenant_id"]),
                           **{name: job[name]
                              for name in _PENDING_JOB_FIELDS})
                for job in jobs)
    arbiter._order = {priority: list(order)
                      for priority, order in data["order"]}
    arbiter._cursor = {priority: cursor
                       for priority, cursor in data["cursor"]}


def _capture_tenant(tenant):
    allocator = tenant.allocator
    return {
        "allocator": {
            "next": allocator._next,
            "free_extents": [list(extent)
                             for extent in allocator._free_extents],
            "bytes_recycled": allocator.bytes_recycled,
        },
        "page_table": {
            "root": tenant._page_table.root,
            "table_frames": list(tenant._page_table._table_frames),
        },
        "va_next": tenant._va_next,
        "growable": [_region_to_dict(region)
                     for region in tenant._growable],
        "descriptor_region": (
            _region_to_dict(tenant._descriptor_region)
            if tenant._descriptor_region is not None else None),
        "next_slot": tenant._next_slot,
        "counters": {name: getattr(tenant, name)
                     for name in _TENANT_COUNTERS},
        "completed_stats": _job_stats_to_dict(tenant.completed_stats),
    }


def _apply_tenant(tenant, data):
    allocator = tenant.allocator
    allocator._next = data["allocator"]["next"]
    allocator._free_extents = [tuple(extent)
                               for extent in
                               data["allocator"]["free_extents"]]
    allocator.bytes_recycled = data["allocator"]["bytes_recycled"]
    tenant._page_table.root = data["page_table"]["root"]
    tenant._page_table._table_frames = list(
        data["page_table"]["table_frames"])
    tenant._va_next = data["va_next"]
    tenant._growable = [_region_from_dict(region)
                        for region in data["growable"]]
    tenant._descriptor_region = (
        _region_from_dict(data["descriptor_region"])
        if data["descriptor_region"] is not None else None)
    tenant._next_slot = data["next_slot"]
    for name in _TENANT_COUNTERS:
        setattr(tenant, name, data["counters"][name])
    _job_stats_apply(tenant.completed_stats, data["completed_stats"])


def _capture_registry_owned(registry):
    """Registry-owned stats (accumulating :class:`Counter` objects and
    owned :class:`Distribution` histograms — e.g. the CL runtime's
    ``cl.runtime.*`` counters). Probes/formulas are views over component
    state serialized elsewhere; these are the stats whose *only* home is
    the registry itself."""
    from repro.instrument.registry import Counter, Distribution

    owned = []
    for stat in registry.stats():
        if isinstance(stat, Counter):
            owned.append({"name": stat.name, "kind": "counter",
                          "desc": stat.desc, "golden": stat.golden,
                          "value": stat._value})
        elif isinstance(stat, Distribution) and stat._samples is not None:
            owned.append({"name": stat.name, "kind": "distribution",
                          "desc": stat.desc, "golden": stat.golden,
                          "value": [[key, count] for key, count in
                                    sorted(stat._samples.items())]})
    return owned


def _apply_registry_owned(registry, owned):
    """Get-or-create each owned stat and overwrite its value. Components
    that register the same name later (a fresh CL ``Context`` re-running
    its registrations) get the restored object back — registration is
    get-or-create — so the counts keep accumulating from the saved
    values."""
    for item in owned:
        if item["kind"] == "counter":
            stat = registry.counter(item["name"], item["desc"],
                                    item["golden"])
            stat._value = item["value"]
        else:
            stat = registry.distribution(item["name"], desc=item["desc"],
                                         golden=item["golden"])
            stat._samples = {key: count for key, count in item["value"]}


def _capture_injector(injector):
    if injector is None:
        return None
    return {
        "plan": injector.plan.to_dict(),
        "current_tenant": injector.current_tenant,
        "keyed": [[site, key, [armed.remaining for armed in entries]]
                  for (site, key), entries in injector._keyed.items()],
        "occ": [[site, [armed.remaining for armed in entries]]
                for site, entries in injector._occ.items()],
        "visits": dict(injector._visits),
        "fired": dict(injector.fired),
        "log": [list(entry) for entry in injector.log],
    }


def _apply_injector(platform, data):
    if data is None:
        platform.attach_injector(None)
        return
    injector = FaultInjector(FaultPlan.from_dict(data["plan"]))
    # _keyed/_occ are populated in plan order on both sides, so the
    # saved remaining-counts re-pair with the fresh _Armed objects
    for site, key, remainings in data["keyed"]:
        entries = injector._keyed.get((site, key), [])
        if len(entries) != len(remainings):
            raise CheckpointError(
                f"injector state does not match its plan at site "
                f"{site!r} key {key!r}")
        for armed, remaining in zip(entries, remainings):
            armed.remaining = remaining
    for site, remainings in data["occ"]:
        entries = injector._occ.get(site, [])
        if len(entries) != len(remainings):
            raise CheckpointError(
                f"injector state does not match its plan at site "
                f"{site!r}")
        for armed, remaining in zip(entries, remainings):
            armed.remaining = remaining
    injector._visits.update(data["visits"])
    injector.fired.update(data["fired"])
    injector.log = [tuple(entry) for entry in data["log"]]
    injector.current_tenant = data["current_tenant"]
    platform.attach_injector(injector)


def capture_state(platform, extra=None):
    """Everything JSON-serializable about *platform*, plus *extra*
    (caller-owned resume payload: RNG streams, harness step index, ...).
    Pair with :func:`serialize_memory` for the binary half."""
    gpu = platform.gpu
    mmu = gpu.mmu
    manager = gpu.job_manager
    driver = platform.driver
    state = {
        "config": serialize_config(platform.config),
        "platform": {
            "staging_next": platform._staging_next,
        },
        "devices": {
            "uart_output": bytes(platform.uart.output).hex(),
            "timer_count": platform.timer.count,
            "irqc": {"pending": platform.irqc.pending,
                     "assertions": platform.irqc.assertions},
            "net": {"tx_queue": bytes(platform.net._tx_queue).hex(),
                    "rx_queue": bytes(platform.net._rx_queue).hex(),
                    "frames_sent": platform.net.frames_sent},
            "block": {"capacity_sectors": platform.block.capacity_sectors,
                      "sector": platform.block._sector,
                      "addr_lo": platform.block._addr_lo,
                      "addr_hi": platform.block._addr_hi,
                      "status": platform.block._status},
        },
        "cpu": {
            "instructions_executed":
                platform.guest.cpu.instructions_executed,
        },
        "mmu": {
            "fields": {name: getattr(mmu, name) for name in _MMU_FIELDS},
            "root": (mmu._walker.root
                     if mmu._walker is not None else None),
            "pages_accessed": sorted(mmu.pages_accessed),
        },
        "gpu": {
            "fields": {name: getattr(gpu, name)
                       for name in _GPU_DEVICE_FIELDS},
            "system_stats": {name: getattr(gpu.system_stats, name)
                             for name in _SYSTEM_STATS_FIELDS},
        },
        "jobmanager": {
            "counters": {name: getattr(manager, name)
                         for name in _JOBMANAGER_COUNTERS},
            "decode_cache_keys": [list(key)
                                  for key in manager._decode_cache],
            "total_stats": _job_stats_to_dict(manager.total_stats),
            "core_stats": [[unit_id, _job_stats_to_dict(stats)]
                           for unit_id, stats in
                           sorted(manager.core_stats.items())],
        },
        "driver": {
            "counters": {name: getattr(driver, name)
                         for name in _DRIVER_COUNTERS},
            "initialized": driver.initialized,
            "job_slice": driver._job_slice,
            "mmu_tenant": driver._mmu_tenant.tenant_id,
            "arbiter": _capture_arbiter(driver.arbiter),
            "tenants": [[tenant.tenant_id, _capture_tenant(tenant)]
                        for tenant in driver.tenants],
        },
        "registry_owned": _capture_registry_owned(platform.stats_registry),
        "injector": _capture_injector(platform._injector),
        "extra": extra,
    }
    return state


def state_to_bytes(state):
    return (json.dumps(state, sort_keys=True, indent=1) + "\n") \
        .encode("utf-8")


# -- restore --------------------------------------------------------------------


def _read_via_walker(memory, walker, va, size):
    """Read *size* bytes at GPU VA *va* through *walker* (a private
    :class:`PageTableWalker` whose counters are not registered anywhere),
    so decode-cache rewarming never perturbs golden MMU statistics."""
    out = bytearray()
    pos = 0
    while pos < size:
        vaddr = va + pos
        page_va = vaddr & ~(PAGE_SIZE - 1)
        entry = walker.lookup_page(page_va)
        if entry is None:
            return None
        ppage, _flags = entry
        offset = vaddr - page_va
        chunk = min(size - pos, PAGE_SIZE - offset)
        out += memory.read_block(ppage + offset, chunk)
        pos += chunk
    return bytes(out)


def _rewarm_decode_cache(platform, keys):
    """Re-decode the cached kernel binaries listed in *keys*.

    A cold decode cache would re-fetch each binary through
    ``mmu.load_block`` on first use, inflating the golden translation
    count relative to an uninterrupted run. Entries whose pages are no
    longer mapped (the region was freed after the program last ran) are
    skipped — they can never be hit again at the same key with the same
    content.
    """
    manager = platform.gpu.job_manager
    memory = platform.memory
    walkers = {}
    for as_id, binary_va, binary_size in keys:
        tenant = platform.driver.tenant(as_id)
        walker = walkers.get(as_id)
        if walker is None:
            walker = PageTableWalker(memory, tenant._page_table.root)
            walkers[as_id] = walker
        image = _read_via_walker(memory, walker, binary_va, binary_size)
        if image is None:
            continue
        manager._decode_cache[(as_id, binary_va, binary_size)] = \
            decode_program(image)


def apply_state(platform, state):
    """Overwrite a freshly constructed *platform* with the saved state.

    The platform must have been built from the checkpoint's own config
    (see :func:`deserialize_config`) and must not have been initialized
    or used. Physical memory must already be restored
    (:func:`apply_memory`) — page tables and descriptor pages live
    there, and this function re-points the rebuilt objects at them.
    """
    devices = state["devices"]
    platform.uart.output = bytearray(bytes.fromhex(
        devices["uart_output"]))
    platform.timer.count = devices["timer_count"]
    platform.irqc.pending = devices["irqc"]["pending"]
    platform.irqc.assertions = devices["irqc"]["assertions"]
    platform.net._tx_queue = bytearray(bytes.fromhex(
        devices["net"]["tx_queue"]))
    platform.net._rx_queue = bytearray(bytes.fromhex(
        devices["net"]["rx_queue"]))
    platform.net.frames_sent = devices["net"]["frames_sent"]
    block = devices["block"]
    platform.block.capacity_sectors = block["capacity_sectors"]
    platform.block._sector = block["sector"]
    platform.block._addr_lo = block["addr_lo"]
    platform.block._addr_hi = block["addr_hi"]
    platform.block._status = block["status"]

    platform.guest.cpu.instructions_executed = \
        state["cpu"]["instructions_executed"]
    platform._staging_next = state["platform"]["staging_next"]

    gpu = platform.gpu
    for name in _GPU_DEVICE_FIELDS:
        setattr(gpu, name, state["gpu"]["fields"][name])
    for name in _SYSTEM_STATS_FIELDS:
        setattr(gpu.system_stats, name, state["gpu"]["system_stats"][name])
    gpu.last_results = []

    # MMU: rebuild the walker from the saved root (tables live in the
    # restored memory), then re-apply registers and counters directly —
    # the address_space setter and MMU_* MMIO writes are off-limits here
    # (they flush TLBs and bump golden register-traffic counters)
    mmu = gpu.mmu
    if state["mmu"]["root"] is not None:
        mmu.set_page_table(state["mmu"]["root"])
    for name in _MMU_FIELDS:
        setattr(mmu, name, state["mmu"]["fields"][name])
    mmu.pages_accessed = set(state["mmu"]["pages_accessed"])
    mmu._update_fast()

    manager = gpu.job_manager
    for name in _JOBMANAGER_COUNTERS:
        setattr(manager, name, state["jobmanager"]["counters"][name])
    _job_stats_apply(manager.total_stats,
                     state["jobmanager"]["total_stats"])
    for unit_id, stats in state["jobmanager"]["core_stats"]:
        existing = manager.core_stats.get(unit_id)
        if existing is None:
            raise CheckpointError(
                f"checkpoint core_stats unit {unit_id} does not exist "
                f"under its own GPU config — corrupt state")
        _job_stats_apply(existing, stats)
    manager.results = []
    manager._decode_cache = {}

    driver = platform.driver
    tenants_by_id = {tenant.tenant_id: tenant
                     for tenant in driver.tenants}
    saved_tenants = state["driver"]["tenants"]
    if sorted(tenants_by_id) != sorted(tid for tid, _ in saved_tenants):
        raise CheckpointError(
            "checkpoint tenant set does not match its own tenancy "
            "config — corrupt or hand-edited state")
    for tenant_id, data in saved_tenants:
        _apply_tenant(tenants_by_id[tenant_id], data)
    for name in _DRIVER_COUNTERS:
        setattr(driver, name, state["driver"]["counters"][name])
    driver.initialized = state["driver"]["initialized"]
    driver._job_slice = state["driver"]["job_slice"]
    driver._mmu_tenant = tenants_by_id[state["driver"]["mmu_tenant"]]
    _apply_arbiter(driver, state["driver"]["arbiter"])

    _rewarm_decode_cache(
        platform,
        [tuple(key) for key in state["jobmanager"]["decode_cache_keys"]])

    _apply_registry_owned(platform.stats_registry,
                          state["registry_owned"])
    _apply_injector(platform, state["injector"])
    return platform
