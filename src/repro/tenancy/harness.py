"""Multi-tenant mixed-run harness: N client contexts over one GPU.

Builds a :class:`~repro.core.platform.MobilePlatform` whose driver hosts
one :class:`~repro.driver.kbase.TenantContext` per configured tenant,
runs a workload per tenant through the job-slot arbiter (deferred
submissions, ``driver.drain()``), and captures a per-tenant
:class:`TenantRecord`: output bytes, NumPy verification, the tenant's
golden stats subtree, the sha256 of its physical carve-out, and its
fairness counters.

The harness is what the isolation proof is built from. A **solo
baseline** (:func:`solo_baseline`) runs the *same* tenancy shape with
only one tenant active — same carve-out bases, same VA layout, same
page-table placement — so a multi-tenant run's record for that tenant
must match the solo record byte-for-byte (outputs, golden stats,
carve-out image) whatever the *other* tenants did: faults, hangs, OOB
kernels, GPU resets. :func:`check_isolation` asserts exactly that, and
:func:`run_adversarial` packages the attacker/victim scenarios the
cross-tenant campaign and the farm sweep.
"""

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.cl import CommandQueue, Context
from repro.core.platform import MobilePlatform, PlatformConfig
from repro.driver.kbase import TenancyConfig, TenantSpec
from repro.errors import SimError
from repro.gpu.device import GPUConfig
from repro.gpu.mmu import AS_TAG_SHIFT
from repro.inject.injector import FaultInjector
from repro.inject.plan import FaultPlan, FaultSpec
from repro.kernels.parboil import Sgemm

#: engine mode -> (GPU engine, MMU fast-path enabled); the same four
#: execution modes the conformance and stats-registry suites sweep
ENGINE_MODES = {
    "interp": ("interpreter", False),
    "fast": ("interpreter", True),
    "jit": ("jit", True),
    "mega": ("mega", True),
}

_DIVERGENT_SOURCE = """
__kernel void divergent(__global int* data, __global int* out) {
    int i = get_global_id(0);
    int v = data[i];
    int acc = 0;
    if (v % 2 == 0) {
        for (int j = 0; j < (v & 7); j += 1) {
            acc += j * v;
        }
    } else {
        acc = v * 3 + 1;
    }
    out[i] = acc;
}
"""

_FILLSEQ_SOURCE = """
__kernel void fillseq(__global int* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        out[i] = i * 1103 + 12345;
    }
}
"""

# the out-of-bounds attacker: the displacement arrives as a *scalar
# argument*, so the build-time binary verifier (which bounds static
# offsets) has nothing to reject — the write lands past the buffer's
# region at runtime and the tenant's own MMU takes the fault
_OOB_SOURCE = """
__kernel void oob(__global int* out, int offset) {
    int i = get_global_id(0);
    out[i + offset] = i;
}
"""


class TenantWorkload:
    """One tenant's workload, split into arbiter-friendly phases.

    ``setup`` allocates buffers and builds the program (host-side, no
    GPU execution); ``submit`` queues one job with the arbiter and
    returns the :class:`~repro.driver.kbase.PendingJob`; ``collect``
    reads the outputs after ``driver.drain()``; ``reference`` is the
    NumPy oracle. Workloads are replayable (outputs a pure function of
    inputs) so soft-stop replays and recovery resubmissions are
    bit-invisible.
    """

    name = ""

    def __init__(self, params=None):
        self.params = dict(self.default_params())
        if params:
            unknown = set(params) - set(self.params)
            if unknown:
                raise ValueError(
                    f"{self.name}: unknown params {sorted(unknown)}")
            self.params.update(params)

    @staticmethod
    def default_params():
        return {}

    def total_groups(self):
        """Flat workgroup count of one submission (slice-budget math)."""
        raise NotImplementedError

    def setup(self, context, queue, rng):
        raise NotImplementedError

    def submit(self, context, queue, state):
        raise NotImplementedError

    def collect(self, context, queue, state):
        raise NotImplementedError

    def reference(self, state):
        raise NotImplementedError

    def check(self, outputs, expected):
        for got, want in zip(outputs, expected):
            got, want = np.asarray(got), np.asarray(want)
            if got.dtype.kind == "f" or want.dtype.kind == "f":
                if not np.allclose(got.astype(np.float64),
                                   want.astype(np.float64),
                                   rtol=2e-4, atol=2e-5):
                    return False
            elif not np.array_equal(got, want):
                return False
        return True


class SgemmTenant(TenantWorkload):
    """Replayable sgemm (beta = 0: C written, never read)."""

    name = "sgemm"

    @staticmethod
    def default_params():
        return {"m": 32, "n": 40, "k": 24}

    def total_groups(self):
        return (self.params["n"] // 8) * (self.params["m"] // 8)

    def setup(self, context, queue, rng):
        p = self.params
        a = rng.standard_normal((p["m"], p["k"])).astype(np.float32)
        b = rng.standard_normal((p["k"], p["n"])).astype(np.float32)
        kernel = context.build_program(Sgemm.source).kernel("sgemm")
        buf_a = context.buffer_from_array(a)
        buf_b = context.buffer_from_array(b)
        buf_c = context.alloc_buffer(p["m"] * p["n"] * 4)
        queue.enqueue_fill_buffer(buf_c, 0)
        kernel.set_args(buf_a, buf_b, buf_c, p["m"], p["n"], p["k"],
                        np.float32(1.0), np.float32(0.0))
        return {"a": a, "b": b, "kernel": kernel, "buf_c": buf_c}

    def submit(self, context, queue, state):
        p = self.params
        return queue.enqueue_nd_range_async(
            state["kernel"], (p["n"], p["m"]), (8, 8))

    def collect(self, context, queue, state):
        p = self.params
        out = queue.enqueue_read_buffer(state["buf_c"], np.float32,
                                        count=p["m"] * p["n"])
        return [out.reshape(p["m"], p["n"])]

    def reference(self, state):
        return [(state["a"] @ state["b"]).astype(np.float32)]


class DivergentTenant(TenantWorkload):
    """Warp-divergent integer workload; ``n`` scales the job length, so
    the background variant runs long enough to be sliced."""

    name = "divergent"

    @staticmethod
    def default_params():
        return {"n": 4096}

    def total_groups(self):
        return self.params["n"] // 64

    def setup(self, context, queue, rng):
        n = self.params["n"]
        data = rng.integers(0, 64, size=n).astype(np.int32)
        kernel = context.build_program(_DIVERGENT_SOURCE).kernel("divergent")
        buf_data = context.buffer_from_array(data)
        buf_out = context.alloc_buffer(n * 4)
        queue.enqueue_fill_buffer(buf_out, 0)
        kernel.set_args(buf_data, buf_out)
        return {"data": data, "kernel": kernel, "buf_out": buf_out}

    def submit(self, context, queue, state):
        n = self.params["n"]
        return queue.enqueue_nd_range_async(state["kernel"], (n,), (64,))

    def collect(self, context, queue, state):
        n = self.params["n"]
        return [queue.enqueue_read_buffer(state["buf_out"], np.int32,
                                          count=n)]

    def reference(self, state):
        v = state["data"].astype(np.int64)
        k = v & 7
        even = v * (k * (k - 1) // 2)
        odd = v * 3 + 1
        return [np.where(v % 2 == 0, even, odd).astype(np.int32)]


class FillseqTenant(TenantWorkload):
    """Sequential fill over a grow-on-fault buffer: the tenant's own
    page-fault worker grows its mapping mid-run."""

    name = "fillseq"

    @staticmethod
    def default_params():
        return {"n": 8192}

    def total_groups(self):
        return self.params["n"] // 64

    def setup(self, context, queue, rng):
        n = self.params["n"]
        kernel = context.build_program(_FILLSEQ_SOURCE).kernel("fillseq")
        buf_out = context.alloc_buffer(n * 4, grow_on_fault=True)
        kernel.set_args(buf_out, n)
        return {"kernel": kernel, "buf_out": buf_out}

    def submit(self, context, queue, state):
        n = self.params["n"]
        return queue.enqueue_nd_range_async(state["kernel"], (n,), (64,))

    def collect(self, context, queue, state):
        n = self.params["n"]
        return [queue.enqueue_read_buffer(state["buf_out"], np.int32,
                                          count=n)]

    def reference(self, state):
        n = self.params["n"]
        return [(np.arange(n, dtype=np.int64) * 1103 + 12345)
                .astype(np.int32)]


class OOBTenant(TenantWorkload):
    """Malicious tenant: writes ``offset`` elements past its buffer.

    The displacement is a runtime scalar, invisible to the build-time
    verifier; the write faults in *this tenant's* address space and the
    recovery ladder surfaces a JobFault to this tenant only. The
    harness expects this workload to fail."""

    name = "oob"
    expects_failure = True

    @staticmethod
    def default_params():
        return {"n": 256, "offset": 1 << 22}

    def total_groups(self):
        return self.params["n"] // 64

    def setup(self, context, queue, rng):
        p = self.params
        kernel = context.build_program(_OOB_SOURCE).kernel("oob")
        buf_out = context.alloc_buffer(p["n"] * 4)
        kernel.set_args(buf_out, p["offset"])
        return {"kernel": kernel, "buf_out": buf_out}

    def submit(self, context, queue, state):
        n = self.params["n"]
        return queue.enqueue_nd_range_async(state["kernel"], (n,), (64,))

    def collect(self, context, queue, state):
        return []

    def reference(self, state):
        return []


WORKLOADS = {
    "sgemm": SgemmTenant,
    "divergent": DivergentTenant,
    "fillseq": FillseqTenant,
    "oob": OOBTenant,
}


def make_workload(name, params=None):
    if name not in WORKLOADS:
        raise ValueError(f"unknown tenant workload {name!r}; "
                         f"known: {sorted(WORKLOADS)}")
    return WORKLOADS[name](params)


@dataclass
class TenantPlan:
    """One tenant's role in a mixed run."""

    workload: str
    qos: str = "fg"
    params: dict = None
    jobs: int = 1


@dataclass
class TenantRecord:
    """Everything observable about one tenant after a mixed run."""

    tenant_id: int
    name: str
    qos: str
    workload: str
    verified: bool
    output_digest: str
    errors: list
    golden: dict
    carveout_digest: str
    pages_accessed: int
    translations: int
    jobs_completed: int
    jobs_failed: int
    dispatches: int
    preemptions: int
    wait_ticks: int

    @property
    def failed(self):
        return bool(self.errors)


@dataclass
class MixedRunResult:
    """A finished mixed run: platform handle plus per-tenant records."""

    platform: object
    records: dict  # tenant_id -> TenantRecord
    injector: object = None
    engine_mode: str = "fast"

    @property
    def driver(self):
        return self.platform.driver

    def counters(self):
        driver = self.driver
        counts = {
            "driver.retries": driver.retries,
            "driver.resets": driver.resets,
            "driver.soft_stops": driver.soft_stops,
            "driver.hard_stops": driver.hard_stops,
            "driver.faults_unrecovered": driver.faults_unrecovered,
            "driver.as_switches": driver.as_switches,
            "driver.preemptions": driver.preemptions,
            "arbiter.dispatched": driver.arbiter.dispatched,
            "arbiter.promotions": driver.arbiter.promotions,
        }
        if self.injector is not None:
            counts["inject.total"] = self.injector.total_fired
        return counts


def _digest(chunks):
    digest = hashlib.sha256()
    for chunk in chunks:
        digest.update(chunk)
    return digest.hexdigest()


def tenancy_config(tenant_plans, arbiter=None):
    """The driver-level :class:`TenancyConfig` for *tenant_plans* — the
    solo baseline reuses it verbatim so carve-out bases and VA layout
    match the mixed run exactly."""
    return TenancyConfig(
        [TenantSpec(f"tenant{i}", qos=plan.qos)
         for i, plan in enumerate(tenant_plans)],
        arbiter=arbiter)


def run_mixed(tenant_plans, engine_mode="fast", num_host_threads=1,
              active=None, plan=None, seed=0, arbiter=None):
    """Run one mixed multi-tenant campaign; returns a MixedRunResult.

    Args:
        tenant_plans: list of :class:`TenantPlan`, one per tenant.
        engine_mode: one of :data:`ENGINE_MODES`.
        num_host_threads: simulator execution units.
        active: tenant ids that actually run (default: all). Inactive
            tenants still exist — same carve-outs, same VA plan — they
            just never touch the GPU. ``active={v}`` is the solo
            baseline for tenant ``v``.
        plan: optional :class:`FaultPlan` (specs may carry ``tenant=``
            so an attacker's faults never target anyone else).
        seed: input-data seed (per-tenant RNG derives from it).
        arbiter: optional :class:`ArbiterPolicy`.
    """
    engine, fast_path = ENGINE_MODES[engine_mode]
    config = PlatformConfig(
        gpu=GPUConfig(engine=engine, num_host_threads=num_host_threads),
        tenancy=tenancy_config(tenant_plans, arbiter=arbiter))
    platform = MobilePlatform(config)
    platform.gpu.mmu.fast_path_enabled = fast_path
    platform.initialize()
    driver = platform.driver
    injector = None
    if plan is not None:
        injector = FaultInjector(plan)
        platform.attach_injector(injector)

    if active is None:
        active = range(len(tenant_plans))
    active = sorted(set(active))

    sessions = {}
    for tenant_id in active:
        tenant_plan = tenant_plans[tenant_id]
        tenant = driver.tenant(tenant_id)
        context = Context(platform=platform, tenant=tenant)
        queue = CommandQueue(context)
        workload = make_workload(tenant_plan.workload, tenant_plan.params)
        rng = np.random.default_rng(seed * 1_000_003 + tenant_id)
        state = workload.setup(context, queue, rng)
        sessions[tenant_id] = {
            "workload": workload, "context": context, "queue": queue,
            "state": state, "jobs": [],
        }

    # submissions interleave round-robin across tenants so the arbiter
    # always sees the full contention picture
    max_jobs = max((tenant_plans[i].jobs for i in active), default=0)
    for round_index in range(max_jobs):
        for tenant_id in active:
            if round_index < tenant_plans[tenant_id].jobs:
                session = sessions[tenant_id]
                session["jobs"].append(session["workload"].submit(
                    session["context"], session["queue"],
                    session["state"]))

    driver.drain()

    golden = platform.stats_registry.snapshot(golden_only=True)
    records = {}
    for tenant_id in active:
        session = sessions[tenant_id]
        workload = session["workload"]
        tenant = driver.tenant(tenant_id)
        errors = [f"{type(job.error).__name__}: {job.error}"
                  for job in session["jobs"] if job.error is not None]
        undone = [job for job in session["jobs"] if not job.done]
        if undone:
            errors.append(f"{len(undone)} jobs never completed")
        expects_failure = getattr(workload, "expects_failure", False)
        outputs, verified = [], False
        if not errors and not expects_failure:
            try:
                outputs = workload.collect(session["context"],
                                           session["queue"],
                                           session["state"])
                verified = workload.check(outputs,
                                          workload.reference(
                                              session["state"]))
            except SimError as exc:
                errors.append(f"{type(exc).__name__}: {exc}")
        elif expects_failure:
            verified = bool(errors)  # the attacker is *supposed* to fault
        prefix = f"tenant{tenant_id}."
        records[tenant_id] = TenantRecord(
            tenant_id=tenant_id,
            name=tenant.name,
            qos=tenant.qos.name,
            workload=workload.name,
            verified=verified,
            output_digest=_digest(
                np.ascontiguousarray(np.asarray(out)).tobytes()
                for out in outputs),
            errors=errors,
            golden={key: value for key, value in golden.items()
                    if key.startswith(prefix)},
            carveout_digest=platform.memory.carveout_digest(
                f"tenant{tenant_id}"),
            pages_accessed=platform.gpu.mmu.pages_accessed_in(
                tenant.as_id),
            translations=tenant.translations,
            jobs_completed=tenant.jobs_completed,
            jobs_failed=tenant.jobs_failed,
            dispatches=tenant.dispatches,
            preemptions=tenant.preemptions,
            wait_ticks=tenant.wait_ticks,
        )
    return MixedRunResult(platform=platform, records=records,
                          injector=injector, engine_mode=engine_mode)


def solo_baseline(tenant_plans, victim, engine_mode="fast",
                  num_host_threads=1, seed=0, arbiter=None):
    """The isolation reference: the same tenancy shape with only
    *victim* active. Identical carve-out bases and VA layout make its
    record byte-comparable to the mixed run's."""
    return run_mixed(tenant_plans, engine_mode=engine_mode,
                     num_host_threads=num_host_threads, active=[victim],
                     seed=seed, arbiter=arbiter)


def check_isolation(multi_record, solo_record):
    """Compare a tenant's mixed-run record against its solo baseline;
    returns a list of human-readable differences (empty == isolated)."""
    diffs = []
    if multi_record.errors:
        diffs.append(f"victim errored in mixed run: {multi_record.errors}")
    if not multi_record.verified:
        diffs.append("victim outputs failed verification in mixed run")
    if multi_record.output_digest != solo_record.output_digest:
        diffs.append("victim outputs differ from solo run")
    if multi_record.carveout_digest != solo_record.carveout_digest:
        diffs.append("victim carve-out memory image differs from solo run")
    if multi_record.golden != solo_record.golden:
        changed = sorted(
            key for key in
            set(multi_record.golden) | set(solo_record.golden)
            if multi_record.golden.get(key) != solo_record.golden.get(key))
        diffs.append(f"victim golden stats differ from solo run: "
                     f"{changed[:8]}")
    return diffs


def fairness_report(result, title="tenants"):
    """Human-readable fairness table for a finished mixed run."""
    driver = result.driver
    total_dispatches = max(driver.arbiter.dispatched, 1)
    lines = [
        f"{title}: engine={result.engine_mode} "
        f"tenants={len(result.records)} "
        f"dispatches={driver.arbiter.dispatched} "
        f"promotions={driver.arbiter.promotions} "
        f"as_switches={driver.as_switches} resets={driver.resets}",
        "  id name      qos  workload   jobs ok/fail  disp  preempt "
        "wait  slot%  verified",
    ]
    for tenant_id in sorted(result.records):
        record = result.records[tenant_id]
        slot_share = 100.0 * record.dispatches / total_dispatches
        lines.append(
            f"  {record.tenant_id:>2} {record.name:<9} "
            f"{record.qos:<4} {record.workload:<10} "
            f"{record.jobs_completed:>4}/{record.jobs_failed:<5} "
            f"{record.dispatches:>5} {record.preemptions:>7} "
            f"{record.wait_ticks:>4} {slot_share:>5.1f}  "
            f"{'yes' if record.verified else 'NO'}")
    starving = [record for record in result.records.values()
                if record.jobs_completed == 0 and not record.failed
                and record.dispatches == 0]
    if starving:
        lines.append(f"  STARVED tenants: "
                     f"{[record.tenant_id for record in starving]}")
    return "\n".join(lines)


# -- adversarial cross-tenant scenarios ---------------------------------------

#: scenario -> expected outcome class ("isolate": the victim must match
#: its solo baseline whatever happens to the attacker)
ADVERSARIAL_SCENARIOS = {
    "xtenant-mmu": "isolate",
    "xtenant-hang": "isolate",
    "xtenant-irq-lost": "isolate",
    "xtenant-oob": "isolate",
}

#: scenarios where the attacker itself is expected to fail cleanly
_ATTACKER_FAILS = {"xtenant-mmu", "xtenant-hang", "xtenant-oob"}


def _adversarial_plans(scenario, victim="sgemm"):
    """Victim (fg, two jobs) + attacker. The attacker runs in the
    real-time class so its faults land *before and between* the victim's
    dispatches — including the GPU resets at the top of the ladder."""
    attacker_workload = {
        "xtenant-mmu": "divergent",
        "xtenant-hang": "divergent",
        "xtenant-irq-lost": "divergent",
        "xtenant-oob": "oob",
    }[scenario]
    return [TenantPlan(victim, qos="fg", jobs=2),
            TenantPlan(attacker_workload, qos="rt", jobs=1)]


def _adversarial_plan(scenario, rng, tenant_plans, attacker_id,
                      engine_mode, num_host_threads, seed):
    """Derive the attacker-scoped fault plan (None for pure-OOB)."""
    if scenario == "xtenant-oob":
        return None
    if scenario == "xtenant-mmu":
        # probe the attacker solo for its touched pages, then arm a
        # persistent fault on one of them — tagged with the attacker's
        # address space, exactly as the MMU keys its accesses
        probe = run_mixed(tenant_plans, engine_mode=engine_mode,
                          num_host_threads=num_host_threads,
                          active=[attacker_id], seed=seed)
        tagged = sorted(
            page for page in probe.platform.gpu.mmu.pages_accessed
            if page >> AS_TAG_SHIFT == attacker_id)
        spec = FaultSpec("mmu.page", key=int(rng.choice(tagged)),
                         count=None, tenant=attacker_id,
                         params={"kind": "translation", "access": "w"})
    elif scenario == "xtenant-hang":
        groups = make_workload(
            tenant_plans[attacker_id].workload,
            tenant_plans[attacker_id].params).total_groups()
        spec = FaultSpec("core.hang",
                         key=int(rng.integers(0, groups)),
                         count=None, tenant=attacker_id)
    elif scenario == "xtenant-irq-lost":
        spec = FaultSpec("irq.lost", count=1, tenant=attacker_id)
    else:
        raise ValueError(f"unknown adversarial scenario {scenario!r}")
    return FaultPlan([spec], name=scenario)


def run_adversarial(scenario, seed, victim="sgemm", engine_mode="fast",
                    num_host_threads=1, check_determinism=False):
    """One attacker-vs-victim case; returns ``(ok, detail, counters)``.

    The victim's mixed-run record must match its solo baseline in
    outputs, golden stats subtree and carve-out image; the attacker
    must fail cleanly (or, for recoverable scenarios, complete) without
    the dispatch loop ever tearing down.
    """
    if scenario not in ADVERSARIAL_SCENARIOS:
        raise ValueError(f"unknown adversarial scenario {scenario!r}; "
                         f"known: {sorted(ADVERSARIAL_SCENARIOS)}")
    # sha256-derived, NOT hash(): plan keys must reproduce across
    # processes (farm workers, reproducer replays)
    rng = np.random.default_rng(int.from_bytes(
        hashlib.sha256(f"{scenario}:{victim}:{seed}".encode())
        .digest()[:8], "little"))
    tenant_plans = _adversarial_plans(scenario, victim=victim)
    victim_id, attacker_id = 0, 1
    plan = _adversarial_plan(scenario, rng, tenant_plans, attacker_id,
                             engine_mode, num_host_threads, seed)

    solo = solo_baseline(tenant_plans, victim_id,
                         engine_mode=engine_mode,
                         num_host_threads=num_host_threads, seed=seed)
    multi = run_mixed(tenant_plans, engine_mode=engine_mode,
                      num_host_threads=num_host_threads, plan=plan,
                      seed=seed)
    counters = multi.counters()

    diffs = check_isolation(multi.records[victim_id],
                            solo.records[victim_id])
    attacker = multi.records[attacker_id]
    if scenario in _ATTACKER_FAILS:
        if not attacker.errors:
            diffs.append("attacker was expected to fail cleanly but "
                         "completed")
    elif attacker.errors or not attacker.verified:
        diffs.append(f"attacker failed a recoverable scenario: "
                     f"{attacker.errors}")
    if plan is not None and multi.injector.total_fired == 0:
        diffs.append("attacker plan never fired")

    if not diffs and check_determinism:
        repeat = run_mixed(tenant_plans, engine_mode=engine_mode,
                           num_host_threads=num_host_threads, plan=plan,
                           seed=seed)
        if repeat.counters() != counters:
            diffs.append("non-deterministic counters on replay")
        for tenant_id, record in multi.records.items():
            twin = repeat.records[tenant_id]
            if (record.output_digest != twin.output_digest
                    or record.golden != twin.golden):
                diffs.append(f"non-deterministic tenant {tenant_id} "
                             "record on replay")
        if (multi.injector is not None
                and repeat.injector.log != multi.injector.log):
            diffs.append("non-deterministic firing log on replay")

    ok = not diffs
    detail = ("victim isolated" if ok else "; ".join(diffs))
    return ok, detail, counters


# -- farm case provider (sweep kind "tenants") --------------------------------

#: (workload, qos) roles cycled to populate an N-tenant mixed campaign;
#: spans three QoS classes and a long bg job that actually gets sliced
DEFAULT_MIX = (
    ("sgemm", "fg"),
    ("divergent", "bg"),
    ("fillseq", "fg"),
    ("divergent", "rt"),
)


def default_plans(count, jobs=2):
    """The standard N-tenant mixed campaign (cycling DEFAULT_MIX)."""
    plans = []
    for index in range(count):
        workload, qos = DEFAULT_MIX[index % len(DEFAULT_MIX)]
        params = {"n": 8192} if (workload, qos) == ("divergent", "bg") \
            else None
        plans.append(TenantPlan(workload, qos=qos, params=params,
                                jobs=jobs))
    return plans


def golden_fingerprint(records):
    """A stable integer fingerprint of every tenant's golden subtree —
    comparable across engine modes and worker counts in farm reports."""
    blob = repr(sorted(
        (tenant_id, sorted(record.golden.items()))
        for tenant_id, record in records.items())).encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:6], "little")


def farm_case_specs(tenants=(4,), engine_modes=("fast",), seeds=1,
                    threads=(1,), jobs=2):
    """Case-provider interface for the simulation farm: one mixed
    fairness campaign per ``tenants × engine_modes × seeds × threads``
    grid point, each independently executable by :func:`run_farm_case`.
    ``seeds`` is a count or an explicit list."""
    for mode in engine_modes:
        if mode not in ENGINE_MODES:
            raise ValueError(f"unknown engine mode {mode!r}")
    seed_values = range(seeds) if isinstance(seeds, int) else list(seeds)
    for count in tenants:
        for mode in engine_modes:
            for seed in seed_values:
                for num_threads in threads:
                    yield {
                        "tenants": int(count),
                        "engine_mode": mode,
                        "seed": int(seed),
                        "num_host_threads": int(num_threads),
                        "jobs": int(jobs),
                    }


def run_farm_case(spec, artifact_dir=None):
    """Execute one mixed-campaign spec (inside a farm worker); returns
    ``(ok, detail, counters, artifacts)``. The fairness report is the
    artifact; the golden fingerprint lands in the counters so identical
    campaigns on different engines/worker counts are comparable
    straight from the farm report."""
    import os

    plans = default_plans(spec.get("tenants", 4),
                          jobs=spec.get("jobs", 2))
    result = run_mixed(plans, engine_mode=spec.get("engine_mode", "fast"),
                       num_host_threads=spec.get("num_host_threads", 1),
                       seed=spec.get("seed", 0))
    bad = [record for record in result.records.values()
           if record.errors or not record.verified]
    detail = "; ".join(
        f"tenant{record.tenant_id}: "
        f"{'; '.join(record.errors) or 'verification failed'}"
        for record in bad[:3])
    counters = {key.replace(".", "_"): int(value)
                for key, value in result.counters().items()}
    counters["tenants"] = len(result.records)
    counters["jobs_completed"] = sum(
        record.jobs_completed for record in result.records.values())
    counters["golden_fingerprint"] = golden_fingerprint(result.records)
    artifacts = []
    if artifact_dir is not None:
        from repro.checkpoint.format import atomic_write_text

        os.makedirs(artifact_dir, exist_ok=True)
        path = os.path.join(artifact_dir, "fairness.txt")
        atomic_write_text(path, fairness_report(result) + "\n")
        artifacts.append("fairness.txt")
    return not bad, detail, counters, artifacts
