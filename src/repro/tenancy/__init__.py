"""Multi-tenant GPU harness: mixed runs, solo baselines, isolation checks."""

from repro.tenancy.harness import (
    ADVERSARIAL_SCENARIOS,
    ENGINE_MODES,
    WORKLOADS,
    MixedRunResult,
    TenantPlan,
    TenantRecord,
    check_isolation,
    fairness_report,
    make_workload,
    run_adversarial,
    run_mixed,
    solo_baseline,
    tenancy_config,
)

__all__ = [
    "ADVERSARIAL_SCENARIOS",
    "ENGINE_MODES",
    "WORKLOADS",
    "MixedRunResult",
    "TenantPlan",
    "TenantRecord",
    "check_isolation",
    "fairness_report",
    "make_workload",
    "run_adversarial",
    "run_mixed",
    "solo_baseline",
    "tenancy_config",
]
