"""A Multi2Sim-style functional GPU simulator.

Models the execution strategy of Multi2Sim's functional mode as the paper
describes it (Fig. 2c):

- the OpenCL runtime is *intercepted*: kernels are launched by a direct
  function call with host-managed buffers — no driver, no job descriptors,
  no GPU MMU, no interrupts (so it cannot produce the paper's system-level
  statistics);
- threads execute *scalars*, one work-item at a time (no quad warps);
- instructions are re-decoded from the binary on every clause visit (no
  decode cache);
- only instruction breakdowns and job dimensions are reported.

It executes the *same* kernel binaries as the full-system simulator, so
outputs are comparable bit-for-bit; only the execution machinery differs —
which is exactly what the Fig. 8 speed comparison measures.
"""

import struct

import numpy as np

from repro.errors import GuestError
from repro.gpu.encoding import decode_clause
from repro.gpu.isa import (
    CONST_BASE,
    NUM_GRF,
    REG_GLOBAL_ID,
    REG_GROUP_FLAT,
    REG_GROUP_ID,
    REG_LANE,
    REG_LOCAL_ID,
    TEMP_BASE,
    CmpMode,
    Op,
    Tail,
    is_const,
    is_grf,
    is_temp,
)

_F32 = struct.Struct("<f")
_U32 = struct.Struct("<I")


def _to_f(bits):
    return _F32.unpack(_U32.pack(bits & 0xFFFFFFFF))[0]


def _from_f(value):
    return _U32.unpack(_F32.pack(np.float32(value)))[0]


def _to_i(bits):
    bits &= 0xFFFFFFFF
    return bits - (1 << 32) if bits & 0x80000000 else bits


def _is_nan_bits(bits):
    bits &= 0xFFFFFFFF
    return (bits & 0x7F800000) == 0x7F800000 and (bits & 0x007FFFFF) != 0


# Float ops whose NaN *payload* propagation differs between NumPy's scalar
# and vector code paths (which operand's payload survives, and whether
# signalling NaNs are quieted). The quad engines compute on vectors, so for
# NaN inputs the scalar ALU delegates to a 1-element vector computation.
# For the arithmetic ops that computation is width-independent (each lane
# is one hardware add/mul with a fixed NaN rule); fmin/fmax are instead
# built from compares and blends whose payload choice varies with the SIMD
# lane position, so their NaN results are canonicalized outright (Arm
# default-NaN mode) rather than propagated.
_NAN_PROPAGATING = {Op.FADD, Op.FSUB, Op.FMUL, Op.FMA, Op.FMIN, Op.FMAX}
_QNAN_BITS = 0x7FC00000  # canonical quiet NaN


def _vector_alu_f(op, a, b, c):
    va = np.array([a & 0xFFFFFFFF], dtype=np.uint32).view(np.float32)
    vb = np.array([b & 0xFFFFFFFF], dtype=np.uint32).view(np.float32)
    with np.errstate(all="ignore"):
        if op is Op.FADD:
            result = va + vb
        elif op is Op.FSUB:
            result = va - vb
        elif op is Op.FMUL:
            result = va * vb
        elif op is Op.FMA:
            vc = np.array([c & 0xFFFFFFFF], dtype=np.uint32).view(np.float32)
            result = va * vb + vc
        elif op is Op.FMIN:
            result = np.fmin(va, vb)
            if np.isnan(result[0]):
                return _QNAN_BITS
        else:  # FMAX
            result = np.fmax(va, vb)
            if np.isnan(result[0]):
                return _QNAN_BITS
    return int(result.astype(np.float32).view(np.uint32)[0])


class M2SStats:
    """Multi2Sim-style minimal report: instruction breakdown + dimensions."""

    def __init__(self):
        self.arith = 0
        self.load_store = 0
        self.nop = 0
        self.control_flow = 0
        self.threads = 0

    @property
    def total(self):
        return self.arith + self.load_store + self.nop + self.control_flow


class _Thread:
    __slots__ = ("regs", "temps", "pc", "at_barrier", "done")

    def __init__(self):
        self.regs = [0] * NUM_GRF
        self.temps = [0, 0]
        self.pc = 0
        self.at_barrier = False
        self.done = False


class M2SSimulator:
    """Functional-mode baseline simulator with an intercepted runtime."""

    def __init__(self, memory_size=1 << 26, instrument=True, tracer=None,
                 capture_registers=False):
        self.memory = bytearray(memory_size)
        self._next_alloc = 4096
        self.instrument = instrument
        self.stats = M2SStats()
        self.decodes = 0
        self.tracer = tracer
        # retired architectural state keyed by global-id triple, filled when
        # capture_registers is set (the conformance harness compares it
        # against the quad engines' final warp registers)
        self.retired_registers = {} if capture_registers else None

    # -- intercepted runtime: host-managed flat memory -------------------------

    def alloc(self, nbytes):
        base = self._next_alloc
        self._next_alloc += (nbytes + 63) & ~63
        if self._next_alloc > len(self.memory):
            raise GuestError("m2s memory exhausted")
        return base

    def write(self, addr, array):
        data = np.ascontiguousarray(array).tobytes()
        self.memory[addr:addr + len(data)] = data

    def read(self, addr, count, dtype=np.float32):
        nbytes = count * np.dtype(dtype).itemsize
        return np.frombuffer(bytes(self.memory[addr:addr + nbytes]),
                             dtype=dtype).copy()

    def buffer_from_array(self, array):
        addr = self.alloc(np.ascontiguousarray(array).nbytes)
        self.write(addr, array)
        return addr

    def place(self, addr, array):
        """Write *array* at a caller-chosen address (used by the validation
        harness to mirror the full-system simulator's GPU VA layout so that
        address computations trace identically)."""
        data = np.ascontiguousarray(array)
        if addr + data.nbytes > len(self.memory):
            raise GuestError(f"placement at 0x{addr:x} exceeds m2s memory")
        self.write(addr, data)
        return addr

    # -- kernel launch (direct call, no driver) ----------------------------------

    def run_kernel(self, compiled_kernel, global_size, local_size, args):
        """Launch a compiled kernel; *args* are u32 values (addresses from
        :meth:`alloc` for buffers, raw bits for scalars, byte offsets for
        local pointers)."""
        global_size = tuple(global_size) + (1,) * (3 - len(global_size))
        local_size = tuple(local_size) + (1,) * (3 - len(local_size))
        num_groups = tuple(g // l for g, l in zip(global_size, local_size))
        uniforms = list(global_size) + list(local_size) + list(num_groups)
        uniforms.append(sum(1 for g in global_size if g > 1) or 1)
        uniforms.extend(int(a) & 0xFFFFFFFF for a in args)

        binary = compiled_kernel.binary
        magic, num_clauses = struct.unpack_from("<II", binary, 0)
        offsets = struct.unpack_from(f"<{num_clauses}I", binary, 8)

        threads_per_group = local_size[0] * local_size[1] * local_size[2]
        local_bytes = (
            compiled_kernel.local_static_size
            + compiled_kernel.scratch_per_thread * threads_per_group
            + 4096  # dynamic local args live above the static layout
        )

        total_groups = num_groups[0] * num_groups[1] * num_groups[2]
        for flat_group in range(total_groups):
            self._run_group(binary, offsets, uniforms, flat_group,
                            num_groups, local_size, local_bytes)
        if self.instrument:
            self.stats.threads += (
                global_size[0] * global_size[1] * global_size[2]
            )

    def _run_group(self, binary, offsets, uniforms, flat_group, num_groups,
                   local_size, local_bytes):
        gx = flat_group % num_groups[0]
        gy = (flat_group // num_groups[0]) % num_groups[1]
        gz = flat_group // (num_groups[0] * num_groups[1])
        lx_size, ly_size, lz_size = local_size
        threads = []
        count = lx_size * ly_size * lz_size
        for linear in range(count):
            lx = linear % lx_size
            ly = (linear // lx_size) % ly_size
            lz = linear // (lx_size * ly_size)
            thread = _Thread()
            regs = thread.regs
            regs[REG_GLOBAL_ID] = gx * lx_size + lx
            regs[REG_GLOBAL_ID + 1] = gy * ly_size + ly
            regs[REG_GLOBAL_ID + 2] = gz * lz_size + lz
            regs[REG_LOCAL_ID] = lx
            regs[REG_LOCAL_ID + 1] = ly
            regs[REG_LOCAL_ID + 2] = lz
            regs[REG_GROUP_ID] = gx
            regs[REG_GROUP_ID + 1] = gy
            regs[REG_GROUP_ID + 2] = gz
            regs[REG_GROUP_FLAT] = flat_group
            regs[REG_LANE] = linear & 3
            threads.append(thread)

        local = [0] * (local_bytes // 4)
        while True:
            progressed = False
            for thread in threads:
                if thread.done or thread.at_barrier:
                    continue
                self._run_thread(thread, binary, offsets, uniforms, local)
                progressed = True
            if all(t.done for t in threads):
                if self.retired_registers is not None:
                    for thread in threads:
                        regs = thread.regs
                        key = (regs[REG_GLOBAL_ID], regs[REG_GLOBAL_ID + 1],
                               regs[REG_GLOBAL_ID + 2])
                        self.retired_registers[key] = (
                            tuple(regs), tuple(thread.temps))
                return
            if all(t.done or t.at_barrier for t in threads):
                for thread in threads:
                    thread.at_barrier = False
            elif not progressed:  # pragma: no cover - safety net
                raise GuestError("m2s scheduling deadlock")

    def _run_thread(self, thread, binary, offsets, uniforms, local):
        stats = self.stats if self.instrument else None
        steps = 0
        while not thread.done and not thread.at_barrier:
            # per-visit re-decode: the Multi2Sim behaviour our decode cache
            # is contrasted against
            clause, _end = decode_clause(binary, offsets[thread.pc])
            self.decodes += 1
            for fma, add in clause.tuples:
                for instr in (fma, add):
                    if instr.op is Op.NOP:
                        if stats:
                            stats.nop += 1
                        continue
                    self._execute(thread, clause, instr, uniforms, local, stats)
            tail = clause.tail
            if tail is Tail.FALLTHROUGH:
                thread.pc += 1
            elif tail is Tail.END:
                thread.done = True
            elif tail is Tail.JUMP:
                thread.pc = clause.target
                if stats:
                    stats.control_flow += 1
            elif tail is Tail.BARRIER:
                thread.pc += 1
                thread.at_barrier = True
            else:
                cond = thread.regs[clause.cond_reg] != 0
                if tail is Tail.BRANCH_Z:
                    cond = not cond
                thread.pc = clause.target if cond else thread.pc + 1
                if stats:
                    stats.control_flow += 1
            steps += 1
            if steps > 1_000_000:
                raise GuestError("m2s thread stuck")

    # -- scalar instruction execution ------------------------------------------------

    def _read_op(self, thread, clause, operand):
        if is_grf(operand):
            return thread.regs[operand]
        if is_temp(operand):
            return thread.temps[operand - TEMP_BASE]
        if is_const(operand):
            return clause.constants[operand - CONST_BASE]
        raise GuestError(f"bad operand {operand}")

    def _write_op(self, thread, operand, bits):
        bits &= 0xFFFFFFFF
        if is_grf(operand):
            thread.regs[operand] = bits
        elif is_temp(operand):
            thread.temps[operand - TEMP_BASE] = bits
        else:
            raise GuestError(f"bad destination {operand}")

    def _mem_load(self, addr, local_mem, is_local):
        if is_local:
            return local_mem[addr >> 2]
        return _U32.unpack_from(self.memory, addr)[0]

    def _mem_store(self, addr, bits, local_mem, is_local):
        if is_local:
            local_mem[addr >> 2] = bits & 0xFFFFFFFF
        else:
            _U32.pack_into(self.memory, addr, bits & 0xFFFFFFFF)

    def _execute(self, thread, clause, instr, uniforms, local, stats):
        op = instr.op
        tracer = self.tracer
        if op is Op.LD:
            if stats:
                stats.load_store += 1
            addr = self._read_op(thread, clause, instr.srca)
            for element in range(instr.mem_width):
                bits = self._mem_load(addr + 4 * element, local,
                                      instr.mem_is_local)
                self._write_op(thread, instr.dst + element, bits)
                if tracer is not None:
                    tracer.record_scalar(thread, instr, bits, element=element)
            return
        if op is Op.ST:
            if stats:
                stats.load_store += 1
            addr = self._read_op(thread, clause, instr.srca)
            for element in range(instr.mem_width):
                bits = self._read_op(thread, clause, instr.srcb + element)
                self._mem_store(addr + 4 * element, bits, local,
                                instr.mem_is_local)
                if tracer is not None:
                    tracer.record_scalar(thread, instr, bits, element=element)
            return
        if op is Op.LDU:
            if stats:
                stats.load_store += 1
            self._write_op(thread, instr.dst, uniforms[instr.imm])
            if tracer is not None:
                tracer.record_scalar(thread, instr, uniforms[instr.imm])
            return
        if op is Op.ATOM:
            from repro.gpu.isa import ATOM_MODE_SHIFT
            from repro.gpu.warp import _atomic_apply

            if stats:
                stats.load_store += 1
            addr = self._read_op(thread, clause, instr.srca)
            operand = self._read_op(thread, clause, instr.srcb)
            mode = (instr.flags >> ATOM_MODE_SHIFT) & 0x7
            current = self._mem_load(addr, local, instr.mem_is_local)
            updated = _atomic_apply(mode, current, operand & 0xFFFFFFFF)
            self._mem_store(addr, updated, local, instr.mem_is_local)
            self._write_op(thread, instr.dst, current)
            if tracer is not None:
                tracer.record_scalar(thread, instr, current)
            return
        if stats:
            stats.arith += 1
        a = self._read_op(thread, clause, instr.srca) \
            if instr.srca != 255 else 0
        b = self._read_op(thread, clause, instr.srcb) \
            if instr.srcb != 255 else 0
        c = self._read_op(thread, clause, instr.srcc) \
            if instr.srcc != 255 else 0
        result = self._alu(op, instr, a, b, c)
        self._write_op(thread, instr.dst, result)
        if tracer is not None:
            tracer.record_scalar(thread, instr, result)

    @staticmethod
    def _alu(op, instr, a, b, c):
        if op in _NAN_PROPAGATING and (
                _is_nan_bits(a) or _is_nan_bits(b)
                or (op is Op.FMA and _is_nan_bits(c))):
            return _vector_alu_f(op, a, b, c)
        with np.errstate(all="ignore"):
            if op is Op.MOV:
                return a
            if op is Op.FADD:
                return _from_f(np.float32(_to_f(a)) + np.float32(_to_f(b)))
            if op is Op.FSUB:
                return _from_f(np.float32(_to_f(a)) - np.float32(_to_f(b)))
            if op is Op.FMUL:
                return _from_f(np.float32(_to_f(a)) * np.float32(_to_f(b)))
            if op is Op.FMA:
                return _from_f(np.float32(_to_f(a)) * np.float32(_to_f(b))
                               + np.float32(_to_f(c)))
            if op is Op.FMIN:
                # IEEE fmin semantics (NaN-ignoring, -0 < +0), matching the
                # quad engine's np.fmin
                return _from_f(np.fmin(np.float32(_to_f(a)),
                                       np.float32(_to_f(b))))
            if op is Op.FMAX:
                return _from_f(np.fmax(np.float32(_to_f(a)),
                                       np.float32(_to_f(b))))
            if op is Op.FABS:
                return a & 0x7FFFFFFF
            if op is Op.FNEG:
                return a ^ 0x80000000
            if op is Op.FFLOOR:
                return _from_f(np.floor(np.float32(_to_f(a))))
            if op is Op.FRCP:
                return _from_f(np.float32(1.0) / np.float32(_to_f(a)))
            if op is Op.FSQRT:
                return _from_f(np.sqrt(np.float32(_to_f(a))))
            if op is Op.FRSQ:
                return _from_f(np.float32(1.0) / np.sqrt(np.float32(_to_f(a))))
            if op is Op.FEXP:
                return _from_f(np.exp(np.float32(_to_f(a))))
            if op is Op.FLOG:
                return _from_f(np.log(np.float32(_to_f(a))))
            if op is Op.FSIN:
                return _from_f(np.sin(np.float32(_to_f(a))))
            if op is Op.FCOS:
                return _from_f(np.cos(np.float32(_to_f(a))))
            if op is Op.F2I:
                # saturating conversion; NaN -> 0 (matches the quad engine)
                value = _to_f(a)
                if value != value:
                    return 0
                value = max(-2147483648.0, min(2147483647.0, value))
                return int(value) & 0xFFFFFFFF
            if op is Op.F2U:
                value = _to_f(a)
                if value != value:
                    return 0
                value = max(0.0, min(4294967295.0, value))
                return int(value) & 0xFFFFFFFF
            if op is Op.I2F:
                return _from_f(float(_to_i(a)))
            if op is Op.U2F:
                return _from_f(float(a & 0xFFFFFFFF))
        if op is Op.IADD:
            return a + b
        if op is Op.ISUB:
            return a - b
        if op is Op.IMUL:
            return a * b
        if op is Op.IAND:
            return a & b
        if op is Op.IOR:
            return a | b
        if op is Op.IXOR:
            return a ^ b
        if op is Op.ISHL:
            return a << (b & 31)
        if op is Op.ISHR:
            return (a & 0xFFFFFFFF) >> (b & 31)
        if op is Op.IASHR:
            return (_to_i(a) >> (b & 31)) & 0xFFFFFFFF
        if op is Op.IMIN:
            return min(_to_i(a), _to_i(b)) & 0xFFFFFFFF
        if op is Op.IMAX:
            return max(_to_i(a), _to_i(b)) & 0xFFFFFFFF
        if op is Op.UMIN:
            return min(a & 0xFFFFFFFF, b & 0xFFFFFFFF)
        if op is Op.UMAX:
            return max(a & 0xFFFFFFFF, b & 0xFFFFFFFF)
        if op is Op.IABS:
            return abs(_to_i(a)) & 0xFFFFFFFF
        if op is Op.IDIV:
            ia, ib = _to_i(a), _to_i(b)
            return (int(ia / ib) if ib else 0) & 0xFFFFFFFF
        if op is Op.IREM:
            ia, ib = _to_i(a), _to_i(b)
            return (ia - int(ia / ib) * ib if ib else 0) & 0xFFFFFFFF
        if op is Op.UDIV:
            ua, ub = a & 0xFFFFFFFF, b & 0xFFFFFFFF
            return ua // ub if ub else 0
        if op is Op.UREM:
            ua, ub = a & 0xFFFFFFFF, b & 0xFFFFFFFF
            return ua % ub if ub else 0
        if op is Op.CMP:
            return 1 if _compare(CmpMode(instr.flags), a, b) else 0
        if op is Op.SELECT:
            return a if c != 0 else b
        raise GuestError(f"m2s: unimplemented op {op!r}")


def _compare(mode, a, b):
    if mode <= CmpMode.FGE:
        fa, fb = _to_f(a), _to_f(b)
        return {
            CmpMode.FEQ: fa == fb, CmpMode.FNE: fa != fb, CmpMode.FLT: fa < fb,
            CmpMode.FLE: fa <= fb, CmpMode.FGT: fa > fb, CmpMode.FGE: fa >= fb,
        }[mode]
    if mode <= CmpMode.IGE:
        ia, ib = _to_i(a), _to_i(b)
        return {
            CmpMode.IEQ: ia == ib, CmpMode.INE: ia != ib, CmpMode.ILT: ia < ib,
            CmpMode.ILE: ia <= ib, CmpMode.IGT: ia > ib, CmpMode.IGE: ia >= ib,
        }[mode]
    ua, ub = a & 0xFFFFFFFF, b & 0xFFFFFFFF
    return {
        CmpMode.ULT: ua < ub, CmpMode.ULE: ua <= ub,
        CmpMode.UGT: ua > ub, CmpMode.UGE: ua >= ub,
    }[mode]
