"""Analytical GPU cost models for the Fig. 15 cross-platform study.

Fig. 15's point is that the six SGEMM optimisation steps — tuned for a
desktop NVIDIA GPU — change desktop and mobile runtimes in *uncorrelated*
(largely opposite) directions. We reproduce both sides with analytical
latency models fed by the simulator's instrumented statistics. Neither is
a cycle model of real silicon; each is the simplest model under which the
platform's documented first-order behaviours appear:

:class:`DesktopGPUModel` (the NVIDIA K20m stand-in)
    - DRAM traffic dominates; wide/coalesced accesses are discounted;
    - register blocking amortizes DRAM traffic (reuse discount);
    - on-chip shared memory is much cheaper than DRAM but not free;
    - the machine starves below thousands of resident threads.

:class:`MobileGPUModel` (the Mali-G71 stand-in)
    - compulsory DRAM traffic is set by the data *footprint* (mobile L2
      easily holds these tiles; repeated accesses hit on-chip);
    - local ("shared") memory is just core memory — it costs about the
      same as an L2 hit, so tiling into local buys little (the paper's
      Section V-E2 observation);
    - register pressure beyond the thread-capacity threshold serializes
      the core (Bifrost halves resident threads above 32 registers; we
      penalize above 16 for the scaled-down problem sizes);
    - no occupancy cliff: mobile GPUs saturate with few threads.
"""

from dataclasses import dataclass


@dataclass
class DesktopGPUModel:
    """Relative-latency model of a big discrete desktop GPU."""

    alu_cost: float = 0.02  # per arithmetic instruction
    dram_cost: float = 6.0  # per global access (uncoalesced baseline)
    wide_access_discount: float = 0.45  # wide/float4 transaction factor
    shared_cost: float = 1.2  # per local/shared access
    register_cost: float = 0.004  # per GRF access (nearly free)
    reuse_registers: float = 16.0  # register-blocking DRAM amortization
    min_occupancy_threads: int = 2048  # below this, the machine starves
    occupancy_slope: float = 0.15
    occupancy_cap: float = 1.0

    def estimate_cost(self, stats, registers_used, threads, wide_fraction=0.0):
        """Relative runtime for one kernel execution.

        Args:
            stats: a :class:`~repro.instrument.stats.JobStats`.
            registers_used: kernel register footprint.
            threads: total threads launched.
            wide_fraction: fraction of global accesses issued as wide
                (float4) transactions.
        """
        reuse = 1.0 + registers_used / self.reuse_registers
        global_cost = self.dram_cost * stats.main_mem_accesses * (
            1.0 - wide_fraction * (1.0 - self.wide_access_discount)
        ) / reuse
        shared = self.shared_cost * stats.local_mem_accesses
        alu = self.alu_cost * stats.arith_instrs
        regs = self.register_cost * (stats.grf_reads + stats.grf_writes)
        base = global_cost + shared + alu + regs
        if threads < self.min_occupancy_threads:
            shortfall = self.min_occupancy_threads / max(threads, 1) - 1.0
            base *= 1.0 + min(self.occupancy_cap,
                              self.occupancy_slope * shortfall)
        return base


@dataclass
class MobileGPUModel:
    """Relative-latency model of a mobile (Bifrost-like) GPU.

    Mobile GPUs are dominated by memory-system *issue* pressure: each
    load/store message occupies the LS pipe regardless of width (so
    vector accesses amortize), compulsory DRAM traffic is set by the data
    footprint (the L2 easily holds these tiles), local memory is ordinary
    core memory (tiling into it buys far less than on a desktop GPU), and
    exceeding the register-capacity knee halves the resident threads per
    execution engine — a hard serialization cliff (Bifrost drops from 4 to
    2 resident threads above 32 registers; the knee scales down with our
    problem sizes).
    """

    alu_cost: float = 0.03  # per arithmetic instruction
    dram_cost: float = 2.0  # per *footprint* element (compulsory misses)
    issue_cost: float = 1.0  # per global LS instruction issue
    local_cost: float = 0.25  # per local access (ordinary core memory)
    register_cost: float = 0.004
    reg_threshold: int = 20  # resident-thread capacity knee
    reg_penalty: float = 0.2

    def estimate_cost(self, stats, registers_used, footprint_elems):
        """Relative runtime for one kernel execution.

        Args:
            stats: a :class:`~repro.instrument.stats.JobStats`.
            registers_used: kernel register footprint.
            footprint_elems: distinct 32-bit elements the kernel touches
                in global memory (sets the compulsory DRAM traffic).
        """
        dram = self.dram_cost * footprint_elems
        issues = self.issue_cost * stats.ls_global_instrs
        local = self.local_cost * stats.local_mem_accesses
        alu = self.alu_cost * stats.arith_instrs
        regs = self.register_cost * (stats.grf_reads + stats.grf_writes)
        base = dram + issues + local + alu + regs
        if registers_used > self.reg_threshold:
            base *= 1.0 + self.reg_penalty * (registers_used - self.reg_threshold)
        return base
