"""Baseline executors the paper compares against.

- :mod:`repro.baselines.m2s` — a Multi2Sim-style functional GPU simulator:
  intercepted runtime (no driver/JM/MMU), scalar thread execution, and
  per-clause re-decode on every visit. Used for the Fig. 8/9 comparisons.
- :mod:`repro.baselines.native` — NumPy "native hardware" timing helpers
  (Fig. 7 slowdowns).
- :mod:`repro.baselines.desktopgpu` — an analytical desktop-GPU cost model
  standing in for the NVIDIA K20m of Fig. 15.
"""

from repro.baselines.m2s import M2SSimulator
from repro.baselines.native import native_seconds
from repro.baselines.desktopgpu import DesktopGPUModel, MobileGPUModel

__all__ = ["M2SSimulator", "native_seconds", "DesktopGPUModel",
           "MobileGPUModel"]
