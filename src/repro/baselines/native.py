"""Native-hardware timing stand-in.

The paper's Fig. 7 reports slowdowns relative to the HiKey960. Without the
board, the closest available "native" execution of each workload is its
vectorized NumPy reference — real computation at hardware speed on the
host. Slowdown ratios computed against it have the same *structure* as the
paper's (simulation wall time / native wall time), though the absolute
scale differs (documented in EXPERIMENTS.md).
"""

import time


def native_seconds(workload, repeats=3, min_seconds=1e-4):
    """Best-of-N wall time of the workload's NumPy reference.

    Very fast references are re-run in a loop until they accumulate
    *min_seconds*, so ratios aren't dominated by timer noise.
    """
    inputs = workload.prepare()
    best = float("inf")
    for _ in range(repeats):
        iterations = 0
        start = time.perf_counter()
        elapsed = 0.0
        while elapsed < min_seconds:
            workload.reference(inputs)
            iterations += 1
            elapsed = time.perf_counter() - start
        best = min(best, elapsed / iterations)
    return best
