"""Intercepted OpenCL runtime over the Multi2Sim-style baseline.

Mirrors the :mod:`repro.cl` API surface that workloads use, so every
Table-II workload runs unmodified on the baseline simulator — the Fig. 8
comparison then measures purely the execution-machinery difference
(full-system quad-warp decode-cached simulation vs intercepted scalar
re-decoding simulation) on identical binaries and identical host logic.

This is exactly the structure the paper criticizes in Fig. 2(c): OpenCL
calls are handled by a non-standard runtime and redirected straight into
the GPU model; there is no driver, no job manager, no MMU, so no
system-level statistics exist.
"""

import numpy as np

from repro.errors import CLError
from repro.clc import compile_source
from repro.baselines.m2s import M2SSimulator
from repro.cl.runtime import LocalMemory

_WORK_DIM_SLOTS = 10


class M2SBuffer:
    def __init__(self, context, nbytes):
        self.context = context
        self.nbytes = int(nbytes)
        self.addr = context.sim.alloc(self.nbytes)


class M2SContext:
    """Drop-in replacement for :class:`repro.cl.Context`."""

    def __init__(self, instrument=True):
        self.sim = M2SSimulator(instrument=instrument)
        self.cpu_seconds = 0.0

    @property
    def guest_instructions(self):
        return 0  # the baseline has no simulated CPU

    def alloc_buffer(self, nbytes):
        return M2SBuffer(self, nbytes)

    def buffer_from_array(self, array):
        array = np.ascontiguousarray(array)
        buffer = M2SBuffer(self, array.nbytes)
        self.sim.write(buffer.addr, array)
        return buffer

    def build_program(self, source, version=None, defines=None):
        return M2SProgram(self, source, version=version, defines=defines)


class M2SProgram:
    def __init__(self, context, source, version=None, defines=None):
        self.context = context
        self.compiled = compile_source(source, options=version, defines=defines)

    @property
    def kernel_names(self):
        return sorted(self.compiled.kernels)

    def kernel(self, name):
        return M2SKernel(self, self.compiled.kernel(name))


class M2SKernel:
    def __init__(self, program, compiled):
        self.program = program
        self.compiled = compiled
        self._args = [None] * len(compiled.params)
        self.last_stats = None

    @property
    def name(self):
        return self.compiled.name

    def set_arg(self, index, value):
        self._args[index] = value

    def set_args(self, *values):
        if len(values) != len(self._args):
            raise CLError(f"{self.name} takes {len(self._args)} args")
        for index, value in enumerate(values):
            self._args[index] = value


class M2SQueue:
    """Drop-in replacement for :class:`repro.cl.CommandQueue`."""

    def __init__(self, context):
        self.context = context
        self.kernels_launched = 0

    def enqueue_write_buffer(self, buffer, array):
        self.context.sim.write(buffer.addr, np.ascontiguousarray(array))

    def enqueue_read_buffer(self, buffer, dtype=np.uint8, count=None):
        nbytes = buffer.nbytes if count is None else \
            count * np.dtype(dtype).itemsize
        n = nbytes // np.dtype(dtype).itemsize
        return self.context.sim.read(buffer.addr, n, dtype)

    def enqueue_nd_range(self, kernel, global_size, local_size=None):
        if isinstance(global_size, int):
            global_size = (global_size,)
        global_size = tuple(global_size) + (1,) * (3 - len(global_size))
        if local_size is None:
            local_size = (min(64, global_size[0]), 1, 1)
        elif isinstance(local_size, int):
            local_size = (local_size,)
        local_size = tuple(local_size) + (1,) * (3 - len(local_size))
        threads_per_group = local_size[0] * local_size[1] * local_size[2]
        compiled = kernel.compiled
        local_cursor = (compiled.local_static_size
                        + compiled.scratch_per_thread * threads_per_group)
        args = []
        for (name, kind, ty), value in zip(compiled.params, kernel._args):
            if value is None:
                raise CLError(f"argument {name!r} of {kernel.name} unset")
            if kind == "buffer":
                args.append(value.addr)
            elif kind == "local_ptr":
                if not isinstance(value, LocalMemory):
                    raise CLError(f"argument {name!r} expects LocalMemory")
                args.append(local_cursor)
                local_cursor += (value.nbytes + 3) & ~3
            else:
                if ty.is_float:
                    args.append(int(np.float32(value).view(np.uint32)))
                else:
                    args.append(int(np.uint32(np.int64(int(value))
                                              & 0xFFFFFFFF)))
        self.context.sim.run_kernel(compiled, global_size, local_size, args)
        self.kernels_launched += 1
        return None

    def finish(self):
        return None
