"""Binary encoding of GPU shader programs.

The simulated GPU executes *binary* shader programs from guest memory, just
as the paper's simulator executes the exact Mali binaries produced by the
vendor JIT compiler. The JIT compiler (:mod:`repro.clc`) encodes to this
format, the driver places the bytes in GPU-visible memory, and the shader
cores decode from memory (decode-once, cached — Section III-B3).

Layout (all little-endian):

========== ==================================================================
offset      contents
========== ==================================================================
0x00        u32 magic ``0x42494650`` ("PFIB")
0x04        u32 number of clauses
0x08        u32 * num_clauses: byte offset of each clause from program start
...pad      to 8-byte alignment
clauses     per clause: one u64 header, ``2 * ntuples`` u64 instruction
            words, then ``nconsts`` u32 constants padded to u64 alignment
========== ==================================================================

Clause header word:

=========== =========================================
bits         field
=========== =========================================
0-3          ntuples - 1
4-9          nconsts
10-12        tail kind
13-20        cond_reg
21-36        target clause index
60-63        0xB (sanity nibble)
=========== =========================================

Instruction word: ``op(8) | dst(8) | srca(8) | srcb(8) | srcc(8) |
flags(8) | imm(16)`` from bit 0 upward.
"""

import struct

from repro.errors import DecodeError
from repro.gpu.isa import Clause, Instruction, Op, Program, Tail

MAGIC = 0x42494650
_HEADER_MAGIC = 0xB


def encode_instruction(instr):
    """Pack an :class:`~repro.gpu.isa.Instruction` into a 64-bit word."""
    return (
        (int(instr.op) & 0xFF)
        | ((instr.dst & 0xFF) << 8)
        | ((instr.srca & 0xFF) << 16)
        | ((instr.srcb & 0xFF) << 24)
        | ((instr.srcc & 0xFF) << 32)
        | ((instr.flags & 0xFF) << 40)
        | ((instr.imm & 0xFFFF) << 48)
    )


def decode_instruction(word):
    """Unpack a 64-bit instruction word."""
    opcode = word & 0xFF
    try:
        op = Op(opcode)
    except ValueError:
        raise DecodeError(f"invalid opcode 0x{opcode:02x}") from None
    return Instruction(
        op=op,
        dst=(word >> 8) & 0xFF,
        srca=(word >> 16) & 0xFF,
        srcb=(word >> 24) & 0xFF,
        srcc=(word >> 32) & 0xFF,
        flags=(word >> 40) & 0xFF,
        imm=(word >> 48) & 0xFFFF,
    )


def _encode_clause_header(clause):
    return (
        ((clause.size - 1) & 0xF)
        | ((len(clause.constants) & 0x3F) << 4)
        | ((int(clause.tail) & 0x7) << 10)
        | ((clause.cond_reg & 0xFF) << 13)
        | ((clause.target & 0xFFFF) << 21)
        | (_HEADER_MAGIC << 60)
    )


def encode_clause(clause):
    """Encode one clause to bytes (header, slots, padded constant pool)."""
    clause.validate()
    words = [_encode_clause_header(clause)]
    for fma, add in clause.tuples:
        words.append(encode_instruction(fma))
        words.append(encode_instruction(add))
    blob = struct.pack(f"<{len(words)}Q", *words)
    if clause.constants:
        consts = list(clause.constants)
        if len(consts) % 2:
            consts.append(0)
        blob += struct.pack(f"<{len(consts)}I", *(value & 0xFFFFFFFF for value in consts))
    return blob


def decode_clause(data, offset):
    """Decode one clause from *data* at *offset*; returns (clause, end)."""
    (header,) = struct.unpack_from("<Q", data, offset)
    if header >> 60 != _HEADER_MAGIC:
        raise DecodeError(f"bad clause header at offset 0x{offset:x}")
    ntuples = (header & 0xF) + 1
    nconsts = (header >> 4) & 0x3F
    tail = Tail((header >> 10) & 0x7)
    cond_reg = (header >> 13) & 0xFF
    target = (header >> 21) & 0xFFFF
    position = offset + 8
    tuples = []
    for _ in range(ntuples):
        fma_word, add_word = struct.unpack_from("<QQ", data, position)
        tuples.append((decode_instruction(fma_word), decode_instruction(add_word)))
        position += 16
    padded = nconsts + (nconsts % 2)
    constants = list(struct.unpack_from(f"<{nconsts}I", data, position)) if nconsts else []
    position += 4 * padded
    return (
        Clause(tuples=tuples, constants=constants, tail=tail, cond_reg=cond_reg, target=target),
        position,
    )


def encode_program(program):
    """Encode a :class:`~repro.gpu.isa.Program` to its binary image."""
    program.validate()
    clause_blobs = [encode_clause(clause) for clause in program.clauses]
    table_size = 8 + 4 * len(clause_blobs)
    table_size += (-table_size) % 8
    offsets = []
    position = table_size
    for blob in clause_blobs:
        offsets.append(position)
        position += len(blob)
    out = struct.pack("<II", MAGIC, len(clause_blobs))
    out += struct.pack(f"<{len(offsets)}I", *offsets)
    out += b"\x00" * ((-len(out)) % 8)
    return out + b"".join(clause_blobs)


def decode_program(data):
    """Decode a binary image back into a :class:`~repro.gpu.isa.Program`.

    This is the shader core's decode phase; the result is cached per binary
    address so that "the entire shader program is decoded exactly once".
    """
    if len(data) < 8:
        raise DecodeError("program image too short")
    magic, num_clauses = struct.unpack_from("<II", data, 0)
    if magic != MAGIC:
        raise DecodeError(f"bad program magic 0x{magic:08x}")
    offsets = struct.unpack_from(f"<{num_clauses}I", data, 8)
    clauses = []
    for offset in offsets:
        clause, _ = decode_clause(data, offset)
        clauses.append(clause)
    program = Program(clauses=clauses)
    program.validate()
    return program
