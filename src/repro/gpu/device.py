"""Top-level GPU device on the system bus.

Exposes the control-register file (:mod:`repro.gpu.regs`) to the CPU side,
owns the GPU MMU and the Job Manager, and drives the interrupt line. All
register traffic and interrupt assertions are counted into
:class:`~repro.instrument.stats.SystemStats` (Table III).
"""

from dataclasses import dataclass

from repro.errors import BusError, JobFault, JobHang, JobPreempted
from repro.gpu import regs
from repro.gpu.jobmanager import JobManager
from repro.gpu.mmu import GPUMMU
from repro.instrument.stats import SystemStats
from repro.mem.bus import MMIODevice


@dataclass
class GPUConfig:
    """Static GPU configuration.

    Attributes:
        num_shader_cores: modelled physical shader cores (G71 MP8 -> 8).
        num_host_threads: execution units used by the simulator; more than
            ``num_shader_cores`` creates virtual cores (Section III-B3).
        instrument: collect per-job program-execution statistics.
        collect_cfg: build the divergence CFG (Fig. 6) while executing.
        tracer: optional instruction tracer (see repro.validate) recording
            every executed instruction's result — the paper's validation
            "instruction tracing mode".
    """

    num_shader_cores: int = 8
    num_host_threads: int = 1
    instrument: bool = True
    collect_cfg: bool = False
    tracer: object = None
    engine: str = "interpreter"  # or "jit" / "mega" (translating engines)


class GPUDevice(MMIODevice):
    """The simulated Mali-G71-like GPU."""

    def __init__(self, memory, config=None, irq_callback=None):
        self.config = config or GPUConfig()
        self.mmu = GPUMMU(memory)
        self.job_manager = JobManager(
            self.mmu,
            num_shader_cores=self.config.num_shader_cores,
            num_host_threads=self.config.num_host_threads,
            instrument=self.config.instrument,
            collect_cfg=self.config.collect_cfg,
            tracer=self.config.tracer,
            engine=self.config.engine,
        )
        self.system_stats = SystemStats()
        self._irq_callback = irq_callback
        self._shader_ready = 0
        self._job_irq_rawstat = 0
        self._job_irq_mask = 0
        self._mmu_irq_rawstat = 0
        self._mmu_irq_mask = 0
        self._job_status = regs.JOB_STATUS_IDLE
        self._fault_reason = regs.REASON_NONE
        self._job_count = 0
        self._submit_lo = 0
        self._pgd_lo = 0
        self._pgd_hi = 0
        self._job_slice = 0  # JOB_SLICE: workgroup budget, 0 = unlimited
        self.last_results = []
        # recovery-ladder bookkeeping (driver-issued commands)
        self.soft_resets = 0
        self.job_soft_stops = 0
        self.job_hard_stops = 0

    # -- IRQ handling -----------------------------------------------------------

    @property
    def irq_pending(self):
        return bool(
            (self._job_irq_rawstat & self._job_irq_mask)
            or (self._mmu_irq_rawstat & self._mmu_irq_mask)
        )

    def _assert_irq(self):
        self.system_stats.interrupts_asserted += 1
        if self._irq_callback is not None:
            self._irq_callback(self)

    def _raise_job_irq(self, bits):
        self._job_irq_rawstat |= bits
        if self._job_irq_rawstat & self._job_irq_mask:
            self._assert_irq()

    def _raise_mmu_irq(self, bits):
        self._mmu_irq_rawstat |= bits
        if self._mmu_irq_rawstat & self._mmu_irq_mask:
            self._assert_irq()

    # -- register file -----------------------------------------------------------

    def read_reg(self, offset):
        self.system_stats.ctrl_reg_reads += 1
        if offset == regs.GPU_ID:
            return regs.GPU_ID_VALUE
        if offset == regs.SHADER_PRESENT:
            return (1 << self.config.num_shader_cores) - 1
        if offset == regs.SHADER_READY:
            return self._shader_ready
        if offset == regs.JOB_IRQ_RAWSTAT:
            return self._job_irq_rawstat
        if offset == regs.JOB_IRQ_MASK:
            return self._job_irq_mask
        if offset == regs.JOB_STATUS:
            return self._job_status
        if offset == regs.JOB_COUNT:
            return self._job_count
        if offset == regs.JOB_FAULT_REASON:
            return self._fault_reason
        if offset == regs.MMU_IRQ_RAWSTAT:
            return self._mmu_irq_rawstat
        if offset == regs.MMU_IRQ_MASK:
            return self._mmu_irq_mask
        if offset == regs.MMU_PGD_LO:
            return self._pgd_lo
        if offset == regs.MMU_PGD_HI:
            return self._pgd_hi
        if offset == regs.MMU_ENABLE:
            return int(self.mmu.enabled)
        if offset == regs.MMU_FAULT_ADDR_LO:
            return self.mmu.fault_addr & 0xFFFFFFFF
        if offset == regs.MMU_FAULT_ADDR_HI:
            return (self.mmu.fault_addr >> 32) & 0xFFFFFFFF
        if offset == regs.MMU_FAULT_STATUS:
            return self.mmu.fault_status
        if offset == regs.MMU_AS:
            return self.mmu.address_space
        if offset == regs.JOB_SLICE:
            return self._job_slice
        raise BusError(f"read of unknown GPU register 0x{offset:x}")

    def write_reg(self, offset, value):
        self.system_stats.ctrl_reg_writes += 1
        if offset == regs.PWR_ON:
            self._shader_ready |= value & ((1 << self.config.num_shader_cores) - 1)
        elif offset == regs.PWR_OFF:
            self._shader_ready &= ~value
        elif offset == regs.JOB_IRQ_CLEAR:
            self._job_irq_rawstat &= ~value
        elif offset == regs.JOB_IRQ_MASK:
            self._job_irq_mask = value
        elif offset == regs.JOB_SUBMIT_LO:
            self._submit_lo = value
        elif offset == regs.JOB_SUBMIT_HI:
            self._doorbell(self._submit_lo | (value << 32))
        elif offset == regs.MMU_IRQ_CLEAR:
            self._mmu_irq_rawstat &= ~value
        elif offset == regs.MMU_IRQ_MASK:
            self._mmu_irq_mask = value
        elif offset == regs.MMU_PGD_LO:
            self._pgd_lo = value
            self._update_pgd()
        elif offset == regs.MMU_PGD_HI:
            self._pgd_hi = value
            self._update_pgd()
        elif offset == regs.MMU_ENABLE:
            self.mmu.enabled = bool(value & 1)
            if self.mmu.enabled:
                self.mmu.flush_tlb()
        elif offset == regs.MMU_FLUSH:
            # TLB invalidate only; shader binaries are immutable while
            # mapped, so the decode cache survives ("decoded exactly once")
            self.mmu.flush_tlb()
            self.system_stats.tlb_flushes += 1
        elif offset == regs.MMU_AS:
            self.mmu.address_space = value
        elif offset == regs.JOB_SLICE:
            self._job_slice = value
        elif offset == regs.GPU_COMMAND:
            if value & regs.GPU_COMMAND_SOFT_RESET:
                self._soft_reset()
        elif offset == regs.JOB_COMMAND:
            self._job_command(value)
        else:
            raise BusError(f"write of unknown GPU register 0x{offset:x}")

    def _job_command(self, value):
        """Soft/hard-stop the job slot: acknowledge the watchdog latch.

        The model runs jobs to a stopping point synchronously, so by the
        time the driver issues the stop the slot has already been parked;
        the command clears the hang latch so the slot can be resubmitted.
        """
        if value == regs.JOB_COMMAND_SOFT_STOP:
            self.job_soft_stops += 1
        elif value == regs.JOB_COMMAND_HARD_STOP:
            self.job_hard_stops += 1
        else:
            raise BusError(f"unknown JOB_COMMAND 0x{value:x}")
        self._job_status = regs.JOB_STATUS_IDLE
        self._fault_reason = regs.REASON_NONE

    def _soft_reset(self):
        """GPU_COMMAND soft reset: return the device to its power-on
        state. The driver must redo the whole bring-up sequence (power,
        IRQ masks, page-table base) before the next submission; the
        decode cache is lost with the rest of the device state."""
        self.soft_resets += 1
        self._shader_ready = 0
        self._job_irq_rawstat = 0
        self._job_irq_mask = 0
        self._mmu_irq_rawstat = 0
        self._mmu_irq_mask = 0
        self._job_status = regs.JOB_STATUS_IDLE
        self._fault_reason = regs.REASON_NONE
        self._submit_lo = 0
        self._job_slice = 0
        self.mmu.address_space = 0
        self.mmu.enabled = False
        self.mmu.flush_tlb()
        self.mmu.fault_addr = 0
        self.mmu.fault_status = 0
        self.job_manager.invalidate_decode_cache()

    def _update_pgd(self):
        self.mmu.set_page_table(self._pgd_lo | (self._pgd_hi << 32))

    # -- job execution ---------------------------------------------------------------

    def _doorbell(self, descriptor_va):
        """Job submission: run the descriptor chain on the shader cores."""
        if not self._shader_ready:
            self._job_status = regs.JOB_STATUS_FAULT
            self._raise_job_irq(regs.JOB_IRQ_FAULT)
            return
        try:
            results = self.job_manager.run_job_chain(
                descriptor_va, workgroup_budget=self._job_slice or None)
        except JobPreempted:
            # the budgeted prefix completed; park the slot with the
            # soft-stop reason so the driver requeues instead of walking
            # the recovery ladder (no MMU state to latch, not a fault)
            self._job_status = regs.JOB_STATUS_FAULT
            self._fault_reason = regs.REASON_SOFT_STOPPED
            self._raise_job_irq(regs.JOB_IRQ_FAULT)
            return
        except JobFault as exc:
            self.system_stats.mmu_faults += 1
            self._job_status = regs.JOB_STATUS_FAULT
            if isinstance(exc, JobHang):
                # the progress watchdog parked the slot: no MMU state to
                # latch, the driver reads REASON_HANG and runs the
                # soft-stop -> hard-stop -> reset ladder
                self._fault_reason = regs.REASON_HANG
            else:
                self._fault_reason = (
                    regs.REASON_MMU
                    if getattr(exc, "fault_class", "mmu") == "mmu"
                    else regs.REASON_DESCRIPTOR)
                self.mmu.fault_status = self.mmu.fault_status or 1
                self._raise_mmu_irq(regs.MMU_IRQ_FAULT)
            self._raise_job_irq(regs.JOB_IRQ_FAULT)
            return
        self.last_results = results
        self._job_count += len(results)
        self.system_stats.compute_jobs += len(results)
        self._job_status = regs.JOB_STATUS_DONE
        self._fault_reason = regs.REASON_NONE
        self._raise_job_irq(regs.JOB_IRQ_DONE)

    # -- statistics snapshot ------------------------------------------------------------

    def snapshot_system_stats(self):
        """Return SystemStats including the MMU's distinct-page count."""
        self.system_stats.pages_accessed = len(self.mmu.pages_accessed)
        return self.system_stats

    def register_stats(self, scope):
        """Register the GPU hierarchy under *scope* (typically ``gpu``):
        Table III interaction counters, the Job Manager / per-core warp
        groups, and the MMU."""
        from repro.instrument.registry import register_mmu_stats

        stats = self.system_stats
        for field_name, desc in (
            ("ctrl_reg_reads", "control-register reads (Table III)"),
            ("ctrl_reg_writes", "control-register writes (Table III)"),
            ("interrupts_asserted", "IRQ line assertions (Table III)"),
            ("compute_jobs", "compute jobs submitted (Table III)"),
            ("mmu_faults", "jobs terminated by an MMU fault"),
            ("tlb_flushes", "MMU_FLUSH TLB invalidations"),
        ):
            scope.probe(field_name,
                        (lambda s=stats, f=field_name: getattr(s, f)),
                        desc=desc)
        self.job_manager.register_stats(scope)
        register_mmu_stats(scope.scope("mmu"), self.mmu)
        faults = scope.scope("faults")
        faults.probe("mmu_injected", lambda: self.mmu.injected_faults,
                     desc="MMU faults raised by the fault injector",
                     golden=False)
        faults.probe("page_faults_resolved",
                     lambda: self.mmu.page_faults_resolved,
                     desc="translation misses resolved by the driver's "
                          "page-fault worker (grow-on-fault)")
        faults.probe("watchdog_timeouts",
                     lambda: self.job_manager.watchdog_timeouts,
                     desc="jobs parked by the progress watchdog")
        faults.probe("descriptor_corruptions",
                     lambda: self.job_manager.descriptor_corruptions,
                     desc="descriptor reads corrupted by the injector",
                     golden=False)
        faults.probe("soft_resets", lambda: self.soft_resets,
                     desc="GPU_COMMAND soft resets executed")
        faults.probe("job_soft_stops", lambda: self.job_soft_stops,
                     desc="JOB_COMMAND soft-stops received")
        faults.probe("job_hard_stops", lambda: self.job_hard_stops,
                     desc="JOB_COMMAND hard-stops received")
