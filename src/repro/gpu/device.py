"""Top-level GPU device on the system bus.

Exposes the control-register file (:mod:`repro.gpu.regs`) to the CPU side,
owns the GPU MMU and the Job Manager, and drives the interrupt line. All
register traffic and interrupt assertions are counted into
:class:`~repro.instrument.stats.SystemStats` (Table III).
"""

from dataclasses import dataclass

from repro.errors import BusError, JobFault
from repro.gpu import regs
from repro.gpu.jobmanager import JobManager
from repro.gpu.mmu import GPUMMU
from repro.instrument.stats import SystemStats
from repro.mem.bus import MMIODevice


@dataclass
class GPUConfig:
    """Static GPU configuration.

    Attributes:
        num_shader_cores: modelled physical shader cores (G71 MP8 -> 8).
        num_host_threads: execution units used by the simulator; more than
            ``num_shader_cores`` creates virtual cores (Section III-B3).
        instrument: collect per-job program-execution statistics.
        collect_cfg: build the divergence CFG (Fig. 6) while executing.
        tracer: optional instruction tracer (see repro.validate) recording
            every executed instruction's result — the paper's validation
            "instruction tracing mode".
    """

    num_shader_cores: int = 8
    num_host_threads: int = 1
    instrument: bool = True
    collect_cfg: bool = False
    tracer: object = None
    engine: str = "interpreter"  # or "jit" (clause-translating engine)


class GPUDevice(MMIODevice):
    """The simulated Mali-G71-like GPU."""

    def __init__(self, memory, config=None, irq_callback=None):
        self.config = config or GPUConfig()
        self.mmu = GPUMMU(memory)
        self.job_manager = JobManager(
            self.mmu,
            num_shader_cores=self.config.num_shader_cores,
            num_host_threads=self.config.num_host_threads,
            instrument=self.config.instrument,
            collect_cfg=self.config.collect_cfg,
            tracer=self.config.tracer,
            engine=self.config.engine,
        )
        self.system_stats = SystemStats()
        self._irq_callback = irq_callback
        self._shader_ready = 0
        self._job_irq_rawstat = 0
        self._job_irq_mask = 0
        self._mmu_irq_rawstat = 0
        self._mmu_irq_mask = 0
        self._job_status = regs.JOB_STATUS_IDLE
        self._job_count = 0
        self._submit_lo = 0
        self._pgd_lo = 0
        self._pgd_hi = 0
        self.last_results = []

    # -- IRQ handling -----------------------------------------------------------

    @property
    def irq_pending(self):
        return bool(
            (self._job_irq_rawstat & self._job_irq_mask)
            or (self._mmu_irq_rawstat & self._mmu_irq_mask)
        )

    def _assert_irq(self):
        self.system_stats.interrupts_asserted += 1
        if self._irq_callback is not None:
            self._irq_callback(self)

    def _raise_job_irq(self, bits):
        self._job_irq_rawstat |= bits
        if self._job_irq_rawstat & self._job_irq_mask:
            self._assert_irq()

    def _raise_mmu_irq(self, bits):
        self._mmu_irq_rawstat |= bits
        if self._mmu_irq_rawstat & self._mmu_irq_mask:
            self._assert_irq()

    # -- register file -----------------------------------------------------------

    def read_reg(self, offset):
        self.system_stats.ctrl_reg_reads += 1
        if offset == regs.GPU_ID:
            return regs.GPU_ID_VALUE
        if offset == regs.SHADER_PRESENT:
            return (1 << self.config.num_shader_cores) - 1
        if offset == regs.SHADER_READY:
            return self._shader_ready
        if offset == regs.JOB_IRQ_RAWSTAT:
            return self._job_irq_rawstat
        if offset == regs.JOB_IRQ_MASK:
            return self._job_irq_mask
        if offset == regs.JOB_STATUS:
            return self._job_status
        if offset == regs.JOB_COUNT:
            return self._job_count
        if offset == regs.MMU_IRQ_RAWSTAT:
            return self._mmu_irq_rawstat
        if offset == regs.MMU_IRQ_MASK:
            return self._mmu_irq_mask
        if offset == regs.MMU_PGD_LO:
            return self._pgd_lo
        if offset == regs.MMU_PGD_HI:
            return self._pgd_hi
        if offset == regs.MMU_ENABLE:
            return int(self.mmu.enabled)
        if offset == regs.MMU_FAULT_ADDR_LO:
            return self.mmu.fault_addr & 0xFFFFFFFF
        if offset == regs.MMU_FAULT_ADDR_HI:
            return (self.mmu.fault_addr >> 32) & 0xFFFFFFFF
        if offset == regs.MMU_FAULT_STATUS:
            return self.mmu.fault_status
        raise BusError(f"read of unknown GPU register 0x{offset:x}")

    def write_reg(self, offset, value):
        self.system_stats.ctrl_reg_writes += 1
        if offset == regs.PWR_ON:
            self._shader_ready |= value & ((1 << self.config.num_shader_cores) - 1)
        elif offset == regs.PWR_OFF:
            self._shader_ready &= ~value
        elif offset == regs.JOB_IRQ_CLEAR:
            self._job_irq_rawstat &= ~value
        elif offset == regs.JOB_IRQ_MASK:
            self._job_irq_mask = value
        elif offset == regs.JOB_SUBMIT_LO:
            self._submit_lo = value
        elif offset == regs.JOB_SUBMIT_HI:
            self._doorbell(self._submit_lo | (value << 32))
        elif offset == regs.MMU_IRQ_CLEAR:
            self._mmu_irq_rawstat &= ~value
        elif offset == regs.MMU_IRQ_MASK:
            self._mmu_irq_mask = value
        elif offset == regs.MMU_PGD_LO:
            self._pgd_lo = value
            self._update_pgd()
        elif offset == regs.MMU_PGD_HI:
            self._pgd_hi = value
            self._update_pgd()
        elif offset == regs.MMU_ENABLE:
            self.mmu.enabled = bool(value & 1)
            if self.mmu.enabled:
                self.mmu.flush_tlb()
        elif offset == regs.MMU_FLUSH:
            # TLB invalidate only; shader binaries are immutable while
            # mapped, so the decode cache survives ("decoded exactly once")
            self.mmu.flush_tlb()
            self.system_stats.tlb_flushes += 1
        else:
            raise BusError(f"write of unknown GPU register 0x{offset:x}")

    def _update_pgd(self):
        self.mmu.set_page_table(self._pgd_lo | (self._pgd_hi << 32))

    # -- job execution ---------------------------------------------------------------

    def _doorbell(self, descriptor_va):
        """Job submission: run the descriptor chain on the shader cores."""
        if not self._shader_ready:
            self._job_status = regs.JOB_STATUS_FAULT
            self._raise_job_irq(regs.JOB_IRQ_FAULT)
            return
        try:
            results = self.job_manager.run_job_chain(descriptor_va)
        except JobFault:
            self.system_stats.mmu_faults += 1
            self.mmu.fault_status = self.mmu.fault_status or 1
            self._job_status = regs.JOB_STATUS_FAULT
            self._raise_mmu_irq(regs.MMU_IRQ_FAULT)
            self._raise_job_irq(regs.JOB_IRQ_FAULT)
            return
        self.last_results = results
        self._job_count += len(results)
        self.system_stats.compute_jobs += len(results)
        self._job_status = regs.JOB_STATUS_DONE
        self._raise_job_irq(regs.JOB_IRQ_DONE)

    # -- statistics snapshot ------------------------------------------------------------

    def snapshot_system_stats(self):
        """Return SystemStats including the MMU's distinct-page count."""
        self.system_stats.pages_accessed = len(self.mmu.pages_accessed)
        return self.system_stats

    def register_stats(self, scope):
        """Register the GPU hierarchy under *scope* (typically ``gpu``):
        Table III interaction counters, the Job Manager / per-core warp
        groups, and the MMU."""
        from repro.instrument.registry import register_mmu_stats

        stats = self.system_stats
        for field_name, desc in (
            ("ctrl_reg_reads", "control-register reads (Table III)"),
            ("ctrl_reg_writes", "control-register writes (Table III)"),
            ("interrupts_asserted", "IRQ line assertions (Table III)"),
            ("compute_jobs", "compute jobs submitted (Table III)"),
            ("mmu_faults", "jobs terminated by an MMU fault"),
            ("tlb_flushes", "MMU_FLUSH TLB invalidations"),
        ):
            scope.probe(field_name,
                        (lambda s=stats, f=field_name: getattr(s, f)),
                        desc=desc)
        self.job_manager.register_stats(scope)
        register_mmu_stats(scope.scope("mmu"), self.mmu)
