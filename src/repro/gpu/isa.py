"""The Bifrost-like GPU instruction set.

The execution model follows Arm's Bifrost architecture (Section II of the
paper):

- Instructions are bundled into **clauses** of up to 8 *tuples*; each tuple
  has an **FMA slot** and an **ADD slot**, so a clause holds at most 16
  instruction slots. Unused slots are NOPs ("empty slots" in Fig. 11).
- Clauses execute unconditionally; control flow is a property of the clause
  **tail** and is resolved only at clause boundaries.
- Two **temporary registers** (``t0``, ``t1``) are live only within a clause
  and let the compiler forward values without touching the global register
  file (Fig. 4b).
- Constants are embedded in the clause's constant pool and read through the
  "ROM" port.
- Threads execute in quads of four (the 128-bit datapath vectorization).

This module defines opcodes, operand encodings and the decoded in-memory
representation; :mod:`repro.gpu.encoding` provides the binary format.
"""

import enum
from dataclasses import dataclass, field

import numpy as np

# Threads per quad (the 128-bit datapath width / 4-byte lanes). The warp
# executor re-exports this as WARP_WIDTH; it lives here so decode-time
# clause specialization can pre-broadcast constant vectors.
QUAD_WIDTH = 4


class Op(enum.IntEnum):
    """GPU opcodes. The numeric values are the binary encoding."""

    NOP = 0
    MOV = 1

    # float arithmetic
    FADD = 2
    FSUB = 3
    FMUL = 4
    FMA = 5
    FMIN = 6
    FMAX = 7
    FABS = 8
    FNEG = 9
    FFLOOR = 10
    FRCP = 11
    FSQRT = 12
    FRSQ = 13
    FEXP = 14
    FLOG = 15
    FSIN = 16
    FCOS = 17

    # conversions
    F2I = 18
    F2U = 19
    I2F = 20
    U2F = 21

    # integer arithmetic
    IADD = 22
    ISUB = 23
    IMUL = 24
    IAND = 25
    IOR = 26
    IXOR = 27
    ISHL = 28
    ISHR = 29  # logical
    IASHR = 30  # arithmetic
    IMIN = 31
    IMAX = 32
    UMIN = 33
    UMAX = 34
    IDIV = 35
    IREM = 36
    UDIV = 37
    UREM = 38
    IABS = 39

    # comparison / selection
    CMP = 40  # mode in flags; writes 0/1
    SELECT = 41  # dst = srcC != 0 ? srcA : srcB

    # memory
    LD = 48  # load (flags: width, address space)
    ST = 49  # store
    LDU = 50  # uniform ("Constant Read") load, imm = uniform index
    ATOM = 51  # atomic read-modify-write; mode in flags bits 4-6


class CmpMode(enum.IntEnum):
    """Comparison modes for :attr:`Op.CMP`, stored in the flags field."""

    FEQ = 0
    FNE = 1
    FLT = 2
    FLE = 3
    FGT = 4
    FGE = 5
    IEQ = 6
    INE = 7
    ILT = 8
    ILE = 9
    IGT = 10
    IGE = 11
    ULT = 12
    ULE = 13
    UGT = 14
    UGE = 15


class Tail(enum.IntEnum):
    """Clause tail kinds (control flow at clause boundaries)."""

    FALLTHROUGH = 0
    JUMP = 1  # unconditional, target = clause index
    BRANCH = 2  # taken if cond_reg != 0
    BRANCH_Z = 3  # taken if cond_reg == 0
    BARRIER = 4  # workgroup barrier, then fallthrough
    END = 5  # thread terminates


# -- operand encoding ---------------------------------------------------------
#
# Source/destination fields are 8 bits:
#   0 .. 63    GRF registers r0..r63
#   64 .. 65   clause temporaries t0, t1
#   128 .. 159 clause constant-pool slots c0..c31 (sources only; "ROM" reads)
#   255        unused operand

NUM_GRF = 64
TEMP_BASE = 64
NUM_TEMPS = 2
CONST_BASE = 128
MAX_CONSTS = 32
OPERAND_NONE = 255

# GRF registers preloaded by the dispatcher before a thread starts
# (the paper's thread-state setup performed by the shader core frontend).
REG_GROUP_ID = 53  # r53..r55 = group id x, y, z
REG_GLOBAL_ID = 56  # r56..r58 = global id x, y, z
REG_LOCAL_ID = 59  # r59..r61 = local id x, y, z
REG_GROUP_FLAT = 62  # r62 = flattened group id (x + y*nx + z*nx*ny)
REG_LANE = 63  # r63 = lane index within the quad

# Registers the compiler may allocate freely.
ALLOCATABLE_REGS = REG_GROUP_ID  # r0..r52

# memory-op flags
MEM_WIDTH_MASK = 0x3  # log2 of element count: 0 -> 1, 1 -> 2, 2 -> 4
MEM_SPACE_LOCAL = 0x4  # set for local (workgroup) memory

# atomic modes (ATOM flags bits 4-6); dst receives the old value
ATOM_MODE_SHIFT = 4
ATOM_ADD = 0
ATOM_SUB = 1
ATOM_MIN = 2  # signed
ATOM_MAX = 3  # signed
ATOM_AND = 4
ATOM_OR = 5
ATOM_XOR = 6
ATOM_XCHG = 7


def is_grf(operand):
    return 0 <= operand < NUM_GRF


def is_temp(operand):
    return TEMP_BASE <= operand < TEMP_BASE + NUM_TEMPS


def is_const(operand):
    return CONST_BASE <= operand < CONST_BASE + MAX_CONSTS


# Opcode classes drive the clause scheduler's slot constraints: the FMA pipe
# executes anything; the ADD pipe only executes ADD-class ops. Memory and
# special-function ops must use the FMA slot (they go out through the
# message fabric on real hardware).
_ADD_CLASS = {
    Op.NOP, Op.MOV, Op.FADD, Op.FSUB, Op.FMIN, Op.FMAX, Op.FABS, Op.FNEG,
    Op.FFLOOR, Op.F2I, Op.F2U, Op.I2F, Op.U2F, Op.IADD, Op.ISUB, Op.IAND,
    Op.IOR, Op.IXOR, Op.ISHL, Op.ISHR, Op.IASHR, Op.IMIN, Op.IMAX, Op.UMIN,
    Op.UMAX, Op.IABS, Op.CMP, Op.SELECT,
}

_LS_CLASS = {Op.LD, Op.ST, Op.LDU, Op.ATOM}


def can_use_add_slot(op):
    """True if *op* may be scheduled in a tuple's ADD slot."""
    return op in _ADD_CLASS


def is_memory_op(op):
    return op in _LS_CLASS


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction slot.

    Attributes:
        op: the opcode.
        dst: destination operand (GRF or temp), or OPERAND_NONE.
        srca/srcb/srcc: source operands, or OPERAND_NONE.
        flags: op-specific flags (compare mode, memory width/space).
        imm: 16-bit immediate (uniform index for LDU).
    """

    op: Op
    dst: int = OPERAND_NONE
    srca: int = OPERAND_NONE
    srcb: int = OPERAND_NONE
    srcc: int = OPERAND_NONE
    flags: int = 0
    imm: int = 0

    def sources(self):
        """The operand fields actually read by this instruction."""
        if self.op is Op.NOP:
            return ()
        srcs = []
        if self.srca != OPERAND_NONE:
            srcs.append(self.srca)
        if self.srcb != OPERAND_NONE:
            srcs.append(self.srcb)
        if self.srcc != OPERAND_NONE:
            srcs.append(self.srcc)
        return tuple(srcs)

    @property
    def mem_width(self):
        """Vector width (1, 2 or 4 32-bit elements) of a memory op."""
        return 1 << (self.flags & MEM_WIDTH_MASK)

    @property
    def mem_is_local(self):
        return bool(self.flags & MEM_SPACE_LOCAL)


NOP_INSTR = Instruction(Op.NOP)


def _count_read(metrics, operand):
    if is_grf(operand):
        metrics.grf_reads += 1
    elif is_temp(operand):
        metrics.temp_reads += 1
    elif is_const(operand):
        metrics.rom_reads += 1


def _count_write(metrics, operand):
    if is_grf(operand):
        metrics.grf_writes += 1
    elif is_temp(operand):
        metrics.temp_writes += 1


def _compute_clause_metrics(clause):
    """Static per-clause instrumentation (mirrors the executor's access
    pattern exactly: one read per consumed operand, one write per produced
    value, per-element counting for wide memory ops)."""
    metrics = ClauseMetrics()
    for slot in clause.slots():
        op = slot.op
        if op is Op.NOP:
            metrics.nop_instrs += 1
            continue
        if op is Op.LDU:
            metrics.const_load_instrs += 1
            metrics.const_reads += 1
            metrics.ls_beats += 1
            _count_write(metrics, slot.dst)
            continue
        if op is Op.LD or op is Op.ST:
            width = slot.mem_width
            if slot.mem_is_local:
                metrics.ls_local_instrs += 1
                metrics.local_mem_accesses += width
            else:
                metrics.ls_global_instrs += 1
                metrics.main_mem_accesses += width
            metrics.ls_beats += max(1, width // 2)
            _count_read(metrics, slot.srca)  # address
            if op is Op.LD:
                metrics.grf_writes += width  # wide dsts are GRF by design
            else:
                for element in range(width):
                    _count_read(metrics, slot.srcb + element)
            continue
        if op is Op.ATOM:
            if slot.mem_is_local:
                metrics.ls_local_instrs += 1
                metrics.local_mem_accesses += 2
            else:
                metrics.ls_global_instrs += 1
                metrics.main_mem_accesses += 2
            metrics.ls_beats += 4  # atomics serialize the whole quad
            _count_read(metrics, slot.srca)
            _count_read(metrics, slot.srcb)
            _count_write(metrics, slot.dst)
            continue
        # arithmetic
        metrics.arith_instrs += 1
        for operand in slot.sources():
            _count_read(metrics, operand)
        if slot.dst != OPERAND_NONE:
            _count_write(metrics, slot.dst)
    return metrics


@dataclass
class ClauseMetrics:
    """Decode-time instrumentation metrics for one clause.

    "Each clause is instrumented with detailed metrics at decode time, and
    during execution, we record clause frequency" (paper Section IV-A) —
    every field here is static per clause, so executing an instrumented
    clause costs a handful of integer additions instead of per-instruction
    bookkeeping. Per-lane fields are multiplied by the active lane count
    at execution; per-warp fields are added once per clause issue.
    """

    # per-lane instruction categories
    arith_instrs: int = 0
    nop_instrs: int = 0
    ls_global_instrs: int = 0
    ls_local_instrs: int = 0
    const_load_instrs: int = 0
    # per-lane operand-port traffic
    temp_reads: int = 0
    temp_writes: int = 0
    grf_reads: int = 0
    grf_writes: int = 0
    const_reads: int = 0
    rom_reads: int = 0
    main_mem_accesses: int = 0
    local_mem_accesses: int = 0
    # per-warp issue costs
    ls_beats: int = 0


@dataclass
class Clause:
    """A decoded clause: up to 8 (FMA, ADD) tuples plus a constant pool.

    Attributes:
        tuples: list of (fma_instruction, add_instruction) pairs.
        constants: the embedded constant pool (raw 32-bit values).
        tail: control flow at the clause boundary.
        cond_reg: GRF register tested by BRANCH/BRANCH_Z tails.
        target: target clause index for JUMP/BRANCH tails.
    """

    tuples: list = field(default_factory=list)
    constants: list = field(default_factory=list)
    tail: Tail = Tail.FALLTHROUGH
    cond_reg: int = 0
    target: int = 0

    @property
    def size(self):
        """Clause size in tuples (the Fig. 13 metric, 1-8)."""
        return len(self.tuples)

    def metrics(self):
        """Decode-time metrics (cached; see :class:`ClauseMetrics`)."""
        cached = getattr(self, "_metrics", None)
        if cached is None:
            cached = _compute_clause_metrics(self)
            object.__setattr__(self, "_metrics", cached)
        return cached

    def active_slots(self):
        """The non-NOP instructions in execution order (cached).

        Decode-time specialization: the executor issues straight down this
        list instead of branching on NOP slots for every tuple on every
        clause execution.
        """
        cached = getattr(self, "_active_slots", None)
        if cached is None:
            cached = tuple(slot for slot in self.slots()
                           if slot.op is not Op.NOP)
            object.__setattr__(self, "_active_slots", cached)
        return cached

    def constant_vectors(self):
        """Quad-broadcast constant-pool vectors (cached, read-only).

        Pre-materializing the ``np.full`` broadcast at decode time removes
        a per-issue allocation from every constant-operand read. The
        arrays are marked non-writable because they are shared across all
        warps executing the clause.
        """
        cached = getattr(self, "_const_vectors", None)
        if cached is None:
            cached = []
            for value in self.constants:
                vector = np.full(QUAD_WIDTH, value, dtype=np.uint32)
                vector.flags.writeable = False
                cached.append(vector)
            cached = tuple(cached)
            object.__setattr__(self, "_const_vectors", cached)
        return cached

    def slots(self):
        """Iterate all instruction slots in execution order."""
        for fma, add in self.tuples:
            yield fma
            yield add

    def validate(self):
        """Check structural invariants; raises ValueError on violation."""
        if not 1 <= len(self.tuples) <= 8:
            raise ValueError(f"clause has {len(self.tuples)} tuples (1-8 allowed)")
        if len(self.constants) > MAX_CONSTS:
            raise ValueError(f"clause has {len(self.constants)} constants (max {MAX_CONSTS})")
        for fma, add in self.tuples:
            if add.op is not Op.NOP and not can_use_add_slot(add.op):
                raise ValueError(f"{add.op.name} cannot occupy an ADD slot")
        if self.tail in (Tail.BRANCH, Tail.BRANCH_Z) and not is_grf(self.cond_reg):
            raise ValueError("branch condition must be a GRF register")


@dataclass
class Program:
    """A decoded GPU shader program: an indexed sequence of clauses.

    Attributes:
        clauses: the clause list; branch targets are indices into it.
        meta: optional compiler metadata (register usage, symbol names).
    """

    clauses: list = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def validate(self):
        for index, clause in enumerate(self.clauses):
            clause.validate()
            if clause.tail in (Tail.JUMP, Tail.BRANCH, Tail.BRANCH_Z):
                if not 0 <= clause.target < len(self.clauses):
                    raise ValueError(
                        f"clause {index} branches to invalid clause {clause.target}"
                    )
            if clause.tail is Tail.FALLTHROUGH and index == len(self.clauses) - 1:
                raise ValueError("final clause cannot fall through")

    @property
    def static_slot_count(self):
        return sum(2 * clause.size for clause in self.clauses)

    @property
    def static_nop_count(self):
        return sum(
            1 for clause in self.clauses for slot in clause.slots() if slot.op is Op.NOP
        )
