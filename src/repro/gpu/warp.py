"""Quad-warp execution of clauses.

Threads execute in quads of four — the paper's 128-bit datapath
vectorization scheme ("Threads are grouped into bundles of four (a 'quad'),
which fill the width of a 128-bit data processing unit"). Lane state is held
in NumPy vectors so each instruction issue operates on the whole quad, like
the hardware datapath.

Divergence is handled by minimum-PC scheduling at clause granularity: each
lane carries its own next-clause index; on every step the warp executes the
lanes positioned at the numerically smallest clause index. Because the
compiler lays out clauses in forward order, diverged lanes naturally
reconverge at the join clause. Divergent branches are recorded for the
Fig. 6 CFG.
"""

import numpy as np

from repro.errors import GuestError
from repro.instrument.stats import apply_clause_stats
from repro.gpu.isa import (
    ATOM_ADD,
    ATOM_AND,
    ATOM_MAX,
    ATOM_MIN,
    ATOM_MODE_SHIFT,
    ATOM_OR,
    ATOM_SUB,
    ATOM_XCHG,
    ATOM_XOR,
    CONST_BASE,
    NUM_GRF,
    NUM_TEMPS,
    OPERAND_NONE,
    QUAD_WIDTH,
    REG_LANE,
    TEMP_BASE,
    CmpMode,
    Op,
    Tail,
    is_const,
    is_grf,
    is_temp,
)

WARP_WIDTH = QUAD_WIDTH
_END_PC = 1 << 30

_SHIFT_MASK = np.uint32(31)
_F32_QNAN = np.float32(np.nan)  # canonical quiet NaN, bits 0x7FC00000


def _as_f32(values):
    return values.view(np.float32)


# -- shared vector semantics ---------------------------------------------------
#
# The long-tail ops (division, remainder, float<->int conversion) have
# corner-case behaviour (divide-by-zero yields zero, saturating float
# conversion, NaN converts to zero) that must be bit-identical in every
# engine. These pure functions on uint32 lane vectors of any length are
# the single definition: the interpreter handlers, the JIT's ALU table
# and the megakernel engine all delegate here.

def vec_idiv(a_u32, b_u32):
    """Signed 32-bit division: truncate toward zero, x/0 == 0."""
    a = a_u32.view(np.int32).astype(np.int64)
    b = b_u32.view(np.int32).astype(np.int64)
    safe = np.where(b == 0, 1, b)
    quotient = np.where(b == 0, 0, np.trunc(a / safe))
    return quotient.astype(np.int64).astype(np.int32).view(np.uint32)


def vec_irem(a_u32, b_u32):
    """Signed 32-bit remainder (C semantics), x%0 == 0."""
    a = a_u32.view(np.int32).astype(np.int64)
    b = b_u32.view(np.int32).astype(np.int64)
    safe = np.where(b == 0, 1, b)
    quotient = np.trunc(a / safe).astype(np.int64)
    remainder = a - quotient * safe
    remainder = np.where(b == 0, 0, remainder)
    return remainder.astype(np.int32).view(np.uint32)


def vec_udiv(a_u32, b_u32):
    a = a_u32.astype(np.uint64)
    b = b_u32.astype(np.uint64)
    safe = np.where(b == 0, 1, b)
    return np.where(b == 0, 0, a // safe).astype(np.uint32)


def vec_urem(a_u32, b_u32):
    a = a_u32.astype(np.uint64)
    b = b_u32.astype(np.uint64)
    safe = np.where(b == 0, 1, b)
    return np.where(b == 0, 0, a % safe).astype(np.uint32)


def vec_f2i(a_u32):
    """Saturating float->int32 (the architecture's defined out-of-range
    behaviour; NaN converts to 0)."""
    a = _as_f32(a_u32)
    with np.errstate(all="ignore"):
        safe = np.nan_to_num(a.astype(np.float64), nan=0.0)
        clipped = np.clip(safe, -2147483648.0, 2147483647.0)
        return clipped.astype(np.int64).astype(np.int32).view(np.uint32)


def vec_f2u(a_u32):
    a = _as_f32(a_u32)
    with np.errstate(all="ignore"):
        safe = np.nan_to_num(a.astype(np.float64), nan=0.0)
        clipped = np.clip(safe, 0.0, 4294967295.0)
        return clipped.astype(np.int64).astype(np.uint32)


def vec_i2f(a_u32):
    return a_u32.view(np.int32).astype(np.float32)


def vec_u2f(a_u32):
    return a_u32.astype(np.float32)


class QuadWarp:
    """Architectural state of one quad: registers, temps, per-lane PCs."""

    __slots__ = ("regs", "temps", "pcs", "live", "at_barrier", "clause_steps")

    def __init__(self, active_lanes=WARP_WIDTH):
        self.regs = np.zeros((WARP_WIDTH, NUM_GRF), dtype=np.uint32)
        self.regs[:, REG_LANE] = np.arange(WARP_WIDTH, dtype=np.uint32)
        self.temps = np.zeros((WARP_WIDTH, NUM_TEMPS), dtype=np.uint32)
        self.pcs = np.zeros(WARP_WIDTH, dtype=np.int64)
        self.live = np.zeros(WARP_WIDTH, dtype=bool)
        self.live[:active_lanes] = True
        self.pcs[~self.live] = _END_PC
        self.at_barrier = np.zeros(WARP_WIDTH, dtype=bool)
        self.clause_steps = 0

    @property
    def finished(self):
        return bool((self.pcs >= _END_PC).all())

    @property
    def blocked(self):
        """True when every still-running lane waits at a barrier."""
        running = self.pcs < _END_PC
        return bool(running.any() and (self.at_barrier | ~running).all())

    def release_barrier(self):
        self.at_barrier[:] = False


class ClauseInterpreter:
    """Executes decoded clauses for quad warps.

    Args:
        program: decoded :class:`~repro.gpu.isa.Program`.
        uniforms: uint32 vector backing the uniform ("Constant Read") port.
        mem: object with ``load_u32(vaddr)`` / ``store_u32(vaddr, value)``
            for global (main) memory, going through the GPU MMU.
        local: uint32 NumPy array backing workgroup-local memory
            (byte offsets are divided by 4), or None when the kernel uses
            no local memory.
        stats: a :class:`~repro.instrument.stats.JobStats` to fill, or None
            to run without instrumentation (the Fig. 8 "w/o instrum." mode).
        cfg: a :class:`~repro.instrument.cfg.DivergenceCFG` or None.
    """

    def __init__(self, program, uniforms, mem, local=None, stats=None,
                 cfg=None, tracer=None):
        self.program = program
        self.uniforms = uniforms
        self.mem = mem
        self.local = local
        self.stats = stats
        self.cfg = cfg
        self.tracer = tracer
        self._dispatch = _DISPATCH
        # quad-wide memory fast path: available when the memory port
        # exposes the vector API (the GPU MMU over PhysicalMemory does;
        # bus-routed or test stub ports fall back to per-word accesses).
        # Tracing needs per-word visibility, so it pins the scalar path.
        self._quad_load = getattr(mem, "load_quad_u32", None)
        self._quad_store = getattr(mem, "store_quad_u32", None)
        if tracer is not None or self._quad_load is None \
                or self._quad_store is None:
            self._quad_load = None
            self._quad_store = None
        # per-interpreter scratch: uniform broadcasts are materialized
        # once per slot instead of one np.full per issue
        self._uniform_vectors = {}
        # deferred per-clause stat accumulation: clause index ->
        # [issue count, total active lanes], flushed by run_warp
        self._pending_stats = {}

    # -- warp scheduling ------------------------------------------------------

    def run_warp(self, warp, max_clauses=1_000_000):
        """Run *warp* until it finishes or blocks at a barrier.

        Returns ``"done"`` or ``"barrier"``.
        """
        pcs = warp.pcs
        at_barrier = warp.at_barrier
        try:
            while True:
                running = pcs < _END_PC
                if not running.any():
                    return "done"
                runnable = running & ~at_barrier
                if not runnable.any():
                    return "barrier"
                current = int(pcs[runnable].min())
                mask = runnable & (pcs == current)
                self._execute_clause(warp, current, mask)
                warp.clause_steps += 1
                if warp.clause_steps > max_clauses:
                    raise GuestError(
                        f"warp exceeded {max_clauses} clauses; "
                        f"kernel is likely stuck"
                    )
        finally:
            self._flush_clause_stats()

    def _flush_clause_stats(self):
        """Apply the deferred per-clause counters to the JobStats
        (shared with the JIT engine so both produce identical counts)."""
        if self._pending_stats:
            apply_clause_stats(self.stats, self.program.clauses,
                               self._pending_stats)

    # -- clause execution -------------------------------------------------------

    def _execute_clause(self, warp, clause_index, mask):
        clause = self.program.clauses[clause_index]
        lanes = int(mask.sum())
        if self.stats is not None:
            # decode-time clause metrics: execution only records clause
            # frequency and scales by active lanes (paper Section IV-A);
            # the actual additions are deferred to _flush_clause_stats
            entry = self._pending_stats.get(clause_index)
            if entry is None:
                self._pending_stats[clause_index] = [1, lanes]
            else:
                entry[0] += 1
                entry[1] += lanes
        for instr in clause.active_slots():
            self._execute_instr(warp, clause, instr, mask, lanes)
        self._apply_tail(warp, clause, clause_index, mask, lanes)

    def _apply_tail(self, warp, clause, clause_index, mask, lanes):
        tail = clause.tail
        stats = self.stats
        full = lanes == WARP_WIDTH
        if tail is Tail.FALLTHROUGH:
            if full:
                warp.pcs[:] = clause_index + 1
            else:
                warp.pcs[mask] = clause_index + 1
            next_pcs = None
        elif tail is Tail.END:
            if full:
                warp.pcs[:] = _END_PC
            else:
                warp.pcs[mask] = _END_PC
            next_pcs = None
        elif tail is Tail.JUMP:
            if full:
                warp.pcs[:] = clause.target
            else:
                warp.pcs[mask] = clause.target
            next_pcs = None
            if stats is not None:
                stats.cf_instrs += lanes
                stats.branch_events += 1
        elif tail is Tail.BARRIER:
            warp.pcs[mask] = clause_index + 1
            warp.at_barrier |= mask
            next_pcs = None
        else:  # BRANCH / BRANCH_Z
            cond = warp.regs[:, clause.cond_reg] != 0
            if tail is Tail.BRANCH_Z:
                cond = ~cond
            taken = mask & cond
            not_taken = mask & ~cond
            warp.pcs[taken] = clause.target
            warp.pcs[not_taken] = clause_index + 1
            next_pcs = warp.pcs
            if stats is not None:
                stats.cf_instrs += lanes
                stats.branch_events += 1
                if taken.any() and not_taken.any():
                    stats.divergent_branches += 1
                    if self.cfg is not None:
                        self.cfg.record_divergence(clause_index)
        if self.cfg is not None:
            self.cfg.record_execution(clause_index, lanes)
            if next_pcs is None:
                # uniform successor for all masked lanes
                if tail is Tail.END:
                    self.cfg.record_edge(clause_index, DivergenceCFGEnd, lanes)
                else:
                    successor = clause.target if tail is Tail.JUMP else clause_index + 1
                    self.cfg.record_edge(clause_index, successor, lanes)
            else:
                for lane in np.flatnonzero(mask):
                    pc = int(warp.pcs[lane])
                    dst = DivergenceCFGEnd if pc >= _END_PC else pc
                    self.cfg.record_edge(clause_index, dst, 1)

    # -- operand access ---------------------------------------------------------

    def _read(self, warp, clause, operand, lanes):
        if is_grf(operand):
            return warp.regs[:, operand]
        if is_temp(operand):
            return warp.temps[:, operand - TEMP_BASE]
        if is_const(operand):
            # decode-time pre-broadcast constant vector (shared, read-only)
            return clause.constant_vectors()[operand - CONST_BASE]
        raise GuestError(f"invalid source operand {operand}")

    def _write(self, warp, operand, values, mask, lanes):
        # full-warp writes skip the masked copyto: distinct register
        # columns never overlap in storage, so a plain slice assignment
        # is equivalent (and MOV r, r is the identity either way)
        if is_grf(operand):
            if lanes == WARP_WIDTH:
                warp.regs[:, operand] = values.view(np.uint32)
            else:
                np.copyto(warp.regs[:, operand], values.view(np.uint32),
                          where=mask)
        elif is_temp(operand):
            if lanes == WARP_WIDTH:
                warp.temps[:, operand - TEMP_BASE] = values.view(np.uint32)
            else:
                np.copyto(warp.temps[:, operand - TEMP_BASE],
                          values.view(np.uint32), where=mask)
        else:
            raise GuestError(f"invalid destination operand {operand}")

    # -- instruction execution ----------------------------------------------------

    def _execute_instr(self, warp, clause, instr, mask, lanes):
        op = instr.op
        if op is Op.LD or op is Op.ST:
            self._execute_memory(warp, clause, instr, mask, lanes)
            return
        if op is Op.ATOM:
            self._execute_atomic(warp, clause, instr, mask, lanes)
            return
        if op is Op.LDU:
            values = self._uniform_vectors.get(instr.imm)
            if values is None:
                values = np.full(WARP_WIDTH, self.uniforms[instr.imm],
                                 dtype=np.uint32)
                values.flags.writeable = False
                self._uniform_vectors[instr.imm] = values
            self._write(warp, instr.dst, values, mask, lanes)
            if self.tracer is not None:
                self.tracer.record_quad(warp, mask, instr, values)
            return
        handler = self._dispatch[op]
        result = handler(self, warp, clause, instr, lanes)
        self._write(warp, instr.dst, result, mask, lanes)
        if self.tracer is not None:
            self.tracer.record_quad(warp, mask, instr,
                                    result.view(np.uint32))

    def _execute_memory(self, warp, clause, instr, mask, lanes):
        width = instr.mem_width
        local = instr.mem_is_local
        addrs = self._read(warp, clause, instr.srca, lanes)
        if self.tracer is None:
            if local:
                self._memory_local_quad(warp, clause, instr, addrs, mask,
                                        lanes, width)
                return
            if self._quad_load is not None:
                self._memory_global_quad(warp, clause, instr, addrs, mask,
                                         lanes, width)
                return
        self._execute_memory_scalar(warp, clause, instr, addrs, mask,
                                    lanes, width, local)

    def _memory_local_quad(self, warp, clause, instr, addrs, mask, lanes,
                           width):
        """Workgroup-local LD/ST as NumPy fancy indexing on the local slab."""
        local = self.local
        if lanes == WARP_WIDTH:
            indices = addrs >> 2
            if instr.op is Op.LD:
                base = instr.dst
                for element in range(width):
                    idx = indices if element == 0 else indices + element
                    warp.regs[:, base + element] = local[idx]
            else:
                base = instr.srcb
                for element in range(width):
                    values = self._read(warp, clause, base + element, lanes)
                    idx = indices if element == 0 else indices + element
                    local[idx] = values.view(np.uint32)
            return
        active = np.flatnonzero(mask)
        indices = (addrs[active].astype(np.int64) >> 2)
        if instr.op is Op.LD:
            base = instr.dst
            for element in range(width):
                warp.regs[active, base + element] = local[indices + element]
        else:
            base = instr.srcb
            for element in range(width):
                values = self._read(warp, clause, base + element, lanes)
                local[indices + element] = values.view(np.uint32)[active]

    def _memory_global_quad(self, warp, clause, instr, addrs, mask, lanes,
                            width):
        """Global LD/ST through the MMU quad gather/scatter fast path.

        Lane addresses travel as Python ints (one ``tolist`` per
        instruction) so the MMU's same-page probe stays off the NumPy
        small-array overhead. Each element row tries the coalesced path
        first; a quad the MMU cannot serve whole (fault, permissions,
        disabled fast path) is replayed lane-by-lane through the scalar
        port, which reproduces the exact scalar-mode fault semantics and
        statistics.
        """
        full = lanes == WARP_WIDTH
        if full:
            active = None
            addr_list = addrs.tolist()
        else:
            active = np.flatnonzero(mask)
            addr_list = addrs[active].tolist()
        if instr.op is Op.LD:
            base = instr.dst
            for element in range(width):
                elem_addrs = addr_list if element == 0 else \
                    [a + 4 * element for a in addr_list]
                values = self._quad_load(elem_addrs)
                if values is None:
                    if active is None:
                        active = np.flatnonzero(mask)
                    self._scalar_load_element(warp, addrs, active,
                                              base + element, element, False)
                elif full:
                    warp.regs[:, base + element] = values
                else:
                    warp.regs[active, base + element] = values
        else:
            base = instr.srcb
            for element in range(width):
                values = self._read(warp, clause, base + element, lanes)
                u32 = values.view(np.uint32)
                elem_addrs = addr_list if element == 0 else \
                    [a + 4 * element for a in addr_list]
                lane_values = u32 if full else u32[active]
                if self._quad_store(elem_addrs, lane_values) is None:
                    if active is None:
                        active = np.flatnonzero(mask)
                    self._scalar_store_element(addrs, active, u32,
                                               element, False)

    def _scalar_load_element(self, warp, addrs, active, reg, element, local):
        for lane in active:
            addr = int(addrs[lane]) + 4 * element
            if local:
                warp.regs[lane, reg] = self.local[addr >> 2]
            else:
                warp.regs[lane, reg] = self.mem.load_u32(addr)

    def _scalar_store_element(self, addrs, active, values, element, local):
        for lane in active:
            addr = int(addrs[lane]) + 4 * element
            if local:
                self.local[addr >> 2] = values[lane]
            else:
                self.mem.store_u32(addr, int(values[lane]))

    def _execute_memory_scalar(self, warp, clause, instr, addrs, mask,
                               lanes, width, local):
        """Reference per-word path (tracer mode / non-vector memory ports)."""
        lanes_index = np.flatnonzero(mask)
        if instr.op is Op.LD:
            base = instr.dst
            for element in range(width):
                values = warp.regs[:, base + element].copy()
                for lane in lanes_index:
                    addr = int(addrs[lane]) + 4 * element
                    if local:
                        values[lane] = self.local[addr >> 2]
                    else:
                        values[lane] = self.mem.load_u32(addr)
                self._write_vector_reg(warp, base + element, values, mask, lanes)
                if self.tracer is not None:
                    self.tracer.record_quad(warp, mask, instr, values,
                                            element=element)
        else:  # ST
            base = instr.srcb
            for element in range(width):
                values = self._read(warp, clause, base + element, lanes)
                for lane in lanes_index:
                    addr = int(addrs[lane]) + 4 * element
                    if local:
                        self.local[addr >> 2] = values[lane]
                    else:
                        self.mem.store_u32(addr, int(values[lane]))
                if self.tracer is not None:
                    self.tracer.record_quad(warp, mask, instr,
                                            values.view(np.uint32),
                                            element=element)

    def _execute_atomic(self, warp, clause, instr, mask, lanes):
        """Atomic read-modify-write: lanes apply in lane order (the
        machine's serialization point); dst receives each lane's old value."""
        local = instr.mem_is_local
        addrs = self._read(warp, clause, instr.srca, lanes)
        values = self._read(warp, clause, instr.srcb, lanes)
        mode = (instr.flags >> ATOM_MODE_SHIFT) & 0x7
        old = warp.regs[:, instr.dst].copy() if is_grf(instr.dst) else \
            np.zeros(WARP_WIDTH, dtype=np.uint32)
        for lane in np.flatnonzero(mask):
            addr = int(addrs[lane])
            if local:
                current = int(self.local[addr >> 2])
            else:
                current = self.mem.load_u32(addr)
            old[lane] = current
            updated = _atomic_apply(mode, current, int(values[lane]))
            if local:
                self.local[addr >> 2] = updated
            else:
                self.mem.store_u32(addr, updated)
        self._write(warp, instr.dst, old, mask, lanes)
        if self.tracer is not None:
            self.tracer.record_quad(warp, mask, instr, old)

    def _write_vector_reg(self, warp, reg, values, mask, lanes):
        np.copyto(warp.regs[:, reg], values, where=mask)

    # -- arithmetic handlers --------------------------------------------------

    def _h_mov(self, warp, clause, instr, lanes):
        return self._read(warp, clause, instr.srca, lanes)

    def _binary_f(self, warp, clause, instr, lanes, fn):
        a = _as_f32(self._read(warp, clause, instr.srca, lanes))
        b = _as_f32(self._read(warp, clause, instr.srcb, lanes))
        with np.errstate(all="ignore"):
            # copy=False: fn always returns a fresh temporary, so the
            # conversion can reuse it when the dtype already matches
            return fn(a, b).astype(np.float32, copy=False)

    def _unary_f(self, warp, clause, instr, lanes, fn):
        a = _as_f32(self._read(warp, clause, instr.srca, lanes))
        with np.errstate(all="ignore"):
            return fn(a).astype(np.float32, copy=False)

    def _h_fadd(self, w, c, i, n):
        return self._binary_f(w, c, i, n, np.add)

    def _h_fsub(self, w, c, i, n):
        return self._binary_f(w, c, i, n, np.subtract)

    def _h_fmul(self, w, c, i, n):
        return self._binary_f(w, c, i, n, np.multiply)

    def _h_fma(self, w, c, i, n):
        a = _as_f32(self._read(w, c, i.srca, n))
        b = _as_f32(self._read(w, c, i.srcb, n))
        acc = _as_f32(self._read(w, c, i.srcc, n))
        with np.errstate(all="ignore"):
            return (a * b + acc).astype(np.float32, copy=False)

    def _h_fmin(self, w, c, i, n):
        return self._minmax_f(w, c, i, n, np.fmin)

    def _h_fmax(self, w, c, i, n):
        return self._minmax_f(w, c, i, n, np.fmax)

    def _minmax_f(self, warp, clause, instr, lanes, fn):
        # Arm default-NaN mode: a NaN result of min/max is the canonical
        # quiet NaN, never a propagated payload (NumPy's fmin/fmax payload
        # choice is SIMD-lane-dependent, so propagation cannot be bit-exact
        # across engine vector widths)
        a = _as_f32(self._read(warp, clause, instr.srca, lanes))
        b = _as_f32(self._read(warp, clause, instr.srcb, lanes))
        with np.errstate(all="ignore"):
            out = fn(a, b).astype(np.float32, copy=False)
            nan = np.isnan(out)
            if nan.any():
                out[nan] = _F32_QNAN
        return out

    def _h_fabs(self, w, c, i, n):
        return self._unary_f(w, c, i, n, np.abs)

    def _h_fneg(self, w, c, i, n):
        return self._unary_f(w, c, i, n, np.negative)

    def _h_ffloor(self, w, c, i, n):
        return self._unary_f(w, c, i, n, np.floor)

    def _h_frcp(self, w, c, i, n):
        return self._unary_f(w, c, i, n, lambda x: np.float32(1.0) / x)

    def _h_fsqrt(self, w, c, i, n):
        return self._unary_f(w, c, i, n, np.sqrt)

    def _h_frsq(self, w, c, i, n):
        return self._unary_f(w, c, i, n, lambda x: np.float32(1.0) / np.sqrt(x))

    def _h_fexp(self, w, c, i, n):
        return self._unary_f(w, c, i, n, np.exp)

    def _h_flog(self, w, c, i, n):
        return self._unary_f(w, c, i, n, np.log)

    def _h_fsin(self, w, c, i, n):
        return self._unary_f(w, c, i, n, np.sin)

    def _h_fcos(self, w, c, i, n):
        return self._unary_f(w, c, i, n, np.cos)

    def _h_f2i(self, w, c, i, n):
        return vec_f2i(self._read(w, c, i.srca, n))

    def _h_f2u(self, w, c, i, n):
        return vec_f2u(self._read(w, c, i.srca, n))

    def _h_i2f(self, w, c, i, n):
        return vec_i2f(self._read(w, c, i.srca, n))

    def _h_u2f(self, w, c, i, n):
        return vec_u2f(self._read(w, c, i.srca, n))

    def _binary_u(self, warp, clause, instr, lanes, fn):
        a = self._read(warp, clause, instr.srca, lanes)
        b = self._read(warp, clause, instr.srcb, lanes)
        return fn(a, b).astype(np.uint32, copy=False)

    def _h_iadd(self, w, c, i, n):
        return self._binary_u(w, c, i, n, np.add)

    def _h_isub(self, w, c, i, n):
        return self._binary_u(w, c, i, n, np.subtract)

    def _h_imul(self, w, c, i, n):
        a = self._read(w, c, i.srca, n).astype(np.uint64)
        b = self._read(w, c, i.srcb, n).astype(np.uint64)
        return (a * b).astype(np.uint32)

    def _h_iand(self, w, c, i, n):
        return self._binary_u(w, c, i, n, np.bitwise_and)

    def _h_ior(self, w, c, i, n):
        return self._binary_u(w, c, i, n, np.bitwise_or)

    def _h_ixor(self, w, c, i, n):
        return self._binary_u(w, c, i, n, np.bitwise_xor)

    def _h_ishl(self, w, c, i, n):
        return self._binary_u(w, c, i, n, lambda a, b: a << (b & _SHIFT_MASK))

    def _h_ishr(self, w, c, i, n):
        return self._binary_u(w, c, i, n, lambda a, b: a >> (b & _SHIFT_MASK))

    def _h_iashr(self, w, c, i, n):
        a = self._read(w, c, i.srca, n).view(np.int32)
        b = self._read(w, c, i.srcb, n)
        return (a >> (b & _SHIFT_MASK).astype(np.int32)).view(np.uint32)

    def _h_imin(self, w, c, i, n):
        a = self._read(w, c, i.srca, n).view(np.int32)
        b = self._read(w, c, i.srcb, n).view(np.int32)
        return np.minimum(a, b).view(np.uint32)

    def _h_imax(self, w, c, i, n):
        a = self._read(w, c, i.srca, n).view(np.int32)
        b = self._read(w, c, i.srcb, n).view(np.int32)
        return np.maximum(a, b).view(np.uint32)

    def _h_umin(self, w, c, i, n):
        return self._binary_u(w, c, i, n, np.minimum)

    def _h_umax(self, w, c, i, n):
        return self._binary_u(w, c, i, n, np.maximum)

    def _h_iabs(self, w, c, i, n):
        a = self._read(w, c, i.srca, n).view(np.int32)
        return np.abs(a).view(np.uint32)

    def _h_idiv(self, w, c, i, n):
        return vec_idiv(self._read(w, c, i.srca, n),
                        self._read(w, c, i.srcb, n))

    def _h_irem(self, w, c, i, n):
        return vec_irem(self._read(w, c, i.srca, n),
                        self._read(w, c, i.srcb, n))

    def _h_udiv(self, w, c, i, n):
        return vec_udiv(self._read(w, c, i.srca, n),
                        self._read(w, c, i.srcb, n))

    def _h_urem(self, w, c, i, n):
        return vec_urem(self._read(w, c, i.srca, n),
                        self._read(w, c, i.srcb, n))

    def _h_cmp(self, w, c, i, n):
        mode = CmpMode(i.flags)
        raw_a = self._read(w, c, i.srca, n)
        raw_b = self._read(w, c, i.srcb, n)
        if mode <= CmpMode.FGE:
            a, b = _as_f32(raw_a), _as_f32(raw_b)
        elif mode <= CmpMode.IGE:
            a, b = raw_a.view(np.int32), raw_b.view(np.int32)
        else:
            a, b = raw_a, raw_b
        with np.errstate(invalid="ignore"):
            result = _CMP_FNS[mode](a, b)
        return result.astype(np.uint32)

    def _h_select(self, w, c, i, n):
        a = self._read(w, c, i.srca, n)
        b = self._read(w, c, i.srcb, n)
        cond = self._read(w, c, i.srcc, n)
        return np.where(cond != 0, a, b)


def _atomic_apply(mode, current, operand):
    """32-bit atomic update function shared by all engines."""
    if mode == ATOM_ADD:
        return (current + operand) & 0xFFFFFFFF
    if mode == ATOM_SUB:
        return (current - operand) & 0xFFFFFFFF
    if mode == ATOM_MIN:
        a = current - (1 << 32) if current & 0x80000000 else current
        b = operand - (1 << 32) if operand & 0x80000000 else operand
        return min(a, b) & 0xFFFFFFFF
    if mode == ATOM_MAX:
        a = current - (1 << 32) if current & 0x80000000 else current
        b = operand - (1 << 32) if operand & 0x80000000 else operand
        return max(a, b) & 0xFFFFFFFF
    if mode == ATOM_AND:
        return current & operand
    if mode == ATOM_OR:
        return current | operand
    if mode == ATOM_XOR:
        return current ^ operand
    if mode == ATOM_XCHG:
        return operand & 0xFFFFFFFF
    raise GuestError(f"unknown atomic mode {mode}")


DivergenceCFGEnd = "END"

_CMP_FNS = {
    CmpMode.FEQ: np.equal, CmpMode.FNE: np.not_equal,
    CmpMode.FLT: np.less, CmpMode.FLE: np.less_equal,
    CmpMode.FGT: np.greater, CmpMode.FGE: np.greater_equal,
    CmpMode.IEQ: np.equal, CmpMode.INE: np.not_equal,
    CmpMode.ILT: np.less, CmpMode.ILE: np.less_equal,
    CmpMode.IGT: np.greater, CmpMode.IGE: np.greater_equal,
    CmpMode.ULT: np.less, CmpMode.ULE: np.less_equal,
    CmpMode.UGT: np.greater, CmpMode.UGE: np.greater_equal,
}

_DISPATCH = {
    Op.MOV: ClauseInterpreter._h_mov,
    Op.FADD: ClauseInterpreter._h_fadd,
    Op.FSUB: ClauseInterpreter._h_fsub,
    Op.FMUL: ClauseInterpreter._h_fmul,
    Op.FMA: ClauseInterpreter._h_fma,
    Op.FMIN: ClauseInterpreter._h_fmin,
    Op.FMAX: ClauseInterpreter._h_fmax,
    Op.FABS: ClauseInterpreter._h_fabs,
    Op.FNEG: ClauseInterpreter._h_fneg,
    Op.FFLOOR: ClauseInterpreter._h_ffloor,
    Op.FRCP: ClauseInterpreter._h_frcp,
    Op.FSQRT: ClauseInterpreter._h_fsqrt,
    Op.FRSQ: ClauseInterpreter._h_frsq,
    Op.FEXP: ClauseInterpreter._h_fexp,
    Op.FLOG: ClauseInterpreter._h_flog,
    Op.FSIN: ClauseInterpreter._h_fsin,
    Op.FCOS: ClauseInterpreter._h_fcos,
    Op.F2I: ClauseInterpreter._h_f2i,
    Op.F2U: ClauseInterpreter._h_f2u,
    Op.I2F: ClauseInterpreter._h_i2f,
    Op.U2F: ClauseInterpreter._h_u2f,
    Op.IADD: ClauseInterpreter._h_iadd,
    Op.ISUB: ClauseInterpreter._h_isub,
    Op.IMUL: ClauseInterpreter._h_imul,
    Op.IAND: ClauseInterpreter._h_iand,
    Op.IOR: ClauseInterpreter._h_ior,
    Op.IXOR: ClauseInterpreter._h_ixor,
    Op.ISHL: ClauseInterpreter._h_ishl,
    Op.ISHR: ClauseInterpreter._h_ishr,
    Op.IASHR: ClauseInterpreter._h_iashr,
    Op.IMIN: ClauseInterpreter._h_imin,
    Op.IMAX: ClauseInterpreter._h_imax,
    Op.UMIN: ClauseInterpreter._h_umin,
    Op.UMAX: ClauseInterpreter._h_umax,
    Op.IDIV: ClauseInterpreter._h_idiv,
    Op.IREM: ClauseInterpreter._h_irem,
    Op.UDIV: ClauseInterpreter._h_udiv,
    Op.UREM: ClauseInterpreter._h_urem,
    Op.IABS: ClauseInterpreter._h_iabs,
    Op.CMP: ClauseInterpreter._h_cmp,
    Op.SELECT: ClauseInterpreter._h_select,
}
