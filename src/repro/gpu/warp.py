"""Quad-warp execution of clauses.

Threads execute in quads of four — the paper's 128-bit datapath
vectorization scheme ("Threads are grouped into bundles of four (a 'quad'),
which fill the width of a 128-bit data processing unit"). Lane state is held
in NumPy vectors so each instruction issue operates on the whole quad, like
the hardware datapath.

Divergence is handled by minimum-PC scheduling at clause granularity: each
lane carries its own next-clause index; on every step the warp executes the
lanes positioned at the numerically smallest clause index. Because the
compiler lays out clauses in forward order, diverged lanes naturally
reconverge at the join clause. Divergent branches are recorded for the
Fig. 6 CFG.
"""

import numpy as np

from repro.errors import GuestError
from repro.gpu.isa import (
    ATOM_ADD,
    ATOM_AND,
    ATOM_MAX,
    ATOM_MIN,
    ATOM_MODE_SHIFT,
    ATOM_OR,
    ATOM_SUB,
    ATOM_XCHG,
    ATOM_XOR,
    CONST_BASE,
    NUM_GRF,
    NUM_TEMPS,
    OPERAND_NONE,
    REG_LANE,
    TEMP_BASE,
    CmpMode,
    Op,
    Tail,
    is_const,
    is_grf,
    is_temp,
)

WARP_WIDTH = 4
_END_PC = 1 << 30

_SHIFT_MASK = np.uint32(31)


def _as_f32(values):
    return values.view(np.float32)


class QuadWarp:
    """Architectural state of one quad: registers, temps, per-lane PCs."""

    __slots__ = ("regs", "temps", "pcs", "live", "at_barrier", "clause_steps")

    def __init__(self, active_lanes=WARP_WIDTH):
        self.regs = np.zeros((WARP_WIDTH, NUM_GRF), dtype=np.uint32)
        self.regs[:, REG_LANE] = np.arange(WARP_WIDTH, dtype=np.uint32)
        self.temps = np.zeros((WARP_WIDTH, NUM_TEMPS), dtype=np.uint32)
        self.pcs = np.zeros(WARP_WIDTH, dtype=np.int64)
        self.live = np.zeros(WARP_WIDTH, dtype=bool)
        self.live[:active_lanes] = True
        self.pcs[~self.live] = _END_PC
        self.at_barrier = np.zeros(WARP_WIDTH, dtype=bool)
        self.clause_steps = 0

    @property
    def finished(self):
        return bool((self.pcs >= _END_PC).all())

    @property
    def blocked(self):
        """True when every still-running lane waits at a barrier."""
        running = self.pcs < _END_PC
        return bool(running.any() and (self.at_barrier | ~running).all())

    def release_barrier(self):
        self.at_barrier[:] = False


class ClauseInterpreter:
    """Executes decoded clauses for quad warps.

    Args:
        program: decoded :class:`~repro.gpu.isa.Program`.
        uniforms: uint32 vector backing the uniform ("Constant Read") port.
        mem: object with ``load_u32(vaddr)`` / ``store_u32(vaddr, value)``
            for global (main) memory, going through the GPU MMU.
        local: uint32 NumPy array backing workgroup-local memory
            (byte offsets are divided by 4), or None when the kernel uses
            no local memory.
        stats: a :class:`~repro.instrument.stats.JobStats` to fill, or None
            to run without instrumentation (the Fig. 8 "w/o instrum." mode).
        cfg: a :class:`~repro.instrument.cfg.DivergenceCFG` or None.
    """

    def __init__(self, program, uniforms, mem, local=None, stats=None,
                 cfg=None, tracer=None):
        self.program = program
        self.uniforms = uniforms
        self.mem = mem
        self.local = local
        self.stats = stats
        self.cfg = cfg
        self.tracer = tracer
        self._dispatch = _DISPATCH

    # -- warp scheduling ------------------------------------------------------

    def run_warp(self, warp, max_clauses=1_000_000):
        """Run *warp* until it finishes or blocks at a barrier.

        Returns ``"done"`` or ``"barrier"``.
        """
        while True:
            if warp.finished:
                return "done"
            if warp.blocked:
                return "barrier"
            runnable = (warp.pcs < _END_PC) & ~warp.at_barrier
            current = int(warp.pcs[runnable].min())
            mask = runnable & (warp.pcs == current)
            self._execute_clause(warp, current, mask)
            warp.clause_steps += 1
            if warp.clause_steps > max_clauses:
                raise GuestError(
                    f"warp exceeded {max_clauses} clauses; kernel is likely stuck"
                )

    # -- clause execution -------------------------------------------------------

    def _execute_clause(self, warp, clause_index, mask):
        clause = self.program.clauses[clause_index]
        lanes = int(mask.sum())
        stats = self.stats
        if stats is not None:
            # decode-time clause metrics: execution only records clause
            # frequency and scales by active lanes (paper Section IV-A)
            metrics = clause.metrics()
            stats.clauses_executed += 1
            size = clause.size
            stats.clause_size_histogram[size] = \
                stats.clause_size_histogram.get(size, 0) + 1
            stats.arith_cycles += size
            stats.ls_cycles += metrics.ls_beats
            stats.arith_instrs += metrics.arith_instrs * lanes
            stats.nop_instrs += metrics.nop_instrs * lanes
            stats.ls_global_instrs += metrics.ls_global_instrs * lanes
            stats.ls_local_instrs += metrics.ls_local_instrs * lanes
            stats.const_load_instrs += metrics.const_load_instrs * lanes
            stats.temp_reads += metrics.temp_reads * lanes
            stats.temp_writes += metrics.temp_writes * lanes
            stats.grf_reads += metrics.grf_reads * lanes
            stats.grf_writes += metrics.grf_writes * lanes
            stats.const_reads += metrics.const_reads * lanes
            stats.rom_reads += metrics.rom_reads * lanes
            stats.main_mem_accesses += metrics.main_mem_accesses * lanes
            stats.local_mem_accesses += metrics.local_mem_accesses * lanes
        for fma, add in clause.tuples:
            if fma.op is not Op.NOP:
                self._execute_instr(warp, clause, fma, mask, lanes)
            if add.op is not Op.NOP:
                self._execute_instr(warp, clause, add, mask, lanes)
        self._apply_tail(warp, clause, clause_index, mask, lanes)

    def _apply_tail(self, warp, clause, clause_index, mask, lanes):
        tail = clause.tail
        stats = self.stats
        if tail is Tail.FALLTHROUGH:
            warp.pcs[mask] = clause_index + 1
            next_pcs = None
        elif tail is Tail.END:
            warp.pcs[mask] = _END_PC
            next_pcs = None
        elif tail is Tail.JUMP:
            warp.pcs[mask] = clause.target
            next_pcs = None
            if stats is not None:
                stats.cf_instrs += lanes
                stats.branch_events += 1
        elif tail is Tail.BARRIER:
            warp.pcs[mask] = clause_index + 1
            warp.at_barrier |= mask
            next_pcs = None
        else:  # BRANCH / BRANCH_Z
            cond = warp.regs[:, clause.cond_reg] != 0
            if tail is Tail.BRANCH_Z:
                cond = ~cond
            taken = mask & cond
            not_taken = mask & ~cond
            warp.pcs[taken] = clause.target
            warp.pcs[not_taken] = clause_index + 1
            next_pcs = warp.pcs
            if stats is not None:
                stats.cf_instrs += lanes
                stats.branch_events += 1
                if taken.any() and not_taken.any():
                    stats.divergent_branches += 1
                    if self.cfg is not None:
                        self.cfg.record_divergence(clause_index)
        if self.cfg is not None:
            self.cfg.record_execution(clause_index, lanes)
            if next_pcs is None:
                # uniform successor for all masked lanes
                if tail is Tail.END:
                    self.cfg.record_edge(clause_index, DivergenceCFGEnd, lanes)
                else:
                    successor = clause.target if tail is Tail.JUMP else clause_index + 1
                    self.cfg.record_edge(clause_index, successor, lanes)
            else:
                for lane in np.flatnonzero(mask):
                    pc = int(warp.pcs[lane])
                    dst = DivergenceCFGEnd if pc >= _END_PC else pc
                    self.cfg.record_edge(clause_index, dst, 1)

    # -- operand access ---------------------------------------------------------

    def _read(self, warp, clause, operand, lanes):
        if is_grf(operand):
            return warp.regs[:, operand]
        if is_temp(operand):
            return warp.temps[:, operand - TEMP_BASE]
        if is_const(operand):
            value = clause.constants[operand - CONST_BASE]
            return np.full(WARP_WIDTH, value, dtype=np.uint32)
        raise GuestError(f"invalid source operand {operand}")

    def _write(self, warp, operand, values, mask, lanes):
        if is_grf(operand):
            np.copyto(warp.regs[:, operand], values.view(np.uint32), where=mask)
        elif is_temp(operand):
            np.copyto(warp.temps[:, operand - TEMP_BASE], values.view(np.uint32), where=mask)
        else:
            raise GuestError(f"invalid destination operand {operand}")

    # -- instruction execution ----------------------------------------------------

    def _execute_instr(self, warp, clause, instr, mask, lanes):
        op = instr.op
        if op is Op.LD or op is Op.ST:
            self._execute_memory(warp, clause, instr, mask, lanes)
            return
        if op is Op.ATOM:
            self._execute_atomic(warp, clause, instr, mask, lanes)
            return
        if op is Op.LDU:
            values = np.full(WARP_WIDTH, self.uniforms[instr.imm], dtype=np.uint32)
            self._write(warp, instr.dst, values, mask, lanes)
            if self.tracer is not None:
                self.tracer.record_quad(warp, mask, instr, values)
            return
        handler = self._dispatch[op]
        result = handler(self, warp, clause, instr, lanes)
        self._write(warp, instr.dst, result, mask, lanes)
        if self.tracer is not None:
            self.tracer.record_quad(warp, mask, instr,
                                    result.view(np.uint32))

    def _execute_memory(self, warp, clause, instr, mask, lanes):
        width = instr.mem_width
        local = instr.mem_is_local
        addrs = self._read(warp, clause, instr.srca, lanes)
        lanes_index = np.flatnonzero(mask)
        if instr.op is Op.LD:
            base = instr.dst
            for element in range(width):
                values = warp.regs[:, base + element].copy()
                for lane in lanes_index:
                    addr = int(addrs[lane]) + 4 * element
                    if local:
                        values[lane] = self.local[addr >> 2]
                    else:
                        values[lane] = self.mem.load_u32(addr)
                self._write_vector_reg(warp, base + element, values, mask, lanes)
                if self.tracer is not None:
                    self.tracer.record_quad(warp, mask, instr, values,
                                            element=element)
        else:  # ST
            base = instr.srcb
            for element in range(width):
                values = self._read(warp, clause, base + element, lanes)
                for lane in lanes_index:
                    addr = int(addrs[lane]) + 4 * element
                    if local:
                        self.local[addr >> 2] = values[lane]
                    else:
                        self.mem.store_u32(addr, int(values[lane]))
                if self.tracer is not None:
                    self.tracer.record_quad(warp, mask, instr,
                                            values.view(np.uint32),
                                            element=element)

    def _execute_atomic(self, warp, clause, instr, mask, lanes):
        """Atomic read-modify-write: lanes apply in lane order (the
        machine's serialization point); dst receives each lane's old value."""
        local = instr.mem_is_local
        addrs = self._read(warp, clause, instr.srca, lanes)
        values = self._read(warp, clause, instr.srcb, lanes)
        mode = (instr.flags >> ATOM_MODE_SHIFT) & 0x7
        old = warp.regs[:, instr.dst].copy() if is_grf(instr.dst) else \
            np.zeros(WARP_WIDTH, dtype=np.uint32)
        for lane in np.flatnonzero(mask):
            addr = int(addrs[lane])
            if local:
                current = int(self.local[addr >> 2])
            else:
                current = self.mem.load_u32(addr)
            old[lane] = current
            updated = _atomic_apply(mode, current, int(values[lane]))
            if local:
                self.local[addr >> 2] = updated
            else:
                self.mem.store_u32(addr, updated)
        self._write(warp, instr.dst, old, mask, lanes)
        if self.tracer is not None:
            self.tracer.record_quad(warp, mask, instr, old)

    def _write_vector_reg(self, warp, reg, values, mask, lanes):
        np.copyto(warp.regs[:, reg], values, where=mask)

    # -- arithmetic handlers --------------------------------------------------

    def _h_mov(self, warp, clause, instr, lanes):
        return self._read(warp, clause, instr.srca, lanes)

    def _binary_f(self, warp, clause, instr, lanes, fn):
        a = _as_f32(self._read(warp, clause, instr.srca, lanes))
        b = _as_f32(self._read(warp, clause, instr.srcb, lanes))
        with np.errstate(all="ignore"):
            return fn(a, b).astype(np.float32)

    def _unary_f(self, warp, clause, instr, lanes, fn):
        a = _as_f32(self._read(warp, clause, instr.srca, lanes))
        with np.errstate(all="ignore"):
            return fn(a).astype(np.float32)

    def _h_fadd(self, w, c, i, n):
        return self._binary_f(w, c, i, n, np.add)

    def _h_fsub(self, w, c, i, n):
        return self._binary_f(w, c, i, n, np.subtract)

    def _h_fmul(self, w, c, i, n):
        return self._binary_f(w, c, i, n, np.multiply)

    def _h_fma(self, w, c, i, n):
        a = _as_f32(self._read(w, c, i.srca, n))
        b = _as_f32(self._read(w, c, i.srcb, n))
        acc = _as_f32(self._read(w, c, i.srcc, n))
        with np.errstate(all="ignore"):
            return (a * b + acc).astype(np.float32)

    def _h_fmin(self, w, c, i, n):
        return self._binary_f(w, c, i, n, np.fmin)

    def _h_fmax(self, w, c, i, n):
        return self._binary_f(w, c, i, n, np.fmax)

    def _h_fabs(self, w, c, i, n):
        return self._unary_f(w, c, i, n, np.abs)

    def _h_fneg(self, w, c, i, n):
        return self._unary_f(w, c, i, n, np.negative)

    def _h_ffloor(self, w, c, i, n):
        return self._unary_f(w, c, i, n, np.floor)

    def _h_frcp(self, w, c, i, n):
        return self._unary_f(w, c, i, n, lambda x: np.float32(1.0) / x)

    def _h_fsqrt(self, w, c, i, n):
        return self._unary_f(w, c, i, n, np.sqrt)

    def _h_frsq(self, w, c, i, n):
        return self._unary_f(w, c, i, n, lambda x: np.float32(1.0) / np.sqrt(x))

    def _h_fexp(self, w, c, i, n):
        return self._unary_f(w, c, i, n, np.exp)

    def _h_flog(self, w, c, i, n):
        return self._unary_f(w, c, i, n, np.log)

    def _h_fsin(self, w, c, i, n):
        return self._unary_f(w, c, i, n, np.sin)

    def _h_fcos(self, w, c, i, n):
        return self._unary_f(w, c, i, n, np.cos)

    def _h_f2i(self, w, c, i, n):
        # saturating conversion (the architecture's defined out-of-range
        # behaviour; NaN converts to 0)
        a = _as_f32(self._read(w, c, i.srca, n))
        with np.errstate(all="ignore"):
            safe = np.nan_to_num(a.astype(np.float64), nan=0.0)
            clipped = np.clip(safe, -2147483648.0, 2147483647.0)
            return clipped.astype(np.int64).astype(np.int32).view(np.uint32)

    def _h_f2u(self, w, c, i, n):
        a = _as_f32(self._read(w, c, i.srca, n))
        with np.errstate(all="ignore"):
            safe = np.nan_to_num(a.astype(np.float64), nan=0.0)
            clipped = np.clip(safe, 0.0, 4294967295.0)
            return clipped.astype(np.int64).astype(np.uint32)

    def _h_i2f(self, w, c, i, n):
        a = self._read(w, c, i.srca, n).view(np.int32)
        return a.astype(np.float32)

    def _h_u2f(self, w, c, i, n):
        a = self._read(w, c, i.srca, n)
        return a.astype(np.float32)

    def _binary_u(self, warp, clause, instr, lanes, fn):
        a = self._read(warp, clause, instr.srca, lanes)
        b = self._read(warp, clause, instr.srcb, lanes)
        return fn(a, b).astype(np.uint32)

    def _h_iadd(self, w, c, i, n):
        return self._binary_u(w, c, i, n, np.add)

    def _h_isub(self, w, c, i, n):
        return self._binary_u(w, c, i, n, np.subtract)

    def _h_imul(self, w, c, i, n):
        a = self._read(w, c, i.srca, n).astype(np.uint64)
        b = self._read(w, c, i.srcb, n).astype(np.uint64)
        return (a * b).astype(np.uint32)

    def _h_iand(self, w, c, i, n):
        return self._binary_u(w, c, i, n, np.bitwise_and)

    def _h_ior(self, w, c, i, n):
        return self._binary_u(w, c, i, n, np.bitwise_or)

    def _h_ixor(self, w, c, i, n):
        return self._binary_u(w, c, i, n, np.bitwise_xor)

    def _h_ishl(self, w, c, i, n):
        return self._binary_u(w, c, i, n, lambda a, b: a << (b & _SHIFT_MASK))

    def _h_ishr(self, w, c, i, n):
        return self._binary_u(w, c, i, n, lambda a, b: a >> (b & _SHIFT_MASK))

    def _h_iashr(self, w, c, i, n):
        a = self._read(w, c, i.srca, n).view(np.int32)
        b = self._read(w, c, i.srcb, n)
        return (a >> (b & _SHIFT_MASK).astype(np.int32)).view(np.uint32)

    def _h_imin(self, w, c, i, n):
        a = self._read(w, c, i.srca, n).view(np.int32)
        b = self._read(w, c, i.srcb, n).view(np.int32)
        return np.minimum(a, b).view(np.uint32)

    def _h_imax(self, w, c, i, n):
        a = self._read(w, c, i.srca, n).view(np.int32)
        b = self._read(w, c, i.srcb, n).view(np.int32)
        return np.maximum(a, b).view(np.uint32)

    def _h_umin(self, w, c, i, n):
        return self._binary_u(w, c, i, n, np.minimum)

    def _h_umax(self, w, c, i, n):
        return self._binary_u(w, c, i, n, np.maximum)

    def _h_iabs(self, w, c, i, n):
        a = self._read(w, c, i.srca, n).view(np.int32)
        return np.abs(a).view(np.uint32)

    def _h_idiv(self, w, c, i, n):
        a = self._read(w, c, i.srca, n).view(np.int32).astype(np.int64)
        b = self._read(w, c, i.srcb, n).view(np.int32).astype(np.int64)
        safe = np.where(b == 0, 1, b)
        quotient = np.where(b == 0, 0, (a / safe).astype(np.int64))
        # C semantics: truncate toward zero
        quotient = np.trunc(a / safe)
        quotient = np.where(b == 0, 0, quotient)
        return quotient.astype(np.int64).astype(np.int32).view(np.uint32)

    def _h_irem(self, w, c, i, n):
        a = self._read(w, c, i.srca, n).view(np.int32).astype(np.int64)
        b = self._read(w, c, i.srcb, n).view(np.int32).astype(np.int64)
        safe = np.where(b == 0, 1, b)
        quotient = np.trunc(a / safe).astype(np.int64)
        remainder = a - quotient * safe
        remainder = np.where(b == 0, 0, remainder)
        return remainder.astype(np.int32).view(np.uint32)

    def _h_udiv(self, w, c, i, n):
        a = self._read(w, c, i.srca, n).astype(np.uint64)
        b = self._read(w, c, i.srcb, n).astype(np.uint64)
        safe = np.where(b == 0, 1, b)
        return np.where(b == 0, 0, a // safe).astype(np.uint32)

    def _h_urem(self, w, c, i, n):
        a = self._read(w, c, i.srca, n).astype(np.uint64)
        b = self._read(w, c, i.srcb, n).astype(np.uint64)
        safe = np.where(b == 0, 1, b)
        return np.where(b == 0, 0, a % safe).astype(np.uint32)

    def _h_cmp(self, w, c, i, n):
        mode = CmpMode(i.flags)
        raw_a = self._read(w, c, i.srca, n)
        raw_b = self._read(w, c, i.srcb, n)
        if mode <= CmpMode.FGE:
            a, b = _as_f32(raw_a), _as_f32(raw_b)
        elif mode <= CmpMode.IGE:
            a, b = raw_a.view(np.int32), raw_b.view(np.int32)
        else:
            a, b = raw_a, raw_b
        with np.errstate(invalid="ignore"):
            result = _CMP_FNS[mode](a, b)
        return result.astype(np.uint32)

    def _h_select(self, w, c, i, n):
        a = self._read(w, c, i.srca, n)
        b = self._read(w, c, i.srcb, n)
        cond = self._read(w, c, i.srcc, n)
        return np.where(cond != 0, a, b)


def _atomic_apply(mode, current, operand):
    """32-bit atomic update function shared by all engines."""
    if mode == ATOM_ADD:
        return (current + operand) & 0xFFFFFFFF
    if mode == ATOM_SUB:
        return (current - operand) & 0xFFFFFFFF
    if mode == ATOM_MIN:
        a = current - (1 << 32) if current & 0x80000000 else current
        b = operand - (1 << 32) if operand & 0x80000000 else operand
        return min(a, b) & 0xFFFFFFFF
    if mode == ATOM_MAX:
        a = current - (1 << 32) if current & 0x80000000 else current
        b = operand - (1 << 32) if operand & 0x80000000 else operand
        return max(a, b) & 0xFFFFFFFF
    if mode == ATOM_AND:
        return current & operand
    if mode == ATOM_OR:
        return current | operand
    if mode == ATOM_XOR:
        return current ^ operand
    if mode == ATOM_XCHG:
        return operand & 0xFFFFFFFF
    raise GuestError(f"unknown atomic mode {mode}")


DivergenceCFGEnd = "END"

_CMP_FNS = {
    CmpMode.FEQ: np.equal, CmpMode.FNE: np.not_equal,
    CmpMode.FLT: np.less, CmpMode.FLE: np.less_equal,
    CmpMode.FGT: np.greater, CmpMode.FGE: np.greater_equal,
    CmpMode.IEQ: np.equal, CmpMode.INE: np.not_equal,
    CmpMode.ILT: np.less, CmpMode.ILE: np.less_equal,
    CmpMode.IGT: np.greater, CmpMode.IGE: np.greater_equal,
    CmpMode.ULT: np.less, CmpMode.ULE: np.less_equal,
    CmpMode.UGT: np.greater, CmpMode.UGE: np.greater_equal,
}

_DISPATCH = {
    Op.MOV: ClauseInterpreter._h_mov,
    Op.FADD: ClauseInterpreter._h_fadd,
    Op.FSUB: ClauseInterpreter._h_fsub,
    Op.FMUL: ClauseInterpreter._h_fmul,
    Op.FMA: ClauseInterpreter._h_fma,
    Op.FMIN: ClauseInterpreter._h_fmin,
    Op.FMAX: ClauseInterpreter._h_fmax,
    Op.FABS: ClauseInterpreter._h_fabs,
    Op.FNEG: ClauseInterpreter._h_fneg,
    Op.FFLOOR: ClauseInterpreter._h_ffloor,
    Op.FRCP: ClauseInterpreter._h_frcp,
    Op.FSQRT: ClauseInterpreter._h_fsqrt,
    Op.FRSQ: ClauseInterpreter._h_frsq,
    Op.FEXP: ClauseInterpreter._h_fexp,
    Op.FLOG: ClauseInterpreter._h_flog,
    Op.FSIN: ClauseInterpreter._h_fsin,
    Op.FCOS: ClauseInterpreter._h_fcos,
    Op.F2I: ClauseInterpreter._h_f2i,
    Op.F2U: ClauseInterpreter._h_f2u,
    Op.I2F: ClauseInterpreter._h_i2f,
    Op.U2F: ClauseInterpreter._h_u2f,
    Op.IADD: ClauseInterpreter._h_iadd,
    Op.ISUB: ClauseInterpreter._h_isub,
    Op.IMUL: ClauseInterpreter._h_imul,
    Op.IAND: ClauseInterpreter._h_iand,
    Op.IOR: ClauseInterpreter._h_ior,
    Op.IXOR: ClauseInterpreter._h_ixor,
    Op.ISHL: ClauseInterpreter._h_ishl,
    Op.ISHR: ClauseInterpreter._h_ishr,
    Op.IASHR: ClauseInterpreter._h_iashr,
    Op.IMIN: ClauseInterpreter._h_imin,
    Op.IMAX: ClauseInterpreter._h_imax,
    Op.UMIN: ClauseInterpreter._h_umin,
    Op.UMAX: ClauseInterpreter._h_umax,
    Op.IDIV: ClauseInterpreter._h_idiv,
    Op.IREM: ClauseInterpreter._h_irem,
    Op.UDIV: ClauseInterpreter._h_udiv,
    Op.UREM: ClauseInterpreter._h_urem,
    Op.IABS: ClauseInterpreter._h_iabs,
    Op.CMP: ClauseInterpreter._h_cmp,
    Op.SELECT: ClauseInterpreter._h_select,
}
