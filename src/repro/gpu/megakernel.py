"""Megakernel engine: workgroup-wide structure-of-arrays execution.

The third execution tier. The interpreter and the JIT both schedule one
*quad* (4 lanes) at a time, so a 64-thread workgroup pays the Python
clause-dispatch overhead 16 times per clause. This engine holds the whole
workgroup's architectural state as a structure of arrays — one contiguous
``width``-lane vector per register — and executes each clause *once* over
every lane, with NumPy boolean lane masks carrying divergence. Memory
traffic goes through the MMU's workgroup-wide gather/scatter tier
(:meth:`~repro.gpu.mmu.GPUMMU.load_wide_u32`), which serves all lanes with
one TLB probe per distinct page.

The fast-path/slow-path contract mirrors the quad tier's: the wide path
either serves an element access *whole* or returns ``None`` having
recorded nothing, and the engine replays that access per lane through the
scalar port — so armed injection pages, unmapped (grow-on-fault) pages,
permission failures and unaligned lanes all funnel through the exact
reference fault semantics with bit-identical golden statistics.

Scheduling is global minimum-PC at clause granularity over all lanes.
Restricted to any one quad's lanes, the global min-PC order executes
exactly the same (clause, mask) sequence as the per-warp scheduler, so
deferring ``(issues, lanes)`` per clause — where one *issue* is counted
per quad with at least one active lane — reproduces the interpreter's
:class:`~repro.instrument.stats.JobStats` bit-for-bit through the shared
:func:`~repro.instrument.stats.apply_clause_stats` flush. Barriers need no
fallback: when every running lane waits, releasing them all reproduces the
compute unit's release protocol.

The engine punts statically (the compute unit falls back to the
interpreter/JIT tiers for the whole workgroup) when the program contains
``ATOM`` (the interpreter serializes atomics warp-by-warp, so a
workgroup-wide interleaving could not be bit-exact), when CFG collection
or per-word memory tracing is requested, when the memory port has no wide
vector API, or when a core-hang injection must reproduce the watchdog's
stall accounting.
"""

import numpy as np

from repro.errors import GuestError, WatchdogTimeout
from repro.instrument.stats import apply_clause_stats
from repro.gpu.isa import (
    CONST_BASE,
    NUM_GRF,
    NUM_TEMPS,
    REG_GLOBAL_ID,
    REG_GROUP_FLAT,
    REG_GROUP_ID,
    REG_LANE,
    REG_LOCAL_ID,
    TEMP_BASE,
    CmpMode,
    Op,
    Tail,
    is_const,
    is_grf,
    is_temp,
)
from repro.gpu.jit import _ALU
from repro.gpu.warp import _CMP_FNS, QUAD_WIDTH, QuadWarp

_END_PC = 1 << 30

#: every op the SoA translation handles; programs using anything else
#: (today: ATOM) are statically ineligible and run on the quad tiers
SUPPORTED_OPS = frozenset(_ALU) | {Op.NOP, Op.LDU, Op.LD, Op.ST, Op.CMP}


def mega_supported(program, mem):
    """Static eligibility: every op translatable and a wide memory port."""
    if getattr(mem, "load_wide_u32", None) is None \
            or getattr(mem, "store_wide_u32", None) is None:
        return False
    for clause in program.clauses:
        for fma, add in clause.tuples:
            if fma.op not in SUPPORTED_OPS or add.op not in SUPPORTED_OPS:
                return False
    return True


def _u32(values):
    return values if values.dtype == np.uint32 else values.view(np.uint32)


class MegaState:
    """SoA architectural state of one workgroup: row-per-register."""

    __slots__ = ("regs", "temps", "pcs", "live", "at_barrier")

    def __init__(self, width):
        self.regs = np.zeros((NUM_GRF, width), dtype=np.uint32)
        self.temps = np.zeros((NUM_TEMPS, width), dtype=np.uint32)
        self.pcs = None          # materialized on divergence
        self.live = None
        self.at_barrier = None


class MegaKernel:
    """Workgroup-wide translated form of one program.

    Translations are cached by the compute unit per
    ``(program, uniforms, width)`` — counters are rebound per job, state
    is rebuilt per workgroup.
    """

    def __init__(self, program, uniforms, mem, local, width):
        if width % QUAD_WIDTH:
            raise ValueError("width must be a whole number of quads")
        self.program = program
        self.uniforms = uniforms
        self.mem = mem
        self.local = local
        self.width = width
        self._wide_load = mem.load_wide_u32
        self._wide_store = mem.store_wide_u32
        self._constants = {}
        self._compiled = [self._translate(c) for c in program.clauses]
        self._tails = [(c.tail, c.target, c.cond_reg)
                       for c in program.clauses]

    # -- operand binding -------------------------------------------------------

    def _reader(self, clause, operand):
        if is_grf(operand):
            def read(state, column=operand):
                return state.regs[column]
            return read
        if is_temp(operand):
            slot = operand - TEMP_BASE

            def read(state, column=slot):
                return state.temps[column]
            return read
        if is_const(operand):
            value = clause.constants[operand - CONST_BASE]
            vector = self._constants.get(value)
            if vector is None:
                vector = np.full(self.width, value, dtype=np.uint32)
                vector.flags.writeable = False
                self._constants[value] = vector

            def read(_state, v=vector):
                return v
            return read
        zero = np.zeros(self.width, dtype=np.uint32)
        zero.flags.writeable = False

        def read(_state, v=zero):
            return v
        return read

    @staticmethod
    def _writer(operand):
        if is_grf(operand):
            def write(state, mask, values, column=operand):
                if mask is None:
                    state.regs[column] = _u32(values)
                else:
                    np.copyto(state.regs[column], _u32(values), where=mask)
            return write
        slot = operand - TEMP_BASE

        def write(state, mask, values, column=slot):
            if mask is None:
                state.temps[column] = _u32(values)
            else:
                np.copyto(state.temps[column], _u32(values), where=mask)
        return write

    # -- clause translation ------------------------------------------------------

    def _translate(self, clause):
        slots = []
        for fma, add in clause.tuples:
            for instr in (fma, add):
                if instr.op is Op.NOP:
                    continue
                slots.append(self._translate_slot(clause, instr))
        return slots

    def _translate_slot(self, clause, instr):
        op = instr.op
        if op is Op.LDU:
            write = self._writer(instr.dst)
            vector = np.full(self.width, self.uniforms[instr.imm],
                             dtype=np.uint32)
            vector.flags.writeable = False

            def run_ldu(state, mask, v=vector):
                write(state, mask, v)
            return run_ldu
        if op is Op.LD or op is Op.ST:
            if instr.mem_is_local:
                return self._translate_local(clause, instr)
            return self._translate_global(clause, instr)
        if op is Op.CMP:
            read_a = self._reader(clause, instr.srca)
            read_b = self._reader(clause, instr.srcb)
            write = self._writer(instr.dst)
            mode = CmpMode(instr.flags)
            compare = _CMP_FNS[mode]
            if mode <= CmpMode.FGE:
                view = lambda x: x.view(np.float32)  # noqa: E731
            elif mode <= CmpMode.IGE:
                view = lambda x: x.view(np.int32)  # noqa: E731
            else:
                view = lambda x: x  # noqa: E731

            def run_cmp(state, mask):
                with np.errstate(invalid="ignore"):
                    result = compare(view(read_a(state)),
                                     view(read_b(state)))
                write(state, mask, result.astype(np.uint32))
            return run_cmp
        fn = _ALU[op]
        read_a = self._reader(clause, instr.srca)
        read_b = self._reader(clause, instr.srcb)
        read_c = self._reader(clause, instr.srcc)
        write = self._writer(instr.dst)

        def run(state, mask):
            write(state, mask,
                  fn(read_a(state), read_b(state), read_c(state)))
        return run

    def _translate_local(self, clause, instr):
        width_e = instr.mem_width
        read_addr = self._reader(clause, instr.srca)
        local = self.local
        if instr.op is Op.LD:
            base = instr.dst

            def run_ld_local(state, mask):
                addrs = read_addr(state)
                if mask is None:
                    indices = addrs.astype(np.int64) >> 2
                    for element in range(width_e):
                        state.regs[base + element] = local[indices + element]
                else:
                    active = np.flatnonzero(mask)
                    indices = addrs[active].astype(np.int64) >> 2
                    for element in range(width_e):
                        state.regs[base + element][active] = \
                            local[indices + element]
            return run_ld_local
        data_base = instr.srcb
        read_data = [self._reader(clause, data_base + e)
                     for e in range(width_e)]

        def run_st_local(state, mask):
            addrs = read_addr(state)
            if mask is None:
                indices = addrs.astype(np.int64) >> 2
                for element in range(width_e):
                    local[indices + element] = read_data[element](state)
            else:
                active = np.flatnonzero(mask)
                indices = addrs[active].astype(np.int64) >> 2
                for element in range(width_e):
                    local[indices + element] = \
                        read_data[element](state)[active]
        return run_st_local

    def _translate_global(self, clause, instr):
        """Global LD/ST: workgroup-wide gather/scatter with per-lane
        scalar replay on any element the wide tier cannot serve whole
        (the replay reproduces the reference fault semantics and
        statistics, exactly like the quad tier's fallback)."""
        width_e = instr.mem_width
        read_addr = self._reader(clause, instr.srca)
        wide_load = self._wide_load
        wide_store = self._wide_store
        mem = self.mem
        full_width = self.width
        if instr.op is Op.LD:
            base = instr.dst

            def run_ld(state, mask):
                addrs = read_addr(state)
                active = None if mask is None else np.flatnonzero(mask)
                addrs64 = (addrs if active is None else
                           addrs[active]).astype(np.int64)
                for element in range(width_e):
                    ea = addrs64 if element == 0 else addrs64 + 4 * element
                    values = wide_load(ea)
                    row = state.regs[base + element]
                    if values is None:
                        lanes = (range(full_width) if active is None
                                 else active)
                        for lane in lanes:
                            row[lane] = mem.load_u32(
                                int(addrs[lane]) + 4 * element)
                    elif active is None:
                        state.regs[base + element] = values
                    else:
                        row[active] = values
            return run_ld
        data_base = instr.srcb
        read_data = [self._reader(clause, data_base + e)
                     for e in range(width_e)]

        def run_st(state, mask):
            addrs = read_addr(state)
            active = None if mask is None else np.flatnonzero(mask)
            addrs64 = (addrs if active is None else
                       addrs[active]).astype(np.int64)
            for element in range(width_e):
                values = read_data[element](state)
                lane_values = values if active is None else values[active]
                ea = addrs64 if element == 0 else addrs64 + 4 * element
                if wide_store(ea, lane_values) is None:
                    lanes = (range(full_width) if active is None
                             else active)
                    for lane in lanes:
                        mem.store_u32(int(addrs[lane]) + 4 * element,
                                      int(values[lane]))
        return run_st

    # -- workgroup scheduling ----------------------------------------------------

    def run_workgroup(self, shape, flat_group, stats, watchdog_budget=None):
        """Execute one whole thread-group; returns its retired warps.

        Faults raised by the scalar replay propagate exactly as from the
        quad tiers; the deferred clause stats recorded so far are flushed
        either way, matching the interpreter's ``finally`` contract.
        """
        state = self._init_state(shape, flat_group)
        pending = {}
        # progress-budget watchdog, same accounting as the compute unit's
        # generic loop: round 1 starts now, and every barrier release
        # opens a new round (checked before any further progress)
        rounds = [1]
        if watchdog_budget is not None and rounds[0] > watchdog_budget:
            raise WatchdogTimeout(flat_group, rounds[0])
        try:
            if shape.threads_per_group == self.width:
                done = self._run_uniform(state, pending, stats, flat_group,
                                         watchdog_budget, rounds)
            else:
                self._diverge_from(state, shape, 0)
                done = False
            if not done:
                self._run_masked(state, pending, stats, flat_group,
                                 watchdog_budget, rounds)
        finally:
            if stats is not None and pending:
                apply_clause_stats(stats, self.program.clauses, pending)
        return self._materialize(state, shape)

    def _init_state(self, shape, flat_group):
        width = self.width
        state = MegaState(width)
        regs = state.regs
        regs[REG_LANE] = np.tile(
            np.arange(QUAD_WIDTH, dtype=np.uint32), width // QUAD_WIDTH)
        n = shape.threads_per_group
        gx, gy, gz = shape.group_coords(flat_group)
        lx_size, ly_size, _ = shape.local_size
        linear = np.arange(n, dtype=np.uint32)
        lx = linear % lx_size
        ly = (linear // lx_size) % ly_size
        lz = linear // (lx_size * ly_size)
        regs[REG_LOCAL_ID, :n] = lx
        regs[REG_LOCAL_ID + 1, :n] = ly
        regs[REG_LOCAL_ID + 2, :n] = lz
        regs[REG_GLOBAL_ID, :n] = gx * lx_size + lx
        regs[REG_GLOBAL_ID + 1, :n] = gy * ly_size + ly
        regs[REG_GLOBAL_ID + 2, :n] = gz * shape.local_size[2] + lz
        regs[REG_GROUP_ID, :n] = gx
        regs[REG_GROUP_ID + 1, :n] = gy
        regs[REG_GROUP_ID + 2, :n] = gz
        regs[REG_GROUP_FLAT, :n] = flat_group
        return state

    def _diverge_from(self, state, shape, pc):
        """Materialize per-lane scheduling state (entering masked mode)."""
        width = self.width
        state.pcs = np.full(width, _END_PC, dtype=np.int64)
        state.live = np.zeros(width, dtype=bool)
        state.live[:shape.threads_per_group] = True
        state.pcs[state.live] = pc
        state.at_barrier = np.zeros(width, dtype=bool)

    def _run_uniform(self, state, pending, stats, flat_group, budget,
                     rounds):
        """Converged fast path: every lane live at one shared PC.

        Returns True when the workgroup retired entirely converged;
        False after handing a divergent branch over to the masked
        scheduler (per-lane pcs already materialized).
        """
        compiled = self._compiled
        tails = self._tails
        width = self.width
        quads = width // QUAD_WIDTH
        max_steps = 1_000_000
        pc = 0
        steps = 0
        while True:
            if stats is not None:
                entry = pending.get(pc)
                if entry is None:
                    pending[pc] = [quads, width]
                else:
                    entry[0] += quads
                    entry[1] += width
            for slot in compiled[pc]:
                slot(state, None)
            tail, target, cond_reg = tails[pc]
            if tail is Tail.FALLTHROUGH:
                pc += 1
            elif tail is Tail.END:
                return True
            elif tail is Tail.JUMP:
                if stats is not None:
                    stats.cf_instrs += width
                    stats.branch_events += quads
                pc = target
            elif tail is Tail.BARRIER:
                # all lanes reach the barrier together: the compute
                # unit's release protocol fires immediately
                rounds[0] += 1
                if budget is not None and rounds[0] > budget:
                    raise WatchdogTimeout(flat_group, rounds[0])
                pc += 1
            else:  # BRANCH / BRANCH_Z
                cond = state.regs[cond_reg] != 0
                if tail is Tail.BRANCH_Z:
                    cond = ~cond
                if stats is not None:
                    stats.cf_instrs += width
                    stats.branch_events += quads
                    taken_q = cond.reshape(-1, QUAD_WIDTH).any(axis=1)
                    split_q = (~cond).reshape(-1, QUAD_WIDTH).any(axis=1)
                    stats.divergent_branches += int(
                        (taken_q & split_q).sum())
                if cond.all():
                    pc = target
                elif not cond.any():
                    pc += 1
                else:
                    state.pcs = np.where(cond, np.int64(target),
                                         np.int64(pc + 1))
                    state.live = np.ones(width, dtype=bool)
                    state.at_barrier = np.zeros(width, dtype=bool)
                    return False
            steps += 1
            if steps > max_steps:
                raise GuestError(
                    f"workgroup exceeded {max_steps} clauses; "
                    f"kernel is likely stuck")

    def _run_masked(self, state, pending, stats, flat_group, budget,
                    rounds):
        """General scheduler: global min-PC with per-lane masks."""
        compiled = self._compiled
        tails = self._tails
        width = self.width
        pcs = state.pcs
        live = state.live
        at_barrier = state.at_barrier
        max_steps = 1_000_000 * (width // QUAD_WIDTH)
        steps = 0
        while True:
            running = live & (pcs < _END_PC)
            if not running.any():
                return
            runnable = running & ~at_barrier
            if not runnable.any():
                # every running lane waits: the unit releases them all
                at_barrier[:] = False
                rounds[0] += 1
                if budget is not None and rounds[0] > budget:
                    raise WatchdogTimeout(flat_group, rounds[0])
                continue
            current = int(pcs[runnable].min())
            mask = runnable & (pcs == current)
            lanes = int(mask.sum())
            if stats is not None:
                quads = int(mask.reshape(-1, QUAD_WIDTH).any(axis=1).sum())
                entry = pending.get(current)
                if entry is None:
                    pending[current] = [quads, lanes]
                else:
                    entry[0] += quads
                    entry[1] += lanes
            issue_mask = None if lanes == width else mask
            for slot in compiled[current]:
                slot(state, issue_mask)
            tail, target, cond_reg = tails[current]
            if tail is Tail.FALLTHROUGH:
                pcs[mask] = current + 1
            elif tail is Tail.END:
                pcs[mask] = _END_PC
            elif tail is Tail.JUMP:
                pcs[mask] = target
                if stats is not None:
                    stats.cf_instrs += lanes
                    stats.branch_events += quads
            elif tail is Tail.BARRIER:
                pcs[mask] = current + 1
                at_barrier |= mask
            else:  # BRANCH / BRANCH_Z
                cond = state.regs[cond_reg] != 0
                if tail is Tail.BRANCH_Z:
                    cond = ~cond
                taken = mask & cond
                not_taken = mask & ~cond
                pcs[taken] = target
                pcs[not_taken] = current + 1
                if stats is not None:
                    stats.cf_instrs += lanes
                    stats.branch_events += quads
                    taken_q = taken.reshape(-1, QUAD_WIDTH).any(axis=1)
                    split_q = not_taken.reshape(-1, QUAD_WIDTH).any(axis=1)
                    stats.divergent_branches += int(
                        (taken_q & split_q).sum())
            steps += 1
            if steps > max_steps:
                raise GuestError(
                    f"workgroup exceeded {max_steps} clauses; "
                    f"kernel is likely stuck")

    def _materialize(self, state, shape):
        """Transpose the SoA state back into retired :class:`QuadWarp`\\ s
        (the compute unit's return contract, used by the conformance
        harness to inspect architectural state)."""
        warps = []
        n = shape.threads_per_group
        for index in range(shape.warps_per_group):
            first = index * QUAD_WIDTH
            warp = QuadWarp(active_lanes=min(QUAD_WIDTH, n - first))
            warp.regs[:] = state.regs[:, first:first + QUAD_WIDTH].T
            warp.temps[:] = state.temps[:, first:first + QUAD_WIDTH].T
            warp.pcs[:] = _END_PC
            warps.append(warp)
        return warps
