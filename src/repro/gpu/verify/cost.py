"""Static cost & resource analysis (the ``cost`` verifier pass).

Derives **sound upper bounds** on the dynamic golden counters from the
clause program alone:

- per-clause issue-cost summaries straight from the decode-time
  :class:`~repro.gpu.isa.ClauseMetrics`;
- loop trip bounds via :mod:`loopbound` (symbolic until a launch
  context pins NDRange/argument values);
- a per-warp worst-case **clause-issue bound**: with min-PC lane-mask
  scheduling a forward-only program issues every reachable clause at
  most once per warp; a clause inside a loop region ``[head, latch]``
  multiplies by ``trips + 1`` per enclosing loop. When every loop's
  latch is the maximum-index clause of its body (and regions nest
  properly), looping lanes traverse back edges in lockstep and the
  per-warp product needs no lane factor; otherwise the bound falls back
  to ``WARP_WIDTH x`` (issues never exceed summed per-lane visits).
  Barriers weaken the once-per-warp argument: a divergent branch can
  send part of the warp past a ``BARRIER`` tail, those lanes run ahead
  until the warp blocks, and after release the barrier-side lanes
  re-issue every clause the early wave already visited. Each barrier a
  divergent branch can split the warp around therefore adds one extra
  *wave* for every later clause (``_barrier_waves``); with only uniform
  branch conditions (``absint`` proves this) the mask never splits and
  the wave factor stays 1;
- a working-set **page-interval bound** on ``pages_accessed`` from the
  abstract address intervals of every global access (falling back to
  the whole mapped range when an address resists analysis);
- wide-tier/megakernel **eligibility**: uniformity + contiguity
  classification of every global access, plus the static no-atomics
  megakernel criterion.

Everything here is *advisory*: the pass emits facts (``report.facts
["cost"]``) and NOTE findings only, never warnings or errors, so the
lint gates are unaffected. The differential soundness suite holds these
bounds against the observed dynamic counters.
"""

from dataclasses import dataclass, field

from repro.gpu.isa import QUAD_WIDTH, Tail
from repro.gpu.verify import loopbound
from repro.gpu.verify.memory import _absolute_interval, _span_bytes
from repro.gpu.verify.report import Finding, Severity
from repro.mem.physical import PAGE_SHIFT

PASS_NAME = "cost"

WARP_WIDTH = QUAD_WIDTH


@dataclass
class ClauseCost:
    """Static per-issue cost of one clause."""

    index: int
    tuples: int
    arith: int
    mem: int
    ls_beats: int
    loops: tuple = ()  # heads of enclosing loop regions

    def to_dict(self):
        return {"index": self.index, "tuples": self.tuples,
                "arith": self.arith, "mem": self.mem,
                "ls_beats": self.ls_beats, "loops": list(self.loops)}


@dataclass
class AccessClass:
    """Uniformity/contiguity classification of one global access."""

    clause: int
    tuple_index: int
    slot: str
    kind: str
    pattern: str  # 'uniform' | 'contiguous' | 'strided' | 'gather'

    def to_dict(self):
        return {"clause": self.clause, "tuple": self.tuple_index,
                "slot": self.slot, "kind": self.kind,
                "pattern": self.pattern}


@dataclass
class LaunchBounds:
    """Concrete bounds for one launch geometry (all fields may be None
    when the analysis could not produce a finite bound)."""

    warps: int = None
    warps_per_group: int = None
    per_warp_issues: int = None
    per_workgroup_issues: int = None
    total_issues: int = None
    pages: int = None
    loop_trips: dict = field(default_factory=dict)

    def to_dict(self):
        return {"warps": self.warps,
                "warps_per_group": self.warps_per_group,
                "per_warp_issues": self.per_warp_issues,
                "per_workgroup_issues": self.per_workgroup_issues,
                "total_issues": self.total_issues, "pages": self.pages,
                "loop_trips": {str(k): v
                               for k, v in self.loop_trips.items()}}


class CostSummary:
    """The cost pass's result: symbolic facts plus launch evaluators."""

    def __init__(self, program, cfg, absres, loops):
        self.program = program
        self.cfg = cfg
        self.absres = absres
        self.loops = loops
        self.regions = [(loop.head, max(loop.body)) for loop in loops]
        self.lockstep = self._lockstep()
        self.barrier_waves = self._barrier_waves()
        self.clauses = self._clause_costs()
        self.access_classes = self._classify_accesses()
        self.atomics = any(a.kind == "atom" for a in absres.accesses)
        self.mega_eligible = not self.atomics

    # -- structural facts --------------------------------------------------

    def _lockstep(self):
        """Back edges traverse in lockstep: every loop's latch is the
        maximum-index clause of its body and loop regions are properly
        nested or disjoint (see the min-PC argument in the module
        docstring)."""
        for loop in self.loops:
            if loop.latch != max(loop.body):
                return False
        spans = sorted(self.regions)
        for i, (lo_a, hi_a) in enumerate(spans):
            for lo_b, hi_b in spans[i + 1:]:
                if lo_b <= hi_a and not (lo_b >= lo_a and hi_b <= hi_a):
                    return False  # partial overlap
        return True

    def _enclosing(self, index):
        return tuple(head for head, hi in self.regions
                     if head <= index <= hi)

    def _barrier_waves(self):
        """clause index -> issue waves: 1 plus the number of earlier
        ``BARRIER``-tail clauses a divergent branch can split the warp
        around. A branch inside a loop counts from the loop head — the
        back edge can carry its divergence to earlier clauses."""
        starts = []
        for index, uniform in self.absres.cond_uniform.items():
            if uniform or index not in self.cfg.reachable:
                continue
            heads = self._enclosing(index)
            starts.append(min((index,) + heads))
        first_divergent = min(starts) if starts else None
        waves = {}
        count = 0
        for index in sorted(self.cfg.reachable):
            waves[index] = 1 + count
            clause = self.program.clauses[index]
            if clause.tail is Tail.BARRIER and \
                    first_divergent is not None and \
                    first_divergent <= index:
                count += 1
        return waves

    def _clause_costs(self):
        costs = []
        for index in sorted(self.cfg.reachable):
            clause = self.program.clauses[index]
            metrics = clause.metrics()
            costs.append(ClauseCost(
                index=index, tuples=clause.size,
                arith=metrics.arith_instrs,
                mem=(metrics.ls_global_instrs + metrics.ls_local_instrs),
                ls_beats=metrics.ls_beats,
                loops=self._enclosing(index)))
        return costs

    def _classify_accesses(self):
        classes = []
        for access in self.absres.accesses:
            if access.local:
                continue
            addr = access.addr
            if addr.top:
                pattern = "gather"
            elif not addr.varies_in_group:
                pattern = "uniform"
            elif addr.sym in ("gid", "lane") and addr.coeff == 4:
                pattern = "contiguous"
            elif addr.sym in ("gid", "lid", "lane") and addr.coeff:
                pattern = "strided"
            else:
                pattern = "gather"
            classes.append(AccessClass(
                clause=access.clause, tuple_index=access.tuple_index,
                slot=access.slot, kind=access.kind, pattern=pattern))
        return classes

    # -- launch-time evaluation --------------------------------------------

    def loop_trip_counts(self, ctx):
        """head -> concrete max back-edge count (None = unbounded)."""
        return {loop.head: loop.max_back_edges(ctx)
                for loop in self.loops}

    def per_warp_issue_bound(self, ctx):
        """Worst-case clause issues per warp, or None when unbounded."""
        trips = self.loop_trip_counts(ctx)
        total = 0
        for cost in self.clauses:
            factor = self.barrier_waves.get(cost.index, 1)
            for head in cost.loops:
                n = trips.get(head)
                if n is None:
                    return None
                factor *= n + 1
            if cost.loops and not self.lockstep:
                factor *= WARP_WIDTH
            total += factor
        return total

    def page_bound(self, ctx):
        """Upper bound on data pages the program can touch, or None."""
        if ctx.mapped_ranges is None:
            return None
        intervals = []
        fallback = False
        for access in self.absres.accesses:
            if access.local:
                continue
            interval = _absolute_interval(access.addr, ctx)
            if interval is None:
                fallback = True
                break
            span = _span_bytes(access)
            intervals.append((interval[0] >> PAGE_SHIFT,
                              (interval[1] + span - 1) >> PAGE_SHIFT))
        if fallback:
            # an unanalyzable address can still only touch mapped pages
            # (anything else faults without entering pages_accessed)
            intervals = [(lo >> PAGE_SHIFT, (hi - 1) >> PAGE_SHIFT)
                         for lo, hi in ctx.mapped_ranges]
        return _count_pages(intervals)

    def evaluate(self, ctx):
        """All launch bounds for the geometry pinned in *ctx*."""
        bounds = LaunchBounds(loop_trips=self.loop_trip_counts(ctx))
        per_warp = self.per_warp_issue_bound(ctx)
        bounds.per_warp_issues = per_warp
        if ctx.threads_per_group and ctx.threads:
            wpg = -(-ctx.threads_per_group // WARP_WIDTH)
            groups = ctx.threads // ctx.threads_per_group
            bounds.warps_per_group = wpg
            bounds.warps = wpg * groups
            if per_warp is not None:
                bounds.per_workgroup_issues = per_warp * wpg
                bounds.total_issues = per_warp * bounds.warps
        bounds.pages = self.page_bound(ctx)
        return bounds

    # -- serialization ------------------------------------------------------

    def pattern_counts(self):
        counts = {}
        for cls in self.access_classes:
            counts[cls.pattern] = counts.get(cls.pattern, 0) + 1
        return counts

    def to_dict(self, ctx=None):
        data = {
            "clauses": [c.to_dict() for c in self.clauses],
            "loops": [{
                "head": loop.head, "latch": loop.latch,
                "body": sorted(loop.body),
                "bound": loop.describe(),
                "analyzed": loop.analyzed,
            } for loop in self.loops],
            "lockstep": self.lockstep,
            "accesses": [c.to_dict() for c in self.access_classes],
            "patterns": self.pattern_counts(),
            "mega_eligible": self.mega_eligible,
        }
        if ctx is not None:
            data["bounds"] = self.evaluate(ctx).to_dict()
        return data


def _count_pages(intervals):
    """Total pages covered by a union of inclusive page intervals."""
    total = 0
    last_hi = None
    for lo, hi in sorted(intervals):
        if last_hi is not None:
            lo = max(lo, last_hi + 1)
        if hi >= lo:
            total += hi - lo + 1
            last_hi = hi if last_hi is None else max(last_hi, hi)
    return total


def run(program, cfg, ctx, absres, report):
    """The cost pass: attach a :class:`CostSummary` fact plus NOTE-level
    findings describing loop bounds (never warnings/errors)."""
    loops = loopbound.find_loops(program, cfg, ctx, absres)
    summary = CostSummary(program, cfg, absres, loops)
    report.facts["cost"] = summary
    for loop in loops:
        report.add(Finding(
            code="loop-bound", severity=Severity.NOTE,
            message=(f"loop {loop.head}..{loop.latch}: "
                     f"trips {loop.describe()}"),
            clause=loop.head, slot="tail", pass_name=PASS_NAME))
    if summary.atomics:
        report.add(Finding(
            code="mega-ineligible", severity=Severity.NOTE,
            message="atomics force the generic warp tier "
                    "(megakernel-ineligible)",
            pass_name=PASS_NAME))
    return summary
