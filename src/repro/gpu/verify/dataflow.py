"""Dataflow passes: def-use and liveness over the clause CFG.

Registers are zero-initialized by the dispatcher, so an uninitialized
read is *defined* behaviour dynamically — but it is almost always a
program bug, so reads of registers written on **no** path are WARNINGs
and reads written only on **some** paths are NOTEs.

Clause temporaries are architecturally clause-local (the Fig. 4b
forwarding registers): a temp read with no earlier write in the *same*
clause observes whatever a previous clause left behind, which the ISA
contract forbids even though this simulator's warps happen to preserve
the value. Those reads are ERRORs.
"""

from repro.gpu.disasm import operand_name
from repro.gpu.isa import (
    NUM_TEMPS,
    REG_GROUP_ID,
    TEMP_BASE,
    Op,
    Tail,
    is_grf,
    is_temp,
)
from repro.gpu.verify import model
from repro.gpu.verify.report import Finding, Severity

PASS_NAME = "dataflow"

# r53..r63: preloaded thread-state registers (ids, lane).
PRELOADED = frozenset(range(REG_GROUP_ID, 64))


def _finding(code, severity, message, **kw):
    return Finding(code=code, severity=severity, message=message,
                   pass_name=PASS_NAME, **kw)


class ClauseSummary:
    """Per-clause def/use facts in slot execution order."""

    def __init__(self, clause, index):
        self.index = index
        self.defs = set()  # GRFs written anywhere in the clause
        self.upward_uses = []  # (tuple_index, slot, grf) read before def
        self.temp_findings = []
        self.slot_events = []  # (tuple_index, slot, reads, writes) per slot
        defined = set()
        temp_defined = set()
        temp_unread = {}  # temp -> (tuple_index, slot) of last unread write
        for tuple_index, (fma, add) in enumerate(clause.tuples):
            for slot_name, instr in (("fma", fma), ("add", add)):
                if instr.op is Op.NOP:
                    continue
                reads = [operand for _f, operand
                         in model.required_sources(instr)]
                writes = list(model.written_registers(instr))
                self.slot_events.append(
                    (tuple_index, slot_name, reads, writes))
                seen_reads = set()
                for operand in reads:
                    if operand in seen_reads:
                        continue
                    seen_reads.add(operand)
                    if is_grf(operand):
                        if operand not in defined:
                            self.upward_uses.append(
                                (tuple_index, slot_name, operand))
                    elif is_temp(operand):
                        temp = operand - TEMP_BASE
                        temp_unread.pop(operand, None)
                        if operand not in temp_defined:
                            self.temp_findings.append(_finding(
                                "temp-cross-clause", Severity.ERROR,
                                f"read of t{temp} before any write in this "
                                f"clause (temporaries are clause-local)",
                                clause=index, tuple_index=tuple_index,
                                slot=slot_name, operand=operand))
                for operand in writes:
                    if is_grf(operand):
                        defined.add(operand)
                    elif is_temp(operand):
                        if operand in temp_unread:
                            prev_tuple, prev_slot = temp_unread[operand]
                            self.temp_findings.append(_finding(
                                "temp-dead", Severity.NOTE,
                                f"t{operand - TEMP_BASE} written but never "
                                f"read before being overwritten",
                                clause=index, tuple_index=prev_tuple,
                                slot=prev_slot, operand=operand))
                        temp_defined.add(operand)
                        temp_unread[operand] = (tuple_index, slot_name)
        for operand, (tuple_index, slot_name) in sorted(temp_unread.items()):
            self.temp_findings.append(_finding(
                "temp-dead", Severity.NOTE,
                f"t{operand - TEMP_BASE} written but never read before the "
                f"clause ends (temporaries die at the clause boundary)",
                clause=index, tuple_index=tuple_index, slot=slot_name,
                operand=operand))
        # The tail condition register is read after every slot executed.
        if clause.tail in (Tail.BRANCH, Tail.BRANCH_Z):
            cond = clause.cond_reg
            if is_grf(cond) and cond not in defined:
                self.upward_uses.append((None, "tail", cond))
        self.defs = defined


def run(program, cfg, ctx, report):
    summaries = {i: ClauseSummary(program.clauses[i], i)
                 for i in cfg.reachable}
    for summary in summaries.values():
        report.extend(summary.temp_findings)
    if not summaries:
        return summaries
    _uninit_reads(cfg, summaries, report)
    _dead_writes(program, cfg, summaries, report)
    return summaries


def _uninit_reads(cfg, summaries, report):
    all_regs = frozenset(range(64))
    in_may = {i: set(PRELOADED) if i == 0 else set()
              for i in cfg.reachable}
    in_must = {i: set(PRELOADED) if i == 0 else set(all_regs)
               for i in cfg.reachable}
    changed = True
    while changed:
        changed = False
        for index in cfg.topo_order():
            preds = [p for p in cfg.predecessors[index]
                     if p in cfg.reachable]
            may = set()
            must = set(all_regs) if preds else set()
            for pred in preds:
                may |= in_may[pred] | summaries[pred].defs
                must &= in_must[pred] | summaries[pred].defs
            if index == 0:
                # Program entry: the dispatch path (exactly the preloaded
                # registers defined) joins any loop-back edges.
                may |= PRELOADED
                must = (must & PRELOADED) if preds else set(PRELOADED)
            if may != in_may[index] or must != in_must[index]:
                in_may[index] = may
                in_must[index] = must
                changed = True
    for index in cfg.topo_order():
        summary = summaries[index]
        for tuple_index, slot_name, reg in summary.upward_uses:
            if reg in PRELOADED:
                continue
            if reg not in in_may[index]:
                report.add(_finding(
                    "uninit-read", Severity.WARNING,
                    f"uninitialized read of {operand_name(reg)} (no write "
                    f"on any path; reads the preloaded zero)",
                    clause=index, tuple_index=tuple_index, slot=slot_name,
                    operand=reg))
            elif reg not in in_must[index]:
                report.add(_finding(
                    "maybe-uninit-read", Severity.NOTE,
                    f"{operand_name(reg)} is only written on some paths "
                    f"to this read", clause=index, tuple_index=tuple_index,
                    slot=slot_name, operand=reg))


def _dead_writes(program, cfg, summaries, report):
    """Clause-level backward liveness; flags values never read again.

    Final register state is still captured by the differential runner,
    so dead writes are informational (NOTE), not errors.
    """
    live_in = {i: set() for i in cfg.reachable}
    upward = {i: {reg for _t, _s, reg in summaries[i].upward_uses}
              for i in cfg.reachable}
    changed = True
    while changed:
        changed = False
        for index in reversed(cfg.topo_order()):
            live_out = set()
            for succ in cfg.successors[index]:
                if succ in cfg.reachable:
                    live_out |= live_in[succ]
            new_in = upward[index] | (live_out - summaries[index].defs)
            if new_in != live_in[index]:
                live_in[index] = new_in
                changed = True
    for index in cfg.topo_order():
        clause = program.clauses[index]
        live = set()
        for succ in cfg.successors[index]:
            if succ in cfg.reachable:
                live |= live_in[succ]
        if clause.tail in (Tail.BRANCH, Tail.BRANCH_Z):
            if is_grf(clause.cond_reg):
                live.add(clause.cond_reg)
        for tuple_index, slot_name, reads, writes in \
                reversed(summaries[index].slot_events):
            grf_writes = [w for w in writes if is_grf(w)]
            if grf_writes and not any(w in live for w in grf_writes):
                # Registers at END are still captured/compared by the
                # differential runner, so skip terminating clauses.
                if (clause.tail is not Tail.END
                        and index not in cfg.falls_off_end):
                    report.add(_finding(
                        "dead-write", Severity.NOTE,
                        f"value written to "
                        f"{operand_name(grf_writes[0])} is never read",
                        clause=index, tuple_index=tuple_index,
                        slot=slot_name, operand=grf_writes[0]))
            for reg in grf_writes:
                live.discard(reg)
            for operand in reads:
                if is_grf(operand):
                    live.add(operand)
