"""Clause-granularity control-flow graph.

Control flow in the Bifrost-like ISA is a property of clause *tails*, so
the CFG's nodes are clause indices and its edges come straight from the
tail kinds. On top of the raw graph this module computes the derived
facts the analysis passes share:

- reachability from the entry clause;
- whether the graph is **forward-only** (every edge goes to a higher
  index — such programs trivially terminate);
- **unavoidable** clauses: clauses every terminating execution must pass
  through. Must-claims (must-fault, must-race) are only ever attached to
  unavoidable clauses;
- barrier **phases**: for forward-only graphs, the number of unavoidable
  barriers strictly before a clause. Two memory accesses can only race
  if they occur in the same phase.
"""

from repro.gpu.isa import Tail


class ClauseCFG:
    """CFG over the clauses of a decoded program."""

    def __init__(self, program):
        self.program = program
        self.num_clauses = len(program.clauses)
        self.successors = []
        self.falls_off_end = set()  # clauses whose fallthrough exits the code
        for index, clause in enumerate(program.clauses):
            succs = []
            tail = clause.tail
            if tail in (Tail.FALLTHROUGH, Tail.BARRIER):
                if index + 1 < self.num_clauses:
                    succs.append(index + 1)
                else:
                    self.falls_off_end.add(index)
            elif tail is Tail.JUMP:
                if 0 <= clause.target < self.num_clauses:
                    succs.append(clause.target)
            elif tail in (Tail.BRANCH, Tail.BRANCH_Z):
                if index + 1 < self.num_clauses:
                    succs.append(index + 1)
                else:
                    self.falls_off_end.add(index)
                if (0 <= clause.target < self.num_clauses
                        and clause.target not in succs):
                    succs.append(clause.target)
            # END: no successors
            self.successors.append(succs)
        self.predecessors = [[] for _ in range(self.num_clauses)]
        for index, succs in enumerate(self.successors):
            for succ in succs:
                self.predecessors[succ].append(index)
        self.reachable = self._reach_from(0) if self.num_clauses else set()
        # Exits: END tails terminate the thread; a fallthrough off the end
        # is a crash, but for graph purposes it is still a sink.
        self.exits = {
            i for i in self.reachable
            if self.program.clauses[i].tail is Tail.END
            or i in self.falls_off_end
        }
        self.forward_only = all(
            succ > index
            for index, succs in enumerate(self.successors)
            for succ in succs
        )
        self._unavoidable = None

    def _reach_from(self, start, skip=None):
        if start >= self.num_clauses or start == skip:
            return set()
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for succ in self.successors[node]:
                if succ != skip and succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def unavoidable(self):
        """Clauses on *every* entry-to-exit path.

        Clause c is avoidable iff some exit clause is reachable from the
        entry without passing through c. O(n^2) over clause count, which
        is bounded (programs are tens of clauses).
        """
        if self._unavoidable is not None:
            return self._unavoidable
        result = set()
        if not self.exits:
            self._unavoidable = result
            return result
        for clause in self.reachable:
            if clause == 0:
                result.add(clause)
                continue
            seen = self._reach_from(0, skip=clause)
            if not (seen & self.exits):
                result.add(clause)
        self._unavoidable = result
        return result

    def phases(self):
        """Barrier phase per clause, or None when phases are undefined.

        Only meaningful on forward-only graphs, where clauses execute in
        increasing index order: phase(c) counts unavoidable BARRIER-tail
        clauses with index < c (a barrier clause's own accesses happen
        before its tail barrier, so it keeps the earlier phase).
        """
        if not self.forward_only:
            return None
        unavoidable = self.unavoidable()
        phases = {}
        phase = 0
        for index in range(self.num_clauses):
            phases[index] = phase
            if (self.program.clauses[index].tail is Tail.BARRIER
                    and index in unavoidable):
                phase += 1
        return phases

    def nonterminating_clauses(self):
        """Reachable clauses from which no exit is reachable.

        Such a clause sits in (or unavoidably leads into) an inescapable
        cycle: once a thread arrives there it can never terminate.
        """
        stuck = set()
        for clause in self.reachable:
            if not (self._reach_from(clause) & self.exits):
                stuck.add(clause)
        return stuck

    def topo_order(self):
        """Clause iteration order for the dataflow fixpoints: index order
        (exact topological order for forward-only graphs, a good
        approximation otherwise)."""
        return sorted(self.reachable)
