"""Library form of the static-verifier lint sweep.

``repro-sim lint`` and the simulation farm's lint provider share this
module: one compile-and-verify path per target, returning structured
:class:`LintUnit` results instead of printing, so callers own both
presentation (CLI annotated disassembly) and aggregation (farm verdicts
and counters).

A *target* is addressed by a stable string:

- ``builtin:<workload>`` — one entry of :data:`repro.kernels.WORKLOADS`,
  compiled with the workload's own ``compile_defines()``;
- ``slam`` — the concatenated SLAM pipeline kernels;
- anything else — a kernel-language source file path.
"""

from dataclasses import dataclass, field, replace

from repro.gpu.verify.context import VerifyContext
from repro.gpu.verify.pipeline import verify_program
from repro.gpu.verify.report import Severity


@dataclass
class LintUnit:
    """Verifier outcome for one kernel of one target (or one failed
    compile, in which case *kernel* is empty and *error* is set)."""

    label: str
    kernel: str = ""
    counts: dict = field(default_factory=lambda: {
        "errors": 0, "warnings": 0, "notes": 0})
    report: object = None
    error: str = ""

    @property
    def ok(self):
        return not self.error and not self.counts["errors"]

    def summary(self):
        if self.error:
            return f"compile failed: {self.error}"
        return self.report.summary()


def builtin_targets():
    """The stable target list the ``--builtin`` sweep covers: every
    registered workload plus the SLAM pipeline."""
    from repro.kernels import WORKLOADS

    return [f"builtin:{name}" for name in sorted(WORKLOADS)] + ["slam"]


def _target_source(target):
    """Resolve a target string to (label, source, defines)."""
    if target.startswith("builtin:"):
        from repro.kernels import WORKLOADS

        name = target[len("builtin:"):]
        if name not in WORKLOADS:
            raise KeyError(f"unknown builtin workload {name!r}")
        cls = WORKLOADS[name]
        return name, cls.source, cls.compile_defines()
    if target == "slam":
        from repro.slam.kernels import ALL_SOURCES

        return "slam", ALL_SOURCES, None
    with open(target) as handle:
        return target, handle.read(), None


def lint_source(label, source, defines=None, version=None, kernel=None):
    """Compile *source* and verify every kernel; returns [LintUnit].

    The caller owns finding presentation, so the compiler's own
    reject-on-error verify gate is disabled for these builds.
    """
    from repro.clc import compile_source
    from repro.clc.compiler import CompilerOptions
    from repro.clc.versions import DEFAULT_VERSION

    copts = replace(CompilerOptions.from_version(version or DEFAULT_VERSION),
                    verify=False)
    try:
        program = compile_source(source, options=copts, defines=defines)
    except Exception as exc:  # noqa: BLE001 - a failed compile is a result
        return [LintUnit(label=label, error=f"{type(exc).__name__}: {exc}")]
    units = []
    for name in sorted(program.kernels):
        if kernel and name != kernel:
            continue
        compiled = program.kernels[name]
        report = verify_program(
            compiled.program, VerifyContext.from_compiled_kernel(compiled))
        units.append(LintUnit(label=label, kernel=name,
                              counts=report.counts(), report=report))
    return units


def lint_target(target, version=None, kernel=None):
    """Lint one target string (``builtin:<name>``, ``slam`` or a file
    path); returns [LintUnit]."""
    label, source, defines = _target_source(target)
    return lint_source(label, source, defines=defines, version=version,
                       kernel=kernel)


def format_unit(unit, disasm=True, min_severity=Severity.WARNING):
    """CLI presentation of one unit: status line plus (optionally) the
    findings inlined into the clause disassembly."""
    status = "ok  " if unit.ok else "FAIL"
    name = f"{unit.label}:{unit.kernel}" if unit.kernel else unit.label
    lines = [f"{status} {name}  ({unit.summary()})"]
    if unit.report is not None:
        shown = [f for f in unit.report.findings
                 if f.severity >= min_severity]
        if shown:
            lines.append(unit.report.format(disasm=disasm,
                                            min_severity=min_severity))
            lines.append("")
    return "\n".join(lines)


# Stable machine-readable schema tag for --json output.
SCHEMA = "repro-lint-report/1"


def finding_to_dict(finding):
    return {
        "code": finding.code,
        "severity": finding.severity.tag,
        "message": finding.message,
        "clause": finding.clause,
        "tuple": finding.tuple_index,
        "slot": finding.slot,
        "must_fault": bool(finding.must_fault),
    }


def unit_to_dict(unit, min_severity=Severity.WARNING):
    """Stable JSON form of one unit (schema :data:`SCHEMA`)."""
    data = {
        "label": unit.label,
        "kernel": unit.kernel,
        "ok": unit.ok,
        "counts": dict(unit.counts),
        "error": unit.error,
    }
    if unit.report is not None:
        data["findings"] = [finding_to_dict(f)
                            for f in unit.report.sorted_findings()
                            if f.severity >= min_severity]
    return data


def units_to_json(units, min_severity=Severity.WARNING):
    """Top-level ``--json`` document for a list of units."""
    totals = {"kernels": 0, "errors": 0, "warnings": 0, "notes": 0}
    for unit in units:
        if unit.error:
            totals["errors"] += 1
            continue
        totals["kernels"] += 1
        for key in ("errors", "warnings", "notes"):
            totals[key] += unit.counts[key]
    return {
        "schema": SCHEMA,
        "units": [unit_to_dict(u, min_severity=min_severity)
                  for u in units],
        "totals": totals,
    }
