"""Control-flow passes: reachability, termination, barrier divergence."""

from repro.gpu.isa import Tail
from repro.gpu.verify.report import Finding, Severity

PASS_NAME = "controlflow"


def _finding(code, severity, message, **kw):
    return Finding(code=code, severity=severity, message=message,
                   pass_name=PASS_NAME, **kw)


def run(program, cfg, ctx, absres, report):
    for index in range(len(program.clauses)):
        if index not in cfg.reachable:
            report.add(_finding(
                "unreachable-clause", Severity.WARNING,
                "clause is unreachable from the entry", clause=index))

    report.facts["forward_only"] = cfg.forward_only
    if cfg.forward_only:
        # Forward-only CFGs strictly increase the clause index on every
        # edge, so every execution terminates — record the proof.
        report.facts["terminating"] = True
    else:
        stuck = cfg.nonterminating_clauses()
        report.facts["terminating"] = not stuck
        if stuck:
            report.add(_finding(
                "no-termination", Severity.ERROR,
                f"no END is reachable from clause {min(stuck)} "
                f"({len(stuck)} clause(s) trapped in a cycle)",
                clause=min(stuck), slot="tail"))

    _barrier_divergence(program, cfg, absres, report)


def _barrier_divergence(program, cfg, absres, report):
    """A barrier reachable from only one side of a divergent branch.

    On real hardware a workgroup barrier requires every thread to arrive;
    if a thread-varying branch lets some threads bypass the barrier (or
    exit), the others wait forever. This simulator releases barriers when
    the remaining warps finish, so the defect is a portability/deadlock
    lint, not a simulation fault: WARNING severity.

    Branches whose condition is provably workgroup-uniform (absint) are
    skipped — uniform loops around barriers are the normal tiled-kernel
    idiom and cannot diverge.
    """
    barriers = [i for i in cfg.reachable
                if program.clauses[i].tail is Tail.BARRIER]
    if not barriers:
        return
    reported = set()
    for index in sorted(cfg.reachable):
        clause = program.clauses[index]
        if clause.tail not in (Tail.BRANCH, Tail.BRANCH_Z):
            continue
        if absres.cond_uniform.get(index, False):
            continue
        succs = cfg.successors[index]
        if len(succs) < 2:
            continue
        reach = [cfg._reach_from(s) for s in succs]
        for barrier in barriers:
            if barrier in reported:
                continue
            hits = [barrier in r for r in reach]
            if any(hits) and not all(hits):
                reported.add(barrier)
                report.add(_finding(
                    "barrier-divergence", Severity.WARNING,
                    f"barrier in clause {barrier} is reachable from only "
                    f"one side of the thread-varying branch in clause "
                    f"{index}; diverged threads would deadlock the "
                    f"workgroup on real hardware",
                    clause=barrier, slot="tail"))
