"""Loop-bound inference over clause CFGs.

Back edges in the clause CFG (tail edges whose target index does not
exceed the source index) define natural loops; for each loop this module
tries to prove a **sound upper bound on the number of back-edge
traversals** from the induction idiom the code producers emit:

    i = init              # in a preheader clause outside the body
    head: ...
          i = i +/- step  # exactly one in-body update, constant step
          c = CMP(i, limit)   # limit loop-invariant
          BRANCH/BRANCH_Z back into the body (or out of it)

The derivation runs entirely in the :mod:`absint` domain, so ``init``
and ``limit`` stay *symbolic* (NDRange symbols, uniform argument slots,
intervals) until a launch-time :class:`VerifyContext` pins them; the
:class:`TripBound` then evaluates to a concrete trip count. Widening in
the abstract fixpoint only ever grows intervals, so a bound derived from
the stabilized states over-approximates every concrete execution.

Anything the pattern matcher cannot prove stays ``None`` (unbounded):
callers must treat an unbounded loop as "no static claim", never as
zero.
"""

from dataclasses import dataclass

from repro.gpu.isa import CmpMode, Op, Tail, is_const, is_grf
from repro.gpu.verify import absint, model
from repro.gpu.verify.memory import _offset_interval

# A concrete trip-count evaluation refuses to reason past this magnitude:
# the induction variable must provably stay inside signed-32-bit range so
# machine wraparound cannot invalidate the monotonicity argument.
_WRAP_LIMIT = 1 << 31

# Negating a continue-condition: NOT cmp(a, b) == negated_cmp(a, b).
_NEGATE = {
    CmpMode.IEQ: CmpMode.INE, CmpMode.INE: CmpMode.IEQ,
    CmpMode.ILT: CmpMode.IGE, CmpMode.IGE: CmpMode.ILT,
    CmpMode.ILE: CmpMode.IGT, CmpMode.IGT: CmpMode.ILE,
    CmpMode.ULT: CmpMode.UGE, CmpMode.UGE: CmpMode.ULT,
    CmpMode.ULE: CmpMode.UGT, CmpMode.UGT: CmpMode.ULE,
}

# Swapping operands: cmp(a, b) == swapped_cmp(b, a).
_SWAP = {
    CmpMode.IEQ: CmpMode.IEQ, CmpMode.INE: CmpMode.INE,
    CmpMode.ILT: CmpMode.IGT, CmpMode.IGT: CmpMode.ILT,
    CmpMode.ILE: CmpMode.IGE, CmpMode.IGE: CmpMode.ILE,
    CmpMode.ULT: CmpMode.UGT, CmpMode.UGT: CmpMode.ULT,
    CmpMode.ULE: CmpMode.UGE, CmpMode.UGE: CmpMode.ULE,
}

_UNSIGNED = {CmpMode.ULT, CmpMode.ULE, CmpMode.UGT, CmpMode.UGE}


def _ceil_div(a, b):
    return -((-a) // b)


def _mode_view(interval, signed):
    """Map a math-integer interval onto the value domain a compare mode
    actually sees (machine values are the math values mod 2^32):
    signed [-2^31, 2^31) or unsigned [0, 2^32). Intervals that map
    non-monotonically (straddle a wrap seam) yield ``None``."""
    lo, hi = interval
    if signed:
        if -(1 << 31) <= lo and hi < (1 << 31):
            return interval
        if (1 << 31) <= lo and hi < (1 << 32):
            return (lo - (1 << 32), hi - (1 << 32))
        return None
    if 0 <= lo and hi < (1 << 32):
        return interval
    if -(1 << 31) <= lo and hi < 0:
        return (lo + (1 << 32), hi + (1 << 32))
    return None


_SIGNED_MODES = {CmpMode.ILT, CmpMode.ILE, CmpMode.IGT, CmpMode.IGE}


@dataclass(frozen=True)
class TripBound:
    """A symbolic bound on back-edge traversals of one natural loop.

    ``mode`` is the *continue* condition normalized to
    ``mode(induction, limit)``; ``kind`` names the induction update:
    ``linear`` (``i += step``, *step* signed), ``shr`` (``i >>= step``,
    logical) or ``shl`` (``i <<= step``). ``init``/``limit`` are
    abstract values evaluated against a launch context when a concrete
    count is needed. ``None`` fields mean the loop resisted analysis
    and carries no bound.
    """

    head: int
    latch: int
    body: frozenset
    exit_clause: int = None
    induction_reg: int = None
    mode: CmpMode = None
    kind: str = "linear"
    step: int = 0
    init: object = None  # absint.AVal
    limit: object = None  # absint.AVal

    @property
    def analyzed(self):
        return self.mode is not None

    def max_back_edges(self, ctx):
        """Concrete upper bound on back-edge traversals, or ``None``.

        Sound against update-before-compare and update-after-compare
        orderings alike: at the t-th back edge the continue condition
        held at a compare where at least t-1 updates had executed, so
        the compared value had moved at least t-1 steps from ``init``.
        """
        if not self.analyzed:
            return None
        init = _aval_interval(self.init, ctx)
        limit = _aval_interval(self.limit, ctx)
        if self.kind in ("shr", "ashr"):
            return self._shr_trips(init, limit)
        if self.kind == "shl":
            return self._shl_trips(init, limit)
        if init is None or limit is None:
            return None
        mode, step = self.mode, self.step
        init = _mode_view(init, mode in _SIGNED_MODES)
        limit = _mode_view(limit, mode in _SIGNED_MODES)
        if init is None or limit is None:
            return None
        if mode in (CmpMode.IEQ,):
            return None  # "continue while equal" never bounds
        if mode is CmpMode.INE:
            # continue while i != L: exact-const arithmetic only
            if init[0] != init[1] or limit[0] != limit[1] or step == 0:
                return None
            delta = limit[0] - init[0]
            if delta % step or delta // step < 0:
                return None
            trips = delta // step
        elif mode in (CmpMode.ILT, CmpMode.ULT, CmpMode.ILE, CmpMode.ULE):
            if step <= 0:
                return None
            gap = limit[1] - init[0]
            trips = (_ceil_div(gap, step)
                     if mode in (CmpMode.ILT, CmpMode.ULT)
                     else gap // step + 1)
        elif mode in (CmpMode.IGT, CmpMode.UGT, CmpMode.IGE, CmpMode.UGE):
            if step >= 0:
                return None
            gap = init[1] - limit[0]
            trips = (_ceil_div(gap, -step)
                     if mode in (CmpMode.IGT, CmpMode.UGT)
                     else gap // -step + 1)
        else:
            return None  # float compare: NaN breaks monotonicity
        trips = max(0, trips)
        # the induction value must stay inside signed-32-bit range for
        # the whole run, else machine wraparound voids the monotonicity
        worst = max(abs(init[0]), abs(init[1])) + (trips + 1) * abs(self.step)
        if worst >= _WRAP_LIMIT:
            return None
        return trips

    def _shr_trips(self, init, limit):
        """``i >>= k`` against ``i > 0`` / ``i != 0``: a right shift by
        k >= 1 drains the value's bits, so back edges cannot outlast
        ``ceil(bits(init)/k)`` regardless of compare ordering (at the
        t-th back edge at least t-1 shifts had executed and the value
        was still nonzero).

        An *arithmetic* shift (``ashr``) keeps a negative value negative
        forever (``-1 >> 1 == -1``), so it is only sound against the
        strictly-positive signed continue condition ``IGT 0`` — which a
        negative value exits immediately, and positive values (31
        significant bits at most) drain exactly like the logical shift.
        """
        if self.kind == "ashr":
            if self.mode is not CmpMode.IGT:
                return None
        elif self.mode not in (CmpMode.IGT, CmpMode.UGT, CmpMode.INE):
            return None
        if limit != (0, 0):
            return None
        bits = 31 if self.kind == "ashr" else 32
        if init is not None:
            view = _mode_view(init, signed=False)
            if view is not None:
                bits = min(bits, max(1, view[1].bit_length()))
        return _ceil_div(bits, self.step)

    def _shl_trips(self, init, limit):
        """``i <<= k`` against ``i < L`` / ``i <= L``: from a positive
        start the value at least doubles per iteration, and the limit
        ceiling guarantees it never wraps (nor, for signed compares,
        turns negative) before crossing L."""
        if self.mode not in (CmpMode.ILT, CmpMode.ULT, CmpMode.ILE,
                             CmpMode.ULE):
            return None
        if init is None or limit is None:
            return None
        signed = self.mode in _SIGNED_MODES
        init = _mode_view(init, signed=False)
        limit = _mode_view(limit, signed)
        if init is None or limit is None or init[0] < 1:
            return None
        shift = self.step
        target = limit[1] + (1 if self.mode in (CmpMode.ILE, CmpMode.ULE)
                             else 0)
        ceiling = 1 << ((31 if signed else 32) - shift)
        if target > ceiling:
            return None  # the shifted value could wrap past the limit
        value, trips = init[0], 0
        while value < target and trips <= 40:
            value <<= shift
            trips += 1
        return None if trips > 40 else trips

    def describe(self):
        """Human-readable symbolic form for reports/annotations."""
        if not self.analyzed:
            return "unbounded"
        update = {"shr": f">>{self.step}", "ashr": f">>{self.step}",
                  "shl": f"<<{self.step}"}.get(self.kind,
                                               f"step {self.step:+d}")
        return (f"r{self.induction_reg} {self.mode.name.lower()} "
                f"{_aval_text(self.limit)} from {_aval_text(self.init)} "
                f"{update}")


def _aval_text(aval):
    if aval is None or aval.top:
        return "?"
    parts = []
    if aval.base is not None:
        parts.append(f"u{aval.base[1]}")
    if aval.coeff:
        parts.append(f"{aval.coeff}*{aval.sym}")
    if aval.lo == aval.hi:
        if aval.lo or not parts:
            parts.append(str(aval.lo))
    else:
        parts.append(f"[{aval.lo},{aval.hi}]")
    return "+".join(parts)


def _aval_interval(aval, ctx):
    """Concrete [lo, hi] of an abstract value under *ctx*, or None."""
    if aval is None or aval.top:
        return None
    offset = _offset_interval(aval, ctx)
    if offset is None:
        return None
    if aval.base is None:
        return offset
    value = ctx.slot_known_value(aval.base[1])
    if value is None:
        return None
    return (value + offset[0], value + offset[1])


def find_back_edges(cfg):
    """``(source, target)`` tail edges that do not increase the index."""
    edges = []
    for index in sorted(cfg.reachable):
        for succ in cfg.successors[index]:
            if succ <= index:
                edges.append((index, succ))
    return edges


def natural_body(cfg, head, latch):
    """Clauses of the natural loop: head plus everything that reaches
    the latch without passing through the head."""
    body = {head, latch}
    stack = [latch]
    while stack:
        node = stack.pop()
        if node == head:
            continue
        for pred in cfg.predecessors[node]:
            if pred not in body and pred in cfg.reachable:
                body.add(pred)
                stack.append(pred)
    return frozenset(body)


def _writes_in_body(program, body, reg):
    """Clause indices in *body* whose slots write GRF *reg*."""
    sites = []
    for index in sorted(body):
        for tuple_index, (fma, add) in enumerate(
                program.clauses[index].tuples):
            for slot_name, instr in (("fma", fma), ("add", add)):
                if reg in model.written_registers(instr):
                    sites.append((index, tuple_index, slot_name))
    return sites


def _exit_candidates(program, cfg, body, head, latch):
    """Body clauses whose conditional tail leaves the body, paired with
    their in-body ("stay") successor — candidates for the loop's
    continue condition. Only exits every head-to-latch path crosses
    qualify: an avoidable break cannot bound the iteration count."""
    candidates = []
    for index in sorted(body):
        clause = program.clauses[index]
        if clause.tail not in (Tail.BRANCH, Tail.BRANCH_Z):
            continue
        succs = cfg.successors[index]
        inside = [s for s in succs if s in body]
        outside = [s for s in succs if s not in body]
        if len(inside) != 1 or not outside:
            continue
        if index != latch and not _dominates_latch(
                cfg, body, head, latch, index):
            continue
        candidates.append((index, inside[0]))
    return candidates


def _dominates_latch(cfg, body, head, latch, node):
    """Every in-body path head->latch passes through *node*."""
    if node == head or node == latch:
        return True
    seen = {head}
    stack = [head]
    while stack:
        current = stack.pop()
        if current == latch:
            return False
        for succ in cfg.successors[current]:
            if succ in body and succ != node and succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return True


def _value_before(program, ctx, absres, clause_index, stop, operand):
    """Abstract value of *operand* just before slot *stop* of a clause,
    replayed from the stabilized entry state."""
    clause = program.clauses[clause_index]
    state = dict(absres.entry_states.get(clause_index) or {})
    if not state:
        return absint.TOP_VARYING
    for tuple_index, (fma, add) in enumerate(clause.tuples):
        for slot_name, instr in (("fma", fma), ("add", add)):
            if (tuple_index, slot_name) == stop:
                return absint._read_aval(state, clause, operand)
            absint._transfer_slot(state, clause, instr, ctx, None,
                                  (clause_index, tuple_index, slot_name))
    return absint._read_aval(state, clause, operand)


def _find_cmp(program, exit_clause, cond_reg):
    """The last CMP writing *cond_reg* in the exit clause, if any."""
    found = None
    for tuple_index, (fma, add) in enumerate(
            program.clauses[exit_clause].tuples):
        for slot_name, instr in (("fma", fma), ("add", add)):
            if (instr.op is Op.CMP and instr.dst == cond_reg
                    and is_grf(cond_reg)):
                found = (tuple_index, slot_name, instr)
    return found


def _preheader_value(program, cfg, ctx, absres, body, head, reg):
    """Join of *reg* at the loop entry, over every out-of-body
    predecessor of the head (the preheader out-states)."""
    if head == 0 and not any(p not in body for p in cfg.predecessors[0]):
        # entry clause is the head with no explicit preheader
        return absint.entry_state().get(reg, absint.TOP_VARYING)
    value = None
    for pred in cfg.predecessors[head]:
        if pred in body:
            continue
        entry = absres.entry_states.get(pred)
        if entry is None:
            return None
        state = dict(entry)
        absint._transfer_clause(program.clauses[pred], pred, state, ctx)
        out = state.get(reg, absint.TOP_VARYING)
        value = out if value is None else absint.join(value, out)
    return value


def analyze_loop(program, cfg, ctx, absres, head, latch):
    """Derive a :class:`TripBound` for the (head, latch) back edge."""
    body = natural_body(cfg, head, latch)
    unanalyzed = TripBound(head=head, latch=latch, body=body)
    # single-entry check: init values come from the preheader, so a
    # side entrance into the body would void them
    for node in body:
        if node == head:
            continue
        if any(p not in body for p in cfg.predecessors[node]
               if p in cfg.reachable):
            return unanalyzed
    for exit_clause, stay in _exit_candidates(program, cfg, body, head,
                                              latch):
        clause = program.clauses[exit_clause]
        cmp_site = _find_cmp(program, exit_clause, clause.cond_reg)
        if cmp_site is None:
            continue
        tuple_index, slot_name, cmp_instr = cmp_site
        try:
            mode = CmpMode(cmp_instr.flags)
        except ValueError:
            continue
        if mode not in _NEGATE:
            continue  # float compares carry no integer monotonicity
        # the condition value that *stays in the loop*
        taken_on_true = clause.tail is Tail.BRANCH
        stay_is_target = (stay == clause.target
                          and stay != exit_clause + 1)
        continue_on_true = stay_is_target == taken_on_true
        bound = _bound_from_cmp(
            program, cfg, ctx, absres, body, head, exit_clause,
            (tuple_index, slot_name), cmp_instr, mode, continue_on_true)
        if bound is not None:
            return TripBound(head=head, latch=latch, body=body,
                             exit_clause=exit_clause, **bound)
    return unanalyzed


def _bound_from_cmp(program, cfg, ctx, absres, body, head, exit_clause,
                    cmp_slot, cmp_instr, mode, continue_on_true):
    if not continue_on_true:
        mode = _NEGATE[mode]
    for ind_operand, lim_operand, oriented in (
            (cmp_instr.srca, cmp_instr.srcb, mode),
            (cmp_instr.srcb, cmp_instr.srca, _SWAP.get(mode))):
        if oriented is None or not is_grf(ind_operand):
            continue
        writes = _writes_in_body(program, body, ind_operand)
        if len(writes) != 1:
            continue
        update = _update_of(program, ctx, absres, writes[0], ind_operand)
        if update is None:
            continue
        kind, step = update
        # the limit must be loop-invariant: a const-pool operand, or a
        # register no body clause writes
        if is_grf(lim_operand) and _writes_in_body(program, body,
                                                   lim_operand):
            continue
        if not (is_grf(lim_operand) or is_const(lim_operand)):
            continue
        limit = _value_before(program, ctx, absres, exit_clause,
                              cmp_slot, lim_operand)
        init = _preheader_value(program, cfg, ctx, absres, body, head,
                                ind_operand)
        if limit is None or init is None:
            continue
        return {"induction_reg": ind_operand, "mode": oriented,
                "kind": kind, "step": step, "init": init, "limit": limit}
    return None


def _update_of(program, ctx, absres, write_site, reg):
    """Classify the single in-body self-update of *reg*: ``("linear",
    signed_step)`` for ``reg +/-= const``, ``("shr", k)`` /
    ``("shl", k)`` for constant shifts by k >= 1, else ``None``."""
    clause_index, tuple_index, slot_name = write_site
    clause = program.clauses[clause_index]
    fma, add = clause.tuples[tuple_index]
    instr = fma if slot_name == "fma" else add
    if instr.op not in (Op.IADD, Op.ISUB, Op.ISHR, Op.IASHR, Op.ISHL) \
            or instr.dst != reg:
        return None
    if instr.srca == reg:
        other = instr.srcb
    elif instr.srcb == reg and instr.op is Op.IADD:
        other = instr.srca
    else:
        return None
    value = _value_before(program, ctx, absres, clause_index,
                          (tuple_index, slot_name), other)
    if not value.is_exact_const:
        return None
    if instr.op in (Op.ISHR, Op.IASHR, Op.ISHL):
        amount = value.lo & 0xFFFFFFFF
        if not 1 <= (amount & 31) == amount:
            return None  # the machine masks shifts to 5 bits
        return ({Op.ISHR: "shr", Op.IASHR: "ashr",
                 Op.ISHL: "shl"}[instr.op], amount)
    step = value.lo & 0xFFFFFFFF
    if step >= _WRAP_LIMIT:
        step -= 1 << 32  # two's-complement negative step
    return ("linear", -step if instr.op is Op.ISUB else step)


def find_loops(program, cfg, ctx, absres):
    """All natural loops of the program as :class:`TripBound` records.

    Back edges sharing a head are merged into one *unanalyzed* loop
    (multi-latch loops defeat the single-update induction pattern).
    """
    by_head = {}
    for latch, head in find_back_edges(cfg):
        by_head.setdefault(head, []).append(latch)
    loops = []
    for head in sorted(by_head):
        latches = by_head[head]
        if len(latches) > 1:
            body = frozenset().union(
                *[natural_body(cfg, head, latch) for latch in latches])
            loops.append(TripBound(head=head, latch=max(latches),
                                   body=body))
            continue
        loops.append(analyze_loop(program, cfg, ctx, absres, head,
                                  latches[0]))
    return loops
