"""The verifier pass pipeline.

``verify_program`` runs the passes in dependency order over a decoded
program; ``verify_binary`` decodes first and converts decode rejections
into findings, so callers get a uniform :class:`Report` either way.
"""

from repro.errors import DecodeError
from repro.gpu.encoding import decode_program
from repro.gpu.verify import (
    absint,
    controlflow,
    dataflow,
    memory,
    structural,
)
from repro.gpu.verify.cfg import ClauseCFG
from repro.gpu.verify.context import VerifyContext
from repro.gpu.verify.report import Finding, Report, Severity

PASSES = ("structural", "dataflow", "controlflow", "memory")

# Structural findings after which the CFG/dataflow model is meaningless:
# run no further passes so later findings never build on broken shape.
_FATAL_STRUCTURAL = frozenset({
    "empty-program", "bad-tuple-count", "branch-target-oob",
})


def verify_program(program, context=None):
    """Run every verifier pass; returns the findings :class:`Report`."""
    ctx = context if context is not None else VerifyContext()
    report = Report(program=program)
    structural.run(program, ctx, report)
    if any(f.code in _FATAL_STRUCTURAL for f in report.errors):
        return report
    cfg = ClauseCFG(program)
    report.facts["unavoidable"] = sorted(cfg.unavoidable())
    dataflow.run(program, cfg, ctx, report)
    absres = absint.run(program, cfg, ctx)
    controlflow.run(program, cfg, ctx, absres, report)
    memory.run(program, cfg, ctx, absres, report)
    report.facts["mem_accesses"] = len(absres.accesses)
    return report


def verify_binary(binary, context=None):
    """Decode *binary* and verify it; decode rejections become findings."""
    try:
        program = decode_program(bytes(binary))
    except (DecodeError, ValueError) as exc:
        report = Report(program=None)
        report.add(Finding(
            code="decode-error", severity=Severity.ERROR,
            message=f"binary does not decode: {exc}",
            pass_name="structural"))
        return report
    return verify_program(program, context)
