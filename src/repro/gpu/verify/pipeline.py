"""The verifier pass pipeline.

``verify_program`` runs the requested passes in dependency order over a
decoded program; ``verify_binary`` decodes first and converts decode
rejections into findings, so callers get a uniform :class:`Report`
either way.

**Pass selection**: callers pay only for the passes they need. The
default selection is the four lint-level passes (what the compile gates
and ``repro.tools lint`` require); ``repro.tools analyze`` asks for
``("structural", "cost")`` and skips the dataflow/race machinery
entirely. ``structural`` always runs — every other pass builds on a
structurally valid program — and the shared abstract interpretation
(:mod:`absint`) is computed once when any pass depending on it is
selected.
"""

from repro.errors import DecodeError
from repro.gpu.encoding import decode_program
from repro.gpu.verify import (
    absint,
    controlflow,
    cost,
    dataflow,
    memory,
    structural,
)
from repro.gpu.verify.cfg import ClauseCFG
from repro.gpu.verify.context import VerifyContext
from repro.gpu.verify.report import Finding, Report, Severity

# Every known pass, in dependency/run order.
PASSES = ("structural", "dataflow", "controlflow", "memory", "cost")

# The lint-level selection (compile gates, `repro.tools lint`): the
# historical pipeline, unchanged by the advisory cost pass.
DEFAULT_PASSES = ("structural", "dataflow", "controlflow", "memory")

# Passes consuming the shared abstract-interpretation fixpoint.
_NEEDS_ABSINT = frozenset({"controlflow", "memory", "cost"})

# Structural findings after which the CFG/dataflow model is meaningless:
# run no further passes so later findings never build on broken shape.
_FATAL_STRUCTURAL = frozenset({
    "empty-program", "bad-tuple-count", "branch-target-oob",
})


def _select(passes):
    if passes is None:
        return DEFAULT_PASSES
    unknown = set(passes) - set(PASSES)
    if unknown:
        raise ValueError(f"unknown verifier pass(es) {sorted(unknown)}; "
                         f"known: {list(PASSES)}")
    return tuple(name for name in PASSES
                 if name in set(passes) | {"structural"})


def verify_program(program, context=None, passes=None):
    """Run the selected verifier passes; returns the :class:`Report`.

    *passes* is an iterable of pass names (see :data:`PASSES`);
    ``None`` selects the lint-level default. ``structural`` is always
    included, and passes run in canonical order regardless of the
    iteration order given.
    """
    selected = _select(passes)
    ctx = context if context is not None else VerifyContext()
    report = Report(program=program)
    structural.run(program, ctx, report)
    report.facts["passes"] = selected
    if any(f.code in _FATAL_STRUCTURAL for f in report.errors):
        return report
    if selected == ("structural",):
        return report
    cfg = ClauseCFG(program)
    report.facts["unavoidable"] = sorted(cfg.unavoidable())
    if "dataflow" in selected:
        dataflow.run(program, cfg, ctx, report)
    absres = None
    if _NEEDS_ABSINT & set(selected):
        absres = absint.run(program, cfg, ctx)
        report.facts["mem_accesses"] = len(absres.accesses)
    if "controlflow" in selected:
        controlflow.run(program, cfg, ctx, absres, report)
    if "memory" in selected:
        memory.run(program, cfg, ctx, absres, report)
    if "cost" in selected:
        cost.run(program, cfg, ctx, absres, report)
    return report


def verify_binary(binary, context=None, passes=None):
    """Decode *binary* and verify it; decode rejections become findings."""
    try:
        program = decode_program(bytes(binary))
    except (DecodeError, ValueError) as exc:
        report = Report(program=None)
        report.add(Finding(
            code="decode-error", severity=Severity.ERROR,
            message=f"binary does not decode: {exc}",
            pass_name="structural"))
        return report
    return verify_program(program, context, passes=passes)
