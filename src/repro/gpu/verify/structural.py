"""Structural verifier: encoding and clause-shape invariants.

Every check corresponds to either a hard dynamic failure (GuestError,
register-array overrun, decode rejection) — reported at ERROR severity —
or an ISA-contract/efficiency concern reported as WARNING/NOTE.
"""

from repro.gpu.disasm import format_instruction, operand_name
from repro.gpu.isa import (
    MAX_CONSTS,
    MEM_WIDTH_MASK,
    NUM_GRF,
    OPERAND_NONE,
    CmpMode,
    Op,
    Tail,
    can_use_add_slot,
    is_const,
    is_grf,
    is_memory_op,
    is_temp,
)
from repro.gpu.verify import model
from repro.gpu.verify.report import Finding, Severity

PASS_NAME = "structural"

# Distinct GRF reads one tuple can stage per issue cycle (two 64-bit read
# ports on the operand network). Exceeding it is legal in this simulator
# but would not schedule on the modeled hardware, so it is a lint.
TUPLE_GRF_READ_PORTS = 4


def _finding(code, severity, message, **kw):
    return Finding(code=code, severity=severity, message=message,
                   pass_name=PASS_NAME, **kw)


def run(program, ctx, report):
    if not program.clauses:
        report.add(_finding("empty-program", Severity.ERROR,
                            "program has no clauses"))
        return
    last = len(program.clauses) - 1
    for index, clause in enumerate(program.clauses):
        _check_clause_shape(clause, index, report)
        for tuple_index, (fma, add) in enumerate(clause.tuples):
            if add.op is not Op.NOP and not can_use_add_slot(add.op):
                report.add(_finding(
                    "add-slot-class", Severity.ERROR,
                    f"{add.op.name} cannot occupy an ADD slot "
                    f"(FMA-pipe/message-fabric op)",
                    clause=index, tuple_index=tuple_index, slot="add"))
            for slot_name, instr in (("fma", fma), ("add", add)):
                _check_slot(instr, clause, index, tuple_index, slot_name,
                            ctx, report)
            _check_read_ports(fma, add, index, tuple_index, report)
        _check_tail(clause, index, last, len(program.clauses), report)


def _check_clause_shape(clause, index, report):
    if not 1 <= len(clause.tuples) <= 8:
        report.add(_finding(
            "bad-tuple-count", Severity.ERROR,
            f"clause has {len(clause.tuples)} tuples (1-8 allowed)",
            clause=index))
    if len(clause.constants) > MAX_CONSTS:
        report.add(_finding(
            "bad-const-pool", Severity.ERROR,
            f"constant pool has {len(clause.constants)} entries "
            f"(max {MAX_CONSTS})", clause=index))


def _check_slot(instr, clause, index, tuple_index, slot_name, ctx, report):
    op = instr.op
    if op is Op.NOP:
        return
    anchor = dict(clause=index, tuple_index=tuple_index, slot=slot_name)

    for field, operand in model.required_sources(instr):
        if operand == OPERAND_NONE:
            report.add(_finding(
                "missing-operand", Severity.ERROR,
                f"{op.name} requires {field} (reads fault with GuestError)",
                operand=operand, **anchor))
        elif is_const(operand):
            pool_slot = operand - 128
            if pool_slot >= len(clause.constants):
                report.add(_finding(
                    "const-oob", Severity.ERROR,
                    f"{field} reads c{pool_slot} but the clause pool has "
                    f"{len(clause.constants)} constants",
                    operand=operand, **anchor))
        elif not (is_grf(operand) or is_temp(operand)):
            report.add(_finding(
                "bad-operand", Severity.ERROR,
                f"{field} operand {operand} is not a register, temporary "
                f"or constant", operand=operand, **anchor))

    for field, operand in model.ignored_sources(instr):
        report.add(_finding(
            "extra-operand", Severity.NOTE,
            f"{op.name} never reads {field} ({operand_name(operand)})",
            operand=operand, **anchor))

    if model.requires_dst(op):
        dst = instr.dst
        if op is Op.LD:
            if dst == OPERAND_NONE or not is_grf(dst):
                report.add(_finding(
                    "bad-operand", Severity.ERROR,
                    f"LD destination must be a GRF register "
                    f"(got {operand_name(dst)})", operand=dst, **anchor))
            elif model.ld_overflows_grf(instr):
                report.add(_finding(
                    "wide-reg-overflow", Severity.ERROR,
                    f"LD x{instr.mem_width} at {operand_name(dst)} runs "
                    f"past r{NUM_GRF - 1}", operand=dst, **anchor))
        elif dst == OPERAND_NONE or not (is_grf(dst) or is_temp(dst)):
            report.add(_finding(
                "missing-operand" if dst == OPERAND_NONE else "bad-operand",
                Severity.ERROR,
                f"{op.name} destination {operand_name(dst)} is not "
                f"writable (writes fault with GuestError)",
                operand=dst, **anchor))

    if op is Op.ST and instr.srcb != OPERAND_NONE:
        span_end = instr.srcb + instr.mem_width - 1
        if is_grf(instr.srcb) and not is_grf(span_end):
            report.add(_finding(
                "wide-span-crosses-file", Severity.WARNING,
                f"ST x{instr.mem_width} source span "
                f"{operand_name(instr.srcb)}..{operand_name(span_end)} "
                f"crosses out of the GRF file", operand=instr.srcb,
                **anchor))

    if op in (Op.LD, Op.ST) and (instr.flags & MEM_WIDTH_MASK) == 3:
        report.add(_finding(
            "bad-mem-width", Severity.ERROR,
            "memory width field 3 (x8) exceeds the x4 datapath",
            **anchor))

    if op is Op.CMP and not 0 <= instr.flags < len(CmpMode):
        report.add(_finding(
            "bad-cmp-mode", Severity.ERROR,
            f"CMP mode {instr.flags} is not a CmpMode", **anchor))

    if op is Op.LDU and ctx.uniform_count is not None:
        if instr.imm >= ctx.uniform_count:
            report.add(_finding(
                "ldu-imm-oob", Severity.ERROR,
                f"LDU reads uniform u{instr.imm} but the kernel declares "
                f"{ctx.uniform_count} slots", **anchor))


def _check_read_ports(fma, add, index, tuple_index, report):
    grf_reads = set()
    for instr in (fma, add):
        if instr.op is Op.NOP:
            continue
        if is_memory_op(instr.op):
            # Wide element data moves through the load/store staging
            # registers; only the address (and atomic operand) registers
            # contend for operand-network ports.
            candidates = [instr.srca]
            if instr.op is Op.ATOM:
                candidates.append(instr.srcb)
        else:
            candidates = [operand for _f, operand
                          in model.required_sources(instr)]
        grf_reads.update(c for c in candidates if is_grf(c))
    if len(grf_reads) > TUPLE_GRF_READ_PORTS:
        report.add(_finding(
            "register-ports", Severity.WARNING,
            f"tuple reads {len(grf_reads)} distinct GRF registers "
            f"(> {TUPLE_GRF_READ_PORTS} operand-network ports)",
            clause=index, tuple_index=tuple_index))


def _check_tail(clause, index, last, num_clauses, report):
    tail = clause.tail
    if tail in (Tail.JUMP, Tail.BRANCH, Tail.BRANCH_Z):
        if not 0 <= clause.target < num_clauses:
            report.add(_finding(
                "branch-target-oob", Severity.ERROR,
                f"tail targets clause {clause.target} "
                f"(program has {num_clauses})", clause=index, slot="tail"))
    if tail in (Tail.BRANCH, Tail.BRANCH_Z) and not is_grf(clause.cond_reg):
        report.add(_finding(
            "branch-cond-not-grf", Severity.ERROR,
            f"branch condition {operand_name(clause.cond_reg)} must be a "
            f"GRF register", clause=index, slot="tail",
            operand=clause.cond_reg))
    if index == last and tail in (Tail.FALLTHROUGH, Tail.BARRIER):
        report.add(_finding(
            "final-fallthrough", Severity.ERROR,
            f"final clause tail {tail.name} falls off the end of the "
            f"program", clause=index, slot="tail"))
