"""Structured verifier findings and the per-program report."""

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Finding severity; the build gates reject ERROR findings."""

    NOTE = 0
    WARNING = 1
    ERROR = 2

    @property
    def tag(self):
        return {Severity.NOTE: "n", Severity.WARNING: "W",
                Severity.ERROR: "E"}[self]


@dataclass(frozen=True)
class Finding:
    """One verifier finding, anchored to a clause/tuple/slot.

    Attributes:
        code: stable kebab-case identifier (``uninit-read``, ``oob-access``).
        severity: :class:`Severity`.
        message: human-readable description.
        clause: clause index the finding anchors to, or None (whole
            program).
        tuple_index: tuple within the clause, or None (clause header/tail).
        slot: ``"fma"``, ``"add"``, ``"tail"`` or None.
        operand: the operand field value involved, if any.
        must_fault: True when the verifier proves the access faults on
            every execution that reaches it (checked dynamically by the
            conformance suite).
        pass_name: the pass that produced the finding.
    """

    code: str
    severity: Severity
    message: str
    clause: int = None
    tuple_index: int = None
    slot: str = None
    operand: int = None
    must_fault: bool = False
    pass_name: str = ""

    def anchor(self):
        """Compact location string, e.g. ``clause 3 tuple 1 [fma]``."""
        if self.clause is None:
            return "program"
        text = f"clause {self.clause}"
        if self.tuple_index is not None:
            text += f" tuple {self.tuple_index}"
        if self.slot is not None:
            text += f" [{self.slot}]"
        return text

    def __str__(self):
        return (f"[{self.severity.tag}] {self.code} @ {self.anchor()}: "
                f"{self.message}")


@dataclass
class Report:
    """All findings for one program, plus facts the passes proved."""

    program: object = None
    findings: list = field(default_factory=list)
    facts: dict = field(default_factory=dict)

    def add(self, finding):
        self.findings.append(finding)

    def extend(self, findings):
        self.findings.extend(findings)

    def sorted_findings(self):
        return sorted(
            self.findings,
            key=lambda f: (f.clause if f.clause is not None else -1,
                           f.tuple_index if f.tuple_index is not None else -1,
                           -int(f.severity), f.code))

    @property
    def errors(self):
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self):
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def notes(self):
        return [f for f in self.findings if f.severity is Severity.NOTE]

    @property
    def ok(self):
        """True when the program carries no error-severity findings."""
        return not self.errors

    def by_code(self, code):
        return [f for f in self.findings if f.code == code]

    def must_fault_findings(self):
        return [f for f in self.findings if f.must_fault]

    def counts(self):
        return {"errors": len(self.errors), "warnings": len(self.warnings),
                "notes": len(self.notes)}

    def summary(self):
        counts = self.counts()
        return (f"{counts['errors']} error(s), {counts['warnings']} "
                f"warning(s), {counts['notes']} note(s)")

    def annotations(self):
        """Findings grouped for the disassembler: clause index ->
        list of ``(tuple_index, slot, text)``."""
        grouped = {}
        for finding in self.sorted_findings():
            if finding.clause is None:
                continue
            grouped.setdefault(finding.clause, []).append(
                (finding.tuple_index, finding.slot,
                 f"[{finding.severity.tag}] {finding.code}: "
                 f"{finding.message}"))
        return grouped

    def format(self, disasm=True, min_severity=Severity.NOTE):
        """Render the report; with *disasm*, findings are inlined into the
        clause disassembly (``; ^ ...`` annotation lines)."""
        lines = []
        shown = [f for f in self.sorted_findings()
                 if f.severity >= min_severity]
        if disasm and self.program is not None:
            from repro.gpu.disasm import disassemble

            annotations = {}
            for finding in shown:
                if finding.clause is None:
                    continue
                annotations.setdefault(finding.clause, []).append(
                    (finding.tuple_index, finding.slot,
                     f"[{finding.severity.tag}] {finding.code}: "
                     f"{finding.message}"))
            lines.append(disassemble(self.program, annotations=annotations))
            for finding in shown:
                if finding.clause is None:
                    lines.append(str(finding))
        else:
            lines.extend(str(finding) for finding in shown)
        lines.append(self.summary())
        return "\n".join(lines)
