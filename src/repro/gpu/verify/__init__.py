"""Static binary verifier and sanitizer passes for GPU programs.

A pass pipeline over decoded :class:`~repro.gpu.isa.Program` objects that
makes the Bifrost-like ISA contract explicit and machine-checkable:

- **structural** — encoding and clause-shape invariants (tuple/slot
  limits, constant-pool references, operand ranges, register-port
  pressure, branch targets, memory widths);
- **dataflow** — def-use/liveness over the clause-granularity CFG:
  uninitialized reads, dead writes, and clause-temporary values that
  illegally cross a clause boundary;
- **controlflow** — unreachable clauses, termination (forward-only CFGs
  are proved terminating; inescapable cycles are rejected), and
  barrier-under-divergence (the static GPU deadlock lint);
- **memory** — abstract range analysis of addresses derived from kernel
  arguments: statically out-of-bounds accesses, must-fault accesses that
  hit no mapped page, and per-workgroup write/write and read/write races
  on global or local memory with no intervening barrier;
- **cost** (opt-in, advisory) — static cost & resource analysis: loop
  trip bounds, per-clause issue costs, worst-case clause-issue and
  pages-accessed bounds, and access-pattern classification. Selected by
  ``repro.tools analyze``; excluded from the lint-level default.

Every producer of GPU binaries runs the verifier: the clc JIT compiler
gates its own codegen, ``clBuildProgram`` re-verifies the decoded binary
like a driver-side verifier, the conformance fuzzer asserts its generated
programs are verifier-clean, and ``repro-sim lint`` prints findings
anchored to disassembly lines.
"""

from repro.gpu.verify.context import BufferInfo, VerifyContext
from repro.gpu.verify.cfg import ClauseCFG
from repro.gpu.verify.pipeline import (
    DEFAULT_PASSES,
    PASSES,
    verify_binary,
    verify_program,
)
from repro.gpu.verify.report import Finding, Report, Severity
from repro.gpu.verify.lint import (
    LintUnit,
    builtin_targets,
    format_unit,
    lint_source,
    lint_target,
)
from repro.gpu.verify.analyze import (
    AnalyzeUnit,
    analyze_source,
    analyze_target,
)
from repro.gpu.verify.cost import CostSummary, LaunchBounds
from repro.gpu.verify.loopbound import TripBound

__all__ = [
    "AnalyzeUnit",
    "BufferInfo",
    "ClauseCFG",
    "CostSummary",
    "DEFAULT_PASSES",
    "Finding",
    "LaunchBounds",
    "LintUnit",
    "PASSES",
    "Report",
    "Severity",
    "TripBound",
    "VerifyContext",
    "analyze_source",
    "analyze_target",
    "builtin_targets",
    "format_unit",
    "lint_source",
    "lint_target",
    "verify_binary",
    "verify_program",
]
