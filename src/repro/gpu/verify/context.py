"""Launch/build context handed to the verifier.

The verifier runs in two situations with very different amounts of
knowledge:

- **build time** (clc codegen, ``clBuildProgram``): the kernel's uniform
  layout is known (which slots hold buffer VAs, local offsets, scalars)
  but launch geometry, buffer sizes and the memory map are not;
- **launch/fuzz time** (progen differential cases): everything is known —
  VAs, region sizes, NDRange, mapped pages — enabling must-fault and
  must-race claims.

:class:`VerifyContext` carries whichever facts are available; every pass
degrades gracefully when a field is ``None``.
"""

from dataclasses import dataclass, field

# Uniform slots 0-9 describe the NDRange (see Kernel._build_uniforms):
# 0-2 global size, 3-5 local size, 6-8 num groups, 9 work_dim.
NDRANGE_SLOTS = 10
SLOT_GLOBAL_SIZE = 0
SLOT_LOCAL_SIZE = 3
SLOT_NUM_GROUPS = 6
SLOT_WORK_DIM = 9


@dataclass
class BufferInfo:
    """A kernel argument backed by global memory."""

    slot: int  # uniform slot holding the base VA
    size: int = None  # usable bytes from the base, when known
    va: int = None  # concrete base VA, when known
    name: str = ""


@dataclass
class VerifyContext:
    """Facts about the build/launch the verifier may rely on.

    Attributes:
        uniform_count: number of valid uniform slots (LDU bound).
        buffers: uniform slot -> :class:`BufferInfo` for buffer args.
        scalar_slots: uniform slots holding scalar argument bits.
        local_slots: uniform slots holding local-memory byte offsets.
        uniform_values: uniform slot -> known concrete value.
        local_bytes: size of the workgroup-local slab, when known.
        mapped_ranges: sorted list of (lo, hi) half-open VA ranges that
            are mapped; None when the memory map is unknown.
        threads: total threads in the launch, when known.
        threads_per_group: workgroup size, when known.
        assume_parallel: treat unknown launch geometry as >1 thread per
            group for race *warnings* (never for error-severity claims).
    """

    name: str = ""
    uniform_count: int = None
    buffers: dict = field(default_factory=dict)
    scalar_slots: set = field(default_factory=set)
    local_slots: set = field(default_factory=set)
    uniform_values: dict = field(default_factory=dict)
    local_bytes: int = None
    mapped_ranges: list = None
    threads: int = None
    threads_per_group: int = None
    assume_parallel: bool = True

    @property
    def gid_max(self):
        """Inclusive bound on global id x, or None."""
        return None if self.threads is None else max(self.threads - 1, 0)

    @property
    def lid_max(self):
        """Inclusive bound on local id x, or None."""
        if self.threads_per_group is None:
            return None
        return max(self.threads_per_group - 1, 0)

    def slot_known_value(self, slot):
        """Concrete value of a uniform slot if the context pins one."""
        value = self.uniform_values.get(slot)
        if value is not None:
            return value
        info = self.buffers.get(slot)
        if info is not None and info.va is not None:
            return info.va & 0xFFFFFFFF
        return None

    def is_mapped(self, lo, hi):
        """Whether [lo, hi) intersects any mapped range (None = unknown)."""
        if self.mapped_ranges is None:
            return None
        for rlo, rhi in self.mapped_ranges:
            if lo < rhi and hi > rlo:
                return True
        return False

    @classmethod
    def from_compiled_kernel(cls, compiled):
        """Build-time context from a clc :class:`CompiledKernel`."""
        ctx = cls(name=compiled.name, uniform_count=compiled.uniform_count)
        for position, (pname, kind, _ty) in enumerate(compiled.params):
            slot = NDRANGE_SLOTS + position
            if kind == "buffer":
                ctx.buffers[slot] = BufferInfo(slot=slot, name=pname)
            elif kind == "local_ptr":
                ctx.local_slots.add(slot)
            else:
                ctx.scalar_slots.add(slot)
        return ctx

    @classmethod
    def from_launch(cls, compiled, global_size, local_size,
                    buffer_sizes=None, local_bytes=None):
        """Launch-time context: build-time facts plus NDRange geometry.

        *buffer_sizes* maps argument position -> usable bytes.
        """
        ctx = cls.from_compiled_kernel(compiled)
        gx, gy, gz = global_size
        lx, ly, lz = local_size
        ctx.threads = gx * gy * gz
        ctx.threads_per_group = lx * ly * lz
        ctx.uniform_values[SLOT_GLOBAL_SIZE] = gx
        ctx.uniform_values[SLOT_LOCAL_SIZE] = lx
        ctx.uniform_values[SLOT_NUM_GROUPS] = gx // lx if lx else 0
        ctx.local_bytes = local_bytes
        if buffer_sizes:
            for position, size in buffer_sizes.items():
                info = ctx.buffers.get(NDRANGE_SLOTS + position)
                if info is not None:
                    info.size = size
        return ctx

    @classmethod
    def from_launch_words(cls, compiled, global_size, local_size,
                          uniform_words, buffers=None, local_bytes=None,
                          mapped_ranges=None):
        """Launch context with the *encoded uniform image*: every slot
        value is pinned, so the analysis folds scalar arguments (loop
        limits, strides) exactly. *buffers* maps argument position ->
        ``(va, size)``; *mapped_ranges* is the AS's mapped VA ranges.
        """
        ctx = cls.from_launch(compiled, global_size, local_size,
                              local_bytes=local_bytes)
        for slot, word in enumerate(uniform_words):
            ctx.uniform_values[slot] = int(word)
        if buffers:
            for position, (va, size) in buffers.items():
                info = ctx.buffers.get(NDRANGE_SLOTS + position)
                if info is not None:
                    info.va = va
                    info.size = size
        ctx.mapped_ranges = mapped_ranges
        return ctx
