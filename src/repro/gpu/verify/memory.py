"""Memory passes: abstract out-of-bounds and workgroup race detection.

Built on the :mod:`absint` address values. Two kinds of claim:

- **OOB**: the access's absolute address interval misses every mapped
  page (ERROR; *must-fault* when the clause is unavoidable — checked
  dynamically by the differential suite) or leaves its declared buffer
  region (ERROR when fully outside, WARNING when only the upper bound
  escapes);
- **races**: per-workgroup W/W and R/W conflicts on global or local
  memory with no intervening barrier. Error-severity race claims are
  reserved for *provable* conflicts: a non-atomic store whose address is
  uniform across the workgroup (every thread hits the same words), in an
  unavoidable clause, with a known workgroup size > 1. Anything weaker
  (unknown launch geometry, avoidable clause) is a WARNING.
"""

from repro.gpu.verify.report import Finding, Severity

PASS_NAME = "memory"

_SYM_TO_CTX = {"gid": "gid_max", "lid": "lid_max"}


def _finding(code, severity, message, access, **kw):
    return Finding(code=code, severity=severity, message=message,
                   clause=access.clause, tuple_index=access.tuple_index,
                   slot=access.slot, pass_name=PASS_NAME, **kw)


def _sym_range(sym, ctx):
    if sym is None:
        return (0, 0)
    if sym == "lane":
        return (0, 3)
    bound = getattr(ctx, _SYM_TO_CTX.get(sym, ""), None)
    return None if bound is None else (0, bound)


def _offset_interval(aval, ctx):
    """Interval of ``coeff*sym + [lo, hi]``, or None when unbounded."""
    if aval.top:
        return None
    srange = _sym_range(aval.sym, ctx)
    if srange is None:
        return None
    terms = (aval.coeff * srange[0], aval.coeff * srange[1])
    return (aval.lo + min(terms), aval.hi + max(terms))


def _absolute_interval(aval, ctx):
    offset = _offset_interval(aval, ctx)
    if offset is None:
        return None
    if aval.base is None:
        interval = offset
    else:
        value = ctx.slot_known_value(aval.base[1])
        if value is None:
            return None
        interval = (value + offset[0], value + offset[1])
    # The wraparound guard applies to base-less intervals too: the
    # machine computes addresses mod 2^32, so an abstract value outside
    # [0, 2^32) may alias back into mapped VAs — make no claim.
    if interval[0] < 0 or interval[1] >= 1 << 32:
        return None
    return interval


def _span_bytes(access):
    return 4 * access.width


def run(program, cfg, ctx, absres, report):
    unavoidable = cfg.unavoidable()
    phases = cfg.phases()
    for access in absres.accesses:
        if access.local:
            _check_local_bounds(access, ctx, unavoidable, report)
        else:
            _check_global_bounds(access, ctx, unavoidable, report)
    _check_races(absres.accesses, ctx, unavoidable, phases, report)


def _check_global_bounds(access, ctx, unavoidable, report):
    span = _span_bytes(access)
    interval = _absolute_interval(access.addr, ctx)
    if interval is not None and ctx.mapped_ranges is not None:
        lo, hi = interval[0], interval[1] + span - 1
        if ctx.is_mapped(lo, hi + 1) is False:
            report.add(_finding(
                "oob-access", Severity.ERROR,
                f"{access.kind.upper()} address range "
                f"0x{lo:x}..0x{hi:x} hits no mapped page",
                access, must_fault=access.clause in unavoidable))
            return
    base = access.addr.base
    if base is None or base[1] not in ctx.buffers:
        return
    info = ctx.buffers[base[1]]
    if info.size is None:
        return
    offset = _offset_interval(access.addr, ctx)
    if offset is None:
        return
    lo, hi = offset[0], offset[1] + span - 1
    name = info.name or f"u{base[1]}"
    if lo >= info.size or hi < 0:
        report.add(_finding(
            "oob-access", Severity.ERROR,
            f"{access.kind.upper()} offset {lo}..{hi} lies entirely "
            f"outside buffer {name} ({info.size} bytes)", access))
    elif hi >= info.size or lo < 0:
        report.add(_finding(
            "possible-oob", Severity.WARNING,
            f"{access.kind.upper()} offset may reach {lo}..{hi}, outside "
            f"buffer {name} ({info.size} bytes)", access))


def _check_local_bounds(access, ctx, unavoidable, report):
    if ctx.local_bytes is None or access.addr.base is not None:
        return
    offset = _offset_interval(access.addr, ctx)
    if offset is None:
        return
    lo, hi = offset[0], offset[1] + _span_bytes(access) - 1
    if hi >= ctx.local_bytes or lo < 0:
        report.add(_finding(
            "local-oob", Severity.ERROR,
            f"local {access.kind.upper()} offset {lo}..{hi} exceeds the "
            f"{ctx.local_bytes}-byte workgroup slab", access))


def _comparable_interval(access, ctx):
    """Absolute (preferred) or base-relative interval for overlap tests."""
    interval = _absolute_interval(access.addr, ctx)
    if interval is not None:
        return (None, interval)
    offset = _offset_interval(access.addr, ctx)
    if offset is not None and access.addr.base is not None:
        return (access.addr.base, offset)
    return None


def _check_races(accesses, ctx, unavoidable, phases, report):
    known_parallel = (ctx.threads_per_group is not None
                      and ctx.threads_per_group > 1)
    single_threaded = (ctx.threads_per_group == 1
                       or ctx.threads == 1)
    maybe_parallel = known_parallel or (ctx.threads_per_group is None
                                        and ctx.assume_parallel)
    if single_threaded:
        return

    # Self-races: one non-atomic store executed by every thread of the
    # group at a group-uniform address.
    for access in accesses:
        if access.kind != "st" or access.addr.varies_in_group:
            continue
        if known_parallel and access.clause in unavoidable:
            report.add(_finding(
                "race-ww", Severity.ERROR,
                "every thread of the workgroup stores to the same "
                "address with no ordering (write/write race)", access))
        elif maybe_parallel:
            # A guarded (avoidable) uniform store is the common
            # "if (lid == 0) out[...] = acc" idiom: note, not warning.
            severity = (Severity.WARNING if access.clause in unavoidable
                        else Severity.NOTE)
            report.add(_finding(
                "possible-race-ww", severity,
                "store address is uniform across the workgroup; "
                "concurrent threads would conflict", access))

    # Pair races: two distinct sites with provably-overlapping uniform
    # footprints in the same barrier phase (forward-only CFGs only).
    if phases is None:
        return
    sites = []
    for access in accesses:
        if access.addr.varies_in_group or access.addr.top:
            continue
        comparable = _comparable_interval(access, ctx)
        if comparable is not None:
            sites.append((access, comparable))
    for i, (first, (base_a, int_a)) in enumerate(sites):
        for second, (base_b, int_b) in sites[i + 1:]:
            if first.local != second.local:
                continue
            kinds = {first.kind, second.kind}
            if "st" not in kinds and kinds != {"atom", "ld"}:
                continue  # need a non-atomic write, or atomic-vs-plain-read
            if (first.clause, first.tuple_index, first.slot) == \
                    (second.clause, second.tuple_index, second.slot):
                continue
            if base_a != base_b:
                continue
            lo = max(int_a[0], int_b[0])
            hi = min(int_a[1] + _span_bytes(first) - 1,
                     int_b[1] + _span_bytes(second) - 1)
            if lo > hi:
                continue
            if phases.get(first.clause) != phases.get(second.clause):
                continue
            code = "race-ww" if "ld" not in kinds else "race-rw"
            provable = (known_parallel
                        and first.clause in unavoidable
                        and second.clause in unavoidable)
            report.add(_finding(
                code if provable else f"possible-{code}",
                Severity.ERROR if provable else Severity.WARNING,
                f"{first.kind.upper()} overlaps {second.kind.upper()} in "
                f"clause {second.clause} with no intervening barrier "
                f"({'write/write' if code == 'race-ww' else 'read/write'}"
                f" race)", first))
