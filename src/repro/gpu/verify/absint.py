"""Abstract interpretation of register contents for the memory passes.

The domain tracks, per GRF/temporary, a symbolic-linear value

    value  =  base + coeff * sym + X,      X subset-of [lo, hi]

where *base* is a kernel-argument uniform slot (``('u', slot)`` — a
buffer VA, local offset or scalar), *sym* is one of the per-thread id
symbols (``gid``/``lid``/``lane``), and ``[lo, hi]`` bounds the residual
constant part. A ``uniform`` flag records whether the value is identical
for every thread of a workgroup (the property the race detector needs);
``top`` means nothing is known but uniformity may still hold (e.g.
group-id-derived values).

This is exactly expressive enough for the address idioms the code
producers use — ``base + (x & mask)`` windows, ``base + (gid << k)``
per-thread slices, ``lid << k`` local slots — while staying sound:
anything else collapses to ``top`` and the memory passes make no claim.
"""

from dataclasses import dataclass

from repro.gpu.isa import (
    CONST_BASE,
    REG_GLOBAL_ID,
    REG_GROUP_FLAT,
    REG_GROUP_ID,
    REG_LANE,
    REG_LOCAL_ID,
    TEMP_BASE,
    Op,
    Tail,
    is_const,
    is_grf,
    is_temp,
)
from repro.gpu.verify import model

# Interval bounds beyond this collapse to top: 32-bit wraparound would
# otherwise let a "huge" abstract address alias back into mapped VAs.
_BOUND_LIMIT = 1 << 40
_WIDEN_VISITS = 8
_SYMS = ("gid", "lid", "lane")


@dataclass(frozen=True)
class AVal:
    base: tuple = None
    sym: str = None
    coeff: int = 0
    lo: int = 0
    hi: int = 0
    top: bool = False
    uniform: bool = True

    @property
    def is_exact_const(self):
        return (not self.top and self.base is None and self.coeff == 0
                and self.lo == self.hi)

    @property
    def varies_in_group(self):
        """May the value differ between two threads of one workgroup?"""
        if self.top or not self.uniform:
            return not self.uniform
        return self.coeff != 0 and self.sym in _SYMS


def const(value):
    return AVal(lo=value, hi=value)


TOP_UNIFORM = AVal(top=True, uniform=True)
TOP_VARYING = AVal(top=True, uniform=False)
ZERO = const(0)


def top_like(*vals):
    return TOP_UNIFORM if all(v.uniform for v in vals) else TOP_VARYING


def _norm(val):
    if val.top:
        return val
    if abs(val.lo) > _BOUND_LIMIT or abs(val.hi) > _BOUND_LIMIT \
            or abs(val.coeff) > _BOUND_LIMIT:
        return top_like(val)
    if val.coeff == 0 and val.sym is not None:
        return AVal(base=val.base, lo=val.lo, hi=val.hi,
                    uniform=val.uniform)
    return val


def av_add(a, b):
    if a.top or b.top:
        return top_like(a, b)
    if a.base is not None and b.base is not None:
        return top_like(a, b)
    if a.sym and b.sym and a.sym != b.sym:
        return top_like(a, b)
    sym = a.sym or b.sym
    return _norm(AVal(
        base=a.base or b.base, sym=sym,
        coeff=(a.coeff if a.sym == sym else 0)
        + (b.coeff if b.sym == sym else 0),
        lo=a.lo + b.lo, hi=a.hi + b.hi,
        uniform=a.uniform and b.uniform))


def av_neg(a):
    if a.top or a.base is not None:
        return top_like(a)
    return _norm(AVal(sym=a.sym, coeff=-a.coeff, lo=-a.hi, hi=-a.lo,
                      uniform=a.uniform))


def av_sub(a, b):
    return av_add(a, av_neg(b))


def av_scale(a, factor):
    if a.top or a.base is not None:
        return top_like(a)
    lo, hi = a.lo * factor, a.hi * factor
    if factor < 0:
        lo, hi = hi, lo
    return _norm(AVal(sym=a.sym, coeff=a.coeff * factor, lo=lo, hi=hi,
                      uniform=a.uniform))


def av_and_mask(a, mask):
    if mask < 0:
        return top_like(a)
    if a.is_exact_const and a.lo >= 0:
        return const(a.lo & mask)
    # Sound regardless of the input: the result always lies in [0, mask].
    return AVal(lo=0, hi=mask, uniform=a.uniform)


def av_bitor_bound(a, b, xor=False):
    """IOR/IXOR upper bound via bit length (non-negative inputs only)."""
    if a.is_exact_const and b.is_exact_const and a.lo >= 0 and b.lo >= 0:
        return const(a.lo ^ b.lo if xor else a.lo | b.lo)
    if (not a.top and not b.top and a.base is None and b.base is None
            and a.coeff == 0 and b.coeff == 0 and a.lo >= 0 and b.lo >= 0):
        bits = max(a.hi.bit_length(), b.hi.bit_length())
        return AVal(lo=0, hi=(1 << bits) - 1,
                    uniform=a.uniform and b.uniform)
    return top_like(a, b)


def join(a, b, widen=False):
    if a == b:
        return a
    uniform = a.uniform and b.uniform
    if (a.top or b.top or widen or a.base != b.base or a.sym != b.sym
            or a.coeff != b.coeff):
        return TOP_UNIFORM if uniform else TOP_VARYING
    return _norm(AVal(base=a.base, sym=a.sym, coeff=a.coeff,
                      lo=min(a.lo, b.lo), hi=max(a.hi, b.hi),
                      uniform=uniform))


@dataclass(frozen=True)
class MemAccess:
    """One LD/ST/ATOM site with its abstract address."""

    clause: int
    tuple_index: int
    slot: str
    instr: object
    kind: str  # 'ld' | 'st' | 'atom'
    local: bool
    addr: AVal
    width: int


def entry_state():
    """Register state at dispatch: zero-filled GRF/temps plus the
    preloaded thread-state registers."""
    state = {}
    for reg in range(64):
        state[reg] = ZERO
    state[TEMP_BASE] = ZERO
    state[TEMP_BASE + 1] = ZERO
    for reg in (REG_GROUP_ID, REG_GROUP_ID + 1, REG_GROUP_ID + 2,
                REG_GROUP_FLAT):
        state[reg] = TOP_UNIFORM  # uniform within a workgroup
    state[REG_GLOBAL_ID] = AVal(sym="gid", coeff=1, uniform=False)
    state[REG_GLOBAL_ID + 1] = TOP_VARYING
    state[REG_GLOBAL_ID + 2] = TOP_VARYING
    state[REG_LOCAL_ID] = AVal(sym="lid", coeff=1, uniform=False)
    state[REG_LOCAL_ID + 1] = TOP_VARYING
    state[REG_LOCAL_ID + 2] = TOP_VARYING
    state[REG_LANE] = AVal(sym="lane", coeff=1, lo=0, hi=0, uniform=False)
    return state


class AbsintResult:
    def __init__(self):
        self.accesses = []
        self.cond_uniform = {}  # clause -> bool (branch condition)
        self.entry_states = {}


# Integer ops the symbolic domain cannot track but that fold exactly
# when every operand is a known constant (machine mod-2^32 semantics,
# mirroring the warp.py scalar ALU).
_FOLD_OPS = frozenset({Op.ISHR, Op.IASHR, Op.IABS, Op.IDIV, Op.IREM,
                       Op.UDIV, Op.UREM})


def _machine_u32(value):
    return value & 0xFFFFFFFF


def _machine_s32(value):
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >= (1 << 31) else value


def _fold_int(op, srcs):
    """Machine-exact u32 result of *op* over exact-const operands —
    bit-identical to the interpreter's vec_* / _h_* handlers."""
    a = srcs[0].lo
    b = srcs[1].lo if len(srcs) > 1 else 0
    if op is Op.ISHR:
        return _machine_u32(a) >> (_machine_u32(b) & 31)
    if op is Op.IASHR:
        # Python's >> on a signed int floors like the arithmetic shift
        return _machine_u32(_machine_s32(a) >> (_machine_u32(b) & 31))
    if op is Op.IABS:
        return _machine_u32(abs(_machine_s32(a)))
    if op in (Op.IDIV, Op.IREM):
        sa, sb = _machine_s32(a), _machine_s32(b)
        if sb == 0:
            return 0  # architecture defines x/0 == x%0 == 0
        quot = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quot = -quot  # truncate toward zero
        return _machine_u32(quot if op is Op.IDIV else sa - quot * sb)
    ua, ub = _machine_u32(a), _machine_u32(b)
    if ub == 0:
        return 0
    return ua // ub if op is Op.UDIV else ua % ub


def _read_aval(state, clause, operand):
    if is_grf(operand) or is_temp(operand):
        return state.get(operand, TOP_VARYING)
    if is_const(operand):
        index = operand - CONST_BASE
        if index < len(clause.constants):
            return const(clause.constants[index])
    return TOP_VARYING


def _transfer_slot(state, clause, instr, ctx, accesses, location):
    op = instr.op
    if op is Op.NOP:
        return
    srcs = [_read_aval(state, clause, operand)
            for _f, operand in model.required_sources(instr)]

    if op in (Op.LD, Op.ST, Op.ATOM):
        addr = srcs[0] if srcs else TOP_VARYING
        if accesses is not None:
            clause_index, tuple_index, slot_name = location
            accesses.append(MemAccess(
                clause=clause_index, tuple_index=tuple_index,
                slot=slot_name, instr=instr,
                kind={Op.LD: "ld", Op.ST: "st", Op.ATOM: "atom"}[op],
                local=instr.mem_is_local, addr=addr,
                width=instr.mem_width if op in (Op.LD, Op.ST) else 1))
        if op is Op.LD:
            for target in model.written_registers(instr):
                if is_grf(target):
                    state[target] = TOP_VARYING
        elif op is Op.ATOM:
            if is_grf(instr.dst) or is_temp(instr.dst):
                state[instr.dst] = TOP_VARYING
        return

    if op is Op.LDU:
        slot = instr.imm
        known = ctx.uniform_values.get(slot)
        if known is not None and slot not in ctx.buffers:
            result = const(known)
        else:
            result = AVal(base=("u", slot))
    elif op is Op.MOV:
        result = srcs[0]
    elif op is Op.IADD:
        result = av_add(srcs[0], srcs[1])
    elif op is Op.ISUB:
        result = av_sub(srcs[0], srcs[1])
    elif op is Op.ISHL:
        shift = srcs[1]
        result = (av_scale(srcs[0], 1 << shift.lo)
                  if shift.is_exact_const and 0 <= shift.lo < 32
                  else top_like(*srcs))
    elif op is Op.IMUL:
        if srcs[1].is_exact_const:
            result = av_scale(srcs[0], srcs[1].lo)
        elif srcs[0].is_exact_const:
            result = av_scale(srcs[1], srcs[0].lo)
        else:
            result = top_like(*srcs)
    elif op is Op.IAND:
        if srcs[1].is_exact_const:
            result = av_and_mask(srcs[0], srcs[1].lo)
        elif srcs[0].is_exact_const:
            result = av_and_mask(srcs[1], srcs[0].lo)
        else:
            result = top_like(*srcs)
    elif op in (Op.IOR, Op.IXOR):
        result = av_bitor_bound(srcs[0], srcs[1], xor=op is Op.IXOR)
    elif op is Op.CMP:
        result = AVal(lo=0, hi=1,
                      uniform=srcs[0].uniform and srcs[1].uniform)
    elif op is Op.SELECT:
        result = join(srcs[0], srcs[1])
        if not srcs[2].uniform and result.uniform:
            result = top_like(srcs[2]) if result.top else AVal(
                base=result.base, sym=result.sym, coeff=result.coeff,
                lo=result.lo, hi=result.hi, uniform=False)
    elif op in _FOLD_OPS:
        result = (const(_fold_int(op, srcs))
                  if srcs and all(s.is_exact_const for s in srcs)
                  else top_like(*srcs))
    elif op in (Op.IMIN, Op.IMAX, Op.UMIN, Op.UMAX):
        a, b = srcs
        if (not a.top and not b.top and a.base is None and b.base is None
                and a.coeff == 0 and b.coeff == 0):
            if op in (Op.IMIN, Op.UMIN):
                result = AVal(lo=min(a.lo, b.lo), hi=min(a.hi, b.hi),
                              uniform=a.uniform and b.uniform)
            else:
                result = AVal(lo=max(a.lo, b.lo), hi=max(a.hi, b.hi),
                              uniform=a.uniform and b.uniform)
        else:
            result = top_like(a, b)
    else:
        result = top_like(*srcs) if srcs else TOP_UNIFORM

    dst = instr.dst
    if is_grf(dst) or is_temp(dst):
        state[dst] = result


def _transfer_clause(clause, clause_index, state, ctx, accesses=None):
    for tuple_index, (fma, add) in enumerate(clause.tuples):
        for slot_name, instr in (("fma", fma), ("add", add)):
            _transfer_slot(state, clause, instr, ctx, accesses,
                           (clause_index, tuple_index, slot_name))
    return state


def run(program, cfg, ctx):
    """Fixpoint over the clause CFG; returns an :class:`AbsintResult`."""
    result = AbsintResult()
    if not cfg.reachable:
        return result
    in_states = {0: entry_state()}
    visits = {i: 0 for i in cfg.reachable}
    worklist = [0]
    while worklist:
        index = worklist.pop(0)
        state = dict(in_states[index])
        clause = program.clauses[index]
        _transfer_clause(clause, index, state, ctx)
        visits[index] += 1
        widen = visits[index] > _WIDEN_VISITS
        for succ in cfg.successors[index]:
            if succ not in cfg.reachable:
                continue
            if succ not in in_states:
                in_states[succ] = dict(state)
                worklist.append(succ)
                continue
            merged = {}
            changed = False
            target = in_states[succ]
            for reg in target:
                new = join(target[reg], state.get(reg, TOP_VARYING),
                           widen=widen and target[reg] != state.get(reg))
                merged[reg] = new
                if new != target[reg]:
                    changed = True
            if changed:
                in_states[succ] = merged
                if succ not in worklist:
                    worklist.append(succ)
    # Final walk: record memory accesses and branch-condition uniformity
    # from each clause's stabilized entry state.
    for index in cfg.topo_order():
        if index not in in_states:
            continue
        result.entry_states[index] = in_states[index]
        state = dict(in_states[index])
        clause = program.clauses[index]
        _transfer_clause(clause, index, state, ctx, result.accesses)
        if clause.tail in (Tail.BRANCH, Tail.BRANCH_Z):
            if is_grf(clause.cond_reg):
                result.cond_uniform[index] = \
                    state.get(clause.cond_reg, TOP_VARYING).uniform
            else:
                result.cond_uniform[index] = False
    return result
