"""Library form of the static cost & resource analysis sweep.

``repro-sim analyze`` and the simulation farm's analyze provider share
this module, exactly as :mod:`lint` backs the lint sweep: one
compile-and-analyze path per target, returning structured
:class:`AnalyzeUnit` results so callers own presentation (CLI text or
``--json``) and aggregation (farm verdicts and counters).

Targets use the same addressing as lint (``builtin:<workload>``,
``slam``, or a source file path). Analysis runs the verifier with the
``("structural", "cost")`` pass selection, so callers pay for the
abstract interpretation and loop-bound inference but not the
dataflow/race machinery.
"""

from dataclasses import dataclass, replace

from repro.gpu.verify.context import VerifyContext
from repro.gpu.verify.lint import _target_source, builtin_targets
from repro.gpu.verify.pipeline import verify_program

# The pass selection analysis runs (structural is mandatory anyway).
ANALYZE_PASSES = ("structural", "cost")

# Stable machine-readable schema tag for --json output.
SCHEMA = "repro-analyze-report/1"


@dataclass
class AnalyzeUnit:
    """Analysis outcome for one kernel of one target (or one failed
    compile, in which case *kernel* is empty and *error* is set)."""

    label: str
    kernel: str = ""
    summary: object = None   # CostSummary (None when compile failed)
    report: object = None
    context: object = None   # VerifyContext the bounds were evaluated in
    bounds: object = None    # LaunchBounds (evaluated under *context*)
    error: str = ""

    @property
    def ok(self):
        return not self.error and self.summary is not None

    @property
    def bounded(self):
        """Every loop has a finite trip bound under *context* (vacuously
        true for loop-free programs)."""
        if not self.ok:
            return False
        return all(n is not None
                   for n in self.bounds.loop_trips.values())

    def headline(self):
        if self.error:
            return f"compile failed: {self.error}"
        loops = len(self.summary.loops)
        parts = [f"{len(self.summary.clauses)} clauses",
                 f"{loops} loop{'s' if loops != 1 else ''}"]
        if self.bounds.per_warp_issues is not None:
            parts.append(f"<= {self.bounds.per_warp_issues} issues/warp")
        else:
            parts.append("issues/warp unbounded")
        if self.bounds.pages is not None:
            parts.append(f"<= {self.bounds.pages} pages")
        parts.append("mega" if self.summary.mega_eligible
                     else "no-mega")
        return ", ".join(parts)


def analyze_source(label, source, defines=None, version=None, kernel=None,
                   global_size=None, local_size=None):
    """Compile *source* and cost-analyze every kernel; returns
    [AnalyzeUnit].

    When *global_size*/*local_size* are given the bounds are evaluated
    for that launch geometry (concrete NDRange uniforms, per-position
    buffer sizes unknown); otherwise the compile-time context is used
    and only geometry-independent bounds can be concrete.
    """
    from repro.clc import compile_source
    from repro.clc.compiler import CompilerOptions
    from repro.clc.versions import DEFAULT_VERSION

    copts = replace(CompilerOptions.from_version(version or DEFAULT_VERSION),
                    verify=False)
    try:
        program = compile_source(source, options=copts, defines=defines)
    except Exception as exc:  # noqa: BLE001 - a failed compile is a result
        return [AnalyzeUnit(label=label,
                            error=f"{type(exc).__name__}: {exc}")]
    units = []
    for name in sorted(program.kernels):
        if kernel and name != kernel:
            continue
        compiled = program.kernels[name]
        if global_size is not None and local_size is not None:
            ctx = VerifyContext.from_launch(compiled, global_size,
                                            local_size)
        else:
            ctx = VerifyContext.from_compiled_kernel(compiled)
        report = verify_program(compiled.program, ctx,
                                passes=ANALYZE_PASSES)
        summary = report.facts.get("cost")
        unit = AnalyzeUnit(label=label, kernel=name, summary=summary,
                           report=report, context=ctx)
        if summary is None:
            unit.error = "structural errors block analysis: " \
                + report.summary()
        else:
            unit.bounds = summary.evaluate(ctx)
        units.append(unit)
    return units


def analyze_target(target, version=None, kernel=None, global_size=None,
                   local_size=None):
    """Analyze one target string (``builtin:<name>``, ``slam`` or a
    file path); returns [AnalyzeUnit]."""
    label, source, defines = _target_source(target)
    return analyze_source(label, source, defines=defines, version=version,
                          kernel=kernel, global_size=global_size,
                          local_size=local_size)


def cost_annotations(summary, ctx=None):
    """Disassembly annotations (clause -> [(tuple, slot, text)]) carrying
    the per-clause cost summaries, in the shape
    :func:`repro.gpu.disasm.disassemble` inlines."""
    trips = summary.loop_trip_counts(ctx) if ctx is not None else {}
    notes = {}
    for cost in summary.clauses:
        text = (f"cost: {cost.tuples} tuples, arith {cost.arith}, "
                f"mem {cost.mem}, beats {cost.ls_beats}")
        for head in cost.loops:
            n = trips.get(head)
            bound = "?" if n is None else n + 1
            text += f" [loop@{head} x{bound}]"
        notes.setdefault(cost.index, []).append((None, "cost", text))
    for loop in summary.loops:
        notes.setdefault(loop.latch, []).append(
            (None, "loop", f"back edge -> {loop.head}: "
                           f"trips {loop.describe()}"))
    for cls in summary.access_classes:
        notes.setdefault(cls.clause, []).append(
            (cls.tuple_index, cls.slot,
             f"{cls.kind} pattern: {cls.pattern}"))
    return notes


def unit_to_dict(unit):
    """Stable JSON form of one unit (schema :data:`SCHEMA`)."""
    data = {
        "label": unit.label,
        "kernel": unit.kernel,
        "ok": unit.ok,
        "bounded": unit.bounded,
        "error": unit.error,
    }
    if unit.summary is not None:
        data["analysis"] = unit.summary.to_dict(unit.context)
    return data


def units_to_json(units):
    """Top-level ``--json`` document for a list of units."""
    return {
        "schema": SCHEMA,
        "units": [unit_to_dict(u) for u in units],
        "totals": {
            "units": len(units),
            "failed": sum(1 for u in units if not u.ok),
            "unbounded": sum(1 for u in units if u.ok and not u.bounded),
        },
    }


def format_unit(unit, disasm=False):
    """CLI presentation of one unit: headline, loop bounds, access
    patterns, and (optionally) cost-annotated disassembly."""
    status = "ok  " if unit.ok else "FAIL"
    name = f"{unit.label}:{unit.kernel}" if unit.kernel else unit.label
    lines = [f"{status} {name}  ({unit.headline()})"]
    if unit.summary is None:
        return "\n".join(lines)
    summary = unit.summary
    for loop in summary.loops:
        trips = unit.bounds.loop_trips.get(loop.head)
        concrete = "unbounded" if trips is None else f"<= {trips}"
        lines.append(f"  loop {loop.head}..{loop.latch}: "
                     f"{loop.describe()} ({concrete} back edges)")
    patterns = summary.pattern_counts()
    if patterns:
        lines.append("  accesses: " + ", ".join(
            f"{kind}={patterns[kind]}" for kind in sorted(patterns)))
    bounds = unit.bounds
    if bounds.per_workgroup_issues is not None:
        lines.append(f"  bounds: {bounds.per_warp_issues} issues/warp, "
                     f"{bounds.per_workgroup_issues} issues/workgroup, "
                     f"{bounds.total_issues} total")
    if bounds.pages is not None:
        lines.append(f"  pages: <= {bounds.pages}")
    if disasm:
        from repro.gpu.disasm import disassemble

        lines.append(disassemble(
            summary.program,
            annotations=cost_annotations(summary, unit.context)))
        lines.append("")
    return "\n".join(lines)


__all__ = [
    "ANALYZE_PASSES",
    "SCHEMA",
    "AnalyzeUnit",
    "analyze_source",
    "analyze_target",
    "builtin_targets",
    "cost_annotations",
    "format_unit",
    "unit_to_dict",
    "units_to_json",
]
