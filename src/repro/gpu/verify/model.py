"""Per-opcode operand model: what each instruction slot reads and writes.

This mirrors the warp executor's handlers *exactly* (one entry per
``_read``/``_write`` the interpreter performs), so structural and
dataflow findings correspond one-to-one to dynamic behaviour:

- a missing required source or destination raises ``GuestError`` at
  ``_read``/``_write`` time;
- wide LD writes ``dst .. dst+width-1`` directly into the GRF array
  (a non-GRF base is an out-of-range array index, i.e. a crash);
- wide ST reads ``srcb .. srcb+width-1`` through the ordinary operand
  port (each expanded operand must itself be readable).
"""

from repro.gpu.isa import NUM_GRF, OPERAND_NONE, Op

# Source-field arity per opcode, mirroring warp._dispatch handlers.
_THREE_SRC = frozenset({Op.FMA, Op.SELECT})
_TWO_SRC = frozenset({
    Op.FADD, Op.FSUB, Op.FMUL, Op.FMIN, Op.FMAX,
    Op.IADD, Op.ISUB, Op.IMUL, Op.IAND, Op.IOR, Op.IXOR,
    Op.ISHL, Op.ISHR, Op.IASHR, Op.IMIN, Op.IMAX, Op.UMIN, Op.UMAX,
    Op.IDIV, Op.IREM, Op.UDIV, Op.UREM, Op.CMP,
})
_ONE_SRC = frozenset({
    Op.MOV, Op.FABS, Op.FNEG, Op.FFLOOR, Op.FRCP, Op.FSQRT, Op.FRSQ,
    Op.FEXP, Op.FLOG, Op.FSIN, Op.FCOS,
    Op.F2I, Op.F2U, Op.I2F, Op.U2F, Op.IABS,
})

_SRC_FIELDS = ("srca", "srcb", "srcc")


def source_arity(op):
    """How many source fields (srca..) the executor reads for *op*."""
    if op in _THREE_SRC:
        return 3
    if op in _TWO_SRC:
        return 2
    if op in _ONE_SRC:
        return 1
    if op is Op.LD:
        return 1  # srca = address
    if op is Op.ST:
        return 2  # srca = address, srcb = value base
    if op is Op.ATOM:
        return 2  # srca = address, srcb = operand
    return 0  # NOP, LDU


def required_sources(instr):
    """``(field_name, operand)`` pairs the executor will ``_read``.

    Wide ST expands to one entry per element (``srcb+e``), exactly as
    the executor issues them.
    """
    op = instr.op
    if op is Op.ST:
        pairs = [("srca", instr.srca)]
        for element in range(instr.mem_width):
            pairs.append(("srcb", instr.srcb + element
                          if instr.srcb != OPERAND_NONE else OPERAND_NONE))
        return pairs
    return [(_SRC_FIELDS[i], getattr(instr, _SRC_FIELDS[i]))
            for i in range(source_arity(op))]


def ignored_sources(instr):
    """Source fields that are set but never read by the executor."""
    op = instr.op
    if op in (Op.NOP, Op.LD, Op.ST, Op.ATOM, Op.LDU):
        used = {Op.NOP: 0, Op.LD: 1, Op.ST: 2, Op.ATOM: 2, Op.LDU: 0}[op]
    else:
        used = source_arity(op)
    extras = []
    for i in range(used, 3):
        value = getattr(instr, _SRC_FIELDS[i])
        if value != OPERAND_NONE:
            extras.append((_SRC_FIELDS[i], value))
    return extras


def requires_dst(op):
    """True when the executor unconditionally ``_write``s a destination
    (so OPERAND_NONE there is a dynamic GuestError)."""
    return op not in (Op.NOP, Op.ST)


def written_registers(instr):
    """Operand numbers this slot writes (wide LD expands per element).

    The values are raw operand field numbers; callers classify them.
    LD element targets must be GRF — the executor indexes the register
    array directly, so ``dst + width - 1`` must stay below NUM_GRF.
    """
    op = instr.op
    if op is Op.NOP or op is Op.ST:
        return ()
    if op is Op.LD:
        if instr.dst == OPERAND_NONE:
            return (OPERAND_NONE,)
        return tuple(instr.dst + e for e in range(instr.mem_width))
    return (instr.dst,)


def ld_overflows_grf(instr):
    """Wide LD whose element targets run past the register file."""
    return (instr.op is Op.LD and instr.dst != OPERAND_NONE
            and instr.dst < NUM_GRF
            and instr.dst + instr.mem_width > NUM_GRF)
