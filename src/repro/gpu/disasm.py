"""Clause-level disassembler for GPU program binaries.

Renders decoded programs (or raw binary images) in a readable form:
operands are printed with their architectural names (``r``/``t``/``c``
register files, preloaded id registers), clause tails and embedded
constant pools are shown per clause.
"""

from repro.gpu.encoding import decode_program
from repro.gpu.isa import (
    CONST_BASE,
    OPERAND_NONE,
    REG_GLOBAL_ID,
    REG_GROUP_FLAT,
    REG_GROUP_ID,
    REG_LANE,
    REG_LOCAL_ID,
    TEMP_BASE,
    CmpMode,
    Op,
    Tail,
    is_const,
    is_grf,
    is_temp,
)

_SPECIAL_NAMES = {
    REG_GROUP_ID: "gidgrp.x", REG_GROUP_ID + 1: "gidgrp.y",
    REG_GROUP_ID + 2: "gidgrp.z",
    REG_GLOBAL_ID: "gid.x", REG_GLOBAL_ID + 1: "gid.y",
    REG_GLOBAL_ID + 2: "gid.z",
    REG_LOCAL_ID: "lid.x", REG_LOCAL_ID + 1: "lid.y",
    REG_LOCAL_ID + 2: "lid.z",
    REG_GROUP_FLAT: "grpflat", REG_LANE: "lane",
}


def operand_name(operand):
    """Architectural name of an operand field."""
    if operand == OPERAND_NONE:
        return "-"
    if operand in _SPECIAL_NAMES:
        return _SPECIAL_NAMES[operand]
    if is_grf(operand):
        return f"r{operand}"
    if is_temp(operand):
        return f"t{operand - TEMP_BASE}"
    if is_const(operand):
        return f"c{operand - CONST_BASE}"
    return f"?{operand}"


def format_instruction(instr):
    """One-slot disassembly, e.g. ``fma r3, r1, c0, r3``."""
    if instr.op is Op.NOP:
        return "nop"
    parts = []
    if instr.dst != OPERAND_NONE:
        parts.append(operand_name(instr.dst))
    for src in (instr.srca, instr.srcb, instr.srcc):
        if src != OPERAND_NONE:
            parts.append(operand_name(src))
    text = f"{instr.op.name.lower()} {', '.join(parts)}"
    if instr.op is Op.CMP:
        text += f" [{CmpMode(instr.flags).name.lower()}]"
    elif instr.op is Op.LDU:
        text += f" [u{instr.imm}]"
    elif instr.op in (Op.LD, Op.ST):
        space = "local" if instr.mem_is_local else "global"
        text += f" [{space} x{instr.mem_width}]"
    return text


def format_clause(clause, index=None, base_address=0xAA000000,
                  annotations=None):
    """Multi-line disassembly of one clause.

    *annotations* is a list of ``(tuple_index, slot, text)`` triples
    (e.g. verifier findings): each is rendered as a ``; ^ ...`` line
    directly under the tuple it anchors to (``tuple_index is None``
    anchors to the clause header/tail instead). The *slot* tag (``fma``/
    ``add``/``tail``) is echoed so the reader knows which half of the
    tuple the annotation points at.
    """
    by_tuple = {}
    header_notes = []
    for tuple_index, slot, text in annotations or ():
        tag = f"[{slot}] " if slot else ""
        if tuple_index is None:
            header_notes.append(f"  ; ^ {tag}{text}")
        else:
            by_tuple.setdefault(tuple_index, []).append(
                f"    ; ^ {tag}{text}")
    lines = []
    header = f"clause"
    if index is not None:
        header += f" {index} @{base_address + index * 0x10:08x}"
    header += f"  size={clause.size}  tail={clause.tail.name.lower()}"
    if clause.tail in (Tail.JUMP, Tail.BRANCH, Tail.BRANCH_Z):
        header += f" -> {clause.target}"
    if clause.tail in (Tail.BRANCH, Tail.BRANCH_Z):
        header += f" if {operand_name(clause.cond_reg)}"
    lines.append(header)
    lines.extend(header_notes)
    for tuple_index, (fma, add) in enumerate(clause.tuples):
        lines.append(f"  {{FMA}} {format_instruction(fma):34s}"
                     f"{{ADD}} {format_instruction(add)}")
        lines.extend(by_tuple.get(tuple_index, ()))
    if clause.constants:
        pool = ", ".join(f"c{i}=0x{value:08x}"
                         for i, value in enumerate(clause.constants))
        lines.append(f"  pool: {pool}")
    return "\n".join(lines)


def disassemble(program_or_binary, base_address=0xAA000000,
                annotations=None):
    """Disassemble a Program or an encoded binary image to text.

    *annotations* maps clause index -> list of ``(tuple_index, slot,
    text)`` triples (the shape produced by
    :meth:`repro.gpu.verify.Report.annotations`), inlined under the
    lines they anchor to.
    """
    program = program_or_binary
    if isinstance(program_or_binary, (bytes, bytearray)):
        program = decode_program(bytes(program_or_binary))
    blocks = [
        format_clause(clause, index, base_address,
                      annotations=(annotations or {}).get(index))
        for index, clause in enumerate(program.clauses)
    ]
    return "\n".join(blocks)
