"""Shader-core / compute-unit simulation.

Each :class:`ComputeUnit` executes one thread-group (OpenCL workgroup) at a
time, as the hardware shader cores do. The dispatcher (Section III-B2)
iterates over the job dimensions, groups threads into quads ("warps") that
execute in lockstep, and groups warps into thread-groups.

Virtual cores (Section III-B3): the number of execution units is decoupled
from the number of modelled shader cores. Units beyond the physical core
count are *virtual*: their workgroup-local storage is allocated by the
simulator outside the guest system ("the simulator allocates additional
local memory for each host thread, outwith the guest system"), and local
accesses are transparently served from it.
"""

import numpy as np

from repro.errors import WatchdogTimeout
from repro.gpu.isa import (
    REG_GLOBAL_ID,
    REG_GROUP_FLAT,
    REG_GROUP_ID,
    REG_LANE,
    REG_LOCAL_ID,
)
from repro.gpu.warp import WARP_WIDTH, ClauseInterpreter, QuadWarp
from repro.instrument.stats import JobStats


class WorkgroupShape:
    """NDRange geometry helpers shared by the dispatcher and the units."""

    def __init__(self, global_size, local_size):
        if len(global_size) != 3 or len(local_size) != 3:
            raise ValueError("global/local size must be 3-dimensional")
        for gdim, ldim in zip(global_size, local_size):
            if ldim <= 0 or gdim <= 0:
                raise ValueError("NDRange dimensions must be positive")
            if gdim % ldim:
                raise ValueError(
                    f"global size {global_size} not divisible by local size {local_size}"
                )
        self.global_size = tuple(global_size)
        self.local_size = tuple(local_size)
        self.num_groups = tuple(g // l for g, l in zip(global_size, local_size))
        self.threads_per_group = local_size[0] * local_size[1] * local_size[2]
        self.warps_per_group = -(-self.threads_per_group // WARP_WIDTH)
        self.total_groups = self.num_groups[0] * self.num_groups[1] * self.num_groups[2]

    def group_coords(self, flat_group):
        nx, ny, _ = self.num_groups
        gx = flat_group % nx
        gy = (flat_group // nx) % ny
        gz = flat_group // (nx * ny)
        return gx, gy, gz

    def local_coords(self, linear):
        lx_size, ly_size, _ = self.local_size
        lx = linear % lx_size
        ly = (linear // lx_size) % ly_size
        lz = linear // (lx_size * ly_size)
        return lx, ly, lz


class ComputeUnit:
    """One execution unit (a shader core, or a virtual core).

    Owns its own :class:`~repro.instrument.stats.JobStats` so parallel units
    never contend; stats are totalled at job completion (Section IV-A).
    """

    def __init__(self, unit_id, virtual=False):
        self.unit_id = unit_id
        self.virtual = virtual
        self.stats = None
        self.cfg = None
        self.tracer = None
        self.events = None
        self.injector = None
        self.watchdog_budget = None
        self._local = None

    def prepare(self, local_mem_bytes, instrument, collect_cfg, tracer=None,
                engine="interpreter", events=None, injector=None,
                watchdog_budget=None):
        self.stats = JobStats() if instrument else None
        self.tracer = tracer
        self.events = events
        self.engine = engine
        self.injector = injector
        self.watchdog_budget = watchdog_budget
        self._jit_cache = {}
        self._mega_cache = {}
        if collect_cfg:
            from repro.instrument.cfg import DivergenceCFG

            self.cfg = DivergenceCFG()
        else:
            self.cfg = None
        words = max(1, local_mem_bytes // 4)
        if self._local is None or len(self._local) < words:
            self._local = np.zeros(words, dtype=np.uint32)

    def _executor(self, program, uniforms, mem):
        """Pick the execution engine for this job.

        The JIT engine (paper future work, Section VII-A) reports the
        same JobStats as the interpreter, so instrumentation no longer
        forces a fallback; only CFG collection and per-word memory
        tracing do (they need per-issue visibility the translated
        closures deliberately avoid). Translated clauses are cached per
        (program, uniforms).
        """
        use_jit = (self.engine in ("jit", "mega")
                   and self.cfg is None and self.tracer is None)
        if not use_jit:
            return ClauseInterpreter(
                program, uniforms, mem, local=self._local, stats=self.stats,
                cfg=self.cfg, tracer=self.tracer,
            )
        from repro.gpu.jit import ClauseJIT

        # Key on id() for hashability, but validate the entry against the
        # program *object*: holding the program in the entry keeps its id
        # from being recycled by the GC, and the identity check guards
        # against a collision with an entry inserted for a dead program.
        key = (id(program), uniforms.tobytes())
        entry = self._jit_cache.get(key)
        if entry is not None:
            cached_program, cached = entry
            if cached_program is program and cached.local is self._local:
                # translations persist across jobs; counters do not
                cached.stats = self.stats
                return cached
        cached = ClauseJIT(program, uniforms, mem, local=self._local,
                           stats=self.stats)
        self._jit_cache[key] = (program, cached)
        return cached

    def _mega_executor(self, program, uniforms, mem, shape):
        """Workgroup-wide (megakernel) engine for this job, or None.

        Eligibility is static per program: every op must have an SoA
        translation (ATOM does not — the interpreter serializes atomics
        warp by warp, an ordering the workgroup-wide schedule cannot
        reproduce bit-exactly) and the memory port must expose the wide
        vector API. CFG collection and memory tracing need per-issue /
        per-word visibility, so they fall back like the JIT does.
        Translations are cached per (program, uniforms, width).
        """
        if self.engine != "mega" or self.cfg is not None \
                or self.tracer is not None:
            return None
        from repro.gpu.megakernel import MegaKernel, mega_supported

        if not mega_supported(program, mem):
            return None
        width = shape.warps_per_group * WARP_WIDTH
        key = (id(program), uniforms.tobytes(), width)
        entry = self._mega_cache.get(key)
        if entry is not None:
            cached_program, cached = entry
            if cached_program is program and cached.local is self._local:
                return cached
        cached = MegaKernel(program, uniforms, mem, self._local, width)
        self._mega_cache[key] = (program, cached)
        return cached

    def run_workgroup(self, program, uniforms, mem, shape, flat_group):
        """Execute one thread-group to completion (including barriers).

        Returns the group's warps so callers (the conformance harness) can
        inspect the retired architectural state.
        """
        self._local[:] = 0
        # the hang injection is consumed before picking the tier: an
        # injected stall must spin in the generic loop so the watchdog's
        # round accounting matches the reference engines exactly
        hang = None
        if self.injector is not None:
            hang = self.injector.fire("core.hang", key=flat_group)
        if hang is None:
            mega = self._mega_executor(program, uniforms, mem, shape)
            if mega is not None:
                return self._run_workgroup_mega(mega, shape, flat_group)
        interp = self._executor(program, uniforms, mem)
        warps = self._spawn_warps(shape, flat_group)
        if self.stats is not None:
            self.stats.workgroups += 1
            self.stats.warps_launched += len(warps)
            self.stats.threads_launched += shape.threads_per_group
        events = self.events
        track = f"core{self.unit_id}"
        if events is not None:
            events.begin("workgroup", "gpu", track,
                         args={"group": flat_group, "warps": len(warps)})
        # progress-budget watchdog: each scheduler round is one progress
        # unit; a workgroup that burns its budget without finishing is a
        # hang (injected clause-budget stalls, barrier livelocks)
        budget = self.watchdog_budget
        rounds = 0
        if hang is not None:
            # the injected stall charges the whole budget up front:
            # the core spins in place without retiring a warp
            rounds = hang.get("stall_rounds", (budget or 0) + 1)
        try:
            while True:
                rounds += 1
                if budget is not None and rounds > budget:
                    raise WatchdogTimeout(flat_group, rounds)
                runnable = [w for w in warps
                            if not w.finished and not w.blocked]
                for index, warp in enumerate(runnable):
                    if events is None:
                        interp.run_warp(warp)
                    else:
                        # per-warp clause batches are the highest-frequency
                        # span, so they go through the sampling gate
                        with events.sampled_span(
                                "clause_batch", "gpu", track,
                                args={"group": flat_group, "warp": index}):
                            interp.run_warp(warp)
                if all(warp.finished for warp in warps):
                    return warps
                if all(warp.finished or warp.blocked for warp in warps):
                    # every live warp reached the barrier: release together
                    for warp in warps:
                        warp.release_barrier()
        finally:
            if events is not None:
                events.end("workgroup", "gpu", track)

    def _run_workgroup_mega(self, kernel, shape, flat_group):
        """Dispatch one thread-group on the workgroup-wide engine.

        The kernel owns scheduling (including barrier releases and the
        watchdog's round accounting); this wrapper keeps the unit-level
        bookkeeping — launch counters and the workgroup event span —
        identical to the generic loop's.
        """
        if self.stats is not None:
            self.stats.workgroups += 1
            self.stats.warps_launched += shape.warps_per_group
            self.stats.threads_launched += shape.threads_per_group
        events = self.events
        track = f"core{self.unit_id}"
        if events is not None:
            events.begin("workgroup", "gpu", track,
                         args={"group": flat_group,
                               "warps": shape.warps_per_group})
        try:
            return kernel.run_workgroup(shape, flat_group, self.stats,
                                        self.watchdog_budget)
        finally:
            if events is not None:
                events.end("workgroup", "gpu", track)

    def _spawn_warps(self, shape, flat_group):
        gx, gy, gz = shape.group_coords(flat_group)
        lx_size, ly_size, lz_size = shape.local_size
        warps = []
        for warp_index in range(shape.warps_per_group):
            first = warp_index * WARP_WIDTH
            active = min(WARP_WIDTH, shape.threads_per_group - first)
            warp = QuadWarp(active_lanes=active)
            for lane in range(active):
                lx, ly, lz = shape.local_coords(first + lane)
                warp.regs[lane, REG_GLOBAL_ID + 0] = gx * lx_size + lx
                warp.regs[lane, REG_GLOBAL_ID + 1] = gy * ly_size + ly
                warp.regs[lane, REG_GLOBAL_ID + 2] = gz * lz_size + lz
                warp.regs[lane, REG_LOCAL_ID + 0] = lx
                warp.regs[lane, REG_LOCAL_ID + 1] = ly
                warp.regs[lane, REG_LOCAL_ID + 2] = lz
                warp.regs[lane, REG_GROUP_ID + 0] = gx
                warp.regs[lane, REG_GROUP_ID + 1] = gy
                warp.regs[lane, REG_GROUP_ID + 2] = gz
                warp.regs[lane, REG_GROUP_FLAT] = flat_group
                warp.regs[lane, REG_LANE] = lane
            warps.append(warp)
        return warps
