"""Bifrost-like mobile GPU model (the paper's simulated Mali-G71).

Subpackages/modules:

- :mod:`repro.gpu.isa` — the GPU instruction set (opcodes, operand model,
  clause structure).
- :mod:`repro.gpu.encoding` — binary encoder/decoder for programs, clauses
  and instruction words.
- :mod:`repro.gpu.regs` — the memory-mapped control register file.
- :mod:`repro.gpu.mmu` — the GPU MMU (page-table walker + fault reporting).
- :mod:`repro.gpu.warp` — quad (4-lane) warp execution with divergence.
- :mod:`repro.gpu.shadercore` — shader cores executing workgroups.
- :mod:`repro.gpu.jobmanager` — the Job Manager parsing job descriptors and
  orchestrating shader cores.
- :mod:`repro.gpu.device` — the top-level GPU device on the system bus.
"""

from repro.gpu.device import GPUDevice, GPUConfig

__all__ = ["GPUDevice", "GPUConfig"]
