"""GPU Memory Management Unit.

"Our simulator incorporates a complete software implementation of the GPU's
MMU. The driver provides the MMU with page table pointers, and the MMU
reports errors (permissions violations, faults) to the driver through memory
mapped registers and interrupts." (Section III-B5)

The MMU walks the *same* page tables the driver built in simulated physical
memory (:mod:`repro.mem.pagetable`) and records every distinct GPU-VA page
touched — the paper's "pages accessed by the GPU" system statistic.

Two translation paths exist:

- the scalar path (:meth:`GPUMMU.translate` / :meth:`GPUMMU.load_u32`),
  one walk-or-TLB-probe per 32-bit word — the reference semantics;
- the quad fast path (:meth:`GPUMMU.translate_quad` and the
  ``load_quad_u32`` / ``store_quad_u32`` wrappers), which translates a
  whole vector of lane addresses with one TLB probe per *distinct* page
  and serves the data through :meth:`~repro.mem.physical.PhysicalMemory.
  gather_u32` / ``scatter_u32``. The fast path is bit-exact with the
  scalar path (same ``pages_accessed`` set, same ``translations`` count)
  and *side-effect-free on failure*: any lane that would fault makes the
  whole quad return ``None`` so the caller can replay it scalar-wise and
  reproduce the exact per-lane fault behaviour.
"""

import numpy as np

from repro.errors import MMUFault
from repro.mem.pagetable import PTE_EXEC, PTE_READ, PTE_WRITE, PageTableWalker
from repro.mem.physical import PAGE_SHIFT

_PAGE_MASK = (1 << PAGE_SHIFT) - 1
_REQUIRED = {"r": PTE_READ, "w": PTE_WRITE, "x": PTE_EXEC}

# Address-space tag folded into every recorded/armed VA page number.
# VA_BITS=39 keeps vpage below 2^27, so tagging at bit 32 never collides;
# address space 0 (the default tenant) tags as 0, preserving the
# single-tenant page numbering bit-for-bit.
AS_TAG_SHIFT = 32


class GPUMMU:
    """Translation front-end shared by the Job Manager and shader cores."""

    def __init__(self, memory):
        self._memory = memory
        self._walker = None
        self._enabled = False
        # active address-space id (MMU_AS register); tags every entry of
        # pages_accessed and every injector page key so per-tenant VA
        # spaces that reuse the same numeric VAs never alias
        self._as_id = 0
        self._as_tag = 0
        self.pages_accessed = set()
        self.fault_addr = 0
        self.fault_status = 0
        self.translations = 0
        # fault-recovery hooks, both consulted only on the TLB-miss path
        # (cold), so the translation hot path pays nothing when unused:
        # - _fault_handler: driver page-fault worker; returns True when it
        #   resolved the fault (grow-on-fault region growth) and the walk
        #   should be retried — the faulting access is *resumed*, exactly
        #   like a parked bus transaction on real hardware.
        # - _injector: deterministic fault injection (repro.inject); armed
        #   pages raise spurious/permission MMUFaults on first touch.
        self._fault_handler = None
        self._injector = None
        self.page_faults_resolved = 0
        self.injected_faults = 0
        # Software TLB in front of the walker: VA page -> (PA page, PTE
        # flags). The walker keeps its own TLB for the table-walk cache;
        # this one makes a whole quad cost a single dict probe per
        # distinct page. `fast_path_enabled` is the ablation knob used by
        # benchmarks/bench_ablation_design.py and bench_hotpath.py.
        self._tlb = {}
        # permission-checked page views for the quad fast path:
        # VA page -> u32 view of its physical page. Subsets of the TLB,
        # flushed with it.
        self._rview = {}
        self._wview = {}
        self._fast_path_enabled = True
        self.quad_accesses = 0
        self.quad_fallbacks = 0
        self.wide_accesses = 0
        self.wide_fallbacks = 0
        self._gather = getattr(memory, "gather_u32", None)
        self._scatter = getattr(memory, "scatter_u32", None)
        self._page_view = getattr(memory, "page_u32_view", None)
        self._fast = False

    def _update_fast(self):
        self._fast = (self._fast_path_enabled and self._enabled
                      and self._walker is not None
                      and self._page_view is not None)

    @property
    def enabled(self):
        return self._enabled

    @enabled.setter
    def enabled(self, value):
        self._enabled = value
        self._update_fast()

    @property
    def address_space(self):
        """Active address-space id (the MMU_AS register)."""
        return self._as_id

    @address_space.setter
    def address_space(self, value):
        if value != self._as_id:
            self._as_id = value
            self._as_tag = value << AS_TAG_SHIFT
            self.flush_tlb()

    def pages_accessed_in(self, as_id):
        """Distinct pages touched under address space *as_id*."""
        return sum(1 for page in self.pages_accessed
                   if page >> AS_TAG_SHIFT == as_id)

    @property
    def fast_path_enabled(self):
        """Ablation knob: False forces every access onto the scalar path."""
        return self._fast_path_enabled

    @fast_path_enabled.setter
    def fast_path_enabled(self, value):
        self._fast_path_enabled = value
        self._update_fast()

    def set_page_table(self, root):
        """Driver handing over the page-table base (MMU_PGD register)."""
        self._walker = PageTableWalker(self._memory, root)
        self._tlb = {}
        self._rview = {}
        self._wview = {}
        self._update_fast()

    def set_fault_handler(self, handler):
        """Install the driver's page-fault worker.

        *handler* is called as ``handler(vaddr, access)`` on a translation
        miss and returns True when it resolved the fault (mapped the page)
        so the walk can be retried and the access resumed. Pass None to
        detach."""
        self._fault_handler = handler

    def set_injector(self, injector):
        """Attach a :class:`~repro.inject.FaultInjector` (None detaches).

        Flushes the TLB so pages armed for injection are guaranteed to
        take the miss path on their next access."""
        self._injector = injector
        self.flush_tlb()

    def flush_tlb(self):
        self._tlb = {}
        self._rview = {}
        self._wview = {}
        if self._walker is not None:
            self._walker.flush_tlb()

    def translate(self, vaddr, access="r"):
        """Translate a GPU virtual address, recording the touched page.

        Raises:
            MMUFault: translation failure; the caller (job manager) latches
                fault registers and raises the MMU IRQ.
        """
        if not self.enabled or self._walker is None:
            raise MMUFault(vaddr, access, "GPU MMU not enabled")
        vpage = vaddr >> PAGE_SHIFT
        self.translations += 1
        self.pages_accessed.add(vpage | self._as_tag)
        entry = self._tlb.get(vpage)
        if entry is None:
            entry = self._miss(vaddr, vpage, access)
        ppage, flags = entry
        if not flags & _REQUIRED[access]:
            raise MMUFault(vaddr, access,
                           f"permission denied at 0x{vaddr:x} ({access})")
        return ppage | (vaddr & _PAGE_MASK)

    def _miss(self, vaddr, vpage, access):
        """TLB-miss path: injection hook, table walk, page-fault worker.

        Returns the resolved ``(physical page, flags)`` entry (now cached)
        or raises :class:`MMUFault`. Only the scalar path resolves misses;
        the quad tiers return ``None`` on a miss so their scalar replay
        funnels every fault — injected, grown, or real — through here.
        """
        injector = self._injector
        if injector is not None:
            params = injector.fire_page(vpage | self._as_tag)
            if params is not None:
                self.injected_faults += 1
                kind = params.get("kind", "translation")
                fault_access = params.get("access", access)
                raise MMUFault(
                    vaddr, fault_access,
                    f"injected {kind} fault at 0x{vaddr:x} ({fault_access})")
        entry = self._walker.lookup_page(vaddr)
        if entry is None and self._fault_handler is not None:
            if self._fault_handler(vaddr, access):
                self.page_faults_resolved += 1
                entry = self._walker.lookup_page(vaddr)
        if entry is None:
            raise MMUFault(vaddr, access)
        self._tlb[vpage] = entry
        return entry

    def _page_armed(self, vpage):
        """True when *vpage* is armed for fault injection: quad-tier TLB
        misses on armed pages return ``None`` (defer to the scalar
        replay) so the injected fault fires exactly once, in
        :meth:`_miss`, with reference semantics. Unmapped pages already
        defer (the quad walk returns ``None``), which likewise routes
        grow-on-fault growth through the scalar path."""
        return self._injector is not None \
            and self._injector.page_armed(vpage | self._as_tag)

    def _translate_list(self, lanes, required):
        """Translate a list of lane addresses; one TLB probe per page.

        Returns the physical-address list, or ``None`` when any lane
        cannot be served — *without* having recorded anything, so the
        scalar replay produces byte-identical statistics and the exact
        per-lane fault the hardware would raise.
        """
        tlb = self._tlb
        walker = self._walker
        tag = self._as_tag
        paddrs = []
        pages = set()
        for vaddr in lanes:
            vpage = vaddr >> PAGE_SHIFT
            entry = tlb.get(vpage)
            if entry is None:
                if self._page_armed(vpage):
                    return None
                entry = walker.lookup_page(vaddr)
                if entry is None:
                    return None
                tlb[vpage] = entry
            ppage, flags = entry
            if not flags & required:
                return None
            paddrs.append(ppage | (vaddr & _PAGE_MASK))
            pages.add(vpage | tag)
        self.translations += len(lanes)
        self.pages_accessed |= pages
        return paddrs

    def translate_quad(self, vaddrs, access="r"):
        """Translate a vector of lane addresses (one TLB probe per page).

        Returns an ``int64`` NumPy vector of physical addresses, or
        ``None`` when the quad cannot be served whole (fast path disabled,
        MMU off, an unmapped page, or a permission failure). The ``None``
        case records *nothing* — no translation counts, no accessed pages
        — so the caller can fall back to the scalar path.
        """
        if not self.fast_path_enabled or not self.enabled \
                or self._walker is None:
            return None
        lanes = vaddrs.tolist() if isinstance(vaddrs, np.ndarray) \
            else list(vaddrs)
        paddrs = self._translate_list(lanes, _REQUIRED[access])
        if paddrs is None:
            return None
        return np.asarray(paddrs, dtype=np.int64)

    def latch_fault(self, fault):
        self.fault_addr = fault.vaddr
        self.fault_status = {"r": 1, "w": 2, "x": 3}[fault.access]

    # -- guest memory access through translation -----------------------------

    def load_u32(self, vaddr):
        return self._memory.read_u32(self.translate(vaddr, "r"))

    def store_u32(self, vaddr, value):
        self._memory.write_u32(self.translate(vaddr, "w"), value)

    def _quad_page(self, lanes, required):
        """Resolve a same-page, word-aligned quad to (u32 view, offsets).

        Returns ``None`` when the quad is not eligible (different pages,
        unaligned lanes, fast path off) or would fault — recording nothing
        in the fault case so the scalar replay is byte-identical.
        """
        if not self.fast_path_enabled or not self.enabled \
                or self._walker is None:
            return None
        vpage = lanes[0] >> PAGE_SHIFT
        offsets = []
        for vaddr in lanes:
            if vaddr >> PAGE_SHIFT != vpage or vaddr & 3:
                return None
            offsets.append((vaddr & _PAGE_MASK) >> 2)
        entry = self._tlb.get(vpage)
        if entry is None:
            if self._page_armed(vpage):
                return None
            entry = self._walker.lookup_page(lanes[0])
            if entry is None:
                return None
            self._tlb[vpage] = entry
        ppage, flags = entry
        if not flags & required:
            return None
        self.translations += len(lanes)
        self.pages_accessed.add(vpage | self._as_tag)
        return self._memory.page_u32_view(ppage >> PAGE_SHIFT), offsets

    def _resolve_view(self, vaddr, vpage, required, cache):
        """Slow half of the quad tiers: probe, perm-check, cache the view."""
        entry = self._tlb.get(vpage)
        if entry is None:
            if self._page_armed(vpage):
                return None
            entry = self._walker.lookup_page(vaddr)
            if entry is None:
                return None
            self._tlb[vpage] = entry
        if not entry[1] & required:
            return None
        view = self._page_view(entry[0] >> PAGE_SHIFT)
        cache[vpage] = view
        return view

    def load_quad_u32(self, vaddrs):
        """Gather one u32 per lane address, or ``None`` for scalar replay.

        ``vaddrs`` may be a list of ints or an integer ndarray. The two
        dominant lane shapes are recognized with pure Python-int
        arithmetic and served without any NumPy fancy indexing:

        - *contiguous* (lane i at base + 4i, e.g. row-major image and
          matrix rows): one view-cache probe, one slice of the page view;
        - *broadcast* (all lanes at one address, e.g. a shared matrix
          element): one view-cache probe, one scalar read.

        Remaining same-page quads go through a fancy-index gather;
        cross-page quads through the per-lane translate + gather path.
        Any lane that would fault makes the whole call return ``None``
        with *no* state recorded, so the caller's scalar replay
        reproduces the exact reference fault semantics and statistics.
        """
        if not self._fast:
            return None
        lanes = vaddrs.tolist() if isinstance(vaddrs, np.ndarray) \
            else vaddrs
        a0 = lanes[0]
        if len(lanes) == 4 and not a0 & 3:
            offset = a0 & _PAGE_MASK
            if lanes[1] == a0 + 4 and lanes[2] == a0 + 8 \
                    and lanes[3] == a0 + 12:
                if offset <= _PAGE_MASK - 15:
                    vpage = a0 >> PAGE_SHIFT
                    view = self._rview.get(vpage)
                    if view is None:
                        view = self._resolve_view(a0, vpage, PTE_READ,
                                                  self._rview)
                    if view is not None:
                        self.translations += 4
                        self.pages_accessed.add(vpage | self._as_tag)
                        self.quad_accesses += 1
                        word = offset >> 2
                        return view[word:word + 4]
            elif lanes[1] == a0 and lanes[2] == a0 and lanes[3] == a0:
                vpage = a0 >> PAGE_SHIFT
                view = self._rview.get(vpage)
                if view is None:
                    view = self._resolve_view(a0, vpage, PTE_READ,
                                              self._rview)
                if view is not None:
                    self.translations += 4
                    self.pages_accessed.add(vpage | self._as_tag)
                    self.quad_accesses += 1
                    return view[offset >> 2]
        hit = self._quad_page(lanes, PTE_READ)
        if hit is not None:
            self.quad_accesses += 1
            view, offsets = hit
            return view[offsets]
        paddrs = self._translate_list(lanes, PTE_READ)
        if not paddrs:
            self.quad_fallbacks += 1
            return None
        self.quad_accesses += 1
        return self._gather(paddrs)

    def store_quad_u32(self, vaddrs, values):
        """Scatter one u32 per lane address; ``None`` -> scalar replay.

        The contiguous lane shape is served as one slice assignment on
        the page view; see :meth:`load_quad_u32` for the tiering.
        """
        if not self._fast or self._scatter is None:
            return None
        lanes = vaddrs.tolist() if isinstance(vaddrs, np.ndarray) \
            else vaddrs
        a0 = lanes[0]
        if len(lanes) == 4 and not a0 & 3 \
                and lanes[1] == a0 + 4 and lanes[2] == a0 + 8 \
                and lanes[3] == a0 + 12:
            offset = a0 & _PAGE_MASK
            if offset <= _PAGE_MASK - 15:
                vpage = a0 >> PAGE_SHIFT
                view = self._wview.get(vpage)
                if view is None:
                    view = self._resolve_view(a0, vpage, PTE_WRITE,
                                              self._wview)
                if view is not None:
                    self.translations += 4
                    self.pages_accessed.add(vpage | self._as_tag)
                    self.quad_accesses += 1
                    word = offset >> 2
                    view[word:word + 4] = values
                    return True
        hit = self._quad_page(lanes, PTE_WRITE)
        if hit is not None:
            self.quad_accesses += 1
            view, offsets = hit
            view[offsets] = values
            return True
        paddrs = self._translate_list(lanes, PTE_WRITE)
        if not paddrs:
            self.quad_fallbacks += 1
            return None
        self.quad_accesses += 1
        self._scatter(paddrs, values)
        return True

    # -- workgroup-wide (megakernel) gather/scatter ---------------------------

    def _wide_views(self, vaddrs, required, cache):
        """Resolve every page touched by *vaddrs* (int64 ndarray of
        word-aligned lane addresses) to its u32 page view.

        Returns ``(vpages, unique_pages, views)`` or ``None`` when any
        page cannot be served (unmapped, armed for injection, permission
        failure) — recording *nothing*, so the caller's per-lane scalar
        replay reproduces the reference fault semantics and statistics.
        All views are resolved before any counter moves, keeping the
        whole call side-effect-free on failure.
        """
        vpages = vaddrs >> PAGE_SHIFT
        unique_pages = np.unique(vpages)
        views = []
        for vpage in unique_pages.tolist():
            view = cache.get(vpage)
            if view is None:
                view = self._resolve_view(vpage << PAGE_SHIFT, vpage,
                                          required, cache)
                if view is None:
                    return None
            views.append(view)
        return vpages, unique_pages, views

    def load_wide_u32(self, vaddrs):
        """Gather one u32 per lane address for a whole workgroup.

        ``vaddrs`` is an int64 ndarray (any length) of byte addresses.
        Returns the gathered uint32 vector, or ``None`` for per-lane
        scalar replay — with *no* state recorded in that case, exactly
        like the quad tiers. Unaligned lanes always defer to the scalar
        path (the reference path defines sub-word semantics).
        """
        if not self._fast or (vaddrs & 3).any():
            self.wide_fallbacks += 1
            return None
        resolved = self._wide_views(vaddrs, PTE_READ, self._rview)
        if resolved is None:
            self.wide_fallbacks += 1
            return None
        vpages, unique_pages, views = resolved
        self.translations += len(vaddrs)
        tag = self._as_tag
        self.pages_accessed.update(
            [page | tag for page in unique_pages.tolist()])
        self.wide_accesses += 1
        offsets = (vaddrs & _PAGE_MASK) >> 2
        if len(unique_pages) == 1:
            return views[0][offsets]
        out = np.empty(len(vaddrs), dtype=np.uint32)
        for vpage, view in zip(unique_pages, views):
            lanes = vpages == vpage
            out[lanes] = view[offsets[lanes]]
        return out

    def store_wide_u32(self, vaddrs, values):
        """Scatter one u32 per lane address; ``None`` -> scalar replay.

        Lane order is preserved within each page group, so duplicate
        addresses resolve last-lane-wins exactly as the per-lane
        reference path does (duplicates always share a page).
        """
        if not self._fast or (vaddrs & 3).any():
            self.wide_fallbacks += 1
            return None
        resolved = self._wide_views(vaddrs, PTE_WRITE, self._wview)
        if resolved is None:
            self.wide_fallbacks += 1
            return None
        vpages, unique_pages, views = resolved
        self.translations += len(vaddrs)
        tag = self._as_tag
        self.pages_accessed.update(
            [page | tag for page in unique_pages.tolist()])
        self.wide_accesses += 1
        offsets = (vaddrs & _PAGE_MASK) >> 2
        if len(unique_pages) == 1:
            views[0][offsets] = values
            return True
        for vpage, view in zip(unique_pages, views):
            lanes = vpages == vpage
            view[offsets[lanes]] = values[lanes]
        return True

    def load_u64(self, vaddr):
        low = self.load_u32(vaddr)
        high = self.load_u32(vaddr + 4)
        return low | (high << 32)

    def load_block(self, vaddr, length):
        """Read a byte range page-by-page through translation."""
        out = bytearray()
        remaining = length
        position = vaddr
        while remaining:
            page_room = (1 << PAGE_SHIFT) - (position & ((1 << PAGE_SHIFT) - 1))
            chunk = min(remaining, page_room)
            paddr = self.translate(position, "r")
            out += self._memory.read_block(paddr, chunk)
            position += chunk
            remaining -= chunk
        return bytes(out)
